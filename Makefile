# Convenience targets; all builds are fully offline (deps vendored under
# third_party/).

CARGO ?= cargo

.PHONY: build test clippy verify bench clean

build:
	$(CARGO) build --release --offline --workspace

test:
	$(CARGO) test -q --offline --workspace

clippy:
	$(CARGO) clippy --offline --workspace --all-targets -- -D warnings

# The gate every change must pass: release build, full test suite, and
# clippy with warnings denied.
verify: build test clippy

bench:
	$(CARGO) bench --offline --workspace

clean:
	$(CARGO) clean
