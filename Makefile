# Convenience targets; all builds are fully offline (deps vendored under
# third_party/).

CARGO ?= cargo

.PHONY: build test clippy lint-metrics fault-matrix verify bench \
	bench-baseline bench-smoke bench-dense bench-dense-smoke bench-schema \
	clean

build:
	$(CARGO) build --release --offline --workspace

test:
	$(CARGO) test -q --offline --workspace

clippy:
	$(CARGO) clippy --offline --workspace --all-targets -- -D warnings

# Metric-name hygiene: every dotted name used in code is defined in
# hetgmp_telemetry::names and documented in TELEMETRY.md.
lint-metrics:
	sh scripts/check_metric_names.sh

# Fault-injection smoke matrix: crash (with checkpoint/restore), stall,
# and link degradation through the release CLI under --audit=strict.
fault-matrix: build
	sh scripts/fault_matrix.sh

# The gate every change must pass: release build, full test suite, clippy
# with warnings denied, metric-name lint, the fault-injection matrix, and
# the perf-baseline schema check.
verify: build test clippy lint-metrics fault-matrix bench-schema

bench:
	$(CARGO) bench --offline --workspace

# The perf baseline: criterion microbenchmarks plus the fixed-seed hot-path
# run that writes BENCH_hotpath.json (batched vs per-row table ops and
# end-to-end training throughput).
bench-baseline: build
	$(CARGO) bench --offline -p hetgmp-bench --bench bench_embedding
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_hotpath

# Five-second subset: same BENCH_hotpath.json schema, shrunk workload.
bench-smoke: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_hotpath -- --smoke

# The dense-engine baseline: criterion GEMM microbenchmarks plus the
# fixed-seed run that writes BENCH_dense.json (blocked vs naive kernels and
# allocation-free end-to-end training throughput).
bench-dense: build
	$(CARGO) bench --offline -p hetgmp-bench --bench bench_gemm
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_dense

# Shrunk dense baseline: same BENCH_dense.json schema.
bench-dense-smoke: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_dense -- --smoke

# Schema gate for both perf baselines (runs the smoke benches to produce
# fresh files, then validates their shape).
bench-schema: bench-smoke bench-dense-smoke
	sh scripts/check_bench_schema.sh
	sh scripts/check_bench_schema.sh BENCH_dense.json

clean:
	$(CARGO) clean
