# Convenience targets; all builds are fully offline (deps vendored under
# third_party/).

CARGO ?= cargo

.PHONY: build test clippy lint-metrics fault-matrix verify bench clean

build:
	$(CARGO) build --release --offline --workspace

test:
	$(CARGO) test -q --offline --workspace

clippy:
	$(CARGO) clippy --offline --workspace --all-targets -- -D warnings

# Metric-name hygiene: every dotted name used in code is defined in
# hetgmp_telemetry::names and documented in TELEMETRY.md.
lint-metrics:
	sh scripts/check_metric_names.sh

# Fault-injection smoke matrix: crash (with checkpoint/restore), stall,
# and link degradation through the release CLI under --audit=strict.
fault-matrix: build
	sh scripts/fault_matrix.sh

# The gate every change must pass: release build, full test suite, clippy
# with warnings denied, metric-name lint, and the fault-injection matrix.
verify: build test clippy lint-metrics fault-matrix

bench:
	$(CARGO) bench --offline --workspace

clean:
	$(CARGO) clean
