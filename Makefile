# Convenience targets; all builds are fully offline (deps vendored under
# third_party/).

CARGO ?= cargo

.PHONY: build test clippy lint-metrics verify bench clean

build:
	$(CARGO) build --release --offline --workspace

test:
	$(CARGO) test -q --offline --workspace

clippy:
	$(CARGO) clippy --offline --workspace --all-targets -- -D warnings

# Metric-name hygiene: every dotted name used in code is defined in
# hetgmp_telemetry::names and documented in TELEMETRY.md.
lint-metrics:
	sh scripts/check_metric_names.sh

# The gate every change must pass: release build, full test suite, clippy
# with warnings denied, and metric-name lint.
verify: build test clippy lint-metrics

bench:
	$(CARGO) bench --offline --workspace

clean:
	$(CARGO) clean
