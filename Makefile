# Convenience targets; all builds are fully offline (deps vendored under
# third_party/).

CARGO ?= cargo

.PHONY: build test clippy lint-metrics fault-matrix inspect-smoke verify \
	bench bench-baseline bench-smoke bench-dense bench-dense-smoke \
	bench-pipeline bench-pipeline-smoke bench-comms bench-comms-smoke \
	bench-schema clean

build:
	$(CARGO) build --release --offline --workspace

test:
	$(CARGO) test -q --offline --workspace

clippy:
	$(CARGO) clippy --offline --workspace --all-targets -- -D warnings

# Metric-name hygiene: every dotted name used in code is defined in
# hetgmp_telemetry::names and documented in TELEMETRY.md.
lint-metrics:
	sh scripts/check_metric_names.sh

# Fault-injection smoke matrix: crash (with checkpoint/restore), stall,
# and link degradation through the release CLI under --audit=strict.
fault-matrix: build
	sh scripts/fault_matrix.sh

# End-to-end smoke of `het-gmp inspect`: a tiny fixed-seed run feeds all
# three modes; the report must match the committed golden byte-for-byte
# (manifest line filtered — its git rev changes every commit) and an
# injected regression must flip diff's exit code.
inspect-smoke: build
	sh scripts/inspect_smoke.sh

# The gate every change must pass: release build, full test suite, clippy
# with warnings denied, metric-name lint, the fault-injection matrix, the
# perf-baseline schema check, and the inspect smoke.
verify: build test clippy lint-metrics fault-matrix bench-schema inspect-smoke

bench:
	$(CARGO) bench --offline --workspace

# The perf baseline: criterion microbenchmarks plus the fixed-seed hot-path
# run that writes BENCH_hotpath.json (batched vs per-row table ops and
# end-to-end training throughput).
bench-baseline: build
	$(CARGO) bench --offline -p hetgmp-bench --bench bench_embedding
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_hotpath

# Five-second subset: same BENCH_hotpath.json schema, shrunk workload.
bench-smoke: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_hotpath -- --smoke

# The dense-engine baseline: criterion GEMM microbenchmarks plus the
# fixed-seed run that writes BENCH_dense.json (blocked vs naive kernels and
# allocation-free end-to-end training throughput).
bench-dense: build
	$(CARGO) bench --offline -p hetgmp-bench --bench bench_gemm
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_dense

# Shrunk dense baseline: same BENCH_dense.json schema.
bench-dense-smoke: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_dense -- --smoke

# The pipelined-trainer baseline: the bench_dense end-to-end workload swept
# over pipeline depths {1,2,4}, writing BENCH_pipeline.json (samples/s,
# stage stall %, overlap ratio per depth; asserts bit-identical AUC).
bench-pipeline: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_pipeline
	sh scripts/check_bench_schema.sh BENCH_pipeline.json

# Shrunk depth sweep: same schema, written to BENCH_pipeline.smoke.json.
bench-pipeline-smoke: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_pipeline -- --smoke

# The compressed-communication baseline: one fixed-seed workload swept over
# the sync wire formats (f32/f16/bf16/int8), writing BENCH_comms.json
# (bytes charged per format, quant counters, final AUC; asserts int8 moves
# ≥ 3.5x fewer embedding bytes with AUC within 0.5% of f32).
bench-comms: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_comms
	sh scripts/check_bench_schema.sh BENCH_comms.json

# Shrunk format sweep: same schema, written to BENCH_comms.smoke.json.
bench-comms-smoke: build
	$(CARGO) run --release --offline -p hetgmp-bench --bin bench_comms -- --smoke

# Schema gate for all four committed baselines: runs the smoke benches (which
# write *.smoke.json siblings, never touching the committed full-run files)
# and validates both the fresh smoke output and the committed baselines —
# including the doc-drift check that every "NN.Nk samples/s" figure quoted
# in ROADMAP.md/CHANGES.md still matches a committed BENCH_*.json.
bench-schema: bench-smoke bench-dense-smoke bench-pipeline-smoke bench-comms-smoke
	sh scripts/check_bench_schema.sh BENCH_hotpath.smoke.json
	sh scripts/check_bench_schema.sh BENCH_dense.smoke.json
	sh scripts/check_bench_schema.sh BENCH_pipeline.smoke.json
	sh scripts/check_bench_schema.sh BENCH_comms.smoke.json
	sh scripts/check_bench_schema.sh
	sh scripts/check_bench_schema.sh BENCH_dense.json
	sh scripts/check_bench_schema.sh BENCH_pipeline.json
	sh scripts/check_bench_schema.sh BENCH_comms.json

clean:
	$(CARGO) clean
