//! Performance of the communication substrate (AllReduce group, ledger).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_comms::{AllReduceGroup, TrafficClass, TrafficLedger};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("comms");
    group.sample_size(20);

    group.bench_function("allreduce_4_threads_64k_floats", |b| {
        b.iter(|| {
            let g = Arc::new(AllReduceGroup::new(4));
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    let g = Arc::clone(&g);
                    std::thread::spawn(move || {
                        let mut v = vec![k as f32; 65_536];
                        for _ in 0..4 {
                            g.allreduce_sum(&mut v);
                        }
                        v[0]
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<f32>()
        });
    });

    group.bench_function("ledger_record", |b| {
        let ledger = TrafficLedger::new(8);
        let mut w = 0usize;
        b.iter(|| {
            w = (w + 1) % 8;
            ledger.record(w, TrafficClass::EmbedData, 64, 1);
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
