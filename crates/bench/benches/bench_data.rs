//! Performance of data generation and graph construction.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_bigraph::{CooccurrenceConfig, CooccurrenceGraph};
use hetgmp_data::{generate, DatasetSpec, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("data");
    group.sample_size(10);

    group.bench_function("zipf_sample", |b| {
        let z = Zipf::new(100_000, 1.05);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| z.sample(&mut rng));
    });

    group.bench_function("generate_avazu_like_0.1", |b| {
        let spec = DatasetSpec::avazu_like(0.1);
        b.iter(|| generate(&spec));
    });

    let data = generate(&DatasetSpec::avazu_like(0.1));
    group.bench_function("to_bigraph", |b| {
        b.iter(|| data.to_bigraph());
    });

    let graph = data.to_bigraph();
    group.bench_function("cooccurrence_build", |b| {
        b.iter(|| CooccurrenceGraph::build(&graph, &CooccurrenceConfig::default()));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
