//! Performance of the distributed embedding table: bounded-async reads,
//! gradient write-back, and the underlying sharded store.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_embedding::{BatchScratch, ShardedTable, SparseOpt, StalenessBound, WorkerEmbedding};
use hetgmp_partition::Partition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 20_000;
const DIM: usize = 16;
const FIELDS: usize = 26;
const BATCH: usize = 256;

fn setup() -> (ShardedTable, Partition, Vec<u64>, Vec<Vec<u32>>) {
    let table = ShardedTable::new(ROWS, DIM, 0.05, 1);
    let mut rng = StdRng::seed_from_u64(9);
    let emb_primary: Vec<u32> = (0..ROWS).map(|_| rng.gen_range(0..4)).collect();
    let mut part = Partition::new(4, vec![0; 1], emb_primary);
    // Replicate the 200 hottest rows on worker 0.
    for e in 0..200u32 {
        part.add_replica(e, 0);
    }
    // Zipf-ish access pattern.
    let freq: Vec<u64> = (0..ROWS).map(|i| (ROWS / (i + 1)) as u64).collect();
    let samples: Vec<Vec<u32>> = (0..BATCH)
        .map(|_| {
            (0..FIELDS)
                .map(|_| {
                    let r: f64 = rng.gen::<f64>();
                    ((r * r * ROWS as f64) as u32).min(ROWS as u32 - 1)
                })
                .collect()
        })
        .collect();
    (table, part, freq, samples)
}

fn bench(c: &mut Criterion) {
    let (table, part, freq, samples) = setup();
    let sample_refs: Vec<&[u32]> = samples.iter().map(Vec::as_slice).collect();
    let total: usize = sample_refs.iter().map(|s| s.len()).sum();
    let mut group = c.benchmark_group("embedding");
    group.sample_size(20);

    group.bench_function("table_read_row", |b| {
        let mut buf = vec![0.0f32; DIM];
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % ROWS as u32;
            table.read_row(i, &mut buf)
        });
    });

    group.bench_function("table_apply_grad", |b| {
        let grad = vec![0.01f32; DIM];
        let opt = SparseOpt::adagrad(0.05);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % ROWS as u32;
            table.apply_grad(i, &grad, &opt)
        });
    });

    // Batched table API vs the per-row loops above: same rows, one shard
    // lock per group instead of one per row.
    let batch_rows: Vec<u32> = (0..BATCH as u32).map(|i| (i * 37) % ROWS as u32).collect();

    group.bench_function("table_read_rows_batched", |b| {
        let mut scratch = BatchScratch::default();
        let mut out = vec![0.0f32; BATCH * DIM];
        let mut clocks = vec![0u64; BATCH];
        b.iter(|| table.read_rows(&batch_rows, &mut out, &mut clocks, &mut scratch));
    });

    group.bench_function("table_apply_grads_batched", |b| {
        let mut scratch = BatchScratch::default();
        let grads = vec![0.01f32; BATCH * DIM];
        let opt = SparseOpt::adagrad(0.05);
        let mut clocks = vec![0u64; BATCH];
        b.iter(|| table.apply_grads(&batch_rows, &grads, &opt, &mut clocks, &mut scratch));
    });

    group.bench_function("read_batch_s100", |b| {
        let mut w = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(100));
        let mut out = vec![0.0f32; total * DIM];
        b.iter(|| w.read_batch(&sample_refs, &mut out));
    });

    group.bench_function("read_batch_s0", |b| {
        let mut w = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(0));
        let mut out = vec![0.0f32; total * DIM];
        b.iter(|| w.read_batch(&sample_refs, &mut out));
    });

    group.bench_function("apply_gradients", |b| {
        let mut w = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(100));
        let grads = vec![0.001f32; total * DIM];
        let opt = SparseOpt::adagrad(0.05);
        b.iter(|| w.apply_gradients(&sample_refs, &grads, &opt));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
