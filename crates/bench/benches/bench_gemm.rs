//! Blocked-vs-naive GEMM microkernel comparison.
//!
//! Square shapes profile raw kernel throughput; the rectangular shapes are
//! exactly what WDL/DCN training issues per batch (batch 256, 26 fields ×
//! dim 16 = 416 input features, hidden 64): forward `X·W`, the weight
//! gradient `Xᵀ·dY`, and the input gradient `dY·Wᵀ`. The `naive_*`
//! counterparts run the pre-blocking reference kernels kept as the test
//! oracle, so a report directly shows the speedup locked in by
//! `BENCH_dense.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_tensor::Matrix;

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    let mut v = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push(((state >> 32) as u32 as f32 / u32::MAX as f32) - 0.5);
    }
    Matrix::from_vec(rows, cols, v)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);

    // Square: raw kernel throughput.
    for &n in &[64usize, 128, 256] {
        let a = lcg_matrix(n, n, 1);
        let b_m = lcg_matrix(n, n, 2);
        group.bench_function(format!("blocked_{n}x{n}x{n}"), |b| b.iter(|| a.matmul(&b_m)));
        group.bench_function(format!("naive_{n}x{n}x{n}"), |b| b.iter(|| a.matmul_ref(&b_m)));
    }

    // WDL/DCN-shaped rectangular: the three GEMMs of one Dense layer step.
    let x = lcg_matrix(256, 416, 3); // batch × features
    let w = lcg_matrix(416, 64, 4); // features × hidden
    let dy = lcg_matrix(256, 64, 5); // batch × hidden
    group.bench_function("blocked_fwd_256x416x64", |b| b.iter(|| x.matmul(&w)));
    group.bench_function("naive_fwd_256x416x64", |b| b.iter(|| x.matmul_ref(&w)));
    group.bench_function("blocked_dw_416x256x64", |b| b.iter(|| x.t_matmul(&dy)));
    group.bench_function("naive_dw_416x256x64", |b| b.iter(|| x.t_matmul_ref(&dy)));
    group.bench_function("blocked_dx_256x64x416", |b| b.iter(|| dy.matmul_t(&w)));
    group.bench_function("naive_dx_256x64x416", |b| b.iter(|| dy.matmul_t_ref(&w)));

    // Fused epilogues: bias and bias+ReLU folded into the kernel's write
    // phase (what `Dense::forward_into` actually calls).
    let bias = vec![0.01f32; 64];
    let mut out = Matrix::zeros(0, 0);
    group.bench_function("fused_bias_256x416x64", |b| {
        b.iter(|| x.matmul_bias_into(&w, &bias, &mut out))
    });
    group.bench_function("fused_bias_relu_256x416x64", |b| {
        b.iter(|| x.matmul_bias_relu_into(&w, &bias, &mut out))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
