//! Performance of the partitioning algorithms (the kernels behind Table 3).

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_bigraph::Bigraph;
use hetgmp_data::{generate, DatasetSpec};
use hetgmp_partition::{
    bicut_partition, random_partition, HybridConfig, HybridPartitioner,
    OneDeeConfig, PartitionMetrics, ReplicationBudget,
};
use hetgmp_partition::onedee::OneDeeState;
use hetgmp_partition::vertexcut::replicate_hot_embeddings;

fn graph() -> Bigraph {
    generate(&DatasetSpec::criteo_like(0.1)).to_bigraph()
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);

    group.bench_function("random", |b| {
        b.iter(|| random_partition(&g, 8, 7));
    });

    group.bench_function("bicut", |b| {
        b.iter(|| bicut_partition(&g, 8));
    });

    group.bench_function("onedee_sweep", |b| {
        let part0 = random_partition(&g, 8, 7);
        b.iter(|| {
            let mut part = part0.clone();
            let mut state = OneDeeState::new(&g, &part, OneDeeConfig::default());
            state.sweep(&g, &mut part);
            part
        });
    });

    group.bench_function("vertexcut_top1pct", |b| {
        let part0 = random_partition(&g, 8, 7);
        b.iter(|| {
            let mut part = part0.clone();
            replicate_hot_embeddings(
                &g,
                &mut part,
                ReplicationBudget::FractionOfEmbeddings(0.01),
            )
        });
    });

    group.bench_function("hybrid_3_rounds", |b| {
        b.iter(|| HybridPartitioner::new(HybridConfig::default()).partition_rounds(&g, 8));
    });

    group.bench_function("metrics", |b| {
        let part = random_partition(&g, 8, 7);
        b.iter(|| PartitionMetrics::compute(&g, &part, None));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
