//! Performance of the dense-math substrate (the per-iteration DNN kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_core::models::{CtrModel, ModelKind};
use hetgmp_tensor::{auc, bce_with_logits, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.sample_size(20);

    group.bench_function("matmul_256x416x64", |b| {
        let a = random_matrix(256, 416, 1);
        let w = random_matrix(416, 64, 2);
        b.iter(|| a.matmul(&w));
    });

    group.bench_function("mlp_forward_backward", |b| {
        let mut mlp = Mlp::new(416, &[64, 32], 3);
        let x = random_matrix(256, 416, 4);
        let g = random_matrix(256, 1, 5);
        b.iter(|| {
            let _ = mlp.forward(&x);
            mlp.zero_grad();
            mlp.backward(&g)
        });
    });

    group.bench_function("wdl_step", |b| {
        let mut m = CtrModel::new(ModelKind::Wdl, 26, 16, &[64, 32], 1);
        let x = random_matrix(256, 416, 6);
        let labels: Vec<f32> = (0..256).map(|i| (i % 2) as f32).collect();
        b.iter(|| {
            let logits = m.forward(&x);
            let (_, grad) = bce_with_logits(&logits, &labels);
            m.zero_grad();
            m.backward(&grad)
        });
    });

    group.bench_function("dcn_step", |b| {
        let mut m = CtrModel::new(ModelKind::Dcn, 26, 16, &[64, 32], 1);
        let x = random_matrix(256, 416, 7);
        let labels: Vec<f32> = (0..256).map(|i| (i % 2) as f32).collect();
        b.iter(|| {
            let logits = m.forward(&x);
            let (_, grad) = bce_with_logits(&logits, &labels);
            m.zero_grad();
            m.backward(&grad)
        });
    });

    group.bench_function("auc_100k", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        let scores: Vec<f32> = (0..100_000).map(|_| rng.gen()).collect();
        let labels: Vec<f32> = (0..100_000).map(|_| if rng.gen::<f32>() < 0.3 { 1.0 } else { 0.0 }).collect();
        b.iter(|| auc(&scores, &labels));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
