//! Figure 10 kernel bench: one epoch at 16 workers on the cluster-B ladder
//! for both systems. Regenerate with `--bin expt_fig10`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_cluster::Topology;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, DatasetSpec};

fn bench(c: &mut Criterion) {
    let data = generate(&DatasetSpec::criteo_like(0.05));
    let topo = Topology::cluster_b_scaled(16);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for strat in [
        StrategyConfig::hugectr(),
        StrategyConfig::het_gmp(100).with_weight_matrix(Some(topo.weight_matrix())),
    ] {
        group.bench_function(format!("epoch16_{}", strat.name), |b| {
            b.iter(|| {
                Trainer::new(&data, topo.clone(), strat.clone(),
                    TrainerConfig { epochs: 1, ..Default::default() }).run().throughput
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
