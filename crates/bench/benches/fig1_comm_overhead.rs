//! Figure 1 kernel bench: one HugeCTR-style training epoch per topology —
//! the measurement behind the communication-share bars. Regenerate the
//! actual figure with `cargo run --release -p hetgmp-bench --bin expt_fig1`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_cluster::Topology;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, DatasetSpec};

fn bench(c: &mut Criterion) {
    let data = generate(&DatasetSpec::avazu_like(0.03));
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    for topo in [Topology::nvlink_island(4), Topology::pcie_island(4), Topology::qpi_dual_socket(8)] {
        group.bench_function(format!("epoch_{}", topo.name), |b| {
            b.iter(|| {
                Trainer::new(
                    &data,
                    topo.clone(),
                    StrategyConfig::hugectr(),
                    TrainerConfig { epochs: 1, ..Default::default() },
                )
                .run()
                .breakdown
                .comm_fraction()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
