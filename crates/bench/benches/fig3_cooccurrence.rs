//! Figure 3 kernel bench: co-occurrence graph construction + clustering.
//! Regenerate the figure with `--bin expt_fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_bigraph::{CooccurrenceConfig, CooccurrenceGraph};
use hetgmp_data::{generate, DatasetSpec};
use hetgmp_partition::cluster_cooccurrence;

fn bench(c: &mut Criterion) {
    let data = generate(&DatasetSpec::avazu_like(0.05));
    let graph = data.to_bigraph();
    let co = CooccurrenceGraph::build(&graph, &CooccurrenceConfig::default());
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("cluster_8way", |b| {
        b.iter(|| cluster_cooccurrence(&co, 8, 5));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
