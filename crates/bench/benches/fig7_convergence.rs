//! Figure 7 kernel bench: one HET-GMP training epoch (the unit the
//! convergence curves are built from). Regenerate with `--bin expt_fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_cluster::Topology;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, DatasetSpec};

fn bench(c: &mut Criterion) {
    let data = generate(&DatasetSpec::avazu_like(0.03));
    let topo = Topology::pcie_island(8);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for strat in [StrategyConfig::het_mp(), StrategyConfig::het_gmp(100)] {
        group.bench_function(format!("epoch_{}", strat.name), |b| {
            b.iter(|| {
                Trainer::new(&data, topo.clone(), strat.clone(),
                    TrainerConfig { epochs: 1, ..Default::default() }).run().final_auc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
