//! Figure 8 kernel bench: one epoch with full traffic accounting under the
//! 2-D(s=100) setting. Regenerate with `--bin expt_fig8`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_cluster::Topology;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, DatasetSpec};

fn bench(c: &mut Criterion) {
    let data = generate(&DatasetSpec::avazu_like(0.03));
    let topo = Topology::pcie_island(8);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("epoch_with_traffic_accounting", |b| {
        b.iter(|| {
            Trainer::new(&data, topo.clone(), StrategyConfig::het_gmp(100),
                TrainerConfig { epochs: 1, ..Default::default() }).run().traffic_bytes
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
