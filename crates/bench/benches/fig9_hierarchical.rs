//! Figure 9 kernel bench: the weighted (hierarchy-aware) 1-D sweep on a
//! 2-machine weight matrix. Regenerate with `--bin expt_fig9`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_cluster::Topology;
use hetgmp_data::{generate, DatasetSpec};
use hetgmp_partition::onedee::{OneDeeConfig, OneDeeState};
use hetgmp_partition::random_partition;

fn bench(c: &mut Criterion) {
    let data = generate(&DatasetSpec::avazu_like(0.05));
    let graph = data.to_bigraph();
    let topo = Topology::cluster_b(2);
    let w = topo.weight_matrix();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("weighted_sweep_16_workers", |b| {
        let part0 = random_partition(&graph, 16, 7);
        b.iter(|| {
            let mut part = part0.clone();
            let cfg = OneDeeConfig { weights: Some(w.clone()), ..Default::default() };
            let mut state = OneDeeState::new(&graph, &part, cfg);
            state.sweep(&graph, &mut part);
            part
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
