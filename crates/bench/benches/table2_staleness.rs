//! Table 2 kernel bench: bounded-async batch reads at each staleness
//! setting (the protocol cost the AUC table trades against). Regenerate the
//! table with `--bin expt_table2`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_embedding::{ShardedTable, SparseOpt, StalenessBound, WorkerEmbedding};
use hetgmp_partition::Partition;

fn bench(c: &mut Criterion) {
    let rows = 10_000usize;
    let dim = 16usize;
    let table = ShardedTable::new(rows, dim, 0.05, 1);
    let emb_primary: Vec<u32> = (0..rows as u32).map(|e| e % 4).collect();
    let mut part = Partition::new(4, vec![0], emb_primary);
    for e in 0..100u32 {
        part.add_replica(e * 4 + 1, 0); // some remote-primary rows cached
    }
    let freq: Vec<u64> = (0..rows).map(|i| (rows / (i + 1)) as u64).collect();
    let samples: Vec<Vec<u32>> = (0..256)
        .map(|i| (0..26u32).map(|f| (i * 37 + f * 131) % rows as u32).collect())
        .collect();
    let refs: Vec<&[u32]> = samples.iter().map(Vec::as_slice).collect();
    let total: usize = refs.iter().map(|s| s.len()).sum();

    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    for (label, bound) in [
        ("s0", StalenessBound::Bounded(0)),
        ("s100", StalenessBound::Bounded(100)),
        ("sinf", StalenessBound::Infinite),
    ] {
        group.bench_function(format!("read_batch_{label}"), |b| {
            let mut w = WorkerEmbedding::new(0, &table, &part, &freq, bound);
            let mut out = vec![0.0f32; total * dim];
            let opt = SparseOpt::sgd(0.05);
            let grads = vec![0.001f32; total * dim];
            b.iter(|| {
                let r = w.read_batch(&refs, &mut out);
                w.apply_gradients(&refs, &grads, &opt);
                r.remote_total()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
