//! Table 3 kernel bench: full Algorithm 1 (3 rounds + vertex-cut) vs BiCut
//! on a paper-shaped bigraph. Regenerate the table with `--bin expt_table3`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetgmp_data::{generate, DatasetSpec};
use hetgmp_partition::{bicut_partition, HybridConfig, HybridPartitioner};

fn bench(c: &mut Criterion) {
    let graph = generate(&DatasetSpec::company_like(0.05)).to_bigraph();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("bicut_8", |b| {
        b.iter(|| bicut_partition(&graph, 8));
    });
    group.bench_function("ours_3_rounds_8", |b| {
        b.iter(|| HybridPartitioner::new(HybridConfig::default()).partition_rounds(&graph, 8));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
