//! Compressed-communication baseline: a Table-2-style AUC-vs-bytes sweep
//! over every [`SyncFormat`] on one fixed-seed training workload.
//!
//! Each format trains the identical run (same data, seed, staleness,
//! topology) with only the wire encoding changed, and reports the bytes
//! the traffic ledger charged (`traffic.bytes.embed_data`, the class
//! Figure 8 shows dominating), the `comms.quant.*` counters, and final
//! AUC. Emits `BENCH_comms.json` (schema checked by
//! `scripts/check_bench_schema.sh BENCH_comms.json`):
//!
//! ```text
//! { "config": {...}, "manifest": {...},
//!   "formats": [ { "format", "embed_data_bytes", "allreduce_bytes",
//!                  "quant_rows", "quant_bytes_saved", "bytes_reduction",
//!                  "final_auc", "auc_delta_pct", "sim_time_secs" }, ... ],
//!   "int8_reduction": f32.embed_data_bytes / int8.embed_data_bytes }
//! ```
//!
//! Two contracts are asserted as part of the benchmark (dim 32, where
//! int8's per-row wire size is `32 + 4` against f32's `128`):
//!
//! * **bytes** — int8 moves at least 3.5x fewer embedding-payload bytes
//!   than f32;
//! * **accuracy** — int8's (the lossiest format's) final AUC stays within
//!   0.5% of f32's (error feedback on, the default). f16/bf16 deltas are
//!   recorded but not gated: on a run this small the stochastic wobble of
//!   *any* perturbation — even a beneficial one — can exceed the band.
//!
//! `--smoke` shrinks the workload for CI schema checks and writes
//! `BENCH_comms.smoke.json` instead (contracts still hold: the byte ratio
//! is structural, and the AUC band is wide enough for the short run).

use hetgmp_cluster::Topology;
use hetgmp_comms::SyncFormat;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, CtrDataset, DatasetSpec};
use hetgmp_telemetry::{names, Json, RunManifest};

struct FormatRun {
    format: SyncFormat,
    embed_data_bytes: u64,
    allreduce_bytes: u64,
    quant_rows: u64,
    quant_bytes_saved: u64,
    auc: f64,
    sim_time: f64,
    manifest: RunManifest,
}

fn run_once(data: &CtrDataset, format: SyncFormat, epochs: usize) -> FormatRun {
    let r = Trainer::new(
        data,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(100),
        TrainerConfig {
            epochs,
            dim: 32, // int8 row wire = 36 bytes vs f32's 128: 3.56x
            batch_size: 256,
            hidden: vec![32, 16],
            seed: 0xC0111, // fixed: formats must differ only in transport
            sync_format: format,
            ..Default::default()
        },
    )
    .run();
    FormatRun {
        format,
        embed_data_bytes: r.telemetry.counter("traffic.bytes.embed_data"),
        allreduce_bytes: r.telemetry.counter("traffic.bytes.allreduce"),
        quant_rows: r.telemetry.counter(names::COMMS_QUANT_ROWS),
        quant_bytes_saved: r.telemetry.counter(names::COMMS_QUANT_BYTES_SAVED),
        auc: r.final_auc,
        sim_time: r.sim_time,
        manifest: r.manifest,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "smoke");
    let scale = if smoke { 0.02 } else { 0.08 };
    let mut spec = DatasetSpec::avazu_like(scale);
    spec.cluster_affinity = 0.9;
    let data = generate(&spec);
    let epochs = if smoke { 1 } else { 6 };
    eprintln!(
        "sync-format sweep {:?} over {} samples{}",
        SyncFormat::ALL.map(SyncFormat::name),
        data.num_samples(),
        if smoke { " [smoke]" } else { "" },
    );

    let runs: Vec<FormatRun> =
        SyncFormat::ALL.iter().map(|&f| run_once(&data, f, epochs)).collect();
    let f32_run = &runs[0];
    assert!(f32_run.format.is_lossless(), "ALL starts at f32");
    assert_eq!(
        f32_run.quant_rows, 0,
        "the f32 identity transport must not meter quantized rows"
    );

    let rows: Vec<Json> = runs
        .iter()
        .map(|r| {
            let reduction = f32_run.embed_data_bytes as f64 / r.embed_data_bytes.max(1) as f64;
            let delta_pct = (r.auc - f32_run.auc) / f32_run.auc * 100.0;
            eprintln!(
                "{:>4}: embed_data {:>12} B ({reduction:.2}x), allreduce {:>12} B, \
                 AUC {:.6} ({delta_pct:+.3}%), sim {:.2}s",
                r.format.name(),
                r.embed_data_bytes,
                r.allreduce_bytes,
                r.auc,
                r.sim_time,
            );
            Json::obj([
                ("format", Json::from(r.format.name())),
                ("embed_data_bytes", Json::U64(r.embed_data_bytes)),
                ("allreduce_bytes", Json::U64(r.allreduce_bytes)),
                ("quant_rows", Json::U64(r.quant_rows)),
                ("quant_bytes_saved", Json::U64(r.quant_bytes_saved)),
                ("bytes_reduction", Json::F64(reduction)),
                ("final_auc", Json::F64(r.auc)),
                ("auc_delta_pct", Json::F64(delta_pct)),
                ("sim_time_secs", Json::F64(r.sim_time)),
            ])
        })
        .collect();

    // The two contracts the compressed path exists for.
    let int8 = runs.iter().find(|r| r.format == SyncFormat::Int8).expect("int8 in ALL");
    let int8_reduction = f32_run.embed_data_bytes as f64 / int8.embed_data_bytes.max(1) as f64;
    assert!(
        int8_reduction >= 3.5,
        "int8 embedding traffic reduction {int8_reduction:.3}x below the 3.5x contract"
    );
    let int8_delta = ((int8.auc - f32_run.auc) / f32_run.auc).abs() * 100.0;
    assert!(
        int8_delta <= 0.5,
        "int8 final AUC {:.6} drifts {int8_delta:.3}% from f32's {:.6} (> 0.5% band)",
        int8.auc,
        f32_run.auc
    );

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                ("preset", Json::from("avazu_like")),
                ("scale", Json::F64(scale)),
                ("workers", Json::U64(4)),
                ("system", Json::from("het_gmp(100)")),
                ("epochs", Json::U64(epochs as u64)),
                ("batch", Json::U64(256)),
                ("dim", Json::U64(32)),
                ("seed", Json::U64(0xC0111)),
                ("error_feedback", Json::Bool(true)),
                ("smoke", Json::Bool(smoke)),
            ]),
        ),
        // The f32 run's manifest identifies the baseline configuration the
        // sweep shares (only sync_format varies across rows).
        ("manifest", f32_run.manifest.to_json()),
        ("formats", Json::Arr(rows)),
        ("int8_reduction", Json::F64(int8_reduction)),
    ]);
    let path = if smoke { "BENCH_comms.smoke.json" } else { "BENCH_comms.json" };
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_comms json");
    println!("wrote {path} (int8 moves {int8_reduction:.2}x fewer embedding bytes than f32)");
}
