//! Dense-engine perf baseline: blocked vs naive GEMM kernels, plus a
//! fixed-seed end-to-end training run through the allocation-free tape path.
//!
//! Emits `BENCH_dense.json` (schema checked by
//! `scripts/check_bench_schema.sh BENCH_dense.json`):
//!
//! ```text
//! { "config": {...},
//!   "gemm": { "naive_gflops", "blocked_gflops", "wall_secs_naive",
//!             "wall_secs_blocked", "flops_per_rep" },
//!   "speedup": blocked_gflops / naive_gflops,
//!   "end_to_end": { "samples_per_sec", "dense_samples_per_sec",
//!                   "gemm_flops", "arena_bytes", "post_warmup_growth",
//!                   "samples_processed", "final_auc" } }
//! ```
//!
//! The GEMM workload is the exact per-batch shape WDL/DCN training issues
//! (batch 256, 26 fields × dim 16 = 416 features, hidden 64): forward
//! `X·W`, weight gradient `Xᵀ·dY`, input gradient `dY·Wᵀ`, plus one square
//! 256³ product. Both sides consume identical fixed-seed matrices; the
//! differential tests in `hetgmp-tensor` guarantee the results match, so
//! the ratio is purely kernel throughput. `end_to_end.samples_per_sec` is
//! `hotpath.samples_per_sec` from the same trainer configuration as
//! `bench_hotpath`, so the two baselines are directly comparable.
//! `--smoke` shrinks everything for CI schema checks.

use std::time::Instant;

use hetgmp_cluster::Topology;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, DatasetSpec};
use hetgmp_telemetry::{names, Json, RunManifest};
use hetgmp_tensor::Matrix;

const SEED: u64 = 0xDE45E;

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    let mut v = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push(((state >> 32) as u32 as f32 / u32::MAX as f32) - 0.5);
    }
    Matrix::from_vec(rows, cols, v)
}

struct GemmWorkload {
    x: Matrix,  // batch × features
    w: Matrix,  // features × hidden
    dy: Matrix, // batch × hidden
    sq_a: Matrix,
    sq_b: Matrix,
    /// Total FLOPs one pass over the suite performs (2 per multiply-add).
    flops_per_rep: u64,
}

fn build_gemm(smoke: bool) -> GemmWorkload {
    let (batch, feat, hid, sq) = if smoke { (64, 104, 32, 64) } else { (256, 416, 64, 256) };
    let flops = |m: usize, k: usize, n: usize| 2 * (m * k * n) as u64;
    GemmWorkload {
        x: lcg_matrix(batch, feat, SEED ^ 1),
        w: lcg_matrix(feat, hid, SEED ^ 2),
        dy: lcg_matrix(batch, hid, SEED ^ 3),
        sq_a: lcg_matrix(sq, sq, SEED ^ 4),
        sq_b: lcg_matrix(sq, sq, SEED ^ 5),
        flops_per_rep: flops(batch, feat, hid) * 3 + flops(sq, sq, sq),
    }
}

/// Best-of-`reps` wall seconds for one pass over the four-product suite.
fn time_suite<F: FnMut(&GemmWorkload)>(w: &GemmWorkload, reps: usize, mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        pass(w);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn end_to_end(smoke: bool) -> (Json, RunManifest) {
    // Identical workload to bench_hotpath's end-to-end section so the
    // samples_per_sec figures of the two baselines compare directly.
    let mut spec = DatasetSpec::avazu_like(if smoke { 0.02 } else { 0.08 });
    spec.cluster_affinity = 0.9;
    let data = generate(&spec);
    let r = Trainer::new(
        &data,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(100),
        TrainerConfig {
            epochs: if smoke { 1 } else { 3 },
            dim: 16,
            batch_size: 256,
            hidden: vec![32, 16],
            seed: 0xB45E11, // bench_hotpath's seed: same run, same math
            ..Default::default()
        },
    )
    .run();
    let manifest = r.manifest.clone();
    let e2e = Json::obj([
        (
            "samples_per_sec",
            Json::F64(r.telemetry.gauge(names::HOTPATH_SAMPLES_PER_SEC).unwrap_or(0.0)),
        ),
        (
            "dense_samples_per_sec",
            Json::F64(r.telemetry.gauge(names::DENSE_SAMPLES_PER_SEC).unwrap_or(0.0)),
        ),
        ("gemm_flops", Json::U64(r.telemetry.counter(names::DENSE_GEMM_FLOPS))),
        (
            "arena_bytes",
            Json::F64(r.telemetry.gauge(names::DENSE_ARENA_BYTES).unwrap_or(0.0)),
        ),
        (
            "post_warmup_growth",
            Json::F64(r.telemetry.gauge(names::DENSE_TAPE_GROWTH).unwrap_or(-1.0)),
        ),
        ("samples_processed", Json::U64(r.samples_processed)),
        ("final_auc", Json::F64(r.final_auc)),
    ]);
    (e2e, manifest)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "smoke");
    let reps = if smoke { 5 } else { 30 };
    let w = build_gemm(smoke);
    eprintln!(
        "dense gemm microbench: fwd {}x{}x{} + dW + dX + square, {} reps{}",
        w.x.rows(),
        w.x.cols(),
        w.w.cols(),
        reps,
        if smoke { " [smoke]" } else { "" },
    );

    let wall_naive = time_suite(&w, reps, |w| {
        std::hint::black_box(w.x.matmul_ref(&w.w));
        std::hint::black_box(w.x.t_matmul_ref(&w.dy));
        std::hint::black_box(w.dy.matmul_t_ref(&w.w));
        std::hint::black_box(w.sq_a.matmul_ref(&w.sq_b));
    });
    // Blocked side reuses output buffers, as the training loop does.
    let (mut o1, mut o2, mut o3, mut o4) =
        (Matrix::zeros(0, 0), Matrix::zeros(0, 0), Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let wall_blocked = time_suite(&w, reps, |w| {
        w.x.matmul_into(&w.w, &mut o1);
        w.x.t_matmul_into(&w.dy, &mut o2);
        w.dy.matmul_t_into(&w.w, &mut o3);
        w.sq_a.matmul_into(&w.sq_b, &mut o4);
        std::hint::black_box((&o1, &o2, &o3, &o4));
    });

    let gflops = |wall: f64| w.flops_per_rep as f64 / wall.max(1e-12) / 1e9;
    let (naive_gflops, blocked_gflops) = (gflops(wall_naive), gflops(wall_blocked));
    let speedup = blocked_gflops / naive_gflops.max(1e-12);
    eprintln!(
        "naive {naive_gflops:.2} GFLOP/s | blocked {blocked_gflops:.2} GFLOP/s | speedup {speedup:.2}x"
    );
    eprintln!("end-to-end fixed-seed training run (tape path)...");
    let (e2e, manifest) = end_to_end(smoke);

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                ("seed", Json::U64(SEED)),
                ("batch", Json::U64(w.x.rows() as u64)),
                ("features", Json::U64(w.x.cols() as u64)),
                ("hidden", Json::U64(w.w.cols() as u64)),
                ("square", Json::U64(w.sq_a.rows() as u64)),
                ("reps", Json::U64(reps as u64)),
                ("smoke", Json::Bool(smoke)),
            ]),
        ),
        (
            "gemm",
            Json::obj([
                ("naive_gflops", Json::F64(naive_gflops)),
                ("blocked_gflops", Json::F64(blocked_gflops)),
                ("wall_secs_naive", Json::F64(wall_naive)),
                ("wall_secs_blocked", Json::F64(wall_blocked)),
                ("flops_per_rep", Json::U64(w.flops_per_rep)),
            ]),
        ),
        ("speedup", Json::F64(speedup)),
        ("end_to_end", e2e),
        // The end-to-end training run's identity stamp (the gemm microbench
        // shares its build and seed).
        ("manifest", manifest.to_json()),
    ]);
    // Smoke runs land in a sibling file so CI schema checks never overwrite
    // the committed full-run baseline.
    let path = if smoke { "BENCH_dense.smoke.json" } else { "BENCH_dense.json" };
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_dense json");
    println!("wrote {path} (gemm speedup {speedup:.2}x)");
}
