//! Hot-path perf baseline: batched vs per-row embedding-table ops, plus a
//! fixed-seed end-to-end training throughput run.
//!
//! Emits `BENCH_hotpath.json` (schema checked by
//! `scripts/check_bench_schema.sh`):
//!
//! ```text
//! { "config": {...},
//!   "per_row":  { "rows_per_sec", "lock_acquisitions", "wall_secs" },
//!   "batched":  { "rows_per_sec", "lock_acquisitions", "wall_secs" },
//!   "speedup":  batched.rows_per_sec / per_row.rows_per_sec,
//!   "end_to_end": { "samples_per_sec", "lock_acquisitions",
//!                   "samples_processed", "wall_secs", "final_auc" } }
//! ```
//!
//! The microbench drives *identical* fixed-seed workloads (same row ids,
//! same gradients, same optimizer) through the per-row loop and the batched
//! API, with several threads sharing one table as the trainer does — the
//! differential proptests guarantee the two paths produce bit-identical
//! tables, so the comparison is purely mechanical overhead: lock traffic
//! under contention and per-call bookkeeping. `--smoke` shrinks everything
//! to run in a few seconds for CI schema checks.

use std::time::Instant;

use hetgmp_cluster::Topology;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, DatasetSpec, Zipf};
use hetgmp_embedding::{BatchScratch, ShardedTable, SparseOpt};
use hetgmp_telemetry::{names, Json, RunManifest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0xB45E11;

struct MicroConfig {
    rows: usize,
    dim: usize,
    batch: usize,
    batches: usize,
    /// Worker threads hammering one shared table — the trainer's actual
    /// shape, and where per-row locking pays for contention.
    threads: usize,
    /// Measurement repetitions over the same workload (fresh table each).
    reps: usize,
}

/// One side's measurement: wall time and lock traffic for the whole
/// workload, repeated `reps` times over fresh tables.
struct Measure {
    rows_per_sec: f64,
    lock_acquisitions: u64,
    wall_secs: f64,
}

/// The fixed-seed workload: per-thread Zipf-skewed row id batches
/// (embedding access patterns are power-law; skew also creates the shard
/// collisions batching amortises) and deterministic gradients. Both sides
/// of the comparison consume the identical workload.
struct Workload {
    /// `per_thread[t]` = that thread's batches of row ids.
    per_thread: Vec<Vec<Vec<u32>>>,
    grads: Vec<f32>,
    opt: SparseOpt,
}

fn build_workload(cfg: &MicroConfig) -> Workload {
    let zipf = Zipf::new(cfg.rows, 1.05);
    let per_thread: Vec<Vec<Vec<u32>>> = (0..cfg.threads)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64).wrapping_mul(0x9E3779B9));
            (0..cfg.batches)
                .map(|_| {
                    (0..cfg.batch)
                        .map(|_| zipf.sample(&mut rng) as u32)
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    let grads: Vec<f32> = (0..cfg.batch * cfg.dim)
        .map(|_| rng.gen_range(-0.5f32..0.5))
        .collect();
    Workload {
        per_thread,
        grads,
        opt: SparseOpt::adagrad(0.05),
    }
}

/// Runs `per_thread_work` once per thread against one shared fresh table,
/// `reps` times, keeping the best wall time (and the lock count, which is
/// identical across reps).
fn run_contended<F>(cfg: &MicroConfig, per_thread_work: F) -> Measure
where
    F: Fn(&ShardedTable, usize) + Sync,
{
    let mut best = f64::INFINITY;
    let mut locks = 0;
    for _ in 0..cfg.reps {
        let table = ShardedTable::new(cfg.rows, cfg.dim, 0.05, SEED);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..cfg.threads {
                let table = &table;
                let work = &per_thread_work;
                scope.spawn(move || work(table, t));
            }
        });
        best = best.min(start.elapsed().as_secs_f64());
        locks = table.lock_acquisitions();
    }
    // 2 table ops per workload row (one read + one apply).
    let total_rows = (cfg.batch * cfg.batches * cfg.threads * 2) as f64;
    Measure {
        rows_per_sec: total_rows / best.max(1e-12),
        lock_acquisitions: locks,
        wall_secs: best,
    }
}

fn run_per_row(cfg: &MicroConfig, w: &Workload) -> Measure {
    run_contended(cfg, |table, t| {
        let mut row = vec![0.0f32; cfg.dim];
        for batch in &w.per_thread[t] {
            for &r in batch {
                std::hint::black_box(table.read_row(r, &mut row));
            }
            for (k, &r) in batch.iter().enumerate() {
                table.apply_grad(r, &w.grads[k * cfg.dim..(k + 1) * cfg.dim], &w.opt);
            }
        }
    })
}

fn run_batched(cfg: &MicroConfig, w: &Workload) -> Measure {
    run_contended(cfg, |table, t| {
        let mut scratch = BatchScratch::default();
        let mut out = vec![0.0f32; cfg.batch * cfg.dim];
        let mut clocks = vec![0u64; cfg.batch];
        for batch in &w.per_thread[t] {
            table.read_rows(batch, &mut out, &mut clocks, &mut scratch);
            std::hint::black_box(&out);
            table.apply_grads(batch, &w.grads, &w.opt, &mut clocks, &mut scratch);
        }
    })
}

fn measure_json(m: &Measure) -> Json {
    Json::obj([
        ("rows_per_sec", Json::F64(m.rows_per_sec)),
        ("lock_acquisitions", Json::U64(m.lock_acquisitions)),
        ("wall_secs", Json::F64(m.wall_secs)),
    ])
}

fn end_to_end(smoke: bool) -> (Json, RunManifest) {
    let mut spec = DatasetSpec::avazu_like(if smoke { 0.02 } else { 0.08 });
    spec.cluster_affinity = 0.9;
    let data = generate(&spec);
    let r = Trainer::new(
        &data,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(100),
        TrainerConfig {
            epochs: if smoke { 1 } else { 3 },
            dim: 16,
            batch_size: 256,
            hidden: vec![32, 16],
            seed: SEED,
            ..Default::default()
        },
    )
    .run();
    let manifest = r.manifest.clone();
    let e2e = Json::obj([
        (
            "samples_per_sec",
            Json::F64(r.telemetry.gauge(names::HOTPATH_SAMPLES_PER_SEC).unwrap_or(0.0)),
        ),
        (
            "lock_acquisitions",
            Json::F64(r.telemetry.gauge(names::HOTPATH_LOCK_ACQUISITIONS).unwrap_or(0.0)),
        ),
        ("samples_processed", Json::U64(r.samples_processed)),
        (
            "batched_read_rows",
            Json::U64(r.telemetry.counter(names::HOTPATH_BATCH_READ_ROWS)),
        ),
        (
            "batched_apply_rows",
            Json::U64(r.telemetry.counter(names::HOTPATH_BATCH_APPLY_ROWS)),
        ),
        ("final_auc", Json::F64(r.final_auc)),
    ]);
    (e2e, manifest)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "smoke");
    let cfg = if smoke {
        MicroConfig { rows: 20_000, dim: 16, batch: 1024, batches: 50, threads: 4, reps: 2 }
    } else {
        MicroConfig { rows: 200_000, dim: 16, batch: 4096, batches: 100, threads: 4, reps: 5 }
    };
    let w = build_workload(&cfg);
    eprintln!(
        "hotpath microbench: {} rows x dim {}, {} threads x {} batches of {} ({} reps){}",
        cfg.rows,
        cfg.dim,
        cfg.threads,
        cfg.batches,
        cfg.batch,
        cfg.reps,
        if smoke { " [smoke]" } else { "" },
    );
    let per_row = run_per_row(&cfg, &w);
    let batched = run_batched(&cfg, &w);
    let speedup = batched.rows_per_sec / per_row.rows_per_sec.max(1e-12);
    eprintln!(
        "per-row {:.2e} rows/s ({} locks) | batched {:.2e} rows/s ({} locks) | speedup {:.2}x",
        per_row.rows_per_sec,
        per_row.lock_acquisitions,
        batched.rows_per_sec,
        batched.lock_acquisitions,
        speedup,
    );
    eprintln!("end-to-end fixed-seed training run...");
    let (e2e, manifest) = end_to_end(smoke);

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                ("seed", Json::U64(SEED)),
                ("rows", Json::U64(cfg.rows as u64)),
                ("dim", Json::U64(cfg.dim as u64)),
                ("batch", Json::U64(cfg.batch as u64)),
                ("batches", Json::U64(cfg.batches as u64)),
                ("threads", Json::U64(cfg.threads as u64)),
                ("reps", Json::U64(cfg.reps as u64)),
                ("smoke", Json::Bool(smoke)),
            ]),
        ),
        ("per_row", measure_json(&per_row)),
        ("batched", measure_json(&batched)),
        ("speedup", Json::F64(speedup)),
        ("end_to_end", e2e),
        // The end-to-end training run's identity stamp (the microbench
        // shares its build and seed).
        ("manifest", manifest.to_json()),
    ]);
    // Smoke runs land in a sibling file so CI schema checks never overwrite
    // the committed full-run baseline.
    let path = if smoke { "BENCH_hotpath.smoke.json" } else { "BENCH_hotpath.json" };
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_hotpath json");
    println!("wrote {path} (speedup {speedup:.2}x)");
}
