//! Pipelined-trainer perf baseline: the same fixed-seed end-to-end training
//! workload as `bench_dense`'s `end_to_end` section (longer — more epochs —
//! so wall-clock noise on short runs doesn't drown the schedule difference),
//! swept over software-pipeline depths {1, 2, 4}.
//!
//! Emits `BENCH_pipeline.json` (schema checked by
//! `scripts/check_bench_schema.sh BENCH_pipeline.json`):
//!
//! ```text
//! { "config": {...}, "manifest": {...},
//!   "depths": [ { "depth", "samples_per_sec", "samples_per_cpu_sec",
//!                 "stall_pct", "overlap_ratio", "overhead_pct",
//!                 "final_auc" }, ... ],
//!   "speedup": depth2.samples_per_sec / depth1.samples_per_sec }
//!
//! `samples_per_sec` is wall-clock (what the dense-baseline cross-check
//! gates on); `samples_per_cpu_sec` divides by whole-process CPU time
//! instead, which hypervisor steal and neighbor load cannot inflate — on a
//! shared host it is the stable witness that the pipelined schedule burns
//! less work per sample (fewer rendezvous) even when wall clock is noisy.
//! ```
//!
//! Depth 1 is the classic sequential schedule. Depth >= 2 issues each
//! batch's embedding read one iteration ahead through the work-stealing
//! prefetch cell and replaces the sequential schedule's per-rank write-back
//! barriers with a token ring plus one writes-done rendezvous — the schema
//! check asserts depth 2 beats the committed dense baseline. Depth 4
//! behaves like depth 2 (the write-back dependency caps useful lookahead at
//! one batch); it is benchmarked to document exactly that.
//!
//! Each depth runs several reps and reports the best rep's throughput (the
//! machine-noise floor, standard perf-bench practice on a shared host);
//! stall/overlap come from the same best rep. Reps are *interleaved*
//! (depth 1, 2, 4, 1, 2, 4, ...) so every depth samples the same noise
//! windows instead of one depth eating a load spike whole. The determinism
//! contract is asserted as part of the benchmark: every rep of every depth
//! must produce a bit-identical final AUC. `--smoke` shrinks everything for
//! CI schema checks and writes `BENCH_pipeline.smoke.json` instead.

use std::time::Instant;

use hetgmp_cluster::Topology;
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_core::trainer::{Trainer, TrainerConfig};
use hetgmp_data::{generate, CtrDataset, DatasetSpec};
use hetgmp_telemetry::{names, Json, RunManifest};

const DEPTHS: [usize; 3] = [1, 2, 4];

struct DepthRun {
    samples_per_sec: f64,
    samples_per_cpu_sec: f64,
    stall_pct: f64,
    overlap: f64,
    overhead_pct: f64,
    auc: f64,
    manifest: RunManifest,
}

/// Whole-process CPU seconds (utime + stime over every thread) from
/// `/proc/self/stat`. Unlike wall clock, CPU time is immune to hypervisor
/// steal and neighbor load — on a contended host it is the stable measure
/// of how much work a schedule actually burns. Returns 0.0 where procfs
/// is unavailable (the derived rate is then reported as 0 and ignored).
fn process_cpu_secs() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    // Fields after the parenthesized comm (which may itself contain spaces
    // or parens): utime and stime are the 14th and 15th overall.
    let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
        return 0.0;
    };
    let mut it = rest.split_whitespace().skip(11); // state is field 3; skip to utime
    let utime: f64 = it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
    let stime: f64 = it.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
    let hz = 100.0; // USER_HZ: 100 on every Linux this runs on
    (utime + stime) / hz
}

fn run_once(data: &CtrDataset, depth: usize, epochs: usize) -> DepthRun {
    let cpu_start = process_cpu_secs();
    let wall_start = Instant::now();
    let r = Trainer::new(
        data,
        Topology::pcie_island(4),
        StrategyConfig::het_gmp(100),
        TrainerConfig {
            epochs,
            dim: 16,
            batch_size: 256,
            hidden: vec![32, 16],
            seed: 0xB45E11, // bench_dense/bench_hotpath's seed: same run
            pipeline_depth: depth,
            ..Default::default()
        },
    )
    .run();
    let wall = wall_start.elapsed().as_secs_f64();
    let cpu = process_cpu_secs() - cpu_start;
    let samples_per_sec = r.telemetry.gauge(names::HOTPATH_SAMPLES_PER_SEC).unwrap_or(0.0);
    let stall = r.telemetry.gauge(names::PIPELINE_STALL_SECS).unwrap_or(0.0);
    // Deterministic numerator (same for every depth): the CPU-time rate
    // only needs the denominator measured.
    let samples = (data.num_samples() * epochs) as f64;
    let overhead = r.telemetry.gauge(names::TELEMETRY_OVERHEAD_SECS).unwrap_or(0.0);
    DepthRun {
        samples_per_sec,
        samples_per_cpu_sec: if cpu > 0.0 { samples / cpu } else { 0.0 },
        stall_pct: if wall > 0.0 { stall / wall * 100.0 } else { 0.0 },
        overlap: r.telemetry.gauge(names::PIPELINE_OVERLAP_RATIO).unwrap_or(0.0),
        overhead_pct: if wall > 0.0 { overhead / wall * 100.0 } else { 0.0 },
        auc: r.final_auc,
        manifest: r.manifest,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "smoke");
    // Identical workload shape to bench_dense's end-to-end section (same
    // preset, scale, dims, seed) so the depth-1 row is directly comparable
    // to the committed dense baseline; only the epoch count is longer.
    let mut spec = DatasetSpec::avazu_like(if smoke { 0.02 } else { 0.08 });
    spec.cluster_affinity = 0.9;
    let data = generate(&spec);
    eprintln!(
        "pipeline depth sweep {DEPTHS:?} over {} samples{}",
        data.num_samples(),
        if smoke { " [smoke]" } else { "" },
    );

    let epochs = if smoke { 1 } else { 9 };
    let reps = if smoke { 1 } else { 7 };
    let mut best: Vec<Option<DepthRun>> = DEPTHS.iter().map(|_| None).collect();
    for rep in 0..reps {
        for (di, &d) in DEPTHS.iter().enumerate() {
            let run = run_once(&data, d, epochs);
            eprintln!(
                "rep {rep} depth {d}: {:.0} samples/s (cpu {:.0}), stall {:.2}%, overlap {:.3}, ovh {:.3}%, AUC {:.6}",
                run.samples_per_sec, run.samples_per_cpu_sec, run.stall_pct, run.overlap,
                run.overhead_pct, run.auc
            );
            if let Some(b) = &best[di] {
                // Same depth, same seed: reps must be bit-identical runs.
                assert_eq!(
                    run.auc.to_bits(),
                    b.auc.to_bits(),
                    "depth {d} rep {rep} AUC diverged across identical runs"
                );
            }
            if best[di].as_ref().is_none_or(|b| run.samples_per_sec > b.samples_per_sec) {
                best[di] = Some(run);
            }
        }
    }
    let best: Vec<DepthRun> = best.into_iter().map(|b| b.expect("ran every depth")).collect();
    let depths: Vec<Json> = DEPTHS
        .iter()
        .zip(&best)
        .map(|(&d, b)| {
            Json::obj([
                ("depth", Json::U64(d as u64)),
                ("samples_per_sec", Json::F64(b.samples_per_sec)),
                ("samples_per_cpu_sec", Json::F64(b.samples_per_cpu_sec)),
                ("stall_pct", Json::F64(b.stall_pct)),
                ("overlap_ratio", Json::F64(b.overlap)),
                ("overhead_pct", Json::F64(b.overhead_pct)),
                ("final_auc", Json::F64(b.auc)),
            ])
        })
        .collect();
    // The stage profiler rides the hot path; its self-measured cost must
    // stay in the noise. 2% of wall is the contract TELEMETRY.md documents.
    for (d, b) in DEPTHS.iter().zip(&best) {
        assert!(
            b.overhead_pct < 2.0,
            "depth {d}: profiler overhead {:.3}% of wall exceeds the 2% budget",
            b.overhead_pct
        );
    }
    let rates: Vec<f64> = best.iter().map(|b| b.samples_per_sec).collect();
    let aucs: Vec<f64> = best.iter().map(|b| b.auc).collect();
    // The determinism contract is part of the benchmark: a depth that went
    // faster by diverging from the sequential math is not a result.
    for (d, auc) in DEPTHS.iter().zip(&aucs) {
        assert_eq!(
            auc.to_bits(),
            aucs[0].to_bits(),
            "depth {d} final AUC differs from sequential"
        );
    }
    let speedup = rates[1] / rates[0].max(1e-12);

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                ("preset", Json::from("avazu_like")),
                ("scale", Json::F64(if smoke { 0.02 } else { 0.08 })),
                ("workers", Json::U64(4)),
                ("system", Json::from("het_gmp(100)")),
                ("epochs", Json::U64(epochs as u64)),
                ("reps", Json::U64(reps as u64)),
                ("batch", Json::U64(256)),
                ("dim", Json::U64(16)),
                ("seed", Json::U64(0xB45E11)),
                ("gemm_threads", Json::U64(1)),
                ("smoke", Json::Bool(smoke)),
            ]),
        ),
        // The depth-1 run's manifest identifies the baseline configuration
        // the whole sweep shares (only pipeline_depth varies across rows).
        ("manifest", best[0].manifest.to_json()),
        ("depths", Json::Arr(depths)),
        ("speedup", Json::F64(speedup)),
    ]);
    // Smoke runs land in a sibling file so CI schema checks never overwrite
    // the committed full-run baseline.
    let path = if smoke { "BENCH_pipeline.smoke.json" } else { "BENCH_pipeline.json" };
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_pipeline json");
    println!("wrote {path} (depth-2 speedup {speedup:.3}x over sequential)");
}
