//! Ablations: staleness-vs-throughput, replication budget, balance weights,
//! and static vertex-cut vs dynamic LFU caching.
//!
//! `--pipeline-depth N` / `--gemm-threads N` apply one software-pipeline
//! setting to every training run of the hooked ablations (results are
//! bit-identical across depths; only wall-clock speed changes).
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    let (pipeline_depth, gemm_threads) = hetgmp_bench::pipeline_flags();
    let (sync_format, sync_error_feedback) = hetgmp_bench::sync_format_flags();
    let hooks = hetgmp_core::experiments::Hooks {
        pipeline_depth,
        gemm_threads,
        sync_format,
        sync_error_feedback,
        ..Default::default()
    };
    let (st, rep, bal) = hetgmp_core::experiments::ablation::run_instrumented(scale, None, &hooks);
    println!("{st}\n\n{rep}\n\n{bal}\n");
    let data = hetgmp_data::generate(&hetgmp_data::DatasetSpec::criteo_like(scale));
    println!("{}", hetgmp_core::experiments::ablation::cache_comparison(&data, 256));
    println!();
    println!("{}", hetgmp_core::experiments::ablation::repartition_drift(scale));
    println!();
    println!("{}", hetgmp_core::experiments::ablation::straggler_tolerance(&data, 4.0));
}
