//! Ablations: staleness-vs-throughput, replication budget, balance weights,
//! and static vertex-cut vs dynamic LFU caching.
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    let (st, rep, bal) = hetgmp_core::experiments::ablation::run(scale);
    println!("{st}\n\n{rep}\n\n{bal}\n");
    let data = hetgmp_data::generate(&hetgmp_data::DatasetSpec::criteo_like(scale));
    println!("{}", hetgmp_core::experiments::ablation::cache_comparison(&data, 256));
    println!();
    println!("{}", hetgmp_core::experiments::ablation::repartition_drift(scale));
    println!();
    println!("{}", hetgmp_core::experiments::ablation::straggler_tolerance(&data, 4.0));
}
