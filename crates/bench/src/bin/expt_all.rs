//! Runs every experiment at a common scale (one-stop regeneration of all
//! tables and figures; see EXPERIMENTS.md).
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    println!("=== Figure 1 ===");
    println!("{}", hetgmp_core::experiments::overhead::run(scale));
    println!("=== Figure 3 ===");
    for r in hetgmp_core::experiments::cooccurrence::run(scale) {
        println!("{r}\n");
    }
    println!("=== Table 3 ===");
    for r in hetgmp_core::experiments::partitioners::run(scale) {
        println!("{r}\n");
    }
    println!("=== Figure 7 ===");
    println!("{}", hetgmp_core::experiments::convergence::run(scale, 3));
    println!("=== Figure 8 ===");
    println!("{}", hetgmp_core::experiments::comm_breakdown::run(scale));
    println!("=== Table 2 ===");
    println!("{}", hetgmp_core::experiments::staleness::run(scale, 3));
    println!("=== Figure 9 ===");
    for r in hetgmp_core::experiments::hierarchy::run(scale) {
        println!("{r}\n");
    }
    println!("=== Figure 10 ===");
    for r in hetgmp_core::experiments::scalability::run(scale) {
        println!("{r}\n");
    }
    println!("=== Ablations ===");
    let (st, rep, bal) = hetgmp_core::experiments::ablation::run(scale);
    println!("{st}\n\n{rep}\n\n{bal}");
}
