//! Figure 1 — communication share of epoch time for WDL on a HugeCTR-style
//! model-parallel system under NVLink / PCIe / QPI interconnects.
fn main() {
    let scale = hetgmp_bench::scale_arg(0.2);
    println!("{}", hetgmp_core::experiments::overhead::run(scale));
}
