//! Figure 10 — scalability: total throughput vs #GPUs for HET-GMP and
//! HugeCTR on cluster B (NVLink -> QPI -> Ethernet ladder).
fn main() {
    let scale = hetgmp_bench::scale_arg(0.3);
    for report in hetgmp_core::experiments::scalability::run(scale) {
        println!("{report}\n");
    }
}
