//! Figure 3 — co-occurrence graph clustering into dense diagonal blocks.
fn main() {
    let scale = hetgmp_bench::scale_arg(0.2);
    for report in hetgmp_core::experiments::cooccurrence::run(scale) {
        println!("{report}\n");
    }
}
