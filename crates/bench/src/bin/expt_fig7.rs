//! Figure 7 — convergence (test AUC vs simulated time) for all systems on
//! WDL/DCN x the three datasets.
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    let epochs = hetgmp_bench::second_arg(4);
    println!("{}", hetgmp_core::experiments::convergence::run(scale, epochs));
}
