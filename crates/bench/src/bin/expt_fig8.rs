//! Figure 8 — per-iteration communication breakdown (embeds+grads /
//! keys+clocks / AllReduce) under random, 1-D, 2-D(s=10), 2-D(s=100).
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    println!("{}", hetgmp_core::experiments::comm_breakdown::run(scale));
}
