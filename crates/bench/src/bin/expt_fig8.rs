//! Figure 8 — per-iteration communication breakdown (embeds+grads /
//! keys+clocks / AllReduce) under random, 1-D, 2-D(s=10), 2-D(s=100).
//!
//! `--pipeline-depth N` / `--gemm-threads N` apply one software-pipeline
//! setting to every training run in the experiment (traffic volumes are
//! identical across depths; only wall-clock speed changes).
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    let (pipeline_depth, gemm_threads) = hetgmp_bench::pipeline_flags();
    let (sync_format, sync_error_feedback) = hetgmp_bench::sync_format_flags();
    let hooks = hetgmp_core::experiments::Hooks {
        pipeline_depth,
        gemm_threads,
        sync_format,
        sync_error_feedback,
        ..Default::default()
    };
    println!(
        "{}",
        hetgmp_core::experiments::comm_breakdown::run_instrumented(scale, None, &hooks)
    );
}
