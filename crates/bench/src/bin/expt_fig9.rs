//! Figure 9 — hierarchical (topology-aware) partitioning: throughput and
//! the worker-pair embedding-fetch heatmap on 16 workers / 2 machines.
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    for report in hetgmp_core::experiments::hierarchy::run(scale) {
        println!("{report}\n");
    }
}
