//! Extension experiment (paper §3's "could be naturally applied to KG
//! training systems"): TransE knowledge-graph embedding on the HET-GMP
//! substrate — random vs hybrid partitioning, bounded staleness.
use hetgmp_cluster::Topology;
use hetgmp_core::kg::{KgTrainer, KgTrainerConfig};
use hetgmp_core::strategy::StrategyConfig;
use hetgmp_data::{generate_kg, KgSpec};

fn main() {
    let scale = hetgmp_bench::scale_arg(1.0);
    let mut spec = KgSpec::small();
    spec.num_entities = ((spec.num_entities as f64 * scale) as usize).max(200);
    spec.num_triples = ((spec.num_triples as f64 * scale) as usize).max(2000);
    let kg = generate_kg(&spec);
    println!(
        "TransE on synthetic KG: {} entities, {} relations, {} triples, 8 workers\n",
        kg.num_entities, kg.num_relations, kg.len()
    );
    println!(
        "{:<18} {:>8} {:>9} {:>14} {:>14} {:>12}",
        "system", "MRR", "hits@10", "triples/s", "embed bytes", "remote/epoch"
    );
    for strat in [
        StrategyConfig::het_mp(),
        StrategyConfig::het_gmp(0),
        StrategyConfig::het_gmp(100),
    ] {
        let r = KgTrainer::new(
            &kg,
            Topology::pcie_island(8),
            strat,
            KgTrainerConfig::default(),
        )
        .run();
        println!(
            "{:<18} {:>8.3} {:>9.3} {:>14.0} {:>14} {:>12}",
            r.strategy,
            r.mrr,
            r.hits_at_10,
            r.throughput,
            r.embed_bytes,
            r.partition_metrics.remote_fetches
        );
    }
    println!(
        "\nKG samples touch only 2 embeddings (vs tens in CTR), so locality\n\
         partitioning alone removes most traffic — the paper's §2 contrast."
    );
}
