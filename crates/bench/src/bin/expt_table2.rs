//! Table 2 — final test AUC vs staleness bound s in {0, 100, 10k, inf}.
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    let epochs = hetgmp_bench::second_arg(3);
    println!("{}", hetgmp_core::experiments::staleness::run(scale, epochs));
}
