//! Table 2 — final test AUC vs staleness bound s in {0, 100, 10k, inf}.
//!
//! `--pipeline-depth N` / `--gemm-threads N` apply one software-pipeline
//! setting to every training run in the experiment (AUC is bit-identical
//! across depths; only wall-clock speed changes).
fn main() {
    let scale = hetgmp_bench::scale_arg(0.15);
    let epochs = hetgmp_bench::second_arg(3);
    let (pipeline_depth, gemm_threads) = hetgmp_bench::pipeline_flags();
    let (sync_format, sync_error_feedback) = hetgmp_bench::sync_format_flags();
    let hooks = hetgmp_core::experiments::Hooks {
        pipeline_depth,
        gemm_threads,
        sync_format,
        sync_error_feedback,
        ..Default::default()
    };
    println!(
        "{}",
        hetgmp_core::experiments::staleness::run_instrumented(scale, epochs, None, &hooks)
    );
}
