//! Table 3 — partitioning algorithms: Random / BiCut / Ours(1,3,5 rounds).
fn main() {
    let scale = hetgmp_bench::scale_arg(0.3);
    for report in hetgmp_core::experiments::partitioners::run(scale) {
        println!("{report}\n");
    }
}
