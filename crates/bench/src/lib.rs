#![warn(missing_docs)]

//! # hetgmp-bench
//!
//! The benchmark/experiment harness of the HET-GMP reproduction.
//!
//! Two kinds of targets:
//!
//! * **`expt_*` binaries** — one per table/figure of the paper; each prints
//!   the same rows/series the paper reports (see `DESIGN.md`'s experiment
//!   index and `EXPERIMENTS.md` for paper-vs-measured). Every binary accepts
//!   an optional scale argument (`cargo run --release -p hetgmp-bench --bin
//!   expt_table3 -- 0.5`); defaults keep runtimes in seconds-to-minutes.
//!   `expt_all` runs everything.
//! * **criterion benches** — performance microbenchmarks of the system's
//!   kernels (partition sweeps, bounded-async reads, AllReduce, tensor ops,
//!   data generation), plus one representative-kernel bench per table/figure
//!   so `cargo bench` exercises every experiment path.

/// Parses the experiment scale from argv (first positional) with a default.
pub fn scale_arg(default: f64) -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

/// Parses an optional second positional argument (e.g. epochs).
pub fn second_arg(default: usize) -> usize {
    std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_args() {
        // Test binaries receive no positional args we control; the helper
        // must fall back to the default (or parse whatever harness args
        // exist — either way it returns a finite value).
        let s = scale_arg(0.25);
        assert!(s.is_finite());
        let e = second_arg(3);
        assert!(e > 0);
    }
}
