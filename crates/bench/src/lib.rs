#![warn(missing_docs)]

//! # hetgmp-bench
//!
//! The benchmark/experiment harness of the HET-GMP reproduction.
//!
//! Two kinds of targets:
//!
//! * **`expt_*` binaries** — one per table/figure of the paper; each prints
//!   the same rows/series the paper reports (see `DESIGN.md`'s experiment
//!   index and `EXPERIMENTS.md` for paper-vs-measured). Every binary accepts
//!   an optional scale argument (`cargo run --release -p hetgmp-bench --bin
//!   expt_table3 -- 0.5`); defaults keep runtimes in seconds-to-minutes.
//!   `expt_all` runs everything.
//! * **criterion benches** — performance microbenchmarks of the system's
//!   kernels (partition sweeps, bounded-async reads, AllReduce, tensor ops,
//!   data generation), plus one representative-kernel bench per table/figure
//!   so `cargo bench` exercises every experiment path.

/// Parses the experiment scale from argv (first positional) with a default.
pub fn scale_arg(default: f64) -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

/// Parses an optional second positional argument (e.g. epochs).
pub fn second_arg(default: usize) -> usize {
    std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

/// Parses the optional `--pipeline-depth N` / `--gemm-threads N` flags
/// (also `--flag=N`) from argv, returning `(pipeline_depth, gemm_threads)`.
/// The training experiment binaries (fig8, table2, ablation) thread these
/// into [`hetgmp_core::experiments::Hooks`] so one flag applies a single
/// pipeline setting to every trainer run in the experiment.
pub fn pipeline_flags() -> (Option<usize>, Option<usize>) {
    parse_pipeline_flags(std::env::args().skip(1))
}

/// Parses the optional `--sync-format F` / `--sync-feedback on|off` flags
/// (also `--flag=V`) from argv, returning `(sync_format, error_feedback)`.
/// The training experiment binaries thread these into
/// [`hetgmp_core::experiments::Hooks`] so one flag applies a single wire
/// format to every trainer run in the experiment. Unknown format spellings
/// fall back to `None` (the f32 default) rather than aborting.
pub fn sync_format_flags() -> (Option<hetgmp_comms::SyncFormat>, Option<bool>) {
    parse_sync_format_flags(std::env::args().skip(1))
}

fn parse_sync_format_flags(
    args: impl Iterator<Item = String>,
) -> (Option<hetgmp_comms::SyncFormat>, Option<bool>) {
    let mut format = None;
    let mut feedback = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(v) = a.strip_prefix("--sync-format=") {
            format = hetgmp_comms::SyncFormat::parse(v).ok();
        } else if a == "--sync-format" {
            format = args.peek().and_then(|v| hetgmp_comms::SyncFormat::parse(v).ok());
        } else if let Some(v) = a.strip_prefix("--sync-feedback=") {
            feedback = match v {
                "on" => Some(true),
                "off" => Some(false),
                _ => None,
            };
        } else if a == "--sync-feedback" {
            feedback = match args.peek().map(String::as_str) {
                Some("on") => Some(true),
                Some("off") => Some(false),
                _ => None,
            };
        }
    }
    (format, feedback)
}

fn parse_pipeline_flags(args: impl Iterator<Item = String>) -> (Option<usize>, Option<usize>) {
    let mut depth = None;
    let mut threads = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut take = |key: &str, slot: &mut Option<usize>| {
            if let Some(v) = a.strip_prefix(&format!("{key}=")) {
                *slot = v.parse().ok();
            } else if a == key {
                *slot = args.peek().and_then(|v| v.parse().ok());
            }
        };
        take("--pipeline-depth", &mut depth);
        take("--gemm-threads", &mut threads);
    }
    (depth, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_args() {
        // Test binaries receive no positional args we control; the helper
        // must fall back to the default (or parse whatever harness args
        // exist — either way it returns a finite value).
        let s = scale_arg(0.25);
        assert!(s.is_finite());
        let e = second_arg(3);
        assert!(e > 0);
    }

    #[test]
    fn pipeline_flags_parse_both_forms() {
        let argv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_pipeline_flags(argv(&["0.2", "--pipeline-depth", "2"]).into_iter()),
            (Some(2), None)
        );
        assert_eq!(
            parse_pipeline_flags(
                argv(&["--pipeline-depth=4", "--gemm-threads=2"]).into_iter()
            ),
            (Some(4), Some(2))
        );
        assert_eq!(parse_pipeline_flags(argv(&["0.2"]).into_iter()), (None, None));
        // Malformed values fall back to None rather than panicking.
        assert_eq!(
            parse_pipeline_flags(argv(&["--pipeline-depth", "xyz"]).into_iter()),
            (None, None)
        );
    }

    #[test]
    fn sync_format_flags_parse_both_forms() {
        use hetgmp_comms::SyncFormat;
        let argv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_sync_format_flags(argv(&["0.2", "--sync-format", "int8"]).into_iter()),
            (Some(SyncFormat::Int8), None)
        );
        assert_eq!(
            parse_sync_format_flags(
                argv(&["--sync-format=bf16", "--sync-feedback=off"]).into_iter()
            ),
            (Some(SyncFormat::Bf16), Some(false))
        );
        assert_eq!(
            parse_sync_format_flags(argv(&["--sync-feedback", "on"]).into_iter()),
            (None, Some(true))
        );
        assert_eq!(parse_sync_format_flags(argv(&["0.2"]).into_iter()), (None, None));
        // Malformed values fall back to None rather than panicking.
        assert_eq!(
            parse_sync_format_flags(argv(&["--sync-format", "f64"]).into_iter()),
            (None, None)
        );
    }
}
