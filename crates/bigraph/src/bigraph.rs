//! The sample↔embedding bipartite graph (paper §5.1, Figure 5).

use crate::csr::Csr;
use crate::{EmbId, SampleId};

/// The bigraph `G = (V_x, V_ξ, E)` of HET-GMP.
///
/// Stores both adjacency directions:
/// * `sample_to_emb`: for each sample vertex `ξ_j`, the embedding rows it
///   looks up during forward propagation (one per categorical field, plus
///   possibly multi-valued fields);
/// * `emb_to_sample`: the transpose, used to compute embedding access
///   frequencies (`p_i` in §5.3) and by the partitioner.
#[derive(Debug, Clone)]
pub struct Bigraph {
    num_samples: usize,
    num_embeddings: usize,
    sample_to_emb: Csr,
    emb_to_sample: Csr,
}

impl Bigraph {
    /// Builds the bigraph from per-sample embedding-access lists.
    ///
    /// `num_embeddings` must exceed every id referenced in `rows`.
    ///
    /// # Panics
    /// Panics if a referenced embedding id is out of range.
    pub fn from_samples(num_embeddings: usize, rows: &[Vec<EmbId>]) -> Self {
        let sample_to_emb = Csr::from_rows(rows);
        if let Some(max) = sample_to_emb.max_neighbor() {
            assert!(
                (max as usize) < num_embeddings,
                "embedding id {max} out of range (num_embeddings = {num_embeddings})"
            );
        }
        let emb_to_sample = sample_to_emb.transpose(num_embeddings);
        Self {
            num_samples: rows.len(),
            num_embeddings,
            sample_to_emb,
            emb_to_sample,
        }
    }

    /// Builds from a raw edge list of `(sample, embedding)` pairs.
    pub fn from_edges(num_samples: usize, num_embeddings: usize, edges: &[(SampleId, EmbId)]) -> Self {
        let sample_to_emb = Csr::from_edges(num_samples, edges);
        if let Some(max) = sample_to_emb.max_neighbor() {
            assert!(
                (max as usize) < num_embeddings,
                "embedding id {max} out of range (num_embeddings = {num_embeddings})"
            );
        }
        let emb_to_sample = sample_to_emb.transpose(num_embeddings);
        Self {
            num_samples,
            num_embeddings,
            sample_to_emb,
            emb_to_sample,
        }
    }

    /// Number of sample vertices `|V_ξ|`.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Number of embedding vertices `|V_x|`.
    #[inline]
    pub fn num_embeddings(&self) -> usize {
        self.num_embeddings
    }

    /// Number of edges `|E|` (total embedding lookups per epoch).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.sample_to_emb.num_edges()
    }

    /// Embedding rows accessed by sample `s`.
    #[inline]
    pub fn embeddings_of(&self, s: SampleId) -> &[EmbId] {
        self.sample_to_emb.neighbors(s as usize)
    }

    /// Samples that access embedding `e`.
    #[inline]
    pub fn samples_of(&self, e: EmbId) -> &[SampleId] {
        self.emb_to_sample.neighbors(e as usize)
    }

    /// Access frequency of embedding `e` — its vertex degree; this is the
    /// `p_i` used for clock normalization in §5.3 and the "hotness" driving
    /// vertex-cut replication in §5.2.
    #[inline]
    pub fn emb_frequency(&self, e: EmbId) -> usize {
        self.emb_to_sample.degree(e as usize)
    }

    /// Number of embeddings a sample accesses (its field count for CTR data).
    #[inline]
    pub fn sample_degree(&self, s: SampleId) -> usize {
        self.sample_to_emb.degree(s as usize)
    }

    /// Forward CSR (sample → embedding).
    #[inline]
    pub fn sample_to_emb(&self) -> &Csr {
        &self.sample_to_emb
    }

    /// Transposed CSR (embedding → sample).
    #[inline]
    pub fn emb_to_sample(&self) -> &Csr {
        &self.emb_to_sample
    }

    /// Embedding ids sorted by descending access frequency (hot first).
    /// Ties broken by ascending id for determinism.
    pub fn embeddings_by_hotness(&self) -> Vec<EmbId> {
        let mut ids: Vec<EmbId> = (0..self.num_embeddings as u32).collect();
        ids.sort_by_key(|&e| (std::cmp::Reverse(self.emb_frequency(e)), e));
        ids
    }

    /// Approximate heap memory, bytes.
    pub fn heap_bytes(&self) -> usize {
        self.sample_to_emb.heap_bytes() + self.emb_to_sample.heap_bytes()
    }
}

/// Incremental builder accumulating samples one at a time.
///
/// Useful when streaming a dataset: embedding ids may appear in any order;
/// `num_embeddings` grows to cover the maximum id seen.
#[derive(Debug, Default)]
pub struct BigraphBuilder {
    rows: Vec<Vec<EmbId>>,
    max_emb: Option<EmbId>,
}

impl BigraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample's embedding accesses; returns its [`SampleId`].
    pub fn push_sample(&mut self, embeddings: Vec<EmbId>) -> SampleId {
        for &e in &embeddings {
            self.max_emb = Some(self.max_emb.map_or(e, |m| m.max(e)));
        }
        self.rows.push(embeddings);
        (self.rows.len() - 1) as SampleId
    }

    /// Number of samples pushed so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finalizes into a [`Bigraph`]. `min_embeddings` lets callers reserve a
    /// table larger than the maximum id observed (e.g. the full vocabulary).
    pub fn build(self, min_embeddings: usize) -> Bigraph {
        let num_embeddings = self
            .max_emb
            .map_or(min_embeddings, |m| min_embeddings.max(m as usize + 1));
        Bigraph::from_samples(num_embeddings, &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 example: samples 2 and 3 access {a,c,g} and
    /// {a,d,h} respectively, out of embeddings a..i.
    fn fig2() -> Bigraph {
        // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8
        Bigraph::from_samples(9, &[vec![0, 2, 6], vec![0, 3, 7]])
    }

    #[test]
    fn basic_shape() {
        let g = fig2();
        assert_eq!(g.num_samples(), 2);
        assert_eq!(g.num_embeddings(), 9);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn adjacency_both_directions() {
        let g = fig2();
        assert_eq!(g.embeddings_of(0), &[0, 2, 6]);
        assert_eq!(g.embeddings_of(1), &[0, 3, 7]);
        assert_eq!(g.samples_of(0), &[0, 1]); // "a" shared by both samples
        assert_eq!(g.samples_of(2), &[0]);
        assert_eq!(g.samples_of(8), &[] as &[u32]); // "i" never accessed
    }

    #[test]
    fn frequency_is_degree() {
        let g = fig2();
        assert_eq!(g.emb_frequency(0), 2);
        assert_eq!(g.emb_frequency(2), 1);
        assert_eq!(g.emb_frequency(8), 0);
        assert_eq!(g.sample_degree(0), 3);
    }

    #[test]
    fn hotness_ordering() {
        let g = fig2();
        let hot = g.embeddings_by_hotness();
        assert_eq!(hot[0], 0); // "a" is hottest with frequency 2
        // all frequency-1 embeddings precede frequency-0 ones
        let freqs: Vec<usize> = hot.iter().map(|&e| g.emb_frequency(e)).collect();
        let mut sorted = freqs.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(freqs, sorted);
    }

    #[test]
    fn from_edges_equivalent() {
        let edges = [(0, 0), (0, 2), (0, 6), (1, 0), (1, 3), (1, 7)];
        let g = Bigraph::from_edges(2, 9, &edges);
        assert_eq!(g.embeddings_of(0), fig2().embeddings_of(0));
        assert_eq!(g.samples_of(0), fig2().samples_of(0));
    }

    #[test]
    fn builder_accumulates() {
        let mut b = BigraphBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.push_sample(vec![3, 1]), 0);
        assert_eq!(b.push_sample(vec![2]), 1);
        assert_eq!(b.len(), 2);
        let g = b.build(0);
        assert_eq!(g.num_embeddings(), 4); // max id 3 observed
        assert_eq!(g.num_samples(), 2);
    }

    #[test]
    fn builder_min_embeddings_extends_table() {
        let mut b = BigraphBuilder::new();
        b.push_sample(vec![1]);
        let g = b.build(100);
        assert_eq!(g.num_embeddings(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        Bigraph::from_samples(2, &[vec![5]]);
    }

    #[test]
    fn empty_graph() {
        let g = Bigraph::from_samples(0, &[]);
        assert_eq!(g.num_samples(), 0);
        assert_eq!(g.num_embeddings(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
