//! Embedding co-occurrence graph (paper §4, Figure 3).
//!
//! The paper transforms the data↔embedding bigraph into an *embedding
//! co-occurrence graph*: embeddings are nodes, and two embeddings are
//! connected when they appear in the same data sample; the edge weight is the
//! number of co-occurrences. Clustering this graph (the paper uses METIS)
//! reveals the dense diagonal block structure that motivates locality-aware
//! partitioning.
//!
//! Materialising all pairs is quadratic in the per-sample field count and in
//! the hottest embeddings' degrees, so [`CooccurrenceConfig`] lets callers cap
//! the number of pairs contributed per sample and drop ultra-hot embeddings
//! (which co-occur with everything and carry no locality signal — the same
//! pruning trick used by association-rule miners).

use std::collections::HashMap;

use crate::bigraph::Bigraph;
use crate::EmbId;

/// Controls co-occurrence graph construction cost.
#[derive(Debug, Clone)]
pub struct CooccurrenceConfig {
    /// Samples with more accessed embeddings than this contribute only their
    /// first `max_fields_per_sample` (CTR samples have a fixed small field
    /// count, so this is rarely binding).
    pub max_fields_per_sample: usize,
    /// Embeddings whose access frequency exceeds this fraction of the number
    /// of samples are excluded (they co-occur with nearly everything).
    pub hot_exclude_fraction: f64,
    /// Minimum co-occurrence count for an edge to be kept.
    pub min_edge_weight: u32,
}

impl Default for CooccurrenceConfig {
    fn default() -> Self {
        Self {
            max_fields_per_sample: 64,
            hot_exclude_fraction: 0.5,
            min_edge_weight: 1,
        }
    }
}

/// Weighted undirected embedding co-occurrence graph.
///
/// Stored as symmetric weighted adjacency in CSR-like form; every undirected
/// edge `{u, v}` appears in both `u`'s and `v`'s neighbour lists.
#[derive(Debug, Clone)]
pub struct CooccurrenceGraph {
    num_nodes: usize,
    offsets: Vec<usize>,
    neighbors: Vec<EmbId>,
    weights: Vec<u32>,
}

impl CooccurrenceGraph {
    /// Builds the co-occurrence graph from a bigraph.
    pub fn build(bigraph: &Bigraph, config: &CooccurrenceConfig) -> Self {
        let n = bigraph.num_embeddings();
        let hot_cutoff =
            (config.hot_exclude_fraction * bigraph.num_samples() as f64).ceil() as usize;
        // Accumulate pair counts in a hash map keyed by (min, max).
        let mut counts: HashMap<(EmbId, EmbId), u32> = HashMap::new();
        for s in 0..bigraph.num_samples() as u32 {
            let embs = bigraph.embeddings_of(s);
            let embs = &embs[..embs.len().min(config.max_fields_per_sample)];
            for (i, &a) in embs.iter().enumerate() {
                if bigraph.emb_frequency(a) > hot_cutoff {
                    continue;
                }
                for &b in &embs[i + 1..] {
                    if a == b || bigraph.emb_frequency(b) > hot_cutoff {
                        continue;
                    }
                    let key = if a < b { (a, b) } else { (b, a) };
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        // Materialise symmetric CSR.
        let mut degree = vec![0usize; n];
        for (&(a, b), &w) in &counts {
            if w >= config.min_edge_weight {
                degree[a as usize] += 1;
                degree[b as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; acc];
        let mut weights = vec![0u32; acc];
        for (&(a, b), &w) in &counts {
            if w < config.min_edge_weight {
                continue;
            }
            let sa = cursor[a as usize];
            neighbors[sa] = b;
            weights[sa] = w;
            cursor[a as usize] += 1;
            let sb = cursor[b as usize];
            neighbors[sb] = a;
            weights[sb] = w;
            cursor[b as usize] += 1;
        }
        Self {
            num_nodes: n,
            offsets,
            neighbors,
            weights,
        }
    }

    /// Number of embedding nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Weighted neighbours of `node` as parallel `(ids, weights)` slices.
    #[inline]
    pub fn neighbors(&self, node: EmbId) -> (&[EmbId], &[u32]) {
        let r = node as usize;
        let range = self.offsets[r]..self.offsets[r + 1];
        (&self.neighbors[range.clone()], &self.weights[range])
    }

    /// Weighted degree (sum of incident edge weights) of `node`.
    pub fn weighted_degree(&self, node: EmbId) -> u64 {
        let (_, w) = self.neighbors(node);
        w.iter().map(|&x| x as u64).sum()
    }

    /// Total weight over all undirected edges.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|&x| x as u64).sum::<u64>() / 2
    }

    /// Given a node→cluster assignment, returns the `k×k` matrix of total
    /// co-occurrence weight between clusters. The diagonal dominance of this
    /// matrix is exactly what the paper's Figure 3 visualises.
    ///
    /// # Panics
    /// Panics if `assignment.len() != num_nodes` or a cluster id `>= k`.
    pub fn cluster_weight_matrix(&self, assignment: &[u32], k: usize) -> Vec<Vec<u64>> {
        assert_eq!(assignment.len(), self.num_nodes);
        let mut m = vec![vec![0u64; k]; k];
        for u in 0..self.num_nodes as u32 {
            let cu = assignment[u as usize] as usize;
            assert!(cu < k, "cluster id {cu} out of range (k = {k})");
            let (nbrs, ws) = self.neighbors(u);
            for (&v, &w) in nbrs.iter().zip(ws) {
                if v > u {
                    let cv = assignment[v as usize] as usize;
                    m[cu][cv] += w as u64;
                    if cu != cv {
                        m[cv][cu] += w as u64;
                    }
                }
            }
        }
        m
    }

    /// Fraction of total co-occurrence weight that falls inside clusters
    /// (diagonal of [`Self::cluster_weight_matrix`]); 1.0 = perfect locality.
    pub fn diagonal_density(&self, assignment: &[u32], k: usize) -> f64 {
        let m = self.cluster_weight_matrix(assignment, k);
        let diag: u64 = (0..k).map(|i| m[i][i]).sum();
        let total: u64 = m.iter().flatten().sum::<u64>() - diag;
        // total here counts off-diagonal twice (symmetric); normalise properly:
        let off = total / 2;
        let denom = diag + off;
        if denom == 0 {
            return 1.0;
        }
        diag as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two "communities": samples 0,1 use embeddings {0,1,2}; samples 2,3 use
    /// {3,4,5}; sample 4 bridges with {2,3}.
    fn clustered() -> Bigraph {
        Bigraph::from_samples(
            6,
            &[
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![3, 4, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn builds_expected_edges() {
        let g = CooccurrenceGraph::build(&clustered(), &CooccurrenceConfig::default());
        assert_eq!(g.num_nodes(), 6);
        // Within community 1: (0,1),(0,2),(1,2) each weight 2; same for
        // community 2; plus the bridge (2,3) weight 1. Total 7 edges.
        assert_eq!(g.num_edges(), 7);
        let (nbrs, ws) = g.neighbors(0);
        let mut pairs: Vec<_> = nbrs.iter().zip(ws).map(|(&n, &w)| (n, w)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn weighted_degree_and_total() {
        let g = CooccurrenceGraph::build(&clustered(), &CooccurrenceConfig::default());
        assert_eq!(g.weighted_degree(2), 2 + 2 + 1); // to 0, 1, bridge to 3
        assert_eq!(g.total_weight(), 2 * 6 + 1);
    }

    #[test]
    fn cluster_matrix_diagonal_dominant() {
        let g = CooccurrenceGraph::build(&clustered(), &CooccurrenceConfig::default());
        let assignment = vec![0, 0, 0, 1, 1, 1];
        let m = g.cluster_weight_matrix(&assignment, 2);
        assert_eq!(m[0][0], 6); // 3 intra edges × weight 2
        assert_eq!(m[1][1], 6);
        assert_eq!(m[0][1], 1); // the bridge
        assert_eq!(m[1][0], 1);
        let density = g.diagonal_density(&assignment, 2);
        assert!(density > 0.9, "density = {density}");
    }

    #[test]
    fn bad_assignment_density_lower() {
        let g = CooccurrenceGraph::build(&clustered(), &CooccurrenceConfig::default());
        let good = g.diagonal_density(&[0, 0, 0, 1, 1, 1], 2);
        let bad = g.diagonal_density(&[0, 1, 0, 1, 0, 1], 2);
        assert!(good > bad);
    }

    #[test]
    fn min_edge_weight_prunes() {
        let cfg = CooccurrenceConfig {
            min_edge_weight: 2,
            ..Default::default()
        };
        let g = CooccurrenceGraph::build(&clustered(), &cfg);
        assert_eq!(g.num_edges(), 6); // bridge (weight 1) pruned
    }

    #[test]
    fn hot_exclusion_drops_universal_embeddings() {
        // Embedding 0 appears in all 4 samples — with a 0.5 fraction cutoff it
        // is excluded from pair counting.
        let g = Bigraph::from_samples(
            3,
            &[vec![0, 1], vec![0, 1], vec![0, 2], vec![0, 2]],
        );
        let cfg = CooccurrenceConfig {
            hot_exclude_fraction: 0.5,
            ..Default::default()
        };
        let co = CooccurrenceGraph::build(&g, &cfg);
        assert_eq!(co.num_edges(), 0); // all pairs involved embedding 0
    }

    #[test]
    fn empty_graph_density_is_one() {
        let g = Bigraph::from_samples(3, &[vec![0], vec![1], vec![2]]);
        let co = CooccurrenceGraph::build(&g, &CooccurrenceConfig::default());
        assert_eq!(co.num_edges(), 0);
        assert_eq!(co.diagonal_density(&[0, 0, 1], 2), 1.0);
    }
}
