//! Compressed sparse row adjacency.
//!
//! Both directions of the bigraph (sample → embeddings and its transpose) are
//! stored in this one structure. Offsets use `usize`, neighbour ids use `u32`
//! to halve memory traffic on large graphs (the paper trains graphs with
//! tens of millions of embedding vertices; the scaled-down synthetic graphs
//! here still reach millions of edges).

/// A compressed-sparse-row adjacency list: `rows` of `u32` neighbour ids.
///
/// Invariants (checked by [`Csr::validate`] and the constructors):
/// * `offsets.len() == num_rows + 1`,
/// * `offsets` is non-decreasing, `offsets[0] == 0`,
/// * `offsets[num_rows] == indices.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    indices: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from per-row neighbour lists.
    ///
    /// Neighbour order within a row is preserved.
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        offsets.push(0);
        for row in rows {
            indices.extend_from_slice(row);
            offsets.push(indices.len());
        }
        Self { offsets, indices }
    }

    /// Builds a CSR with `num_rows` rows from an edge list of
    /// `(row, neighbour)` pairs. Edges may arrive in any order; within a row
    /// neighbours are sorted ascending.
    ///
    /// # Panics
    /// Panics if any `row >= num_rows`.
    pub fn from_edges(num_rows: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; num_rows];
        for &(r, _) in edges {
            degree[r as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_rows + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..num_rows].to_vec();
        let mut indices = vec![0u32; edges.len()];
        for &(r, c) in edges {
            let slot = cursor[r as usize];
            indices[slot] = c;
            cursor[r as usize] += 1;
        }
        for r in 0..num_rows {
            indices[offsets[r]..offsets[r + 1]].sort_unstable();
        }
        Self { offsets, indices }
    }

    /// Constructs from raw parts; validates the CSR invariants.
    pub fn from_parts(offsets: Vec<usize>, indices: Vec<u32>) -> Result<Self, CsrError> {
        let csr = Self { offsets, indices };
        csr.validate()?;
        Ok(csr)
    }

    /// An empty CSR with `num_rows` rows and no edges.
    pub fn empty(num_rows: usize) -> Self {
        Self {
            offsets: vec![0; num_rows + 1],
            indices: Vec::new(),
        }
    }

    /// Checks the structural invariants.
    pub fn validate(&self) -> Result<(), CsrError> {
        if self.offsets.is_empty() {
            return Err(CsrError::EmptyOffsets);
        }
        if self.offsets[0] != 0 {
            return Err(CsrError::BadFirstOffset(self.offsets[0]));
        }
        for w in self.offsets.windows(2) {
            if w[1] < w[0] {
                return Err(CsrError::DecreasingOffsets);
            }
        }
        let last = *self.offsets.last().expect("non-empty offsets");
        if last != self.indices.len() {
            return Err(CsrError::LengthMismatch {
                last_offset: last,
                nnz: self.indices.len(),
            });
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Neighbours of `row`.
    ///
    /// # Panics
    /// Panics if `row >= num_rows()`.
    #[inline]
    pub fn neighbors(&self, row: usize) -> &[u32] {
        &self.indices[self.offsets[row]..self.offsets[row + 1]]
    }

    /// Out-degree of `row`.
    #[inline]
    pub fn degree(&self, row: usize) -> usize {
        self.offsets[row + 1] - self.offsets[row]
    }

    /// Iterator over `(row, neighbours)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        (0..self.num_rows()).map(move |r| (r, self.neighbors(r)))
    }

    /// Transposes the adjacency: the result has `num_cols` rows and, for each
    /// stored edge `(r, c)`, an edge `(c, r)`.
    ///
    /// `num_cols` must be strictly greater than every stored neighbour id.
    pub fn transpose(&self, num_cols: usize) -> Self {
        let mut degree = vec![0usize; num_cols];
        for &c in &self.indices {
            degree[c as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_cols + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..num_cols].to_vec();
        let mut indices = vec![0u32; self.indices.len()];
        for r in 0..self.num_rows() {
            for &c in self.neighbors(r) {
                let slot = cursor[c as usize];
                indices[slot] = r as u32;
                cursor[c as usize] += 1;
            }
        }
        Self { offsets, indices }
    }

    /// Maximum neighbour id stored, or `None` when edgeless.
    pub fn max_neighbor(&self) -> Option<u32> {
        self.indices.iter().copied().max()
    }

    /// Approximate heap memory used, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
    }
}

/// Structural validation failures for [`Csr::from_parts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// The offsets array was empty (must have `num_rows + 1 >= 1` entries).
    EmptyOffsets,
    /// `offsets[0]` was not zero.
    BadFirstOffset(usize),
    /// Offsets decreased somewhere.
    DecreasingOffsets,
    /// The final offset disagrees with the number of stored indices.
    LengthMismatch {
        /// `offsets[num_rows]` as stored.
        last_offset: usize,
        /// Actual `indices.len()`.
        nnz: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::EmptyOffsets => write!(f, "offsets array is empty"),
            CsrError::BadFirstOffset(o) => write!(f, "offsets[0] = {o}, expected 0"),
            CsrError::DecreasingOffsets => write!(f, "offsets are not non-decreasing"),
            CsrError::LengthMismatch { last_offset, nnz } => write!(
                f,
                "last offset {last_offset} does not match number of indices {nnz}"
            ),
        }
    }
}

impl std::error::Error for CsrError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_rows(&[vec![1, 2], vec![], vec![0, 1, 3]])
    }

    #[test]
    fn from_rows_basic() {
        let csr = sample();
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 1, 3]);
        assert_eq!(csr.degree(2), 3);
        csr.validate().unwrap();
    }

    #[test]
    fn from_edges_matches_from_rows() {
        let edges = [(2, 3), (0, 2), (2, 0), (0, 1), (2, 1)];
        let csr = Csr::from_edges(3, &edges);
        assert_eq!(csr, sample());
    }

    #[test]
    fn empty_has_no_edges() {
        let csr = Csr::empty(4);
        assert_eq!(csr.num_rows(), 4);
        assert_eq!(csr.num_edges(), 0);
        for r in 0..4 {
            assert!(csr.neighbors(r).is_empty());
        }
        csr.validate().unwrap();
    }

    #[test]
    fn transpose_roundtrip() {
        let csr = sample();
        let t = csr.transpose(4);
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.neighbors(3), &[2]);
        // Transposing back restores the original (rows were sorted already).
        let back = t.transpose(3);
        assert_eq!(back, csr);
    }

    #[test]
    fn transpose_preserves_edge_count() {
        let csr = sample();
        assert_eq!(csr.transpose(4).num_edges(), csr.num_edges());
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csr::from_parts(vec![0, 2], vec![0, 1]).is_ok());
        assert_eq!(
            Csr::from_parts(vec![], vec![]),
            Err(CsrError::EmptyOffsets)
        );
        assert_eq!(
            Csr::from_parts(vec![1, 2], vec![9]),
            Err(CsrError::BadFirstOffset(1))
        );
        assert_eq!(
            Csr::from_parts(vec![0, 2, 1], vec![0, 1]),
            Err(CsrError::DecreasingOffsets)
        );
        assert_eq!(
            Csr::from_parts(vec![0, 3], vec![0, 1]),
            Err(CsrError::LengthMismatch {
                last_offset: 3,
                nnz: 2
            })
        );
    }

    #[test]
    fn max_neighbor() {
        assert_eq!(sample().max_neighbor(), Some(3));
        assert_eq!(Csr::empty(2).max_neighbor(), None);
    }

    #[test]
    fn iter_rows_covers_all() {
        let csr = sample();
        let rows: Vec<_> = csr.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].1, &[0, 1, 3]);
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(sample().heap_bytes() > 0);
    }

    #[test]
    fn error_display() {
        let e = CsrError::LengthMismatch {
            last_offset: 3,
            nnz: 2,
        };
        assert!(e.to_string().contains("3"));
        assert!(CsrError::EmptyOffsets.to_string().contains("empty"));
    }
}
