#![warn(missing_docs)]

//! # hetgmp-bigraph
//!
//! Bipartite graph ("bigraph") abstraction of HET-GMP (SIGMOD 2022, §5.1).
//!
//! HET-GMP represents the interaction between training data and embedding
//! parameters as a bipartite graph `G = (V_x, V_ξ, E)`:
//!
//! * **embedding vertices** `x ∈ V_x` — one per row of the embedding table
//!   (one per categorical feature value);
//! * **sample vertices** `ξ ∈ V_ξ` — one per training sample;
//! * an edge `(x_i, ξ_j)` whenever sample `ξ_j` contains categorical feature
//!   `x_i` (i.e. the sample looks up that embedding row during training).
//!
//! The graph exposes the two access-pattern properties that drive the whole
//! system design (paper §4):
//!
//! * **locality** — a specific embedding is mostly related to a small subset
//!   of samples, so co-accessed embeddings can be co-located;
//! * **skewness** — embedding degree (access frequency) follows a power law,
//!   so replicating a few hot embeddings removes most remote traffic.
//!
//! This crate provides:
//!
//! * [`Csr`] — a compact compressed-sparse-row adjacency structure used for
//!   both directions of the bigraph;
//! * [`Bigraph`] — the sample↔embedding bipartite graph with both forward
//!   (sample → embeddings) and transposed (embedding → samples) adjacency;
//! * [`cooccurrence`] — the embedding co-occurrence graph used by the paper's
//!   Figure 3 illustration and by clustering-based analyses;
//! * [`stats`] — degree-distribution/skewness/locality statistics.

pub mod bigraph;
pub mod cooccurrence;
pub mod csr;
pub mod stats;

pub use bigraph::{Bigraph, BigraphBuilder};
pub use cooccurrence::{CooccurrenceConfig, CooccurrenceGraph};
pub use csr::Csr;
pub use stats::{DegreeStats, LocalityReport};

/// Identifier of a sample vertex (`ξ_j` in the paper).
pub type SampleId = u32;
/// Identifier of an embedding vertex (`x_i` in the paper) — a row index into
/// the embedding table.
pub type EmbId = u32;
