//! Access-pattern statistics over the bigraph (paper §4).
//!
//! These quantify the two properties HET-GMP exploits:
//! * **skewness** — the embedding degree distribution is power-law-like; we
//!   report a Gini coefficient, the top-k% mass, and a log-log slope fit;
//! * **locality** — most of an embedding's accesses come from a small set of
//!   samples; together with co-occurrence clustering this drives partitioning.

use crate::bigraph::Bigraph;

/// Summary of a degree (access-frequency) distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices measured.
    pub count: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Gini coefficient of the degree distribution in `[0, 1]`;
    /// 0 = perfectly even, →1 = extremely skewed.
    pub gini: f64,
    /// Fraction of total accesses captured by the hottest 1% of vertices.
    pub top1pct_mass: f64,
    /// Fraction of total accesses captured by the hottest 10% of vertices.
    pub top10pct_mass: f64,
    /// Estimated power-law exponent from a least-squares fit of
    /// `log(degree) ~ log(rank)`; `None` when there are too few distinct
    /// positive degrees to fit.
    pub powerlaw_alpha: Option<f64>,
}

impl DegreeStats {
    /// Computes stats from a list of degrees.
    pub fn from_degrees(degrees: &[usize]) -> Self {
        let count = degrees.len();
        if count == 0 {
            return Self {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                gini: 0.0,
                top1pct_mass: 0.0,
                top10pct_mass: 0.0,
                powerlaw_alpha: None,
            };
        }
        let mut sorted = degrees.to_vec();
        sorted.sort_unstable();
        let total: u64 = sorted.iter().map(|&d| d as u64).sum();
        let min = sorted[0];
        let max = *sorted.last().expect("non-empty");
        let mean = total as f64 / count as f64;

        // Gini via the sorted formula: G = (2 Σ i·x_i)/(n Σ x_i) − (n+1)/n.
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            (2.0 * weighted) / (count as f64 * total as f64) - (count as f64 + 1.0) / count as f64
        };

        let top_mass = |fraction: f64| -> f64 {
            if total == 0 {
                return 0.0;
            }
            let k = ((count as f64 * fraction).ceil() as usize).max(1);
            let hot: u64 = sorted.iter().rev().take(k).map(|&d| d as u64).sum();
            hot as f64 / total as f64
        };

        // Power-law exponent: fit log(degree) = c − α·log(rank) over the
        // positive-degree vertices ranked hottest-first.
        let positive: Vec<f64> = sorted
            .iter()
            .rev()
            .filter(|&&d| d > 0)
            .map(|&d| d as f64)
            .collect();
        let powerlaw_alpha = if positive.len() >= 10 {
            let xs: Vec<f64> = (1..=positive.len()).map(|r| (r as f64).ln()).collect();
            let ys: Vec<f64> = positive.iter().map(|d| d.ln()).collect();
            let n = xs.len() as f64;
            let sx: f64 = xs.iter().sum();
            let sy: f64 = ys.iter().sum();
            let sxx: f64 = xs.iter().map(|x| x * x).sum();
            let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
            let denom = n * sxx - sx * sx;
            if denom.abs() < f64::EPSILON {
                None
            } else {
                let slope = (n * sxy - sx * sy) / denom;
                Some(-slope)
            }
        } else {
            None
        };

        Self {
            count,
            min,
            max,
            mean,
            gini,
            top1pct_mass: top_mass(0.01),
            top10pct_mass: top_mass(0.10),
            powerlaw_alpha,
        }
    }

    /// Stats of the embedding (access-frequency) side of a bigraph.
    pub fn embeddings(g: &Bigraph) -> Self {
        let degrees: Vec<usize> = (0..g.num_embeddings() as u32)
            .map(|e| g.emb_frequency(e))
            .collect();
        Self::from_degrees(&degrees)
    }

    /// Stats of the sample side of a bigraph.
    pub fn samples(g: &Bigraph) -> Self {
        let degrees: Vec<usize> = (0..g.num_samples() as u32)
            .map(|s| g.sample_degree(s))
            .collect();
        Self::from_degrees(&degrees)
    }
}

/// Locality report relative to a sample partitioning: for each embedding, how
/// concentrated are its accesses in a single partition?
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityReport {
    /// Mean (over embeddings with ≥1 access) of the fraction of an
    /// embedding's accesses coming from its most-frequent partition.
    pub mean_max_partition_share: f64,
    /// Fraction of accessed embeddings whose accesses all come from a single
    /// partition.
    pub fully_local_fraction: f64,
}

impl LocalityReport {
    /// Computes locality of embedding accesses under the given
    /// sample → partition assignment with `num_partitions` partitions.
    ///
    /// # Panics
    /// Panics if `sample_partition.len() != g.num_samples()`.
    pub fn compute(g: &Bigraph, sample_partition: &[u32], num_partitions: usize) -> Self {
        assert_eq!(sample_partition.len(), g.num_samples());
        let mut sum_share = 0.0f64;
        let mut accessed = 0usize;
        let mut fully_local = 0usize;
        let mut counts = vec![0usize; num_partitions];
        for e in 0..g.num_embeddings() as u32 {
            let samples = g.samples_of(e);
            if samples.is_empty() {
                continue;
            }
            counts.iter_mut().for_each(|c| *c = 0);
            for &s in samples {
                counts[sample_partition[s as usize] as usize] += 1;
            }
            let max = *counts.iter().max().expect("non-empty partitions");
            sum_share += max as f64 / samples.len() as f64;
            if max == samples.len() {
                fully_local += 1;
            }
            accessed += 1;
        }
        if accessed == 0 {
            return Self {
                mean_max_partition_share: 1.0,
                fully_local_fraction: 1.0,
            };
        }
        Self {
            mean_max_partition_share: sum_share / accessed as f64,
            fully_local_fraction: fully_local as f64 / accessed as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_degrees() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.gini, 0.0);
        assert!(s.powerlaw_alpha.is_none());
    }

    #[test]
    fn uniform_degrees_gini_zero() {
        let s = DegreeStats::from_degrees(&[5; 100]);
        assert!(s.gini.abs() < 1e-9, "gini = {}", s.gini);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Flat distribution: fitted slope ≈ 0 → alpha ≈ 0.
        assert!(s.powerlaw_alpha.expect("enough points").abs() < 1e-9);
    }

    #[test]
    fn skewed_degrees_high_gini() {
        let mut degrees = vec![1usize; 99];
        degrees.push(10_000);
        let s = DegreeStats::from_degrees(&degrees);
        assert!(s.gini > 0.9, "gini = {}", s.gini);
        assert!(s.top1pct_mass > 0.9);
    }

    #[test]
    fn powerlaw_alpha_recovered() {
        // degrees ∝ rank^{-1.0}
        let degrees: Vec<usize> = (1..=1000).map(|r| (100_000 / r) as usize).collect();
        let s = DegreeStats::from_degrees(&degrees);
        let alpha = s.powerlaw_alpha.expect("fit");
        assert!((alpha - 1.0).abs() < 0.05, "alpha = {alpha}");
    }

    #[test]
    fn top_mass_monotone() {
        let degrees: Vec<usize> = (1..=500).collect();
        let s = DegreeStats::from_degrees(&degrees);
        assert!(s.top10pct_mass >= s.top1pct_mass);
        assert!(s.top10pct_mass <= 1.0);
    }

    #[test]
    fn bigraph_stats() {
        let g = Bigraph::from_samples(4, &[vec![0, 1], vec![0, 2], vec![0, 3]]);
        let e = DegreeStats::embeddings(&g);
        assert_eq!(e.count, 4);
        assert_eq!(e.max, 3); // embedding 0
        let s = DegreeStats::samples(&g);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn locality_perfect_when_clustered() {
        let g = Bigraph::from_samples(
            4,
            &[vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]],
        );
        let r = LocalityReport::compute(&g, &[0, 0, 1, 1], 2);
        assert_eq!(r.fully_local_fraction, 1.0);
        assert_eq!(r.mean_max_partition_share, 1.0);
    }

    #[test]
    fn locality_degrades_with_bad_partition() {
        let g = Bigraph::from_samples(
            4,
            &[vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]],
        );
        let good = LocalityReport::compute(&g, &[0, 0, 1, 1], 2);
        let bad = LocalityReport::compute(&g, &[0, 1, 0, 1], 2);
        assert!(good.mean_max_partition_share > bad.mean_max_partition_share);
        assert!(bad.fully_local_fraction < 1.0);
    }

    #[test]
    fn locality_empty_embeddings_ignored() {
        let g = Bigraph::from_samples(10, &[vec![0], vec![0]]);
        let r = LocalityReport::compute(&g, &[0, 0], 2);
        assert_eq!(r.fully_local_fraction, 1.0);
    }
}
