//! Property-based tests for the bigraph substrate.

use hetgmp_bigraph::{Bigraph, CooccurrenceConfig, CooccurrenceGraph, Csr, DegreeStats};
use proptest::prelude::*;

/// Strategy: a random edge list over `rows × cols`.
fn edges(rows: u32, cols: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..rows, 0..cols), 0..max_edges)
}

proptest! {
    #[test]
    fn csr_from_edges_preserves_edge_multiset(es in edges(20, 30, 200)) {
        let csr = Csr::from_edges(20, &es);
        prop_assert_eq!(csr.num_edges(), es.len());
        let mut expected = es.clone();
        expected.sort_unstable();
        let mut actual: Vec<(u32, u32)> = Vec::with_capacity(es.len());
        for (r, nbrs) in csr.iter_rows() {
            for &c in nbrs {
                actual.push((r as u32, c));
            }
        }
        actual.sort_unstable();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn csr_double_transpose_is_identity(es in edges(15, 25, 150)) {
        let csr = Csr::from_edges(15, &es);
        let back = csr.transpose(25).transpose(15);
        prop_assert_eq!(back, csr);
    }

    #[test]
    fn transpose_preserves_degree_sum(es in edges(10, 10, 100)) {
        let csr = Csr::from_edges(10, &es);
        let t = csr.transpose(10);
        prop_assert_eq!(csr.num_edges(), t.num_edges());
        let row_sum: usize = (0..csr.num_rows()).map(|r| csr.degree(r)).sum();
        let col_sum: usize = (0..t.num_rows()).map(|r| t.degree(r)).sum();
        prop_assert_eq!(row_sum, col_sum);
    }

    #[test]
    fn bigraph_directions_agree(es in edges(12, 18, 120)) {
        let g = Bigraph::from_edges(12, 18, &es);
        // Every forward edge appears in the transpose and vice versa.
        for s in 0..g.num_samples() as u32 {
            for &e in g.embeddings_of(s) {
                prop_assert!(g.samples_of(e).contains(&s));
            }
        }
        for e in 0..g.num_embeddings() as u32 {
            for &s in g.samples_of(e) {
                prop_assert!(g.embeddings_of(s).contains(&e));
            }
        }
    }

    #[test]
    fn frequency_sums_to_edges(es in edges(12, 18, 120)) {
        let g = Bigraph::from_edges(12, 18, &es);
        let total: usize = (0..18u32).map(|e| g.emb_frequency(e)).sum();
        prop_assert_eq!(total, g.num_edges());
    }

    #[test]
    fn hotness_is_sorted_descending(es in edges(12, 18, 120)) {
        let g = Bigraph::from_edges(12, 18, &es);
        let hot = g.embeddings_by_hotness();
        prop_assert_eq!(hot.len(), 18);
        for w in hot.windows(2) {
            prop_assert!(g.emb_frequency(w[0]) >= g.emb_frequency(w[1]));
        }
    }

    #[test]
    fn gini_bounded(degrees in prop::collection::vec(0usize..1000, 1..200)) {
        let s = DegreeStats::from_degrees(&degrees);
        prop_assert!(s.gini >= -1e-9 && s.gini <= 1.0, "gini = {}", s.gini);
        prop_assert!(s.top1pct_mass >= 0.0 && s.top1pct_mass <= 1.0 + 1e-9);
        prop_assert!(s.top10pct_mass + 1e-9 >= s.top1pct_mass);
    }

    #[test]
    fn cooccurrence_symmetric(es in edges(10, 15, 80)) {
        let g = Bigraph::from_edges(10, 15, &es);
        let co = CooccurrenceGraph::build(&g, &CooccurrenceConfig {
            hot_exclude_fraction: 1.0,
            ..Default::default()
        });
        for u in 0..co.num_nodes() as u32 {
            let (nbrs, ws) = co.neighbors(u);
            for (&v, &w) in nbrs.iter().zip(ws) {
                let (vn, vw) = co.neighbors(v);
                let pos = vn.iter().position(|&x| x == u);
                prop_assert!(pos.is_some(), "edge {u}->{v} missing reverse");
                prop_assert_eq!(vw[pos.unwrap()], w);
            }
        }
    }

    #[test]
    fn diagonal_density_bounded(es in edges(10, 15, 80), k in 1usize..4) {
        let g = Bigraph::from_edges(10, 15, &es);
        let co = CooccurrenceGraph::build(&g, &CooccurrenceConfig {
            hot_exclude_fraction: 1.0,
            ..Default::default()
        });
        let assignment: Vec<u32> = (0..15u32).map(|i| i % k as u32).collect();
        let d = co.diagonal_density(&assignment, k);
        prop_assert!((0.0..=1.0).contains(&d), "density = {d}");
    }
}
