//! Communication and computation cost model.
//!
//! Time in this simulation is *charged*, not measured: workers run real
//! training math, and each operation (embedding fetch, gradient write-back,
//! AllReduce round, forward/backward pass, host↔device copy) advances the
//! worker's [`crate::SimClock`] by the amount this model predicts. The model
//! is deliberately simple — α-β (latency + size/bandwidth) per message plus a
//! FLOP-rate compute term — because the paper's phenomena are bandwidth
//! phenomena.

use std::sync::Arc;

use crate::fault::{FaultSchedule, RetryPolicy};
use crate::topology::{LinkClass, Topology, WorkerId};

/// Compute-side constants for one simulated accelerator.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    /// Sustained FLOP/s for dense math (fp32). RTX TITAN ≈ 16 TFLOP/s,
    /// V100 ≈ 14 TFLOP/s fp32; we use a common 14e12 default.
    pub flops_per_second: f64,
    /// Fixed per-batch kernel-launch/framework overhead, seconds.
    pub per_batch_overhead: f64,
    /// Bytes/second for embedding-table gather/scatter in device memory.
    pub memory_bandwidth: f64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        Self {
            flops_per_second: 14e12,
            per_batch_overhead: 30e-6,
            memory_bandwidth: 700e9,
        }
    }
}

impl ComputeModel {
    /// Time to execute `flops` floating point operations.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        self.per_batch_overhead + flops / self.flops_per_second
    }

    /// Time for a local gather/scatter of `bytes` in device memory.
    #[inline]
    pub fn local_access_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.memory_bandwidth
    }
}

/// Full cost model: a [`Topology`] plus a [`ComputeModel`].
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The interconnect.
    pub topology: Topology,
    /// The accelerator compute model.
    pub compute: ComputeModel,
    /// Injected link faults, consulted by the `*_at` variants. `None`
    /// means every link is permanently healthy.
    faults: Option<Arc<FaultSchedule>>,
}

impl CostModel {
    /// Creates a cost model with default compute constants.
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            compute: ComputeModel::default(),
            faults: None,
        }
    }

    /// Attaches a fault schedule: the time-aware transfer methods
    /// ([`CostModel::transfer_time_at`], [`CostModel::allreduce_time_at`])
    /// then honour link degradations and partitions active at the queried
    /// simulated instant.
    pub fn with_faults(mut self, faults: Arc<FaultSchedule>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// α-β time for one message of `bytes` from `src` to `dst`.
    pub fn transfer_time(&self, src: WorkerId, dst: WorkerId, bytes: u64) -> f64 {
        let link = self.topology.link(src, dst);
        link.latency() + bytes as f64 / link.bandwidth()
    }

    /// [`CostModel::transfer_time`] evaluated at simulated instant `now`,
    /// honouring any attached [`FaultSchedule`]. A degraded link multiplies
    /// the healthy α-β time; a partitioned link first costs a bounded
    /// exponential-backoff retry wait ([`RetryPolicy`]) until the partition
    /// heals, then the transfer at whatever slowdown is active at that
    /// point. Without a schedule this is exactly `transfer_time`.
    pub fn transfer_time_at(&self, src: WorkerId, dst: WorkerId, bytes: u64, now: f64) -> f64 {
        let base = self.transfer_time(src, dst, bytes);
        let Some(f) = &self.faults else { return base };
        if src == dst {
            return base;
        }
        if let Some(heal) = f.partition_heal_time(src, dst, now) {
            let policy = RetryPolicy::with_base(self.topology.link(src, dst).latency());
            let wait = policy.wait_for_heal(heal - now);
            return wait + f.degrade_factor(src, dst, now + wait) * base;
        }
        f.degrade_factor(src, dst, now) * base
    }

    /// Time for a message over an explicit link class (e.g. the CPU
    /// parameter-server host link used by the TF-PS / Parallax baselines).
    pub fn link_transfer_time(&self, link: LinkClass, bytes: u64) -> f64 {
        link.latency() + bytes as f64 / link.bandwidth()
    }

    /// AllReduce time for `bytes` of dense parameters across all workers:
    /// bandwidth term from the ring bound (`2·(N−1)/N · bytes` over the
    /// bottleneck link) plus a tree-depth latency term (`2·⌈log₂N⌉·α`) —
    /// NCCL pipelines ring chunks and switches to tree algorithms for
    /// latency-bound sizes, so charging the full `2(N−1)·α` serial-ring
    /// latency would be far too pessimistic.
    pub fn allreduce_time(&self, bytes: u64) -> f64 {
        let n = self.topology.num_workers();
        if n <= 1 {
            return 0.0;
        }
        let bw = self.topology.bottleneck_bandwidth();
        let bw_term = 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64 / bw;
        let depth = (n as f64).log2().ceil();
        let lat_term = 2.0 * depth * self.worst_latency();
        bw_term + lat_term
    }

    /// [`CostModel::allreduce_time`] evaluated at simulated instant `now`.
    /// The ring spans every link, so the collective runs at the worst
    /// active slowdown across worker pairs, and a partition anywhere stalls
    /// the whole ring until its heal (every worker blocks in a collective).
    pub fn allreduce_time_at(&self, bytes: u64, now: f64) -> f64 {
        let base = self.allreduce_time(bytes);
        let Some(f) = &self.faults else { return base };
        let n = self.topology.num_workers();
        let mut wait: f64 = 0.0;
        let mut factor: f64 = 1.0;
        for a in 0..n {
            for b in a + 1..n {
                if let Some(heal) = f.partition_heal_time(a, b, now) {
                    wait = wait.max(heal - now);
                }
            }
        }
        let resume = now + wait;
        for a in 0..n {
            for b in a + 1..n {
                factor = factor.max(f.degrade_factor(a, b, resume));
            }
        }
        wait + factor * base
    }

    /// AllGather time for `bytes` contributed per worker: `(N−1)` steps each
    /// moving `bytes` over the bottleneck link. Sparse AllReduce degenerates
    /// to this primitive (paper §3, "degenerates to inefficient AllGather").
    pub fn allgather_time(&self, bytes_per_worker: u64) -> f64 {
        let n = self.topology.num_workers();
        if n <= 1 {
            return 0.0;
        }
        let bw = self.topology.bottleneck_bandwidth();
        let steps = n - 1;
        steps as f64 * (self.worst_latency() + bytes_per_worker as f64 / bw)
    }

    fn worst_latency(&self) -> f64 {
        let n = self.topology.num_workers();
        let mut worst: f64 = 0.0;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    worst = worst.max(self.topology.link(a, b).latency());
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn compute_time_scales_with_flops() {
        let c = ComputeModel::default();
        let t1 = c.compute_time(1e9);
        let t2 = c.compute_time(2e9);
        assert!(t2 > t1);
        assert!(t1 > c.per_batch_overhead);
    }

    #[test]
    fn transfer_time_depends_on_link() {
        let m = CostModel::new(Topology::cluster_b_scaled(16));
        let nvlink = m.transfer_time(0, 1, 1 << 20);
        let qpi = m.transfer_time(0, 4, 1 << 20);
        let eth = m.transfer_time(0, 8, 1 << 20);
        assert!(nvlink < qpi && qpi < eth);
        // Local transfer is effectively free but not negative.
        let local = m.transfer_time(3, 3, 1 << 20);
        assert!(local >= 0.0 && local < nvlink);
    }

    #[test]
    fn allreduce_zero_for_single_worker() {
        let m = CostModel::new(Topology::cluster_b_scaled(1));
        assert_eq!(m.allreduce_time(1 << 30), 0.0);
        assert_eq!(m.allgather_time(1 << 30), 0.0);
    }

    #[test]
    fn allreduce_bottlenecked_by_slowest_link() {
        let fast = CostModel::new(Topology::nvlink_island(8));
        let slow = CostModel::new(Topology::cluster_b_scaled(16));
        let bytes = 64 << 20;
        assert!(slow.allreduce_time(bytes) > fast.allreduce_time(bytes));
    }

    #[test]
    fn allgather_more_expensive_than_allreduce_for_same_payload() {
        // AllGather moves the full per-worker payload each step; ring
        // AllReduce moves 1/N per step. For N ≥ 3 and sizeable payloads,
        // AllGather of B/worker costs more than AllReduce of B total.
        let m = CostModel::new(Topology::pcie_island(8));
        let bytes = 32 << 20;
        assert!(m.allgather_time(bytes) > m.allreduce_time(bytes));
    }

    #[test]
    fn allreduce_scales_sublinearly_with_workers() {
        // Ring AllReduce total time approaches 2·B/bw regardless of N.
        let m4 = CostModel::new(Topology::pcie_island(4));
        let m8 = CostModel::new(Topology::pcie_island(8));
        let bytes = 256 << 20;
        let t4 = m4.allreduce_time(bytes);
        let t8 = m8.allreduce_time(bytes);
        assert!((t8 - t4).abs() / t4 < 0.35, "t4={t4} t8={t8}");
    }

    #[test]
    fn host_link_transfer() {
        let m = CostModel::new(Topology::pcie_island(4));
        let t = m.link_transfer_time(LinkClass::HostPcie, 1 << 20);
        assert!(t > 0.0);
    }

    #[test]
    fn faultless_at_variants_match_base() {
        let m = CostModel::new(Topology::pcie_island(4));
        assert_eq!(m.transfer_time_at(0, 1, 1 << 20, 5.0), m.transfer_time(0, 1, 1 << 20));
        assert_eq!(m.allreduce_time_at(1 << 20, 5.0), m.allreduce_time(1 << 20));
    }

    #[test]
    fn degraded_link_slows_transfers_only_in_window() {
        let f = FaultSchedule::parse("degrade@0-1:1.0:1.0:8", 4, 0).unwrap();
        let m = CostModel::new(Topology::pcie_island(4)).with_faults(Arc::new(f));
        let healthy = m.transfer_time(0, 1, 1 << 20);
        assert_eq!(m.transfer_time_at(0, 1, 1 << 20, 0.5), healthy);
        assert_eq!(m.transfer_time_at(0, 1, 1 << 20, 1.5), 8.0 * healthy);
        assert_eq!(m.transfer_time_at(0, 1, 1 << 20, 2.5), healthy);
        // Other pairs unaffected.
        assert_eq!(m.transfer_time_at(2, 3, 1 << 20, 1.5), m.transfer_time(2, 3, 1 << 20));
        // The collective sees the worst pair.
        assert!(m.allreduce_time_at(1 << 20, 1.5) > m.allreduce_time(1 << 20));
    }

    #[test]
    fn partitioned_link_charges_backoff_until_heal() {
        let f = FaultSchedule::parse("partition@0-1:0.0:0.5", 4, 0).unwrap();
        let m = CostModel::new(Topology::pcie_island(4)).with_faults(Arc::new(f));
        let healthy = m.transfer_time(0, 1, 1 << 20);
        let t = m.transfer_time_at(0, 1, 1 << 20, 0.1);
        // Must at least wait out the 0.4 s of remaining outage, then pay the
        // healthy transfer.
        assert!(t >= 0.4 + healthy, "t = {t}");
        // After the heal the link is healthy again.
        assert_eq!(m.transfer_time_at(0, 1, 1 << 20, 0.6), healthy);
        // An allreduce during the outage parks the whole ring.
        assert!(m.allreduce_time_at(1 << 20, 0.1) >= 0.4);
    }
}
