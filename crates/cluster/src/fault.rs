//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultSchedule`] is a seeded, fully deterministic list of events in
//! *simulated* time: worker crashes and stalls, and link degradations or
//! partitions over a time window. The trainer consults the schedule at
//! iteration boundaries (workers) and the cost model consults it per
//! transfer (links), so the same spec + seed always reproduces the same
//! run — faults are part of the experiment, not noise.
//!
//! # Spec grammar
//!
//! A spec is a `;`-separated list of clauses:
//!
//! ```text
//! crash@W:T            worker W crashes at simulated time T (seconds)
//! stall@W:T:D          worker W stalls for D seconds starting at T
//! degrade@A-B:T:D:F    link A↔B runs F× slower during [T, T+D)
//! partition@A-B:T:D    link A↔B drops every message during [T, T+D)
//! restart=S            recovery restart overhead in seconds (default 0.002)
//! ```
//!
//! `W`, `A`, `B` are worker indices; `W` may be `*`, which resolves to a
//! worker picked deterministically from the schedule seed (so a fault
//! matrix can say "crash someone" without hand-picking the victim). Link
//! clauses are symmetric: `degrade@0-1` affects traffic in both directions.
//!
//! ```
//! use hetgmp_cluster::FaultSchedule;
//! let f = FaultSchedule::parse("crash@*:0.5; degrade@0-1:0.2:0.3:8", 4, 42).unwrap();
//! assert!(f.has_crashes());
//! assert_eq!(f.degrade_factor(1, 0, 0.25), 8.0);
//! assert_eq!(f.degrade_factor(1, 0, 0.55), 1.0);
//! ```

/// What happens to a worker at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerFaultKind {
    /// The worker process dies and must restore from the last checkpoint.
    Crash,
    /// The worker freezes for the given number of simulated seconds
    /// (GC pause, thermal throttle, preemption) but loses no state.
    Stall {
        /// Stall length in simulated seconds.
        duration: f64,
    },
}

/// One scheduled worker fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerFault {
    /// Simulated time at which the fault fires. Workers act on it at the
    /// first iteration boundary at or after this instant.
    pub at: f64,
    /// Crash or stall.
    pub kind: WorkerFaultKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LinkFaultKind {
    /// Transfers take `factor`× the healthy time.
    Degrade { factor: f64 },
    /// No message gets through until the window closes.
    Partition,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkFault {
    a: usize,
    b: usize,
    from: f64,
    until: f64,
    kind: LinkFaultKind,
}

impl LinkFault {
    fn covers(&self, a: usize, b: usize, now: f64) -> bool {
        let pair = (self.a == a && self.b == b) || (self.a == b && self.b == a);
        pair && now >= self.from && now < self.until
    }
}

/// Bounded exponential backoff against an unreachable peer: attempts are
/// spaced `base, 2·base, 4·base, …` apart, up to `max_attempts`. Senders
/// facing a partitioned link retry on this schedule; if the budget runs out
/// before the link heals they park until the heal (the deterministic
/// analogue of "retry forever with capped backoff").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First backoff interval, seconds (typically the link latency).
    pub base: f64,
    /// Maximum number of retry attempts before parking.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// The default policy: retries double from `base` up to 16 attempts.
    pub fn with_base(base: f64) -> Self {
        Self {
            base: base.max(1e-7),
            max_attempts: 16,
        }
    }

    /// Seconds a sender spends before its first successful attempt when the
    /// peer becomes reachable again `outage` seconds from now. Closed form:
    /// the first attempt scheduled at or after the heal succeeds; if every
    /// attempt in the budget lands inside the outage, the sender parks
    /// until the heal itself.
    pub fn wait_for_heal(&self, outage: f64) -> f64 {
        if outage <= 0.0 {
            return 0.0;
        }
        let mut waited = 0.0;
        let mut backoff = self.base;
        for _ in 0..self.max_attempts {
            waited += backoff;
            if waited >= outage {
                return waited;
            }
            backoff *= 2.0;
        }
        outage
    }
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    num_workers: usize,
    seed: u64,
    /// Per-worker faults, sorted by time.
    worker_faults: Vec<Vec<WorkerFault>>,
    link_faults: Vec<LinkFault>,
    restart_overhead: f64,
}

impl FaultSchedule {
    /// An empty schedule for `num_workers` workers (injects nothing).
    pub fn empty(num_workers: usize) -> Self {
        Self {
            num_workers,
            seed: 0,
            worker_faults: vec![Vec::new(); num_workers],
            link_faults: Vec::new(),
            restart_overhead: 0.002,
        }
    }

    /// Parses a fault spec (see the module docs for the grammar). `seed`
    /// resolves `*` worker wildcards deterministically.
    pub fn parse(spec: &str, num_workers: usize, seed: u64) -> Result<Self, String> {
        let mut schedule = Self::empty(num_workers);
        schedule.seed = seed;
        for (idx, raw) in spec.split(';').enumerate() {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("restart=") {
                let secs = parse_secs(v, clause)?;
                schedule.restart_overhead = secs;
                continue;
            }
            let (kind, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("clause {clause:?}: expected KIND@TARGET:ARGS"))?;
            match kind {
                "crash" => {
                    let (w, args) = split_target(rest, clause)?;
                    let w = schedule.resolve_worker(w, idx, clause)?;
                    let at = parse_one_time(args, clause)?;
                    schedule.worker_faults[w].push(WorkerFault {
                        at,
                        kind: WorkerFaultKind::Crash,
                    });
                }
                "stall" => {
                    let (w, args) = split_target(rest, clause)?;
                    let w = schedule.resolve_worker(w, idx, clause)?;
                    let (at, duration) = parse_two_times(args, clause)?;
                    schedule.worker_faults[w].push(WorkerFault {
                        at,
                        kind: WorkerFaultKind::Stall { duration },
                    });
                }
                "degrade" => {
                    let (pair, args) = split_target(rest, clause)?;
                    let (a, b) = schedule.parse_pair(pair, clause)?;
                    let parts: Vec<&str> = args.split(':').collect();
                    if parts.len() != 3 {
                        return Err(format!("clause {clause:?}: expected A-B:T:D:F"));
                    }
                    let from = parse_secs(parts[0], clause)?;
                    let dur = parse_positive_secs(parts[1], clause)?;
                    let factor: f64 = parts[2]
                        .parse()
                        .map_err(|_| format!("clause {clause:?}: bad factor {:?}", parts[2]))?;
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(format!(
                            "clause {clause:?}: slowdown factor must be finite and ≥ 1"
                        ));
                    }
                    schedule.link_faults.push(LinkFault {
                        a,
                        b,
                        from,
                        until: from + dur,
                        kind: LinkFaultKind::Degrade { factor },
                    });
                }
                "partition" => {
                    let (pair, args) = split_target(rest, clause)?;
                    let (a, b) = schedule.parse_pair(pair, clause)?;
                    let (from, dur) = parse_two_times(args, clause)?;
                    schedule.link_faults.push(LinkFault {
                        a,
                        b,
                        from,
                        until: from + dur,
                        kind: LinkFaultKind::Partition,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (crash|stall|degrade|partition|restart=)"
                    ))
                }
            }
        }
        for list in &mut schedule.worker_faults {
            list.sort_by(|x, y| x.at.partial_cmp(&y.at).expect("finite times"));
        }
        Ok(schedule)
    }

    fn resolve_worker(&self, token: &str, clause_idx: usize, clause: &str) -> Result<usize, String> {
        if token == "*" {
            if self.num_workers == 0 {
                return Err("no workers to pick from".into());
            }
            return Ok((splitmix64(self.seed ^ clause_idx as u64) % self.num_workers as u64)
                as usize);
        }
        let w: usize = token
            .parse()
            .map_err(|_| format!("clause {clause:?}: bad worker {token:?}"))?;
        if w >= self.num_workers {
            return Err(format!(
                "clause {clause:?}: worker {w} out of range (have {})",
                self.num_workers
            ));
        }
        Ok(w)
    }

    fn parse_pair(&self, token: &str, clause: &str) -> Result<(usize, usize), String> {
        let (a, b) = token
            .split_once('-')
            .ok_or_else(|| format!("clause {clause:?}: expected a worker pair A-B"))?;
        let a = self.resolve_worker(a, 0, clause)?;
        let b = self.resolve_worker(b, 0, clause)?;
        if a == b {
            return Err(format!("clause {clause:?}: link endpoints must differ"));
        }
        Ok((a, b))
    }

    /// Workers this schedule was built for.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The faults scheduled for worker `w`, sorted by time.
    pub fn worker_faults(&self, w: usize) -> &[WorkerFault] {
        &self.worker_faults[w]
    }

    /// Whether any worker is scheduled to crash.
    pub fn has_crashes(&self) -> bool {
        self.worker_faults
            .iter()
            .flatten()
            .any(|f| matches!(f.kind, WorkerFaultKind::Crash))
    }

    /// Whether the schedule injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.worker_faults.iter().all(Vec::is_empty) && self.link_faults.is_empty()
    }

    /// Fixed process-restart overhead charged on crash recovery, seconds.
    pub fn restart_overhead(&self) -> f64 {
        self.restart_overhead
    }

    /// The worst active slowdown on link `a↔b` at `now` (1.0 = healthy).
    /// Partitions are reported separately by [`FaultSchedule::partition_heal_time`].
    pub fn degrade_factor(&self, a: usize, b: usize, now: f64) -> f64 {
        self.link_faults
            .iter()
            .filter(|f| f.covers(a, b, now))
            .filter_map(|f| match f.kind {
                LinkFaultKind::Degrade { factor } => Some(factor),
                LinkFaultKind::Partition => None,
            })
            .fold(1.0, f64::max)
    }

    /// If link `a↔b` is partitioned at `now`, the simulated time at which it
    /// heals (the latest end among active partition windows).
    pub fn partition_heal_time(&self, a: usize, b: usize, now: f64) -> Option<f64> {
        let mut heal: Option<f64> = None;
        // A message that parks until one window closes may land inside
        // another; chase windows until a gap is found.
        let mut t = now;
        loop {
            let next = self
                .link_faults
                .iter()
                .filter(|f| matches!(f.kind, LinkFaultKind::Partition) && f.covers(a, b, t))
                .map(|f| f.until)
                .fold(f64::NEG_INFINITY, f64::max);
            if next == f64::NEG_INFINITY {
                return heal;
            }
            heal = Some(next);
            t = next;
        }
    }
}

fn split_target<'s>(rest: &'s str, clause: &str) -> Result<(&'s str, &'s str), String> {
    rest.split_once(':')
        .ok_or_else(|| format!("clause {clause:?}: expected TARGET:ARGS"))
}

fn parse_secs(token: &str, clause: &str) -> Result<f64, String> {
    let v: f64 = token
        .parse()
        .map_err(|_| format!("clause {clause:?}: bad time {token:?}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("clause {clause:?}: times must be finite and ≥ 0"));
    }
    Ok(v)
}

fn parse_positive_secs(token: &str, clause: &str) -> Result<f64, String> {
    let v = parse_secs(token, clause)?;
    if v <= 0.0 {
        return Err(format!("clause {clause:?}: duration must be positive"));
    }
    Ok(v)
}

fn parse_one_time(args: &str, clause: &str) -> Result<f64, String> {
    if args.contains(':') {
        return Err(format!("clause {clause:?}: expected a single time"));
    }
    parse_secs(args, clause)
}

fn parse_two_times(args: &str, clause: &str) -> Result<(f64, f64), String> {
    let (t, d) = args
        .split_once(':')
        .ok_or_else(|| format!("clause {clause:?}: expected T:D"))?;
    Ok((parse_secs(t, clause)?, parse_positive_secs(d, clause)?))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_kind() {
        let f = FaultSchedule::parse(
            "crash@1:0.5; stall@0:0.2:0.1; degrade@0-2:0.1:0.4:4; partition@1-3:0.3:0.2; restart=0.01",
            4,
            7,
        )
        .unwrap();
        assert_eq!(f.worker_faults(1).len(), 1);
        assert_eq!(f.worker_faults(0).len(), 1);
        assert!(f.has_crashes());
        assert!(!f.is_empty());
        assert_eq!(f.restart_overhead(), 0.01);
        assert_eq!(f.degrade_factor(2, 0, 0.2), 4.0);
        assert_eq!(f.degrade_factor(2, 0, 0.6), 1.0);
        assert_eq!(f.partition_heal_time(3, 1, 0.35), Some(0.5));
        assert_eq!(f.partition_heal_time(3, 1, 0.55), None);
        // Unaffected pair.
        assert_eq!(f.degrade_factor(0, 1, 0.2), 1.0);
    }

    #[test]
    fn wildcard_is_deterministic_in_seed() {
        let a = FaultSchedule::parse("crash@*:1.0", 8, 123).unwrap();
        let b = FaultSchedule::parse("crash@*:1.0", 8, 123).unwrap();
        assert_eq!(a, b);
        let victim_a = (0..8).find(|&w| !a.worker_faults(w).is_empty()).unwrap();
        // A different seed is free to pick a different victim, but some
        // worker is always picked.
        let c = FaultSchedule::parse("crash@*:1.0", 8, 124).unwrap();
        assert!((0..8).any(|w| !c.worker_faults(w).is_empty()));
        assert!(victim_a < 8);
    }

    #[test]
    fn faults_sorted_by_time() {
        let f =
            FaultSchedule::parse("stall@0:0.9:0.1; crash@0:0.2; stall@0:0.5:0.1", 2, 1).unwrap();
        let times: Vec<f64> = f.worker_faults(0).iter().map(|e| e.at).collect();
        assert_eq!(times, vec![0.2, 0.5, 0.9]);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(FaultSchedule::parse("crash@9:1.0", 4, 0).is_err()); // out of range
        assert!(FaultSchedule::parse("explode@0:1.0", 4, 0).is_err()); // unknown kind
        assert!(FaultSchedule::parse("crash@0", 4, 0).is_err()); // missing time
        assert!(FaultSchedule::parse("stall@0:1.0:0", 4, 0).is_err()); // zero duration
        assert!(FaultSchedule::parse("degrade@0-0:0:1:2", 4, 0).is_err()); // self link
        assert!(FaultSchedule::parse("degrade@0-1:0:1:0.5", 4, 0).is_err()); // speedup
        assert!(FaultSchedule::parse("crash@0:-1", 4, 0).is_err()); // negative time
        assert!(FaultSchedule::parse("crash@0:nan", 4, 0).is_err());
    }

    #[test]
    fn empty_and_whitespace_clauses_ignored() {
        let f = FaultSchedule::parse(" ; crash@0:1.0 ;; ", 2, 0).unwrap();
        assert_eq!(f.worker_faults(0).len(), 1);
        assert!(FaultSchedule::parse("", 2, 0).unwrap().is_empty());
    }

    #[test]
    fn overlapping_partitions_chain() {
        // Two windows overlapping: a message parked at 0.1 must wait for the
        // later heal at 0.6, not the first at 0.4.
        let f = FaultSchedule::parse("partition@0-1:0.0:0.4; partition@0-1:0.3:0.3", 2, 0)
            .unwrap();
        assert_eq!(f.partition_heal_time(0, 1, 0.1), Some(0.6));
    }

    #[test]
    fn retry_policy_backoff_bounds() {
        let p = RetryPolicy::with_base(0.001);
        // Heals immediately: first attempt (one base interval) succeeds.
        assert!((p.wait_for_heal(0.0005) - 0.001).abs() < 1e-12);
        // Heals after 0.005: attempts at 0.001, 0.003, 0.007 → 0.007.
        assert!((p.wait_for_heal(0.005) - 0.007).abs() < 1e-12);
        // Outage far beyond the budget: park until the heal.
        let huge = 1e6;
        assert_eq!(p.wait_for_heal(huge), huge);
        // Waiting never undershoots the outage.
        for outage in [0.0001, 0.01, 1.0, 100.0] {
            assert!(p.wait_for_heal(outage) >= outage);
        }
    }
}
