#![warn(missing_docs)]

//! # hetgmp-cluster
//!
//! Simulated GPU-cluster substrate for the HET-GMP reproduction.
//!
//! The paper evaluates on two real clusters:
//!
//! * **Cluster A** — nodes of 8× RTX TITAN (24 GB) on PCIe 3.0, 1 Gb Ethernet;
//! * **Cluster B** — nodes of 8× Tesla V100 (32 GB) with NVLink, 10 Gb
//!   Ethernet (QPI across sockets).
//!
//! No GPUs are available here, so this crate provides the *substitute*: an
//! explicit interconnect model. Every experiment in the paper is, at heart, a
//! statement about communication volume crossing links of uneven bandwidth —
//! so we model workers, machines, link classes ([`LinkClass`]), a bandwidth
//! matrix, per-message latency, and a deterministic per-worker simulated
//! clock ([`SimClock`]). Training math runs for real on CPU threads;
//! *time* is charged against this model, preserving the relative ordering and
//! crossover points the paper reports (who wins, by what factor, and where
//! scaling collapses) even though absolute seconds differ from the testbed.
//!
//! The partitioner's heterogeneity-aware weighted edge-cut (paper §5.2) takes
//! its weight matrix directly from [`Topology::weight_matrix`].

pub mod cost;
pub mod fault;
pub mod simclock;
pub mod topology;

pub use cost::{ComputeModel, CostModel};
pub use fault::{FaultSchedule, RetryPolicy, WorkerFault, WorkerFaultKind};
pub use simclock::{SimClock, TimeBreakdown, TimeCategory};
pub use topology::{LinkClass, Topology, WorkerId};
