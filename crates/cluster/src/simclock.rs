//! Deterministic per-worker simulated clocks.
//!
//! Each worker thread owns a [`SimClock`]; every charged operation advances
//! it and is attributed to a category so experiments can report the paper's
//! communication-vs-computation breakdowns (Figures 1 and 8).
//!
//! A clock can be attached to a telemetry [`Recorder`]
//! ([`SimClock::attach_recorder`]): each charge is then also observed into
//! the `time.<category>_secs` histograms and the simulated position is
//! mirrored to the `clock.now_secs` gauge, so unified snapshots carry the
//! same breakdown this type reports directly.

use hetgmp_telemetry::{names, Recorder, SimTimeCell};
use std::sync::Arc;

/// Categories of charged time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeCategory {
    /// Dense DNN forward + backward compute.
    Compute,
    /// Remote embedding/gradient transfer (the dominant cost in the paper).
    EmbedComm,
    /// Sparse index + clock metadata exchange.
    MetaComm,
    /// Dense-parameter AllReduce.
    AllReduceComm,
    /// Host↔device input pipeline.
    HostIo,
    /// Injected-fault downtime: stalls, lost-work replay, crash-recovery
    /// restore and restart overhead.
    Fault,
}

impl TimeCategory {
    /// Telemetry histogram name charges to this category observe into.
    pub fn metric(self) -> &'static str {
        match self {
            TimeCategory::Compute => "time.compute_secs",
            TimeCategory::EmbedComm => "time.embed_comm_secs",
            TimeCategory::MetaComm => "time.meta_comm_secs",
            TimeCategory::AllReduceComm => "time.allreduce_comm_secs",
            TimeCategory::HostIo => "time.host_io_secs",
            TimeCategory::Fault => "time.fault_secs",
        }
    }
}

/// Aggregated per-category time for one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Dense compute seconds.
    pub compute: f64,
    /// Embedding data communication seconds.
    pub embed_comm: f64,
    /// Keys/clocks metadata communication seconds.
    pub meta_comm: f64,
    /// Dense AllReduce seconds.
    pub allreduce_comm: f64,
    /// Input-pipeline seconds.
    pub host_io: f64,
    /// Injected-fault downtime seconds (stalls + crash recovery).
    pub fault: f64,
}

impl TimeBreakdown {
    /// Total time across every category.
    pub fn total(&self) -> f64 {
        self.compute
            + self.embed_comm
            + self.meta_comm
            + self.allreduce_comm
            + self.host_io
            + self.fault
    }

    /// Communication time only (everything except compute and host IO).
    pub fn communication(&self) -> f64 {
        self.embed_comm + self.meta_comm + self.allreduce_comm
    }

    /// Communication time as a fraction of total (the paper's Figure 1
    /// y-axis). Returns 0 for an empty breakdown.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.communication() / total
        }
    }

    /// Element-wise sum with another breakdown.
    pub fn merged(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute: self.compute + other.compute,
            embed_comm: self.embed_comm + other.embed_comm,
            meta_comm: self.meta_comm + other.meta_comm,
            allreduce_comm: self.allreduce_comm + other.allreduce_comm,
            host_io: self.host_io + other.host_io,
            fault: self.fault + other.fault,
        }
    }
}

/// A worker's simulated wall clock.
///
/// `now` is the worker's position in simulated time; the breakdown records
/// how that time was spent. Overlap of communication with computation (paper
/// §6, "Asynchronous Execution") is modelled by [`SimClock::advance_overlapped`],
/// which charges only the *excess* of communication time beyond the compute
/// it hides behind, while still attributing the full duration in the
/// breakdown (so Figure 1/8-style accounting reports the raw cost).
#[derive(Clone, Default)]
pub struct SimClock {
    now: f64,
    breakdown: TimeBreakdown,
    /// Seconds of overlappable charges actually hidden behind their compute
    /// windows (the part of `advance_overlapped` that did not advance `now`).
    hidden: f64,
    /// Total seconds submitted through `advance_overlapped`, hidden or not.
    charged_overlappable: f64,
    recorder: Option<Arc<dyn Recorder>>,
    cell: SimTimeCell,
}

impl std::fmt::Debug for SimClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimClock")
            .field("now", &self.now)
            .field("breakdown", &self.breakdown)
            .field("recorder", &self.recorder.as_ref().map(|_| "attached"))
            .finish()
    }
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock at time zero reporting every charge to `recorder`.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            recorder: Some(recorder),
            ..Self::default()
        }
    }

    /// Attaches a telemetry recorder; subsequent charges are observed into
    /// `time.*_secs` histograms and `clock.now_secs`.
    pub fn attach_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// A shared cell mirroring this clock's position, for simulated-time
    /// spans ([`hetgmp_telemetry::SpanGuard`]) and other observers that
    /// cannot borrow the `&mut` clock. Clones share the cell.
    pub fn time_cell(&self) -> SimTimeCell {
        self.cell.clone()
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Per-category totals.
    #[inline]
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }

    /// Advances the clock by `seconds`, attributed to `category`.
    pub fn advance(&mut self, category: TimeCategory, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative time charge: {seconds}");
        self.now += seconds;
        self.attribute(category, seconds);
    }

    /// Advances by communication time that can hide behind `compute_window`
    /// seconds of already-charged compute: wall-clock advances by
    /// `max(0, seconds − compute_window)`, but the full `seconds` is
    /// attributed to `category` in the breakdown.
    pub fn advance_overlapped(
        &mut self,
        category: TimeCategory,
        seconds: f64,
        compute_window: f64,
    ) {
        debug_assert!(seconds >= 0.0 && compute_window >= 0.0);
        self.now += (seconds - compute_window).max(0.0);
        self.hidden += seconds.min(compute_window);
        self.charged_overlappable += seconds;
        self.attribute(category, seconds);
    }

    /// Seconds of overlappable charges fully hidden behind their compute
    /// windows (deterministic — derived from simulated charges only).
    #[inline]
    pub fn hidden_secs(&self) -> f64 {
        self.hidden
    }

    /// Total seconds submitted through [`SimClock::advance_overlapped`],
    /// hidden or not — the denominator of [`SimClock::overlap_ratio`].
    pub fn overlappable_secs(&self) -> f64 {
        self.charged_overlappable
    }

    /// Fraction of overlappable seconds that were hidden: the pipeline's
    /// `pipeline.overlap_ratio`. 0 when nothing overlappable was charged.
    pub fn overlap_ratio(&self) -> f64 {
        if self.charged_overlappable == 0.0 {
            0.0
        } else {
            self.hidden / self.charged_overlappable
        }
    }

    /// Synchronisation barrier: jumps this clock forward to `other_time` if
    /// it is behind (used for BSP barriers and blocking reads).
    pub fn wait_until(&mut self, other_time: f64) {
        if other_time > self.now {
            self.now = other_time;
            self.cell.set(self.now);
            if let Some(r) = &self.recorder {
                r.gauge_set(names::CLOCK_NOW, self.now);
            }
        }
    }

    fn attribute(&mut self, category: TimeCategory, seconds: f64) {
        match category {
            TimeCategory::Compute => self.breakdown.compute += seconds,
            TimeCategory::EmbedComm => self.breakdown.embed_comm += seconds,
            TimeCategory::MetaComm => self.breakdown.meta_comm += seconds,
            TimeCategory::AllReduceComm => self.breakdown.allreduce_comm += seconds,
            TimeCategory::HostIo => self.breakdown.host_io += seconds,
            TimeCategory::Fault => self.breakdown.fault += seconds,
        }
        self.cell.set(self.now);
        if let Some(r) = &self.recorder {
            r.histogram_observe(category.metric(), seconds);
            r.gauge_set(names::CLOCK_NOW, self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(TimeCategory::Compute, 1.0);
        c.advance(TimeCategory::EmbedComm, 2.0);
        c.advance(TimeCategory::MetaComm, 0.5);
        assert_eq!(c.now(), 3.5);
        assert_eq!(c.breakdown().compute, 1.0);
        assert_eq!(c.breakdown().embed_comm, 2.0);
        assert_eq!(c.breakdown().total(), 3.5);
    }

    #[test]
    fn comm_fraction_matches_paper_definition() {
        let mut c = SimClock::new();
        c.advance(TimeCategory::Compute, 1.0);
        c.advance(TimeCategory::EmbedComm, 8.0);
        c.advance(TimeCategory::AllReduceComm, 1.0);
        assert!((c.breakdown().comm_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_comm_fraction_is_zero() {
        assert_eq!(SimClock::new().breakdown().comm_fraction(), 0.0);
    }

    #[test]
    fn overlap_hides_communication() {
        let mut c = SimClock::new();
        c.advance(TimeCategory::Compute, 2.0);
        // 3 seconds of comm overlapping a 2-second compute window: only 1s of
        // wall time, but the breakdown records all 3.
        c.advance_overlapped(TimeCategory::EmbedComm, 3.0, 2.0);
        assert_eq!(c.now(), 3.0);
        assert_eq!(c.breakdown().embed_comm, 3.0);
        // Fully hidden comm advances nothing.
        c.advance_overlapped(TimeCategory::EmbedComm, 0.5, 1.0);
        assert_eq!(c.now(), 3.0);
        // Overlap accounting: 2.0 of the first charge + all 0.5 of the
        // second were hidden, out of 3.5 overlappable seconds.
        assert_eq!(c.hidden_secs(), 2.5);
        assert!((c.overlap_ratio() - 2.5 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_empty_is_zero() {
        let mut c = SimClock::new();
        assert_eq!(c.overlap_ratio(), 0.0);
        // Plain advances don't count as overlappable.
        c.advance(TimeCategory::EmbedComm, 4.0);
        assert_eq!(c.overlap_ratio(), 0.0);
        assert_eq!(c.hidden_secs(), 0.0);
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let mut c = SimClock::new();
        c.advance(TimeCategory::Compute, 5.0);
        c.wait_until(3.0);
        assert_eq!(c.now(), 5.0);
        c.wait_until(7.5);
        assert_eq!(c.now(), 7.5);
    }

    #[test]
    fn recorder_sees_same_breakdown() {
        use hetgmp_telemetry::MemoryRecorder;
        let rec = Arc::new(MemoryRecorder::new());
        let mut c = SimClock::with_recorder(rec.clone());
        c.advance(TimeCategory::Compute, 1.5);
        c.advance(TimeCategory::EmbedComm, 2.0);
        c.advance_overlapped(TimeCategory::EmbedComm, 3.0, 1.0);
        c.wait_until(100.0);
        let snap = rec.snapshot();
        assert!((snap.histogram("time.compute_secs").sum - c.breakdown().compute).abs() < 1e-12);
        assert!(
            (snap.histogram("time.embed_comm_secs").sum - c.breakdown().embed_comm).abs() < 1e-12
        );
        assert_eq!(snap.gauge("clock.now_secs"), Some(c.now()));
    }

    #[test]
    fn time_cell_tracks_the_clock() {
        let mut c = SimClock::new();
        let cell = c.time_cell();
        assert_eq!(cell.get(), 0.0);
        c.advance(TimeCategory::Compute, 2.0);
        assert_eq!(cell.get(), 2.0);
        c.wait_until(5.0);
        assert_eq!(cell.get(), 5.0);
        // Simulated-time spans read the same cell.
        use hetgmp_telemetry::{MemoryRecorder, SpanGuard};
        let rec = MemoryRecorder::new();
        {
            let _g = SpanGuard::with_clock(&rec, "time.batch_secs", c.time_cell());
            c.advance(TimeCategory::EmbedComm, 1.5);
        }
        let h = rec.snapshot().histogram("time.batch_secs");
        assert_eq!(h.count, 1);
        assert!((h.sum - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fault_time_counts_in_total_not_communication() {
        let mut c = SimClock::new();
        c.advance(TimeCategory::Fault, 2.0);
        c.advance(TimeCategory::Compute, 1.0);
        assert_eq!(c.breakdown().fault, 2.0);
        assert_eq!(c.breakdown().total(), 3.0);
        assert_eq!(c.breakdown().communication(), 0.0);
        assert_eq!(TimeCategory::Fault.metric(), "time.fault_secs");
        let merged = c.breakdown().merged(c.breakdown());
        assert_eq!(merged.fault, 4.0);
    }

    #[test]
    fn merged_breakdowns() {
        let mut a = SimClock::new();
        a.advance(TimeCategory::Compute, 1.0);
        let mut b = SimClock::new();
        b.advance(TimeCategory::HostIo, 2.0);
        let m = a.breakdown().merged(b.breakdown());
        assert_eq!(m.compute, 1.0);
        assert_eq!(m.host_io, 2.0);
        assert_eq!(m.total(), 3.0);
    }
}
