//! Interconnect topology: workers, machines, sockets, link classes.

/// Index of a worker (one simulated GPU) in the cluster.
pub type WorkerId = usize;

/// Classes of inter-worker links, ordered roughly by bandwidth.
///
/// Bandwidths are nominal effective values (GB/s) for the hardware the paper
/// uses; latencies are per-message. These need only be *relatively* right —
/// every experiment compares strategies on the same topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// A worker talking to itself (local GPU memory); effectively free.
    Local,
    /// NVLink between GPUs on the same board/socket.
    NvLink,
    /// PCIe 3.0 x16 between GPUs under the same PCIe switch / socket.
    Pcie3,
    /// QPI/UPI across CPU sockets within one machine.
    Qpi,
    /// 10 Gb Ethernet between machines (cluster B).
    Ethernet10G,
    /// 1 Gb Ethernet between machines (cluster A).
    Ethernet1G,
    /// GPU ↔ CPU-host link (PCIe); used by CPU parameter-server baselines.
    HostPcie,
}

impl LinkClass {
    /// Effective bandwidth in bytes/second.
    pub fn bandwidth(self) -> f64 {
        const GB: f64 = 1e9;
        match self {
            LinkClass::Local => 900.0 * GB, // HBM2-class local memory
            LinkClass::NvLink => 100.0 * GB,
            LinkClass::Pcie3 => 12.0 * GB,
            LinkClass::Qpi => 8.0 * GB,
            LinkClass::Ethernet10G => 1.1 * GB,
            LinkClass::Ethernet1G => 0.11 * GB,
            LinkClass::HostPcie => 10.0 * GB,
        }
    }

    /// Stable lowercase label, used as the trace-timeline track name for
    /// this link class.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::Local => "local",
            LinkClass::NvLink => "nvlink",
            LinkClass::Pcie3 => "pcie3",
            LinkClass::Qpi => "qpi",
            LinkClass::Ethernet10G => "ethernet_10g",
            LinkClass::Ethernet1G => "ethernet_1g",
            LinkClass::HostPcie => "host_pcie",
        }
    }

    /// Per-message latency in seconds.
    pub fn latency(self) -> f64 {
        match self {
            LinkClass::Local => 0.0,
            LinkClass::NvLink => 3e-6,
            LinkClass::Pcie3 => 6e-6,
            LinkClass::Qpi => 8e-6,
            LinkClass::Ethernet10G => 4e-5,
            LinkClass::Ethernet1G => 8e-5,
            LinkClass::HostPcie => 1e-5,
        }
    }
}

/// Placement of one worker inside the cluster hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Machine (node) index.
    pub machine: usize,
    /// CPU-socket index within the machine (NVLink/PCIe islands).
    pub socket: usize,
}

/// A cluster topology: workers placed on machines/sockets plus the link
/// classes used at each hierarchy level.
#[derive(Debug, Clone)]
pub struct Topology {
    placements: Vec<Placement>,
    intra_socket: LinkClass,
    intra_machine: LinkClass,
    inter_machine: LinkClass,
    /// Human-readable name (used in experiment output).
    pub name: String,
}

impl Topology {
    /// Builds a topology from explicit placements and level link classes.
    pub fn new(
        name: impl Into<String>,
        placements: Vec<Placement>,
        intra_socket: LinkClass,
        intra_machine: LinkClass,
        inter_machine: LinkClass,
    ) -> Self {
        Self {
            placements,
            intra_socket,
            intra_machine,
            inter_machine,
            name: name.into(),
        }
    }

    /// A regular topology: `machines × sockets_per_machine ×
    /// workers_per_socket` workers.
    pub fn regular(
        name: impl Into<String>,
        machines: usize,
        sockets_per_machine: usize,
        workers_per_socket: usize,
        intra_socket: LinkClass,
        intra_machine: LinkClass,
        inter_machine: LinkClass,
    ) -> Self {
        let mut placements = Vec::with_capacity(machines * sockets_per_machine * workers_per_socket);
        for m in 0..machines {
            for s in 0..sockets_per_machine {
                for _ in 0..workers_per_socket {
                    placements.push(Placement { machine: m, socket: s });
                }
            }
        }
        Self::new(name, placements, intra_socket, intra_machine, inter_machine)
    }

    // ---- Presets matching the paper's testbeds -------------------------------

    /// Figure 1's "4-GPU NVLink": one machine, one NVLink island.
    pub fn nvlink_island(n: usize) -> Self {
        Self::regular(
            format!("{n}-GPU NVLink"),
            1,
            1,
            n,
            LinkClass::NvLink,
            LinkClass::NvLink,
            LinkClass::Ethernet10G,
        )
    }

    /// Figure 1's "4-GPU PCIe": one machine, one PCIe root complex.
    pub fn pcie_island(n: usize) -> Self {
        Self::regular(
            format!("{n}-GPU PCIe"),
            1,
            1,
            n,
            LinkClass::Pcie3,
            LinkClass::Pcie3,
            LinkClass::Ethernet10G,
        )
    }

    /// Figure 1's "8-GPU QPI": one machine, two PCIe sockets joined by QPI.
    pub fn qpi_dual_socket(n: usize) -> Self {
        assert!(n >= 2 && n.is_multiple_of(2), "QPI preset needs an even worker count");
        Self::regular(
            format!("{n}-GPU QPI"),
            1,
            2,
            n / 2,
            LinkClass::Pcie3,
            LinkClass::Qpi,
            LinkClass::Ethernet10G,
        )
    }

    /// Cluster A: nodes of 8 GPUs on PCIe (two sockets of 4), 1 Gb Ethernet.
    pub fn cluster_a(machines: usize) -> Self {
        Self::regular(
            format!("ClusterA[{machines}x8 PCIe/1GbE]"),
            machines,
            2,
            4,
            LinkClass::Pcie3,
            LinkClass::Qpi,
            LinkClass::Ethernet1G,
        )
    }

    /// Cluster B: nodes of 8 GPUs with NVLink (two sockets of 4, QPI between),
    /// 10 Gb Ethernet between nodes.
    pub fn cluster_b(machines: usize) -> Self {
        Self::regular(
            format!("ClusterB[{machines}x8 NVLink/10GbE]"),
            machines,
            2,
            4,
            LinkClass::NvLink,
            LinkClass::Qpi,
            LinkClass::Ethernet10G,
        )
    }

    /// The scalability ladder of Figure 10 on cluster B: `n` GPUs allocated
    /// greedily (fill a socket of 4, then the second socket, then the next
    /// machine). With 1–4 GPUs all links are NVLink; 5–8 adds QPI; >8 adds
    /// Ethernet — reproducing "inter-GPU connections change from NVLink to
    /// QPI and Ethernet ... when involving more GPUs".
    pub fn cluster_b_scaled(n: usize) -> Self {
        assert!(n >= 1);
        let mut placements = Vec::with_capacity(n);
        for w in 0..n {
            let machine = w / 8;
            let socket = (w % 8) / 4;
            placements.push(Placement { machine, socket });
        }
        Self::new(
            format!("ClusterB-scaled[{n} GPUs]"),
            placements,
            LinkClass::NvLink,
            LinkClass::Qpi,
            LinkClass::Ethernet10G,
        )
    }

    // ---- Queries --------------------------------------------------------------

    /// Number of workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.placements.len()
    }

    /// Number of distinct machines.
    pub fn num_machines(&self) -> usize {
        self.placements
            .iter()
            .map(|p| p.machine)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Placement of worker `w`.
    #[inline]
    pub fn placement(&self, w: WorkerId) -> Placement {
        self.placements[w]
    }

    /// Machine index of worker `w`.
    #[inline]
    pub fn machine_of(&self, w: WorkerId) -> usize {
        self.placements[w].machine
    }

    /// The link class between two workers, derived from their placements.
    pub fn link(&self, a: WorkerId, b: WorkerId) -> LinkClass {
        if a == b {
            return LinkClass::Local;
        }
        let pa = self.placements[a];
        let pb = self.placements[b];
        if pa.machine != pb.machine {
            self.inter_machine
        } else if pa.socket != pb.socket {
            self.intra_machine
        } else {
            self.intra_socket
        }
    }

    /// Bandwidth matrix in bytes/second, `[src][dst]`.
    pub fn bandwidth_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.num_workers();
        (0..n)
            .map(|a| (0..n).map(|b| self.link(a, b).bandwidth()).collect())
            .collect()
    }

    /// The partitioner's communication-cost weight matrix (paper §5.2:
    /// "profile the communication speeds for all GPU-GPU pairs and formulate
    /// them into a weight matrix"). Entry `[a][b]` is the relative cost of
    /// moving one embedding from `b` to `a`, normalised so the *fastest
    /// non-local* link has weight 1; the local diagonal is 0.
    pub fn weight_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.num_workers();
        let mut fastest = f64::INFINITY;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let t = 1.0 / self.link(a, b).bandwidth();
                    if t < fastest {
                        fastest = t;
                    }
                }
            }
        }
        if !fastest.is_finite() {
            fastest = 1.0; // single-worker cluster: all-local
        }
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| {
                        if a == b {
                            0.0
                        } else {
                            (1.0 / self.link(a, b).bandwidth()) / fastest
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The slowest link bandwidth used by any pair of distinct workers —
    /// the bottleneck for ring AllReduce.
    pub fn bottleneck_bandwidth(&self) -> f64 {
        let n = self.num_workers();
        let mut min = f64::INFINITY;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    min = min.min(self.link(a, b).bandwidth());
                }
            }
        }
        if min.is_finite() {
            min
        } else {
            LinkClass::Local.bandwidth()
        }
    }

    /// Per-GPU memory budget in bytes. RTX TITAN (cluster A) has 24 GB;
    /// V100 (cluster B) has 32 GB. The simulation scales workloads down, so
    /// this is exposed as configuration rather than hard-coded in callers.
    pub fn gpu_memory_bytes(&self) -> u64 {
        32 * (1 << 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_class_ordering() {
        assert!(LinkClass::NvLink.bandwidth() > LinkClass::Pcie3.bandwidth());
        assert!(LinkClass::Pcie3.bandwidth() > LinkClass::Qpi.bandwidth());
        assert!(LinkClass::Qpi.bandwidth() > LinkClass::Ethernet10G.bandwidth());
        assert!(LinkClass::Ethernet10G.bandwidth() > LinkClass::Ethernet1G.bandwidth());
        assert!(LinkClass::Local.latency() == 0.0);
        assert!(LinkClass::Ethernet1G.latency() > LinkClass::NvLink.latency());
    }

    #[test]
    fn nvlink_island_links() {
        let t = Topology::nvlink_island(4);
        assert_eq!(t.num_workers(), 4);
        assert_eq!(t.num_machines(), 1);
        assert_eq!(t.link(0, 0), LinkClass::Local);
        assert_eq!(t.link(0, 3), LinkClass::NvLink);
    }

    #[test]
    fn qpi_dual_socket_links() {
        let t = Topology::qpi_dual_socket(8);
        assert_eq!(t.link(0, 3), LinkClass::Pcie3); // same socket
        assert_eq!(t.link(0, 4), LinkClass::Qpi); // across sockets
        assert_eq!(t.link(3, 4), LinkClass::Qpi);
    }

    #[test]
    #[should_panic(expected = "even worker count")]
    fn qpi_odd_panics() {
        Topology::qpi_dual_socket(5);
    }

    #[test]
    fn cluster_a_hierarchy() {
        let t = Topology::cluster_a(2);
        assert_eq!(t.num_workers(), 16);
        assert_eq!(t.num_machines(), 2);
        assert_eq!(t.link(0, 1), LinkClass::Pcie3);
        assert_eq!(t.link(0, 5), LinkClass::Qpi);
        assert_eq!(t.link(0, 8), LinkClass::Ethernet1G);
    }

    #[test]
    fn cluster_b_scaled_ladder() {
        let t4 = Topology::cluster_b_scaled(4);
        assert_eq!(t4.link(0, 3), LinkClass::NvLink);
        let t8 = Topology::cluster_b_scaled(8);
        assert_eq!(t8.link(0, 7), LinkClass::Qpi);
        assert_eq!(t8.link(0, 3), LinkClass::NvLink);
        let t16 = Topology::cluster_b_scaled(16);
        assert_eq!(t16.link(0, 8), LinkClass::Ethernet10G);
        assert_eq!(t16.num_machines(), 2);
        let t24 = Topology::cluster_b_scaled(24);
        assert_eq!(t24.num_machines(), 3);
    }

    #[test]
    fn bottleneck_tracks_worst_link() {
        assert_eq!(
            Topology::nvlink_island(4).bottleneck_bandwidth(),
            LinkClass::NvLink.bandwidth()
        );
        assert_eq!(
            Topology::cluster_b_scaled(16).bottleneck_bandwidth(),
            LinkClass::Ethernet10G.bandwidth()
        );
        // Single worker: no non-local links.
        let t1 = Topology::cluster_b_scaled(1);
        assert_eq!(t1.bottleneck_bandwidth(), LinkClass::Local.bandwidth());
    }

    #[test]
    fn weight_matrix_normalised() {
        let t = Topology::cluster_b_scaled(16);
        let w = t.weight_matrix();
        assert_eq!(w[0][0], 0.0);
        assert!((w[0][1] - 1.0).abs() < 1e-12); // NVLink is fastest → weight 1
        let eth = w[0][8];
        let expected = LinkClass::NvLink.bandwidth() / LinkClass::Ethernet10G.bandwidth();
        assert!((eth - expected).abs() < 1e-9, "eth weight = {eth}");
        // Hierarchical: Ethernet ≫ QPI > NVLink.
        assert!(w[0][8] > w[0][4]);
        assert!(w[0][4] > w[0][1]);
    }

    #[test]
    fn weight_matrix_single_worker() {
        let t = Topology::cluster_b_scaled(1);
        assert_eq!(t.weight_matrix(), vec![vec![0.0]]);
    }

    #[test]
    fn bandwidth_matrix_symmetric() {
        let t = Topology::cluster_a(2);
        let m = t.bandwidth_matrix();
        for (a, row) in m.iter().enumerate() {
            for (b, &v) in row.iter().enumerate() {
                assert_eq!(v, m[b][a]);
            }
        }
    }
}
