//! Property tests for the cluster cost model.

use hetgmp_cluster::{CostModel, SimClock, TimeCategory, Topology};
use proptest::prelude::*;

fn topologies() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..25).prop_map(Topology::cluster_b_scaled),
        (2usize..9).prop_map(Topology::nvlink_island),
        (2usize..9).prop_map(Topology::pcie_island),
        (1usize..4).prop_map(Topology::cluster_a),
        (1usize..4).prop_map(Topology::cluster_b),
    ]
}

proptest! {
    #[test]
    fn links_are_symmetric_and_local_diagonal(topo in topologies()) {
        let n = topo.num_workers();
        for a in 0..n {
            prop_assert_eq!(topo.link(a, a), hetgmp_cluster::LinkClass::Local);
            for b in 0..n {
                prop_assert_eq!(topo.link(a, b), topo.link(b, a));
            }
        }
    }

    #[test]
    fn weight_matrix_well_formed(topo in topologies()) {
        let w = topo.weight_matrix();
        let n = topo.num_workers();
        prop_assert_eq!(w.len(), n);
        let mut min_off = f64::INFINITY;
        for (a, row) in w.iter().enumerate() {
            prop_assert_eq!(row[a], 0.0);
            for (b, &v) in row.iter().enumerate() {
                prop_assert!(v >= 0.0);
                prop_assert!((v - w[b][a]).abs() < 1e-12);
                if a != b {
                    min_off = min_off.min(v);
                }
            }
        }
        if n > 1 {
            // Normalised: the fastest non-local link has weight exactly 1.
            prop_assert!((min_off - 1.0).abs() < 1e-9, "min weight {min_off}");
        }
    }

    #[test]
    fn transfer_time_monotone_in_bytes(topo in topologies(), bytes in 1u64..1_000_000) {
        let m = CostModel::new(topo);
        let n = m.topology.num_workers();
        for a in 0..n.min(4) {
            for b in 0..n.min(4) {
                let t1 = m.transfer_time(a, b, bytes);
                let t2 = m.transfer_time(a, b, bytes * 2);
                prop_assert!(t2 >= t1);
                prop_assert!(t1 >= 0.0);
            }
        }
    }

    #[test]
    fn allreduce_time_monotone_in_bytes(topo in topologies(), bytes in 1u64..10_000_000) {
        let m = CostModel::new(topo);
        prop_assert!(m.allreduce_time(2 * bytes) >= m.allreduce_time(bytes));
        prop_assert!(m.allreduce_time(bytes) >= 0.0);
    }

    #[test]
    fn simclock_never_decreases(charges in prop::collection::vec((0u8..5, 0.0f64..2.0), 1..50)) {
        let mut clock = SimClock::new();
        let mut last = 0.0;
        for (cat, seconds) in charges {
            let category = match cat {
                0 => TimeCategory::Compute,
                1 => TimeCategory::EmbedComm,
                2 => TimeCategory::MetaComm,
                3 => TimeCategory::AllReduceComm,
                _ => TimeCategory::HostIo,
            };
            clock.advance(category, seconds);
            prop_assert!(clock.now() >= last);
            last = clock.now();
        }
        // Breakdown totals equal the clock.
        prop_assert!((clock.breakdown().total() - clock.now()).abs() < 1e-9);
    }

    #[test]
    fn overlap_never_exceeds_plain_charge(seconds in 0.0f64..3.0, window in 0.0f64..3.0) {
        let mut plain = SimClock::new();
        plain.advance(TimeCategory::EmbedComm, seconds);
        let mut overlapped = SimClock::new();
        overlapped.advance_overlapped(TimeCategory::EmbedComm, seconds, window);
        prop_assert!(overlapped.now() <= plain.now() + 1e-12);
        // Attribution identical either way.
        prop_assert!(
            (overlapped.breakdown().embed_comm - plain.breakdown().embed_comm).abs() < 1e-12
        );
    }
}
