//! A reusable sum-AllReduce across worker threads.
//!
//! Semantics match one NCCL `ncclAllReduce(sum)` call: every participant
//! contributes a same-length f32 vector and receives the element-wise sum.
//! Implementation is a two-phase generation barrier (contribute → collect)
//! so the group can be reused every iteration without re-allocation races.
//!
//! The group reduces whatever bits it is handed; under a lossy
//! `--sync-format` the *contribution* is what crosses the wire, so the
//! trainer runs each local gradient through [`crate::DenseQuantizer`]
//! before contributing (identically at every pipeline depth) and charges
//! the collective at [`crate::SyncFormat::dense_wire_bytes`].

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Sum,
    Max,
    /// One-rendezvous combination of a `Sum` on the vector plus a scalar
    /// max and a boolean OR carried in the aux lanes — the pipelined
    /// trainer's fused sync point (see [`AllReduceGroup::fused_mean_max`]).
    Fused,
}

struct State {
    /// Element-wise combine op for the current round (all participants of a
    /// round must use the same op).
    op: Op,
    /// Combined result for the current generation.
    sum: Vec<f32>,
    /// Buffered per-participant contributions for `Sum` rounds; the round's
    /// last arrival reduces them in a value-sorted order so the float
    /// result depends only on the *multiset* of contributions, never on
    /// thread arrival order (float addition is not associative — arrival-
    /// order accumulation would make same-seed runs diverge by ulps that
    /// chaos-amplify over thousands of iterations).
    parts: Vec<Vec<f32>>,
    /// Scalar max lane for `Fused` rounds (exact: f64 max is order-free).
    aux_max: f64,
    /// Boolean OR lane for `Fused` rounds.
    aux_or: bool,
    /// Number of contributions received this generation.
    arrived: usize,
    /// Number of participants that have collected the result.
    collected: usize,
    /// Generation counter (bumped when a round completes collection).
    generation: u64,
}

/// Rank-ordered token ring state (see [`AllReduceGroup::in_rank_order`]).
struct RingState {
    /// Next ticket allowed to run; tickets are issued as
    /// `round(rank) * n + rank`, so within every round the critical
    /// sections execute in ascending rank order.
    next: u64,
    /// Per-rank round counters (how many times each rank has entered).
    counts: Vec<u64>,
}

/// A sum-AllReduce group over `n` participants.
pub struct AllReduceGroup {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
    ring: Mutex<RingState>,
    ring_cv: Condvar,
}

impl AllReduceGroup {
    /// Creates a group for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "group must have at least one participant");
        Self {
            n,
            state: Mutex::new(State {
                op: Op::Sum,
                sum: Vec::new(),
                parts: Vec::new(),
                aux_max: f64::NEG_INFINITY,
                aux_or: false,
                arrived: 0,
                collected: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            ring: Mutex::new(RingState {
                next: 0,
                counts: vec![0; n],
            }),
            ring_cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn num_participants(&self) -> usize {
        self.n
    }

    /// Contributes `data` and blocks until all `n` participants have
    /// contributed; `data` is overwritten with the element-wise sum.
    ///
    /// Every participant must pass the same length each round.
    ///
    /// # Panics
    /// Panics on length disagreement within a round.
    pub fn allreduce_sum(&self, data: &mut [f32]) {
        self.allreduce(data, Op::Sum);
    }

    /// Element-wise max AllReduce (used e.g. to implement simulated-clock
    /// barriers: everyone leaves with the latest clock).
    pub fn allreduce_max(&self, data: &mut [f32]) {
        self.allreduce(data, Op::Max);
    }

    fn allreduce(&self, data: &mut [f32], op: Op) {
        self.combine(data, op, f64::NEG_INFINITY, false);
    }

    /// One rendezvous combining the vector reduction with the aux lanes.
    /// Returns `(max of all clocks, OR of all votes)`.
    fn combine(&self, data: &mut [f32], op: Op, clock: f64, vote: bool) -> (f64, bool) {
        // Sum and Fused both buffer per-participant parts (Fused's vector
        // lane *is* a sum — the aux lanes ride along for free).
        let buffers_parts = matches!(op, Op::Sum | Op::Fused) && self.n > 1;
        let mut st = self.state.lock();

        // A fast participant may re-enter for the next round while the
        // previous round is still in its collection phase (`arrived == n`);
        // it must wait for the round to drain (generation bump resets
        // `arrived` to 0) or it would pollute the previous round's sum.
        while st.arrived == self.n {
            self.cv.wait(&mut st);
        }
        let my_generation = st.generation;

        if st.arrived == 0 {
            st.op = op;
            st.sum.clear();
            st.sum.extend_from_slice(data);
            st.parts.clear();
            st.aux_max = clock;
            st.aux_or = vote;
        } else {
            assert_eq!(st.sum.len(), data.len(), "allreduce length mismatch");
            assert_eq!(st.op, op, "mixed ops within one allreduce round");
            if op == Op::Max {
                // Max is exact and commutative: accumulate in place.
                for (s, &x) in st.sum.iter_mut().zip(data.iter()) {
                    if x > *s {
                        *s = x;
                    }
                }
            }
            st.aux_max = st.aux_max.max(clock);
            st.aux_or |= vote;
        }
        if buffers_parts {
            st.parts.push(data.to_vec());
        }
        st.arrived += 1;

        if st.arrived == self.n {
            if buffers_parts {
                // Deterministic reduction: sum each element's contributions
                // in ascending value order (see `State::parts`).
                let st = &mut *st;
                let mut col = vec![0.0f32; self.n];
                for (i, s) in st.sum.iter_mut().enumerate() {
                    for (c, p) in col.iter_mut().zip(st.parts.iter()) {
                        *c = p[i];
                    }
                    col.sort_by(f32::total_cmp);
                    *s = col.iter().sum();
                }
            }
            // Round complete: open the collection phase.
            self.cv.notify_all();
        } else {
            while st.arrived != self.n && st.generation == my_generation {
                self.cv.wait(&mut st);
            }
            // Exiting via a generation bump is impossible for a contributor
            // of this round (the bump requires this thread's collection),
            // so `st.sum` below is this round's sum.
        }

        data.copy_from_slice(&st.sum);
        let aux = (st.aux_max, st.aux_or);
        st.collected += 1;
        if st.collected == self.n {
            st.arrived = 0;
            st.collected = 0;
            st.generation += 1;
            self.cv.notify_all();
        }
        aux
    }

    /// AllReduce followed by division by `n` (mean of the contributions).
    pub fn allreduce_mean(&self, data: &mut [f32]) {
        self.allreduce_sum(data);
        let inv = 1.0 / self.n as f32;
        for x in data {
            *x *= inv;
        }
    }

    /// Collective OR: every participant contributes a vote and all of them
    /// receive `true` iff *any* participant voted `true`. This is the
    /// abort/recovery agreement used at iteration boundaries — a worker
    /// that must stop (strict-audit trip) or that just recovered from a
    /// fault announces it here, so the whole group leaves the loop at the
    /// same boundary and nobody strands a peer inside a blocking
    /// collective.
    pub fn agree(&self, vote: bool) -> bool {
        let mut flag = [if vote { 1.0f32 } else { 0.0 }];
        self.allreduce_max(&mut flag);
        flag[0] > 0.0
    }

    /// Pure thread rendezvous: returns once every participant has arrived.
    /// Charges nothing and moves no data — the trainer uses it to fence
    /// phases *within* an iteration (all reads drain before any gradient
    /// lands in the shared table; a crash rollback completes before any
    /// peer reads), which makes same-seed runs reproducible.
    pub fn barrier(&self) {
        let mut z = [0.0f32];
        self.allreduce_max(&mut z);
    }

    /// Fused dense-sync collective: one rendezvous that mean-reduces
    /// `data`, max-reduces `clock` and OR-reduces `vote`.
    ///
    /// Bit-identical to `allreduce_mean(data)` on the vector lane (same
    /// value-sorted sum, same `1/n` f32 multiply), and exact on the aux
    /// lanes (f64 max / bool OR are order-free) — so the pipelined trainer
    /// replaces an `allreduce_mean` + `allreduce_max` (clock sync) pair
    /// with a single generation-barrier round trip without perturbing any
    /// training math.
    pub fn fused_mean_max(&self, data: &mut [f32], clock: f64, vote: bool) -> (f64, bool) {
        let aux = self.combine(data, Op::Fused, clock, vote);
        let inv = 1.0 / self.n as f32;
        for x in data.iter_mut() {
            *x *= inv;
        }
        aux
    }

    /// Runs `f` in a rank-ordered critical section: within each round every
    /// participant's closure executes serially in ascending rank order.
    ///
    /// This replaces the trainer's legacy write-back fan-out — `n` full
    /// barriers, one per rank's turn — with a token ring: the same
    /// rank-ascending serialization of shared-table mutations (so float
    /// accumulation order, hence every stored value, is unchanged) at a
    /// fraction of the rendezvous cost. Each rank blocks only until its
    /// ticket comes up, not on every peer's turn boundary.
    ///
    /// Rounds are implicit: a rank's `k`-th call gets ticket `k*n + rank`,
    /// so the ring is reusable every iteration without a reset call. All
    /// participants must call it the same number of times.
    pub fn in_rank_order<R>(&self, rank: usize, f: impl FnOnce() -> R) -> R {
        assert!(rank < self.n, "rank out of range");
        if self.n == 1 {
            return f();
        }
        let ticket = {
            let mut ring = self.ring.lock();
            let t = ring.counts[rank] * self.n as u64 + rank as u64;
            ring.counts[rank] += 1;
            while ring.next != t {
                self.ring_cv.wait(&mut ring);
            }
            t
        };
        let out = f();
        let mut ring = self.ring.lock();
        debug_assert_eq!(ring.next, ticket);
        ring.next += 1;
        self.ring_cv.notify_all();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_identity() {
        let g = AllReduceGroup::new(1);
        let mut v = vec![1.0, 2.0, 3.0];
        g.allreduce_sum(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        g.allreduce_mean(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sums_across_threads() {
        let g = Arc::new(AllReduceGroup::new(4));
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let mut v = vec![k as f32; 8];
                    g.allreduce_sum(&mut v);
                    v
                })
            })
            .collect();
        for h in handles {
            let v = h.join().unwrap();
            assert_eq!(v, vec![6.0; 8]); // 0+1+2+3
        }
    }

    #[test]
    fn mean_across_threads() {
        let g = Arc::new(AllReduceGroup::new(2));
        let handles: Vec<_> = [1.0f32, 3.0]
            .into_iter()
            .map(|x| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let mut v = vec![x; 4];
                    g.allreduce_mean(&mut v);
                    v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![2.0; 4]);
        }
    }

    #[test]
    fn reusable_across_rounds() {
        let g = Arc::new(AllReduceGroup::new(3));
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let mut results = Vec::new();
                    for round in 0..50u32 {
                        let mut v = vec![(k + round) as f32];
                        g.allreduce_sum(&mut v);
                        results.push(v[0]);
                    }
                    results
                })
            })
            .collect();
        for h in handles {
            let results = h.join().unwrap();
            for (round, &r) in results.iter().enumerate() {
                // Σ_k (k + round) = 3 + 3·round
                assert_eq!(r, (3 + 3 * round) as f32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        AllReduceGroup::new(0);
    }

    #[test]
    fn agree_is_a_collective_or() {
        let g = Arc::new(AllReduceGroup::new(3));
        // One dissenting vote flips everyone.
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let unanimous_no = g.agree(false);
                    let one_yes = g.agree(k == 1);
                    (unanimous_no, one_yes)
                })
            })
            .collect();
        for h in handles {
            let (no, yes) = h.join().unwrap();
            assert!(!no);
            assert!(yes);
        }
    }

    #[test]
    fn fused_matches_separate_collectives_bitwise() {
        // The fused rendezvous must be indistinguishable (to the bit) from
        // the three separate collectives it replaces.
        let n = 4;
        let g_sep = Arc::new(AllReduceGroup::new(n));
        let g_fused = Arc::new(AllReduceGroup::new(n));
        let handles: Vec<_> = (0..n)
            .map(|k| {
                let g_sep = Arc::clone(&g_sep);
                let g_fused = Arc::clone(&g_fused);
                std::thread::spawn(move || {
                    // Awkward values so sorted-sum order actually matters.
                    let base: Vec<f32> = (0..16)
                        .map(|i| ((k * 37 + i * 13) as f32).sin() * 1e3f32.powi((k as i32 % 3) - 1))
                        .collect();
                    let clock = 1.5 * (k as f64 + 1.0);
                    let vote = k == 2;

                    let mut sep = base.clone();
                    g_sep.allreduce_mean(&mut sep);
                    let mut c = [clock as f32];
                    g_sep.allreduce_max(&mut c);
                    let agreed = g_sep.agree(vote);

                    let mut fused = base;
                    let (max_clock, or) = g_fused.fused_mean_max(&mut fused, clock, vote);
                    for (a, b) in sep.iter().zip(fused.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                    assert_eq!(max_clock, 6.0);
                    assert_eq!(c[0], 6.0);
                    assert_eq!(or, agreed);
                    assert!(or);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fused_reusable_and_false_votes_stay_false() {
        let g = Arc::new(AllReduceGroup::new(3));
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for round in 0..20u32 {
                        let mut v = vec![(k + round as usize) as f32; 4];
                        let (mx, or) =
                            g.fused_mean_max(&mut v, (k as f64) + round as f64, false);
                        assert_eq!(v[0], (3 + 3 * round) as f32 / 3.0);
                        assert_eq!(mx, 2.0 + round as f64);
                        assert!(!or);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn in_rank_order_serializes_ascending_per_round() {
        use std::sync::Mutex as StdMutex;
        let n = 4;
        let g = Arc::new(AllReduceGroup::new(n));
        let order = Arc::new(StdMutex::new(Vec::new()));
        let rounds = 25u64;
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let g = Arc::clone(&g);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        g.in_rank_order(rank, || order.lock().unwrap().push(rank));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(order.len(), n * rounds as usize);
        for (i, chunk) in order.chunks(n).enumerate() {
            assert_eq!(chunk, &[0, 1, 2, 3], "round {i} ran out of order");
        }
    }

    #[test]
    fn in_rank_order_single_participant_runs_inline() {
        let g = AllReduceGroup::new(1);
        assert_eq!(g.in_rank_order(0, || 42), 42);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = Arc::new(AllReduceGroup::new(4));
        let arrived = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                let arrived = Arc::clone(&arrived);
                std::thread::spawn(move || {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    g.barrier();
                    // After the barrier every pre-barrier increment is visible.
                    arrived.load(Ordering::SeqCst)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }
}
