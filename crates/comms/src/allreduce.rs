//! A reusable sum-AllReduce across worker threads.
//!
//! Semantics match one NCCL `ncclAllReduce(sum)` call: every participant
//! contributes a same-length f32 vector and receives the element-wise sum.
//! Implementation is a two-phase generation barrier (contribute → collect)
//! so the group can be reused every iteration without re-allocation races.

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Sum,
    Max,
}

struct State {
    /// Element-wise combine op for the current round (all participants of a
    /// round must use the same op).
    op: Op,
    /// Combined result for the current generation.
    sum: Vec<f32>,
    /// Buffered per-participant contributions for `Sum` rounds; the round's
    /// last arrival reduces them in a value-sorted order so the float
    /// result depends only on the *multiset* of contributions, never on
    /// thread arrival order (float addition is not associative — arrival-
    /// order accumulation would make same-seed runs diverge by ulps that
    /// chaos-amplify over thousands of iterations).
    parts: Vec<Vec<f32>>,
    /// Number of contributions received this generation.
    arrived: usize,
    /// Number of participants that have collected the result.
    collected: usize,
    /// Generation counter (bumped when a round completes collection).
    generation: u64,
}

/// A sum-AllReduce group over `n` participants.
pub struct AllReduceGroup {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl AllReduceGroup {
    /// Creates a group for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "group must have at least one participant");
        Self {
            n,
            state: Mutex::new(State {
                op: Op::Sum,
                sum: Vec::new(),
                parts: Vec::new(),
                arrived: 0,
                collected: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn num_participants(&self) -> usize {
        self.n
    }

    /// Contributes `data` and blocks until all `n` participants have
    /// contributed; `data` is overwritten with the element-wise sum.
    ///
    /// Every participant must pass the same length each round.
    ///
    /// # Panics
    /// Panics on length disagreement within a round.
    pub fn allreduce_sum(&self, data: &mut [f32]) {
        self.allreduce(data, Op::Sum);
    }

    /// Element-wise max AllReduce (used e.g. to implement simulated-clock
    /// barriers: everyone leaves with the latest clock).
    pub fn allreduce_max(&self, data: &mut [f32]) {
        self.allreduce(data, Op::Max);
    }

    fn allreduce(&self, data: &mut [f32], op: Op) {
        let mut st = self.state.lock();

        // A fast participant may re-enter for the next round while the
        // previous round is still in its collection phase (`arrived == n`);
        // it must wait for the round to drain (generation bump resets
        // `arrived` to 0) or it would pollute the previous round's sum.
        while st.arrived == self.n {
            self.cv.wait(&mut st);
        }
        let my_generation = st.generation;

        if st.arrived == 0 {
            st.op = op;
            st.sum.clear();
            st.sum.extend_from_slice(data);
            st.parts.clear();
        } else {
            assert_eq!(st.sum.len(), data.len(), "allreduce length mismatch");
            assert_eq!(st.op, op, "mixed ops within one allreduce round");
            if op == Op::Max {
                // Max is exact and commutative: accumulate in place.
                for (s, &x) in st.sum.iter_mut().zip(data.iter()) {
                    if x > *s {
                        *s = x;
                    }
                }
            }
        }
        if op == Op::Sum && self.n > 1 {
            st.parts.push(data.to_vec());
        }
        st.arrived += 1;

        if st.arrived == self.n {
            if op == Op::Sum && self.n > 1 {
                // Deterministic reduction: sum each element's contributions
                // in ascending value order (see `State::parts`).
                let st = &mut *st;
                let mut col = vec![0.0f32; self.n];
                for (i, s) in st.sum.iter_mut().enumerate() {
                    for (c, p) in col.iter_mut().zip(st.parts.iter()) {
                        *c = p[i];
                    }
                    col.sort_by(f32::total_cmp);
                    *s = col.iter().sum();
                }
            }
            // Round complete: open the collection phase.
            self.cv.notify_all();
        } else {
            while st.arrived != self.n && st.generation == my_generation {
                self.cv.wait(&mut st);
            }
            // Exiting via a generation bump is impossible for a contributor
            // of this round (the bump requires this thread's collection),
            // so `st.sum` below is this round's sum.
        }

        data.copy_from_slice(&st.sum);
        st.collected += 1;
        if st.collected == self.n {
            st.arrived = 0;
            st.collected = 0;
            st.generation += 1;
            self.cv.notify_all();
        }
    }

    /// AllReduce followed by division by `n` (mean of the contributions).
    pub fn allreduce_mean(&self, data: &mut [f32]) {
        self.allreduce_sum(data);
        let inv = 1.0 / self.n as f32;
        for x in data {
            *x *= inv;
        }
    }

    /// Collective OR: every participant contributes a vote and all of them
    /// receive `true` iff *any* participant voted `true`. This is the
    /// abort/recovery agreement used at iteration boundaries — a worker
    /// that must stop (strict-audit trip) or that just recovered from a
    /// fault announces it here, so the whole group leaves the loop at the
    /// same boundary and nobody strands a peer inside a blocking
    /// collective.
    pub fn agree(&self, vote: bool) -> bool {
        let mut flag = [if vote { 1.0f32 } else { 0.0 }];
        self.allreduce_max(&mut flag);
        flag[0] > 0.0
    }

    /// Pure thread rendezvous: returns once every participant has arrived.
    /// Charges nothing and moves no data — the trainer uses it to fence
    /// phases *within* an iteration (all reads drain before any gradient
    /// lands in the shared table; a crash rollback completes before any
    /// peer reads), which makes same-seed runs reproducible.
    pub fn barrier(&self) {
        let mut z = [0.0f32];
        self.allreduce_max(&mut z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_identity() {
        let g = AllReduceGroup::new(1);
        let mut v = vec![1.0, 2.0, 3.0];
        g.allreduce_sum(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        g.allreduce_mean(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sums_across_threads() {
        let g = Arc::new(AllReduceGroup::new(4));
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let mut v = vec![k as f32; 8];
                    g.allreduce_sum(&mut v);
                    v
                })
            })
            .collect();
        for h in handles {
            let v = h.join().unwrap();
            assert_eq!(v, vec![6.0; 8]); // 0+1+2+3
        }
    }

    #[test]
    fn mean_across_threads() {
        let g = Arc::new(AllReduceGroup::new(2));
        let handles: Vec<_> = [1.0f32, 3.0]
            .into_iter()
            .map(|x| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let mut v = vec![x; 4];
                    g.allreduce_mean(&mut v);
                    v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![2.0; 4]);
        }
    }

    #[test]
    fn reusable_across_rounds() {
        let g = Arc::new(AllReduceGroup::new(3));
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let mut results = Vec::new();
                    for round in 0..50u32 {
                        let mut v = vec![(k + round) as f32];
                        g.allreduce_sum(&mut v);
                        results.push(v[0]);
                    }
                    results
                })
            })
            .collect();
        for h in handles {
            let results = h.join().unwrap();
            for (round, &r) in results.iter().enumerate() {
                // Σ_k (k + round) = 3 + 3·round
                assert_eq!(r, (3 + 3 * round) as f32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        AllReduceGroup::new(0);
    }

    #[test]
    fn agree_is_a_collective_or() {
        let g = Arc::new(AllReduceGroup::new(3));
        // One dissenting vote flips everyone.
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    let unanimous_no = g.agree(false);
                    let one_yes = g.agree(k == 1);
                    (unanimous_no, one_yes)
                })
            })
            .collect();
        for h in handles {
            let (no, yes) = h.join().unwrap();
            assert!(!no);
            assert!(yes);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let g = Arc::new(AllReduceGroup::new(4));
        let arrived = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                let arrived = Arc::clone(&arrived);
                std::thread::spawn(move || {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    g.barrier();
                    // After the barrier every pre-barrier increment is visible.
                    arrived.load(Ordering::SeqCst)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }
}
