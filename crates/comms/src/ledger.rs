//! Global traffic ledger: per-worker, per-class byte and message counters.
//!
//! The paper's Figure 8 breaks one iteration's communication into
//! "embeds & grads", "keys & clocks" and "All-Reduce"; Figure 1 reports the
//! communication share of epoch time. Workers record into this ledger from
//! their own threads (relaxed atomics — totals are read after joins).

use std::sync::atomic::{AtomicU64, Ordering};

/// Traffic classes matching the paper's Figure 8 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Embedding vectors and their gradients.
    EmbedData,
    /// Sparse indices and clock metadata.
    KeysClocks,
    /// Dense-parameter AllReduce payload.
    AllReduce,
}

const NUM_CLASSES: usize = 3;

impl TrafficClass {
    fn index(self) -> usize {
        match self {
            TrafficClass::EmbedData => 0,
            TrafficClass::KeysClocks => 1,
            TrafficClass::AllReduce => 2,
        }
    }

    /// All classes in display order.
    pub fn all() -> [TrafficClass; NUM_CLASSES] {
        [
            TrafficClass::EmbedData,
            TrafficClass::KeysClocks,
            TrafficClass::AllReduce,
        ]
    }

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::EmbedData => "embeds & grads",
            TrafficClass::KeysClocks => "keys & clocks",
            TrafficClass::AllReduce => "all-reduce",
        }
    }
}

/// Concurrent per-worker, per-class counters.
pub struct TrafficLedger {
    num_workers: usize,
    /// `bytes[worker * NUM_CLASSES + class]`.
    bytes: Vec<AtomicU64>,
    messages: Vec<AtomicU64>,
}

impl TrafficLedger {
    /// Creates a ledger for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        let len = num_workers * NUM_CLASSES;
        Self {
            num_workers,
            bytes: (0..len).map(|_| AtomicU64::new(0)).collect(),
            messages: (0..len).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Records `bytes` (and one message per `messages`) for a worker/class.
    pub fn record(&self, worker: usize, class: TrafficClass, bytes: u64, messages: u64) {
        let i = worker * NUM_CLASSES + class.index();
        self.bytes[i].fetch_add(bytes, Ordering::Relaxed);
        self.messages[i].fetch_add(messages, Ordering::Relaxed);
    }

    /// Bytes recorded for one worker/class.
    pub fn bytes(&self, worker: usize, class: TrafficClass) -> u64 {
        self.bytes[worker * NUM_CLASSES + class.index()].load(Ordering::Relaxed)
    }

    /// Messages recorded for one worker/class.
    pub fn messages(&self, worker: usize, class: TrafficClass) -> u64 {
        self.messages[worker * NUM_CLASSES + class.index()].load(Ordering::Relaxed)
    }

    /// Total bytes of one class across all workers.
    pub fn total_bytes(&self, class: TrafficClass) -> u64 {
        (0..self.num_workers).map(|w| self.bytes(w, class)).sum()
    }

    /// Grand total bytes across classes and workers.
    pub fn grand_total_bytes(&self) -> u64 {
        TrafficClass::all()
            .iter()
            .map(|&c| self.total_bytes(c))
            .sum()
    }

    /// Resets every counter (between measured iterations).
    pub fn reset(&self) {
        for b in &self.bytes {
            b.store(0, Ordering::Relaxed);
        }
        for m in &self.messages {
            m.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_and_read() {
        let l = TrafficLedger::new(2);
        l.record(0, TrafficClass::EmbedData, 100, 2);
        l.record(1, TrafficClass::EmbedData, 50, 1);
        l.record(0, TrafficClass::AllReduce, 30, 1);
        assert_eq!(l.bytes(0, TrafficClass::EmbedData), 100);
        assert_eq!(l.messages(0, TrafficClass::EmbedData), 2);
        assert_eq!(l.total_bytes(TrafficClass::EmbedData), 150);
        assert_eq!(l.grand_total_bytes(), 180);
        assert_eq!(l.bytes(1, TrafficClass::KeysClocks), 0);
    }

    #[test]
    fn reset_clears() {
        let l = TrafficLedger::new(1);
        l.record(0, TrafficClass::KeysClocks, 10, 1);
        l.reset();
        assert_eq!(l.grand_total_bytes(), 0);
        assert_eq!(l.messages(0, TrafficClass::KeysClocks), 0);
    }

    #[test]
    fn concurrent_recording() {
        let l = Arc::new(TrafficLedger::new(4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.record(w, TrafficClass::EmbedData, 3, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.total_bytes(TrafficClass::EmbedData), 12_000);
    }

    #[test]
    fn labels_stable() {
        assert_eq!(TrafficClass::EmbedData.label(), "embeds & grads");
        assert_eq!(TrafficClass::all().len(), 3);
    }
}
