//! Global traffic ledger: per-worker, per-class byte and message counters.
//!
//! The paper's Figure 8 breaks one iteration's communication into
//! "embeds & grads", "keys & clocks" and "All-Reduce"; Figure 1 reports the
//! communication share of epoch time.
//!
//! Since the telemetry refactor this type is a façade over per-worker
//! [`MemoryRecorder`]s: every `record` call lands in the unified metric
//! namespace (`traffic.bytes.*` / `traffic.messages.*`), so the same
//! numbers appear in [`TelemetrySnapshot`]s and in this ledger's query
//! API. Build it with [`TrafficLedger::from_registry`] to share the
//! trainer's [`MetricsRegistry`], or [`TrafficLedger::new`] for a
//! standalone ledger with private recorders.

use hetgmp_telemetry::{
    names, Json, MemoryRecorder, MetricsRegistry, Recorder, TelemetrySnapshot, TraceCollector,
};
use std::sync::Arc;

/// Traffic classes matching the paper's Figure 8 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Embedding vectors and their gradients.
    EmbedData,
    /// Sparse indices and clock metadata.
    KeysClocks,
    /// Dense-parameter AllReduce payload.
    AllReduce,
}

const NUM_CLASSES: usize = 3;

impl TrafficClass {
    /// All classes in display order.
    pub fn all() -> [TrafficClass; NUM_CLASSES] {
        [
            TrafficClass::EmbedData,
            TrafficClass::KeysClocks,
            TrafficClass::AllReduce,
        ]
    }

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::EmbedData => "embeds & grads",
            TrafficClass::KeysClocks => "keys & clocks",
            TrafficClass::AllReduce => "all-reduce",
        }
    }

    /// Suffix used in telemetry metric names (`traffic.bytes.<suffix>`).
    pub fn metric_suffix(self) -> &'static str {
        match self {
            TrafficClass::EmbedData => "embed_data",
            TrafficClass::KeysClocks => "keys_clocks",
            TrafficClass::AllReduce => "allreduce",
        }
    }

    /// Full metric name for bytes of this class.
    pub fn bytes_metric(self) -> &'static str {
        match self {
            TrafficClass::EmbedData => "traffic.bytes.embed_data",
            TrafficClass::KeysClocks => "traffic.bytes.keys_clocks",
            TrafficClass::AllReduce => "traffic.bytes.allreduce",
        }
    }

    /// Full metric name for message count of this class.
    pub fn messages_metric(self) -> &'static str {
        match self {
            TrafficClass::EmbedData => "traffic.messages.embed_data",
            TrafficClass::KeysClocks => "traffic.messages.keys_clocks",
            TrafficClass::AllReduce => "traffic.messages.allreduce",
        }
    }
}

/// Concurrent per-worker, per-class counters, backed by telemetry
/// recorders.
pub struct TrafficLedger {
    workers: Vec<Arc<MemoryRecorder>>,
    tracer: Option<Arc<TraceCollector>>,
}

impl TrafficLedger {
    /// Creates a standalone ledger for `num_workers` workers, with its own
    /// private recorders.
    pub fn new(num_workers: usize) -> Self {
        Self {
            workers: (0..num_workers)
                .map(|_| Arc::new(MemoryRecorder::new()))
                .collect(),
            tracer: None,
        }
    }

    /// Creates a ledger recording into `registry`'s per-worker recorders,
    /// so traffic shows up in the registry's unified snapshot.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            workers: (0..registry.num_workers())
                .map(|w| registry.worker(w))
                .collect(),
            tracer: None,
        }
    }

    /// Attaches a trace collector; every subsequent [`TrafficLedger::record`]
    /// also drops a `trace.traffic` instant on the worker's timeline (at
    /// sync detail level) so timelines show *when* traffic was charged, not
    /// just the totals.
    pub fn attach_tracer(&mut self, tracer: Arc<TraceCollector>) {
        self.tracer = Some(tracer);
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Records `bytes` (and `messages` messages) for a worker/class.
    pub fn record(&self, worker: usize, class: TrafficClass, bytes: u64, messages: u64) {
        let r = &self.workers[worker];
        r.counter_add(class.bytes_metric(), bytes);
        if messages > 0 {
            r.counter_add(class.messages_metric(), messages);
        }
        if let Some(t) = &self.tracer {
            t.worker_instant(
                worker,
                names::TRACE_TRAFFIC,
                &[
                    ("class", Json::from(class.metric_suffix())),
                    ("bytes", Json::U64(bytes)),
                    ("messages", Json::U64(messages)),
                ],
            );
        }
    }

    /// Bytes recorded for one worker/class.
    pub fn bytes(&self, worker: usize, class: TrafficClass) -> u64 {
        self.workers[worker].counter(class.bytes_metric())
    }

    /// Messages recorded for one worker/class.
    pub fn messages(&self, worker: usize, class: TrafficClass) -> u64 {
        self.workers[worker].counter(class.messages_metric())
    }

    /// Total bytes of one class across all workers.
    pub fn total_bytes(&self, class: TrafficClass) -> u64 {
        self.workers
            .iter()
            .map(|w| w.counter(class.bytes_metric()))
            .sum()
    }

    /// Grand total bytes across classes and workers.
    pub fn grand_total_bytes(&self) -> u64 {
        TrafficClass::all()
            .iter()
            .map(|&c| self.total_bytes(c))
            .sum()
    }

    /// Merged snapshot of every worker's traffic metrics (only
    /// `traffic.*` entries when recorders are private; shared recorders
    /// may carry other components' metrics too).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut merged = TelemetrySnapshot::default();
        for w in &self.workers {
            merged.merge(&w.snapshot());
        }
        merged
    }

    /// Resets every traffic counter (between measured iterations). Leaves
    /// non-traffic metrics on shared recorders untouched.
    pub fn reset(&self) {
        for w in &self.workers {
            w.reset_prefix(names::TRAFFIC_BYTES_PREFIX);
            w.reset_prefix(names::TRAFFIC_MESSAGES_PREFIX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let l = TrafficLedger::new(2);
        l.record(0, TrafficClass::EmbedData, 100, 2);
        l.record(1, TrafficClass::EmbedData, 50, 1);
        l.record(0, TrafficClass::AllReduce, 30, 1);
        assert_eq!(l.bytes(0, TrafficClass::EmbedData), 100);
        assert_eq!(l.messages(0, TrafficClass::EmbedData), 2);
        assert_eq!(l.total_bytes(TrafficClass::EmbedData), 150);
        assert_eq!(l.grand_total_bytes(), 180);
        assert_eq!(l.bytes(1, TrafficClass::KeysClocks), 0);
    }

    #[test]
    fn reset_clears() {
        let l = TrafficLedger::new(1);
        l.record(0, TrafficClass::KeysClocks, 10, 1);
        l.reset();
        assert_eq!(l.grand_total_bytes(), 0);
        assert_eq!(l.messages(0, TrafficClass::KeysClocks), 0);
    }

    #[test]
    fn concurrent_recording() {
        let l = std::sync::Arc::new(TrafficLedger::new(4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let l = std::sync::Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.record(w, TrafficClass::EmbedData, 3, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.total_bytes(TrafficClass::EmbedData), 12_000);
    }

    #[test]
    fn labels_stable() {
        assert_eq!(TrafficClass::EmbedData.label(), "embeds & grads");
        assert_eq!(TrafficClass::all().len(), 3);
    }

    #[test]
    fn traced_records_land_on_the_worker_track() {
        use hetgmp_telemetry::{TraceCollector, TraceLevel, TraceTrack};
        let mut l = TrafficLedger::new(2);
        let tracer = Arc::new(TraceCollector::new(2, TraceLevel::Sync));
        l.attach_tracer(Arc::clone(&tracer));
        l.record(1, TrafficClass::KeysClocks, 64, 2);
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, TraceTrack::Worker(1));
        assert_eq!(events[0].name, names::TRACE_TRAFFIC);
        // At batch level the instants are suppressed.
        let mut quiet = TrafficLedger::new(1);
        let batch_tracer = Arc::new(TraceCollector::new(1, TraceLevel::Batch));
        quiet.attach_tracer(Arc::clone(&batch_tracer));
        quiet.record(0, TrafficClass::EmbedData, 8, 1);
        assert!(batch_tracer.is_empty());
    }

    #[test]
    fn registry_backed_ledger_feeds_unified_snapshot() {
        let registry = MetricsRegistry::new(2);
        let l = TrafficLedger::from_registry(&registry);
        l.record(0, TrafficClass::EmbedData, 100, 1);
        l.record(1, TrafficClass::EmbedData, 28, 1);
        l.record(0, TrafficClass::AllReduce, 9, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("traffic.bytes.embed_data"), 128);
        assert_eq!(snap.counter("traffic.bytes.allreduce"), 9);
        assert_eq!(
            snap.counter_prefix_sum(names::TRAFFIC_BYTES_PREFIX),
            l.grand_total_bytes()
        );
        // The ledger's own snapshot agrees with the registry's.
        assert_eq!(
            l.snapshot().counter("traffic.bytes.embed_data"),
            snap.counter("traffic.bytes.embed_data")
        );
        // Reset through the façade leaves other metrics alone.
        registry.worker(0).counter_add("embedding.cache.hit", 5);
        l.reset();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_prefix_sum(names::TRAFFIC_BYTES_PREFIX), 0);
        assert_eq!(snap.counter("embedding.cache.hit"), 5);
    }
}
