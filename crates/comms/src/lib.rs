#![warn(missing_docs)]

//! # hetgmp-comms
//!
//! Thread-based communication substrate standing in for NCCL (paper §6).
//!
//! HET-GMP's real implementation exchanges embeddings over NCCL p2p and
//! synchronises dense parameters with ring AllReduce. Here workers are OS
//! threads in one process, so "communication" is shared-memory hand-off —
//! but the *pattern* and the *byte accounting* are faithful:
//!
//! * [`AllReduceGroup`] — a reusable sum-AllReduce across `n` worker
//!   threads (barrier semantics identical to NCCL's collective call); the
//!   cost model in `hetgmp-cluster` charges it with the standard ring bound
//!   `2·(N−1)/N · bytes` over the bottleneck link;
//! * [`Mailbox`] / [`P2pNetwork`] — typed point-to-point channels between
//!   workers (crossbeam), used by the decentralized embedding exchange;
//! * [`TrafficLedger`] — global per-worker, per-class byte/message counters
//!   from which the Figure 1/8 communication breakdowns are read.

pub mod allreduce;
pub mod ledger;
pub mod mailbox;
pub mod quant;

pub use allreduce::AllReduceGroup;
pub use ledger::{TrafficClass, TrafficLedger};
pub use mailbox::{Mailbox, P2pNetwork, RecvState};
pub use quant::{DenseQuantizer, ErrorFeedback, SyncFormat, DENSE_CHUNK};
