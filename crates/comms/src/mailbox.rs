//! Point-to-point typed channels between workers.
//!
//! Models NCCL's p2p send/recv: every ordered pair of workers gets an
//! unbounded channel. The embedding exchange in this reproduction mostly
//! goes through the shared `hetgmp-embedding` table (with byte
//! accounting), but the mailbox network is used by protocols that need
//! actual message passing — e.g. the decentralized index/clock gossip in the
//! examples and failure-injection tests.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use hetgmp_telemetry::{names, Json, TraceCollector};
use std::sync::Arc;

/// One worker's endpoint: senders to every peer + its own receiver.
pub struct Mailbox<T> {
    worker: usize,
    senders: Vec<Sender<(usize, T)>>,
    receiver: Receiver<(usize, T)>,
    tracer: Option<Arc<TraceCollector>>,
}

impl<T> Mailbox<T> {
    /// This endpoint's worker id.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Number of workers in the network.
    pub fn num_workers(&self) -> usize {
        self.senders.len()
    }

    /// Attaches a trace collector; every send drops a `trace.mailbox.send`
    /// instant on this worker's timeline (at sync detail level).
    pub fn attach_tracer(&mut self, tracer: Arc<TraceCollector>) {
        self.tracer = Some(tracer);
    }

    /// Sends `msg` to `dst` (tagged with this worker as the source).
    ///
    /// # Panics
    /// Panics if `dst` is out of range or the network is shut down.
    pub fn send(&self, dst: usize, msg: T) {
        self.senders[dst]
            .send((self.worker, msg))
            .expect("peer mailbox dropped");
        if let Some(t) = &self.tracer {
            t.worker_instant(
                self.worker,
                names::TRACE_MAILBOX_SEND,
                &[("dst", Json::U64(dst as u64))],
            );
        }
    }

    /// Blocking receive; returns `(source_worker, message)`.
    pub fn recv(&self) -> (usize, T) {
        self.receiver.recv().expect("all senders dropped")
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(usize, T)> {
        match self.receiver.try_recv() {
            Ok(m) => Some(m),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => None,
        }
    }
}

/// Builder for a fully-connected p2p network of `n` workers.
pub struct P2pNetwork;

impl P2pNetwork {
    /// Creates `n` mailboxes; mailbox `k` belongs to worker `k`.
    pub fn create<T>(n: usize) -> Vec<Mailbox<T>> {
        assert!(n > 0, "network must have at least one worker");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(worker, receiver)| Mailbox {
                worker,
                senders: senders.clone(),
                receiver,
                tracer: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let mut boxes = P2pNetwork::create::<u32>(3);
        let b2 = boxes.remove(2);
        let b0 = boxes.remove(0);
        b0.send(2, 42);
        let (src, msg) = b2.recv();
        assert_eq!(src, 0);
        assert_eq!(msg, 42);
    }

    #[test]
    fn self_send_allowed() {
        let boxes = P2pNetwork::create::<&'static str>(1);
        boxes[0].send(0, "loopback");
        assert_eq!(boxes[0].recv(), (0, "loopback"));
    }

    #[test]
    fn try_recv_empty() {
        let boxes = P2pNetwork::create::<u8>(2);
        assert!(boxes[0].try_recv().is_none());
        boxes[1].send(0, 7);
        assert_eq!(boxes[0].try_recv(), Some((1, 7)));
    }

    #[test]
    fn cross_thread_exchange() {
        let mut boxes = P2pNetwork::create::<Vec<f32>>(2);
        let b1 = boxes.remove(1);
        let b0 = boxes.remove(0);
        let t = std::thread::spawn(move || {
            let (src, v) = b1.recv();
            assert_eq!(src, 0);
            b1.send(0, v.iter().map(|x| x * 2.0).collect());
        });
        b0.send(1, vec![1.0, 2.0]);
        let (_, doubled) = b0.recv();
        assert_eq!(doubled, vec![2.0, 4.0]);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_network_panics() {
        P2pNetwork::create::<()>(0);
    }

    #[test]
    fn traced_sends_emit_instants() {
        use hetgmp_telemetry::{TraceLevel, TraceTrack};
        let mut boxes = P2pNetwork::create::<u8>(2);
        let tracer = Arc::new(TraceCollector::new(2, TraceLevel::Sync));
        boxes[0].attach_tracer(Arc::clone(&tracer));
        boxes[0].send(1, 9);
        assert_eq!(boxes[1].recv(), (0, 9));
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, TraceTrack::Worker(0));
        assert_eq!(events[0].name, names::TRACE_MAILBOX_SEND);
    }
}
