//! Point-to-point typed channels between workers.
//!
//! Models NCCL's p2p send/recv: every ordered pair of workers gets an
//! unbounded channel. The embedding exchange in this reproduction mostly
//! goes through the shared `hetgmp-embedding` table (with byte
//! accounting), but the mailbox network is used by protocols that need
//! actual message passing — e.g. the decentralized index/clock gossip in the
//! examples and failure-injection tests.
//!
//! A peer's mailbox can disappear at runtime — the fault injector drops a
//! crashed worker's endpoint — so [`Mailbox::send`] and [`Mailbox::recv`]
//! surface disconnection as a [`HetGmpError`] instead of panicking, and
//! [`Mailbox::try_recv`] reports [`RecvState::Disconnected`] distinctly
//! from [`RecvState::Empty`] (a gossip loop must tell "nothing yet" from
//! "nothing ever again" or it spins forever on a dead network).

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use hetgmp_telemetry::{names, HetGmpError, Json, TraceCollector};
use std::sync::Arc;

/// Outcome of a non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvState<T> {
    /// A message arrived: `(source_worker, message)`.
    Msg(usize, T),
    /// No message queued right now; senders are still alive.
    Empty,
    /// Every sender is gone — no message can ever arrive again.
    Disconnected,
}

impl<T> RecvState<T> {
    /// The message, if one arrived (`Empty`/`Disconnected` → `None`).
    pub fn msg(self) -> Option<(usize, T)> {
        match self {
            RecvState::Msg(src, m) => Some((src, m)),
            _ => None,
        }
    }
}

/// One worker's endpoint: senders to every peer + its own receiver.
pub struct Mailbox<T> {
    worker: usize,
    senders: Vec<Sender<(usize, T)>>,
    receiver: Receiver<(usize, T)>,
    tracer: Option<Arc<TraceCollector>>,
}

impl<T> Mailbox<T> {
    /// This endpoint's worker id.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Number of workers in the network.
    pub fn num_workers(&self) -> usize {
        self.senders.len()
    }

    /// Attaches a trace collector; every send drops a `trace.mailbox.send`
    /// instant on this worker's timeline (at sync detail level).
    pub fn attach_tracer(&mut self, tracer: Arc<TraceCollector>) {
        self.tracer = Some(tracer);
    }

    /// Sends `msg` to `dst` (tagged with this worker as the source).
    ///
    /// # Errors
    /// [`HetGmpError::Comms`] when `dst`'s mailbox has been dropped (e.g.
    /// the fault injector took the peer down).
    ///
    /// # Panics
    /// Panics if `dst` is out of range — that is a caller bug, not a
    /// runtime condition.
    pub fn send(&self, dst: usize, msg: T) -> Result<(), HetGmpError> {
        self.senders[dst].send((self.worker, msg)).map_err(|_| {
            HetGmpError::comms(format!(
                "worker {} cannot send to worker {dst}: peer mailbox dropped",
                self.worker
            ))
        })?;
        if let Some(t) = &self.tracer {
            t.worker_instant(
                self.worker,
                names::TRACE_MAILBOX_SEND,
                &[("dst", Json::U64(dst as u64))],
            );
        }
        Ok(())
    }

    /// Blocking receive; returns `(source_worker, message)`.
    ///
    /// # Errors
    /// [`HetGmpError::Comms`] when every sender has been dropped — the
    /// network is shut down and no message can ever arrive.
    pub fn recv(&self) -> Result<(usize, T), HetGmpError> {
        self.receiver.recv().map_err(|_| {
            HetGmpError::comms(format!(
                "worker {} receive failed: all senders dropped",
                self.worker
            ))
        })
    }

    /// Non-blocking receive, distinguishing "nothing queued yet"
    /// ([`RecvState::Empty`]) from "network shut down"
    /// ([`RecvState::Disconnected`]).
    pub fn try_recv(&self) -> RecvState<T> {
        match self.receiver.try_recv() {
            Ok((src, m)) => RecvState::Msg(src, m),
            Err(TryRecvError::Empty) => RecvState::Empty,
            Err(TryRecvError::Disconnected) => RecvState::Disconnected,
        }
    }
}

/// Builder for a fully-connected p2p network of `n` workers.
pub struct P2pNetwork;

impl P2pNetwork {
    /// Creates `n` mailboxes; mailbox `k` belongs to worker `k`.
    pub fn create<T>(n: usize) -> Vec<Mailbox<T>> {
        assert!(n > 0, "network must have at least one worker");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(worker, receiver)| Mailbox {
                worker,
                senders: senders.clone(),
                receiver,
                tracer: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let mut boxes = P2pNetwork::create::<u32>(3);
        let b2 = boxes.remove(2);
        let b0 = boxes.remove(0);
        b0.send(2, 42).unwrap();
        let (src, msg) = b2.recv().unwrap();
        assert_eq!(src, 0);
        assert_eq!(msg, 42);
    }

    #[test]
    fn self_send_allowed() {
        let boxes = P2pNetwork::create::<&'static str>(1);
        boxes[0].send(0, "loopback").unwrap();
        assert_eq!(boxes[0].recv().unwrap(), (0, "loopback"));
    }

    #[test]
    fn try_recv_empty_vs_message() {
        let boxes = P2pNetwork::create::<u8>(2);
        assert_eq!(boxes[0].try_recv(), RecvState::Empty);
        boxes[1].send(0, 7).unwrap();
        assert_eq!(boxes[0].try_recv(), RecvState::Msg(1, 7));
        assert_eq!(boxes[0].try_recv().msg(), None);
    }

    #[test]
    fn send_to_dropped_peer_is_an_error_not_a_panic() {
        let mut boxes = P2pNetwork::create::<u32>(2);
        // Worker 1 crashes: its mailbox (receiver + its sender clones)
        // goes away entirely.
        drop(boxes.remove(1));
        let b0 = boxes.remove(0);
        let err = b0.send(1, 5).unwrap_err();
        assert!(matches!(err, HetGmpError::Comms { .. }), "{err}");
        assert!(err.to_string().contains("peer mailbox dropped"), "{err}");
        // Self-sends still work: worker 0's own endpoint is alive.
        b0.send(0, 9).unwrap();
        assert_eq!(b0.recv().unwrap(), (0, 9));
    }

    #[test]
    fn recv_after_network_shutdown_is_an_error() {
        let mut boxes = P2pNetwork::create::<u8>(2);
        let b1 = boxes.remove(1);
        // Keep a buffered message in flight, then drop every sender.
        b1.send(1, 3).unwrap();
        drop(boxes); // worker 0's endpoint (and its sender clones) gone
        let (rx_only_senders, receiver, worker) = (b1.senders, b1.receiver, b1.worker);
        drop(rx_only_senders); // b1's own sender clones too
        let b1 = Mailbox { worker, senders: Vec::new(), receiver, tracer: None };
        // The buffered message still drains...
        assert_eq!(b1.recv().unwrap(), (1, 3));
        // ...then recv reports disconnection instead of panicking.
        let err = b1.recv().unwrap_err();
        assert!(matches!(err, HetGmpError::Comms { .. }), "{err}");
        assert_eq!(b1.try_recv(), RecvState::Disconnected);
    }

    #[test]
    fn cross_thread_exchange() {
        let mut boxes = P2pNetwork::create::<Vec<f32>>(2);
        let b1 = boxes.remove(1);
        let b0 = boxes.remove(0);
        let t = std::thread::spawn(move || {
            let (src, v) = b1.recv().unwrap();
            assert_eq!(src, 0);
            b1.send(0, v.iter().map(|x| x * 2.0).collect()).unwrap();
        });
        b0.send(1, vec![1.0, 2.0]).unwrap();
        let (_, doubled) = b0.recv().unwrap();
        assert_eq!(doubled, vec![2.0, 4.0]);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_network_panics() {
        P2pNetwork::create::<()>(0);
    }

    #[test]
    fn traced_sends_emit_instants() {
        use hetgmp_telemetry::{TraceLevel, TraceTrack};
        let mut boxes = P2pNetwork::create::<u8>(2);
        let tracer = Arc::new(TraceCollector::new(2, TraceLevel::Sync));
        boxes[0].attach_tracer(Arc::clone(&tracer));
        boxes[0].send(1, 9).unwrap();
        assert_eq!(boxes[1].recv().unwrap(), (0, 9));
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, TraceTrack::Worker(0));
        assert_eq!(events[0].name, names::TRACE_MAILBOX_SEND);
    }
}
