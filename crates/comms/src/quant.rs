//! Wire formats for inter-worker embedding payloads.
//!
//! Every replica sync, remote fetch, and gradient write-back in this
//! reproduction moves f32 rows by default. HET (arXiv 2112.07221) shows
//! the staleness-bounded embedding exchange is where the bytes are, and
//! compressing it is cheaper than overlapping it — so [`SyncFormat`]
//! offers three lossy wire encodings beside the f32 identity:
//!
//! * `f16` — IEEE 754 binary16, round-to-nearest-even (11-bit mantissa);
//! * `bf16` — truncated f32 exponent range, round-to-nearest-even
//!   (8-bit mantissa, full f32 dynamic range);
//! * `int8` — per-row symmetric quantization: one f32 scale
//!   (`max|x| / 127`) plus one signed byte per element, half-even
//!   rounding.
//!
//! Workers never materialise byte buffers (threads share memory); the
//! simulated wire is modelled by *transporting* a row in place —
//! encode + decode through the format — so the values a replica holds
//! are exactly the values a real receiver would decode, and the ledger
//! charges [`SyncFormat::row_wire_bytes`] instead of `dim × 4`.
//!
//! All encodings are deterministic (round-to-nearest-even, no
//! data-dependent branching on accumulated state), which preserves the
//! workspace's bit-reproducibility contract: a format bit-matches itself
//! across pipeline depths, thread counts, and checkpoint resume.
//!
//! Lossy gradient push paths additionally route through an
//! [`ErrorFeedback`] accumulator: the quantization residual of each
//! write-back is remembered per row and added to that row's next
//! gradient before encoding, so rounding error accumulates toward a
//! correction instead of a bias (1-bit SGD / EF-SGD style).

use std::collections::HashMap;

use hetgmp_telemetry::HetGmpError;

/// Block size (in f32 elements) for dense-gradient quantization: int8
/// carries one f32 scale per block, and error feedback is keyed per block.
pub const DENSE_CHUNK: usize = 256;

/// Wire encoding for inter-worker embedding (and dense-gradient) payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyncFormat {
    /// Raw f32 rows — the identity transport (default, bit-exact).
    #[default]
    F32,
    /// IEEE 754 binary16 with round-to-nearest-even.
    F16,
    /// bfloat16 (truncated f32) with round-to-nearest-even.
    Bf16,
    /// Per-row symmetric int8: one f32 scale + one byte per element.
    Int8,
}

impl SyncFormat {
    /// Every supported format, in lossless-to-lossy order.
    pub const ALL: [SyncFormat; 4] =
        [SyncFormat::F32, SyncFormat::F16, SyncFormat::Bf16, SyncFormat::Int8];

    /// Canonical CLI / config spelling.
    pub fn name(self) -> &'static str {
        match self {
            SyncFormat::F32 => "f32",
            SyncFormat::F16 => "f16",
            SyncFormat::Bf16 => "bf16",
            SyncFormat::Int8 => "int8",
        }
    }

    /// Parses the CLI spelling (`f32 | f16 | bf16 | int8`).
    pub fn parse(s: &str) -> Result<Self, HetGmpError> {
        match s {
            "f32" => Ok(SyncFormat::F32),
            "f16" => Ok(SyncFormat::F16),
            "bf16" => Ok(SyncFormat::Bf16),
            "int8" => Ok(SyncFormat::Int8),
            other => Err(HetGmpError::config(
                "sync-format",
                format!("unknown format `{other}` (expected f32 | f16 | bf16 | int8)"),
            )),
        }
    }

    /// `true` when transport is the identity (no rounding anywhere).
    pub fn is_lossless(self) -> bool {
        matches!(self, SyncFormat::F32)
    }

    /// Bytes one `dim`-element row occupies on the wire.
    ///
    /// This is the *single* source of truth for embedding wire sizes —
    /// every ledger charge and cost-model transfer derives from it, so
    /// byte accounting can never drift from the actual payload format.
    /// int8 pays 4 extra bytes for its per-row f32 scale.
    pub fn row_wire_bytes(self, dim: usize) -> u64 {
        match self {
            SyncFormat::F32 => (dim * 4) as u64,
            SyncFormat::F16 | SyncFormat::Bf16 => (dim * 2) as u64,
            SyncFormat::Int8 => (dim + 4) as u64,
        }
    }

    /// Wire bytes for a dense payload of `n` f32 parameters, quantized in
    /// [`DENSE_CHUNK`]-element blocks (int8 pays one f32 scale per block).
    pub fn dense_wire_bytes(self, n: usize) -> u64 {
        match self {
            SyncFormat::F32 => (n * 4) as u64,
            SyncFormat::F16 | SyncFormat::Bf16 => (n * 2) as u64,
            SyncFormat::Int8 => (n + 4 * n.div_ceil(DENSE_CHUNK)) as u64,
        }
    }

    /// Simulates one row crossing the wire: encodes and immediately
    /// decodes `row` in place. A no-op for [`SyncFormat::F32`].
    pub fn transport(self, row: &mut [f32]) {
        match self {
            SyncFormat::F32 => {}
            SyncFormat::F16 => {
                for x in row {
                    *x = f16_bits_to_f32(f32_to_f16_bits(*x));
                }
            }
            SyncFormat::Bf16 => {
                for x in row {
                    *x = bf16_bits_to_f32(f32_to_bf16_bits(*x));
                }
            }
            SyncFormat::Int8 => transport_int8(row),
        }
    }
}

impl std::fmt::Display for SyncFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// f32 → IEEE 754 binary16 bits, round-to-nearest-even.
///
/// Handles normals, subnormals, overflow-to-infinity, and NaN (quietened,
/// payload truncated). Deterministic: a pure function of the input bits.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: preserve the class; keep NaNs quiet and non-zero.
        return if man == 0 { sign | 0x7C00 } else { sign | 0x7E00 };
    }

    // Unbiased exponent, re-biased for f16 (bias 15 vs 127).
    let e = exp - 127 + 15;
    if e >= 0x1F {
        // Overflows f16's range: round to infinity.
        return sign | 0x7C00;
    }
    if e <= 0 {
        // Subnormal (or underflow to zero). Shift the full 24-bit
        // significand (implicit leading 1) right until the exponent
        // field is zero, rounding half-to-even on the dropped bits.
        if e < -10 {
            return sign; // underflows even the smallest subnormal
        }
        let full = man | 0x0080_0000; // implicit bit
        let shift = (14 - e) as u32; // bits dropped from the 24-bit significand
        let kept = full >> shift;
        let dropped = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round_up = dropped > half || (dropped == half && (kept & 1) == 1);
        return sign | (kept + round_up as u32) as u16;
    }

    // Normal: keep the top 10 mantissa bits, round half-to-even on the
    // 13 dropped ones. A mantissa carry can overflow into the exponent
    // field — the integer add handles that correctly (binades are
    // adjacent in the bit encoding), including overflow to infinity.
    let kept = man >> 13;
    let dropped = man & 0x1FFF;
    let round_up = dropped > 0x1000 || (dropped == 0x1000 && (kept & 1) == 1);
    let h = ((e as u32) << 10) | kept;
    sign | (h + round_up as u32) as u16
}

/// IEEE 754 binary16 bits → f32 (exact — every f16 value is an f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    let bits = match (exp, man) {
        (0, 0) => sign,                            // ±0
        (0, m) => {
            // Subnormal: value = m · 2⁻²⁴; normalise into f32
            // (m = 2^lead · 1.frac ⇒ value = 1.frac · 2^(lead−24)).
            let lead = 31 - m.leading_zeros();     // position of the top set bit
            let e = 103 + lead;                    // biased: 127 + lead − 24
            let frac = (m << (23 - lead)) & 0x007F_FFFF;
            sign | (e << 23) | frac
        }
        (0x1F, 0) => sign | 0x7F80_0000,           // ±inf
        (0x1F, m) => sign | 0x7FC0_0000 | (m << 13), // NaN (kept quiet)
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// f32 → bfloat16 bits, round-to-nearest-even (the standard
/// `(bits + ((bits >> 16) & 1) + 0x7FFF) >> 16` trick; NaNs bypass the
/// add so they cannot round into an infinity).
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Truncate but force a set mantissa bit so the NaN survives.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rounded = bits.wrapping_add(((bits >> 16) & 1) + 0x7FFF);
    (rounded >> 16) as u16
}

/// bfloat16 bits → f32 (exact: bf16 is a truncated f32).
pub fn bf16_bits_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Per-row symmetric int8 transport: `scale = max|x| / 127`, each element
/// `clamp(round_half_even(x / scale), -127, 127) · scale`. The scale rides
/// the wire as a raw f32 (the `+ 4` in [`SyncFormat::row_wire_bytes`]), so
/// decoding is exact given the bytes. An all-zero (or non-finite-free
/// zero-max) row stays exactly zero.
fn transport_int8(row: &mut [f32]) {
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 || !max_abs.is_finite() {
        // All-zero rows need no quantization; non-finite rows are passed
        // through untouched (the trainer surfaces NaN losses itself —
        // scaling by an infinite max would silently zero everything).
        return;
    }
    let scale = max_abs / 127.0;
    let inv = 1.0 / scale;
    for x in row {
        let q = (*x * inv).round_ties_even().clamp(-127.0, 127.0);
        *x = q * scale;
    }
}

/// Per-row error-feedback accumulators for lossy gradient push paths.
///
/// EF-SGD discipline: before a gradient row is encoded, the residual its
/// previous encoding left behind is added back; after encoding, the new
/// residual (`compensated − transported`) is stored. Rounding error is
/// thus carried forward instead of dropped, so int8 write-backs do not
/// bias convergence — small gradients that would round to zero every
/// step accumulate until they push through a quantization level.
///
/// Residuals are worker-local bookkeeping, never serialized: checkpoints
/// stay f32, and [`ErrorFeedback::clear`] drops all state at epoch
/// boundaries (replica resync) and crash recovery so a resumed run
/// bit-matches an uninterrupted one.
#[derive(Debug, Default)]
pub struct ErrorFeedback {
    residuals: HashMap<u32, Vec<f32>>,
}

impl ErrorFeedback {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compensates `grad` with row `id`'s stored residual, transports it
    /// through `format`, and stores the new residual. On return `grad`
    /// holds exactly the values the receiving side decodes.
    ///
    /// [`SyncFormat::F32`] short-circuits: no residual is read or stored.
    pub fn compensate_and_transport(&mut self, format: SyncFormat, id: u32, grad: &mut [f32]) {
        if format.is_lossless() {
            return;
        }
        match self.residuals.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let r = e.get_mut();
                debug_assert_eq!(r.len(), grad.len(), "error-feedback dim changed");
                for (g, res) in grad.iter_mut().zip(r.iter()) {
                    *g += res;
                }
                let compensated: Vec<f32> = grad.to_vec();
                format.transport(grad);
                for (res, (c, g)) in r.iter_mut().zip(compensated.iter().zip(grad.iter())) {
                    *res = c - g;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let compensated: Vec<f32> = grad.to_vec();
                format.transport(grad);
                let r: Vec<f32> =
                    compensated.iter().zip(grad.iter()).map(|(c, g)| c - g).collect();
                e.insert(r);
            }
        }
    }

    /// Number of rows currently carrying a residual.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// `true` when no row carries a residual.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Drops every stored residual (epoch-boundary resync, crash
    /// recovery) so worker state matches a freshly constructed worker.
    pub fn clear(&mut self) {
        self.residuals.clear();
    }
}

/// Transports flattened dense-gradient payloads through a [`SyncFormat`]
/// in [`DENSE_CHUNK`]-element blocks, with per-block error feedback on
/// lossy formats. Constructed per epoch so residual state resets at the
/// same barrier replica resync does — a checkpoint-resumed run bit-matches
/// an uninterrupted one.
#[derive(Debug)]
pub struct DenseQuantizer {
    format: SyncFormat,
    feedback_on: bool,
    feedback: ErrorFeedback,
}

impl DenseQuantizer {
    /// A quantizer for `format`; `error_feedback` enables per-block
    /// residual carry on lossy formats.
    pub fn new(format: SyncFormat, error_feedback: bool) -> Self {
        Self { format, feedback_on: error_feedback, feedback: ErrorFeedback::new() }
    }

    /// Simulates the payload crossing the wire in place (encode + decode
    /// per block). A no-op for lossless formats.
    pub fn transport(&mut self, data: &mut [f32]) {
        if self.format.is_lossless() {
            return;
        }
        for (i, chunk) in data.chunks_mut(DENSE_CHUNK).enumerate() {
            if self.feedback_on {
                self.feedback.compensate_and_transport(self.format, i as u32, chunk);
            } else {
                self.format.transport(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_is_identity() {
        let mut v = vec![1.0f32, -2.5, std::f32::consts::PI, f32::MIN_POSITIVE, 0.0];
        let orig = v.clone();
        SyncFormat::F32.transport(&mut v);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wire_bytes_per_format() {
        assert_eq!(SyncFormat::F32.row_wire_bytes(16), 64);
        assert_eq!(SyncFormat::F16.row_wire_bytes(16), 32);
        assert_eq!(SyncFormat::Bf16.row_wire_bytes(16), 32);
        assert_eq!(SyncFormat::Int8.row_wire_bytes(16), 20);
        // int8 crosses 3.5x reduction at dim 28.
        assert!(SyncFormat::Int8.row_wire_bytes(32) * 7 / 2 <= SyncFormat::F32.row_wire_bytes(32));
    }

    #[test]
    fn dense_wire_bytes_per_format() {
        assert_eq!(SyncFormat::F32.dense_wire_bytes(1000), 4000);
        assert_eq!(SyncFormat::F16.dense_wire_bytes(1000), 2000);
        assert_eq!(SyncFormat::Bf16.dense_wire_bytes(1000), 2000);
        // 1000 elements = 4 blocks of ≤256 → 1000 bytes + 4 scales.
        assert_eq!(SyncFormat::Int8.dense_wire_bytes(1000), 1016);
        assert_eq!(SyncFormat::Int8.dense_wire_bytes(0), 0);
        assert_eq!(SyncFormat::Int8.dense_wire_bytes(256), 260);
        assert_eq!(SyncFormat::Int8.dense_wire_bytes(257), 265);
    }

    #[test]
    fn dense_quantizer_f32_is_identity_and_stateless() {
        let mut q = DenseQuantizer::new(SyncFormat::F32, true);
        let mut v: Vec<f32> = (0..600).map(|i| (i as f32).sin()).collect();
        let orig = v.clone();
        q.transport(&mut v);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(q.feedback.is_empty());
    }

    #[test]
    fn dense_quantizer_matches_per_chunk_transport() {
        // Without feedback, the quantizer is exactly a chunked transport.
        let mut q = DenseQuantizer::new(SyncFormat::Int8, false);
        let mut v: Vec<f32> = (0..600).map(|i| (i as f32 * 0.37).cos()).collect();
        let mut manual = v.clone();
        q.transport(&mut v);
        for chunk in manual.chunks_mut(DENSE_CHUNK) {
            SyncFormat::Int8.transport(chunk);
        }
        for (a, b) in v.iter().zip(manual.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(q.feedback.is_empty());
    }

    #[test]
    fn dense_quantizer_feedback_carries_residual_per_chunk() {
        let mut q = DenseQuantizer::new(SyncFormat::Int8, true);
        let mut v: Vec<f32> = (0..300).map(|i| (i as f32 * 0.11).sin()).collect();
        q.transport(&mut v);
        // 300 elements span 2 chunks → 2 residual entries.
        assert_eq!(q.feedback.len(), 2);
        // Repeated transports of a biased signal average out: the sum of
        // decoded values approaches the sum of inputs.
        let signal = [0.004f32, 1.0, -0.003, 0.5];
        let mut sums = [0.0f64; 4];
        let mut q = DenseQuantizer::new(SyncFormat::Int8, true);
        const N: usize = 500;
        for _ in 0..N {
            let mut buf = signal;
            q.transport(&mut buf);
            for (s, b) in sums.iter_mut().zip(buf.iter()) {
                *s += *b as f64;
            }
        }
        for (s, x) in sums.iter().zip(signal.iter()) {
            let mean = s / N as f64;
            assert!(
                (mean - *x as f64).abs() < 1e-3,
                "EF mean {mean} drifted from {x}"
            );
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for f in SyncFormat::ALL {
            assert_eq!(SyncFormat::parse(f.name()).unwrap(), f);
        }
        assert!(SyncFormat::parse("fp8").is_err());
    }

    #[test]
    fn f16_exact_values_survive() {
        // Values exactly representable in binary16 round-trip bit-exactly.
        for &x in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 1.5, 2.0, 65504.0, -65504.0, 6.1035156e-5] {
            let rt = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(rt.to_bits(), x.to_bits(), "f16 round-trip changed {x}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16
        // (1 + 2^-10); half-even rounds down to 1.0.
        let halfway = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway)), 1.0);
        // 1 + 3·2^-11 is halfway between 1+2^-10 (odd mantissa) and
        // 1+2^-9 (even); half-even rounds up.
        let halfway_up = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway_up)), 1.0 + 2.0f32.powi(-9));
        // Just above/below halfway round to nearest.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20))), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn f16_subnormals_and_limits() {
        // Smallest f16 subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tiny)), tiny);
        // Half of it rounds to zero (ties-to-even: 0 is even).
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(2.0f32.powi(-25))), 0.0);
        // Above f16 max rounds to infinity.
        assert!(f16_bits_to_f32(f32_to_f16_bits(70000.0)).is_infinite());
        // Negative zero keeps its sign.
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        // NaN survives.
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_truncation_and_rounding() {
        // bf16 keeps f32's exponent: huge magnitudes survive.
        let big = 3.0e38f32;
        let rt = bf16_bits_to_f32(f32_to_bf16_bits(big));
        assert!((rt - big).abs() / big < 1.0 / 128.0);
        // Exactly representable values are unchanged.
        for &x in &[1.0f32, -2.0, 0.15625] {
            assert_eq!(bf16_bits_to_f32(f32_to_bf16_bits(x)).to_bits(), x.to_bits());
        }
        // Halfway case: 1 + 2^-9 is between 1.0 and 1 + 2^-8; even wins.
        assert_eq!(bf16_bits_to_f32(f32_to_bf16_bits(1.0 + 2.0f32.powi(-9))), 1.0);
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn int8_round_trip_bounds() {
        let mut v: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin()).collect();
        let orig = v.clone();
        SyncFormat::Int8.transport(&mut v);
        let max_abs = orig.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let step = max_abs / 127.0;
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-7, "int8 error {} > half step {}", (a - b).abs(), step / 2.0);
        }
    }

    #[test]
    fn int8_zero_row_stays_zero() {
        let mut v = vec![0.0f32; 8];
        SyncFormat::Int8.transport(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn int8_deterministic_across_calls() {
        let base: Vec<f32> = (0..32).map(|i| ((i * 7) as f32).cos() * 0.01).collect();
        let mut a = base.clone();
        let mut b = base;
        SyncFormat::Int8.transport(&mut a);
        SyncFormat::Int8.transport(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn error_feedback_accumulates_small_gradients() {
        // A gradient far below one int8 step rounds to zero every push —
        // without feedback nothing ever lands. With feedback the residual
        // accumulates until a step pushes through.
        let mut ef = ErrorFeedback::new();
        // Row where one large element fixes the scale and one tiny
        // element would always round to zero alone.
        let mut landed = 0.0f64;
        for _ in 0..100 {
            let mut g = vec![1.0f32, 0.001];
            ef.compensate_and_transport(SyncFormat::Int8, 7, &mut g);
            landed += g[1] as f64;
        }
        // 100 pushes × 0.001 ≈ 0.1 must mostly arrive (one step is
        // 1/127 ≈ 0.0079, so ≥ 12 quantization steps fire).
        assert!((landed - 0.1).abs() < 0.008, "landed {landed}, want ≈ 0.1");

        // Without feedback, the same stream drops everything.
        let mut dropped = 0.0f64;
        for _ in 0..100 {
            let mut g = vec![1.0f32, 0.001];
            SyncFormat::Int8.transport(&mut g);
            dropped += g[1] as f64;
        }
        assert_eq!(dropped, 0.0);
    }

    #[test]
    fn error_feedback_f32_is_free() {
        let mut ef = ErrorFeedback::new();
        let mut g = vec![0.123f32, -0.456];
        let orig = g.clone();
        ef.compensate_and_transport(SyncFormat::F32, 3, &mut g);
        assert_eq!(g, orig);
        assert!(ef.is_empty());
    }

    #[test]
    fn error_feedback_clear_resets_state() {
        let mut ef = ErrorFeedback::new();
        let mut g = vec![1.0f32, 0.001];
        ef.compensate_and_transport(SyncFormat::Int8, 1, &mut g);
        assert_eq!(ef.len(), 1);
        ef.clear();
        assert!(ef.is_empty());
    }
}
