//! Property tests for the communication substrate.

use std::sync::Arc;

use hetgmp_comms::{AllReduceGroup, P2pNetwork, TrafficClass, TrafficLedger};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_equals_serial_sum(
        vectors in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 8..=8),
            2..5
        )
    ) {
        let n = vectors.len();
        let expected: Vec<f32> = (0..8)
            .map(|i| vectors.iter().map(|v| v[i]).sum())
            .collect();
        let group = Arc::new(AllReduceGroup::new(n));
        let handles: Vec<_> = vectors
            .into_iter()
            .map(|mut v| {
                let group = Arc::clone(&group);
                std::thread::spawn(move || {
                    group.allreduce_sum(&mut v);
                    v
                })
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            for (g, e) in got.iter().zip(&expected) {
                prop_assert!((g - e).abs() < 1e-3, "{g} vs {e}");
            }
        }
    }

    #[test]
    fn allreduce_max_equals_serial_max(
        values in prop::collection::vec(-100.0f32..100.0, 2..6)
    ) {
        let n = values.len();
        let expected = values.iter().cloned().fold(f32::MIN, f32::max);
        let group = Arc::new(AllReduceGroup::new(n));
        let handles: Vec<_> = values
            .into_iter()
            .map(|x| {
                let group = Arc::clone(&group);
                std::thread::spawn(move || {
                    let mut v = [x];
                    group.allreduce_max(&mut v);
                    v[0]
                })
            })
            .collect();
        for h in handles {
            prop_assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn ledger_totals_add_up(
        records in prop::collection::vec((0usize..4, 0u8..3, 0u64..1000), 0..60)
    ) {
        let ledger = TrafficLedger::new(4);
        let mut expected = [0u64; 3];
        for &(w, c, bytes) in &records {
            let class = match c {
                0 => TrafficClass::EmbedData,
                1 => TrafficClass::KeysClocks,
                _ => TrafficClass::AllReduce,
            };
            ledger.record(w, class, bytes, 1);
            expected[c as usize] += bytes;
        }
        prop_assert_eq!(ledger.total_bytes(TrafficClass::EmbedData), expected[0]);
        prop_assert_eq!(ledger.total_bytes(TrafficClass::KeysClocks), expected[1]);
        prop_assert_eq!(ledger.total_bytes(TrafficClass::AllReduce), expected[2]);
        prop_assert_eq!(ledger.grand_total_bytes(), expected.iter().sum::<u64>());
    }

    #[test]
    fn mailboxes_deliver_everything(msgs in prop::collection::vec((0usize..3, 0usize..3, 0u32..1000), 0..40)) {
        let boxes = P2pNetwork::create::<u32>(3);
        let mut expected_per_dst = [0usize; 3];
        for &(src, dst, value) in &msgs {
            boxes[src].send(dst, value);
            expected_per_dst[dst] += 1;
        }
        for (dst, mailbox) in boxes.iter().enumerate() {
            let mut received = 0;
            while mailbox.try_recv().is_some() {
                received += 1;
            }
            prop_assert_eq!(received, expected_per_dst[dst]);
        }
    }
}
