//! Property tests for the communication substrate.

use std::sync::Arc;

use hetgmp_comms::{AllReduceGroup, P2pNetwork, TrafficClass, TrafficLedger};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_equals_serial_sum(
        vectors in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 8..=8),
            2..5
        )
    ) {
        let n = vectors.len();
        let expected: Vec<f32> = (0..8)
            .map(|i| vectors.iter().map(|v| v[i]).sum())
            .collect();
        let group = Arc::new(AllReduceGroup::new(n));
        let handles: Vec<_> = vectors
            .into_iter()
            .map(|mut v| {
                let group = Arc::clone(&group);
                std::thread::spawn(move || {
                    group.allreduce_sum(&mut v);
                    v
                })
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            for (g, e) in got.iter().zip(&expected) {
                prop_assert!((g - e).abs() < 1e-3, "{g} vs {e}");
            }
        }
    }

    #[test]
    fn allreduce_max_equals_serial_max(
        values in prop::collection::vec(-100.0f32..100.0, 2..6)
    ) {
        let n = values.len();
        let expected = values.iter().cloned().fold(f32::MIN, f32::max);
        let group = Arc::new(AllReduceGroup::new(n));
        let handles: Vec<_> = values
            .into_iter()
            .map(|x| {
                let group = Arc::clone(&group);
                std::thread::spawn(move || {
                    let mut v = [x];
                    group.allreduce_max(&mut v);
                    v[0]
                })
            })
            .collect();
        for h in handles {
            prop_assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn ledger_totals_add_up(
        records in prop::collection::vec((0usize..4, 0u8..3, 0u64..1000), 0..60)
    ) {
        let ledger = TrafficLedger::new(4);
        let mut expected = [0u64; 3];
        for &(w, c, bytes) in &records {
            let class = match c {
                0 => TrafficClass::EmbedData,
                1 => TrafficClass::KeysClocks,
                _ => TrafficClass::AllReduce,
            };
            ledger.record(w, class, bytes, 1);
            expected[c as usize] += bytes;
        }
        prop_assert_eq!(ledger.total_bytes(TrafficClass::EmbedData), expected[0]);
        prop_assert_eq!(ledger.total_bytes(TrafficClass::KeysClocks), expected[1]);
        prop_assert_eq!(ledger.total_bytes(TrafficClass::AllReduce), expected[2]);
        prop_assert_eq!(ledger.grand_total_bytes(), expected.iter().sum::<u64>());
    }

    #[test]
    fn mailboxes_deliver_everything(msgs in prop::collection::vec((0usize..3, 0usize..3, 0u32..1000), 0..40)) {
        let boxes = P2pNetwork::create::<u32>(3);
        let mut expected_per_dst = [0usize; 3];
        for &(src, dst, value) in &msgs {
            boxes[src].send(dst, value).expect("all peers alive");
            expected_per_dst[dst] += 1;
        }
        for (dst, mailbox) in boxes.iter().enumerate() {
            let mut received = 0;
            while mailbox.try_recv().msg().is_some() {
                received += 1;
            }
            prop_assert_eq!(received, expected_per_dst[dst]);
        }
    }

    #[test]
    fn quant_round_trip_error_bounded(
        row in prop::collection::vec(-10.0f32..10.0, 1..64)
    ) {
        use hetgmp_comms::SyncFormat;
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for format in SyncFormat::ALL {
            let mut v = row.clone();
            format.transport(&mut v);
            // Per-format worst-case absolute error on this row.
            let bound = match format {
                // Identity.
                SyncFormat::F32 => 0.0,
                // Half an ulp at 11 bits of significand, plus slack for
                // subnormal granularity near zero.
                SyncFormat::F16 => max_abs * 2.0f32.powi(-11) + 2.0f32.powi(-24),
                // Half an ulp at 8 bits of significand.
                SyncFormat::Bf16 => max_abs * 2.0f32.powi(-8) + 1e-41,
                // Half a quantization step.
                SyncFormat::Int8 => max_abs / 127.0 / 2.0 + 1e-6,
            };
            for (a, b) in v.iter().zip(row.iter()) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "{format}: |{a} - {b}| > {bound}"
                );
            }
            // Determinism: a second transport of the same input is
            // bit-identical, and transporting already-transported data
            // is a fixed point (decode(encode(x)) is representable).
            let mut again = row.clone();
            format.transport(&mut again);
            let mut twice = v.clone();
            format.transport(&mut twice);
            for ((a, b), c) in v.iter().zip(again.iter()).zip(twice.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
                if !matches!(format, SyncFormat::Int8) {
                    // int8 re-transport may re-derive a different scale;
                    // the float formats are idempotent bit-for-bit.
                    prop_assert_eq!(a.to_bits(), c.to_bits());
                }
            }
        }
    }
}
