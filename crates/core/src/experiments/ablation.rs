//! Ablations beyond the paper's tables (referenced in its §7.2 prose):
//!
//! * **staleness vs throughput** — larger `s` trades sync traffic for
//!   throughput (complementing Table 2, which reports quality only);
//! * **replication budget sweep** — remote traffic vs replica memory as the
//!   vertex-cut budget grows (quantifying the "top 1 %" design point);
//! * **balance hyper-parameters** — effect of the α/β/γ soft-balance weights
//!   on cut quality and load balance;
//! * **static vs dynamic caching** — HET-GMP's graph-planned vertex-cut
//!   replicas against the predecessor HET's dynamic LFU cache at equal
//!   memory, replaying the same access stream through both.

use std::fmt;

use hetgmp_bigraph::Bigraph;
use hetgmp_cluster::Topology;
use hetgmp_data::{generate, CtrDataset, DatasetSpec};
use hetgmp_embedding::{CachedWorkerEmbedding, ShardedTable, WorkerEmbedding};
use hetgmp_embedding::StalenessBound;
use hetgmp_partition::{
    migration_cost, HybridConfig, HybridPartitioner, OneDeeConfig, PartitionMetrics,
    ReplicationBudget,
};

use hetgmp_telemetry::{Json, JsonlWriter};

use crate::experiments::{emit, render_table, Hooks};
use crate::models::ModelKind;
use crate::strategy::StrategyConfig;
use crate::trainer::{Trainer, TrainerConfig};

/// Staleness-vs-throughput sweep result.
#[derive(Debug, Clone)]
pub struct StalenessThroughput {
    /// `(s label, throughput samples/s, sync traffic bytes)` rows.
    pub rows: Vec<(String, f64, u64)>,
}

/// Sweeps staleness and measures throughput + embedding traffic.
pub fn staleness_throughput(data: &CtrDataset, s_values: &[u64]) -> StalenessThroughput {
    staleness_throughput_with(data, s_values, None)
}

/// Like [`staleness_throughput`], optionally appending one telemetry
/// snapshot per staleness setting (event `ablation.staleness`).
pub fn staleness_throughput_with(
    data: &CtrDataset,
    s_values: &[u64],
    telemetry: Option<&mut JsonlWriter>,
) -> StalenessThroughput {
    staleness_throughput_instrumented(data, s_values, telemetry, &Hooks::default())
}

/// Like [`staleness_throughput_with`], additionally threading observability
/// [`Hooks`] through every trainer run; audited runs carry an `audit` object
/// in their `ablation.staleness` JSONL records.
pub fn staleness_throughput_instrumented(
    data: &CtrDataset,
    s_values: &[u64],
    mut telemetry: Option<&mut JsonlWriter>,
    hooks: &Hooks,
) -> StalenessThroughput {
    let topo = Topology::pcie_island(8);
    let mut rows = Vec::new();
    for &s in s_values {
        let trainer = hooks.apply(Trainer::new(
            data,
            topo.clone(),
            StrategyConfig::het_gmp(s),
            TrainerConfig {
                model: ModelKind::Wdl,
                epochs: 1,
                dim: 16,
                batch_size: 256,
                hidden: vec![64, 32],
                ..Default::default()
            },
        ));
        let r = trainer.run();
        if let Some(w) = telemetry.as_deref_mut() {
            let mut extra = vec![
                ("staleness", Json::U64(s)),
                ("throughput", Json::F64(r.throughput)),
            ];
            extra.extend(hooks.audit_extra(&r));
            emit(w, "ablation.staleness", &extra, &r.telemetry);
        }
        rows.push((format!("s={s}"), r.throughput, r.traffic_bytes[0]));
    }
    StalenessThroughput { rows }
}

impl fmt::Display for StalenessThroughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — staleness vs throughput (WDL, 8 GPUs PCIe)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(s, tp, bytes)| vec![s.clone(), format!("{tp:.0}"), bytes.to_string()])
            .collect();
        write!(
            f,
            "{}",
            render_table(&["staleness", "samples/s", "embed bytes"], &rows)
        )
    }
}

/// Replication-budget sweep result.
#[derive(Debug, Clone)]
pub struct ReplicationSweep {
    /// `(budget fraction, remote fetches, replication factor)` rows.
    pub rows: Vec<(f64, u64, f64)>,
}

/// Sweeps the vertex-cut budget on a bigraph (8 partitions).
pub fn replication_sweep(graph: &Bigraph, fractions: &[f64]) -> ReplicationSweep {
    let mut rows = Vec::new();
    for &frac in fractions {
        let cfg = HybridConfig {
            rounds: 3,
            replication: if frac > 0.0 {
                Some(ReplicationBudget::FractionOfEmbeddings(frac))
            } else {
                None
            },
            ..Default::default()
        };
        let (part, _) = HybridPartitioner::new(cfg).partition_rounds(graph, 8);
        let m = PartitionMetrics::compute(graph, &part, None);
        rows.push((frac, m.remote_fetches, m.replication_factor));
    }
    ReplicationSweep { rows }
}

impl fmt::Display for ReplicationSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — vertex-cut replication budget (8 partitions)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(frac, remote, rf)| {
                vec![
                    format!("{:.1}%", frac * 100.0),
                    remote.to_string(),
                    format!("{rf:.3}"),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["budget", "remote fetches", "replication factor"], &rows)
        )
    }
}

/// Balance hyper-parameter sweep result.
#[derive(Debug, Clone)]
pub struct BalanceSweep {
    /// `(label, remote fetches, sample imbalance max/mean)` rows.
    pub rows: Vec<(String, u64, f64)>,
}

/// Sweeps α/β/γ settings on a bigraph (8 partitions, 3 rounds, no
/// replication so partition quality is isolated).
pub fn balance_sweep(graph: &Bigraph) -> BalanceSweep {
    let settings = vec![
        ("alpha=0 beta=0 gamma=0", (0.0, 0.0, 0.0)),
        ("alpha=1 beta=1 gamma=0", (1.0, 1.0, 0.0)),
        ("alpha=1 beta=1 gamma=1", (1.0, 1.0, 1.0)),
        ("alpha=4 beta=4 gamma=1", (4.0, 4.0, 1.0)),
    ];
    let mut rows = Vec::new();
    for (label, (alpha, beta, gamma)) in settings {
        let cfg = HybridConfig {
            rounds: 3,
            replication: None,
            onedee: OneDeeConfig {
                alpha,
                beta,
                gamma,
                ..Default::default()
            },
            ..Default::default()
        };
        let (part, _) = HybridPartitioner::new(cfg).partition_rounds(graph, 8);
        let m = PartitionMetrics::compute(graph, &part, None);
        rows.push((label.to_string(), m.remote_fetches, m.sample_imbalance()));
    }
    BalanceSweep { rows }
}

impl fmt::Display for BalanceSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — balance hyper-parameters (8 partitions)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(label, remote, imb)| {
                vec![label.clone(), remote.to_string(), format!("{imb:.3}")]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["setting", "remote fetches", "sample imbalance"], &rows)
        )
    }
}

/// Static (vertex-cut) vs dynamic (LFU) caching comparison.
#[derive(Debug, Clone)]
pub struct CacheComparison {
    /// `(design label, remote row transfers, bytes)` after one epoch replay.
    pub rows: Vec<(String, u64, u64)>,
}

/// Replays one epoch of batched reads through (a) HET-GMP's statically
/// replicated worker and (b) a HET-style LFU-cached worker with the same
/// per-worker cache capacity, on the same partition, and reports the remote
/// traffic each design generated.
pub fn cache_comparison(data: &CtrDataset, batch_size: usize) -> CacheComparison {
    let n = 8usize;
    let dim = 16usize;
    let graph = data.to_bigraph();
    let (part, _) = HybridPartitioner::new(HybridConfig::default()).partition_rounds(&graph, n);
    let freq: Vec<u64> = (0..graph.num_embeddings() as u32)
        .map(|e| graph.emb_frequency(e) as u64)
        .collect();
    // Equal memory: the LFU capacity equals the static design's secondary
    // count on each worker.
    let replicas = part.replicas_per_partition();
    let primaries = part.primaries_per_partition();
    let table = ShardedTable::new(graph.num_embeddings(), dim, 0.05, 1);
    let shards = part.samples_by_partition();

    let mut static_report = hetgmp_embedding::ReadReport::default();
    let mut dynamic_report = hetgmp_embedding::ReadReport::default();
    for w in 0..n as u32 {
        let capacity = replicas[w as usize] - primaries[w as usize];
        let mut stat =
            WorkerEmbedding::new(w, &table, &part, &freq, StalenessBound::Bounded(100));
        let mut dyn_w = CachedWorkerEmbedding::new(
            w,
            &table,
            &part,
            capacity,
            StalenessBound::Bounded(100),
        );
        let shard = &shards[w as usize];
        for chunk in shard.chunks(batch_size) {
            let samples: Vec<&[u32]> = chunk
                .iter()
                .map(|&s| graph.embeddings_of(s))
                .collect();
            let total: usize = samples.iter().map(|s| s.len()).sum();
            let mut out = vec![0.0f32; total * dim];
            static_report.merge(&stat.read_batch(&samples, &mut out));
            dynamic_report.merge(&dyn_w.read_batch(&samples, &mut out));
        }
    }
    CacheComparison {
        rows: vec![
            (
                "static vertex-cut (HET-GMP)".into(),
                static_report.remote_total(),
                static_report.data_bytes,
            ),
            (
                "dynamic LFU (HET-style)".into(),
                dynamic_report.remote_total(),
                dynamic_report.data_bytes,
            ),
        ],
    }
}

impl fmt::Display for CacheComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — static vertex-cut replicas vs dynamic LFU cache (equal memory)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(l, remote, bytes)| vec![l.clone(), remote.to_string(), bytes.to_string()])
            .collect();
        write!(
            f,
            "{}",
            render_table(&["design", "remote transfers", "bytes"], &rows)
        )
    }
}

/// Straggler tolerance via heterogeneity-aware batching.
#[derive(Debug, Clone)]
pub struct StragglerReport {
    /// `(setting, throughput samples/s)` rows.
    pub rows: Vec<(String, f64)>,
}

/// One worker runs `factor`× slower than its peers; compares uniform
/// batching (BSP stalls on the straggler every iteration) against
/// speed-proportional batching (paper §3's heterogeneity-aware
/// load-balancer for *computation*).
pub fn straggler_tolerance(data: &CtrDataset, factor: f64) -> StragglerReport {
    let topo = Topology::pcie_island(8);
    let mut scales = vec![1.0; 8];
    scales[0] = factor;
    let mut rows = Vec::new();
    for (label, scales_opt, aware) in [
        ("homogeneous".to_string(), None, false),
        (format!("{factor}x straggler, uniform batches"), Some(scales.clone()), false),
        (format!("{factor}x straggler, aware batching"), Some(scales), true),
    ] {
        let trainer = Trainer::new(
            data,
            topo.clone(),
            StrategyConfig::het_gmp(100),
            TrainerConfig {
                model: ModelKind::Wdl,
                epochs: 1,
                // Compute-bound configuration: wide embeddings + a deep
                // tower so the FLOP term (the part a straggler slows)
                // dominates the fixed overhead.
                dim: 64,
                hidden: vec![512, 256],
                compute_scales: scales_opt,
                hetero_aware_batching: aware,
                ..Default::default()
            },
        );
        rows.push((label, trainer.run().throughput));
    }
    StragglerReport { rows }
}

impl fmt::Display for StragglerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — straggler tolerance (WDL, 8 GPUs, 1 slow worker)")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(l, tp)| vec![l.clone(), format!("{tp:.0}")])
            .collect();
        write!(f, "{}", render_table(&["setting", "samples/s"], &rows))
    }
}

/// Re-partitioning under access-pattern drift.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// `(policy, remote fetches on the drifted workload, rows migrated)`.
    pub rows: Vec<(String, u64, usize)>,
}

/// Simulates access-pattern drift: partition for yesterday's traffic, then
/// compare three policies on today's — keep the stale partition, re-run
/// Algorithm 1 from scratch (best cut, full migration), or warm-start
/// refine from the old placement (`HybridPartitioner::partition_from`).
pub fn repartition_drift(scale: f64) -> DriftReport {
    let mut spec = DatasetSpec::criteo_like(scale);
    let old_data = generate(&spec);
    let yesterday = old_data.to_bigraph();
    // Drift: 60 % of today's traffic repeats yesterday's pattern, 40 % is
    // fresh draws (new seed shifts which cluster slices and hot rows
    // dominate) — realistic day-over-day drift rather than total turnover.
    spec.seed ^= 0xD21F7;
    let new_data = generate(&spec);
    let keep = old_data.num_samples() * 6 / 10;
    let mut rows: Vec<Vec<u32>> = (0..keep)
        .map(|i| old_data.sample(i).to_vec())
        .collect();
    rows.extend(
        (keep..new_data.num_samples()).map(|i| new_data.sample(i).to_vec()),
    );
    let today = hetgmp_bigraph::Bigraph::from_samples(old_data.num_features, &rows);

    let cfg = HybridConfig {
        replication: None,
        ..Default::default()
    };
    let partitioner = HybridPartitioner::new(cfg);
    let (old, _) = partitioner.partition_rounds(&yesterday, 8);

    let stale = PartitionMetrics::compute(&today, &old, None);

    let (fresh, _) = HybridPartitioner::new(HybridConfig {
        replication: None,
        seed: 0xF2E5,
        ..Default::default()
    })
    .partition_rounds(&today, 8);
    let fresh_m = PartitionMetrics::compute(&today, &fresh, None);

    let (warm, _) = partitioner.partition_from(&today, old.clone());
    let warm_m = PartitionMetrics::compute(&today, &warm, None);

    DriftReport {
        rows: vec![
            ("keep stale partition".into(), stale.remote_fetches, 0),
            (
                "re-partition from scratch".into(),
                fresh_m.remote_fetches,
                migration_cost(&old, &fresh),
            ),
            (
                "warm-start refinement".into(),
                warm_m.remote_fetches,
                migration_cost(&old, &warm),
            ),
        ],
    }
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — re-partitioning under access drift (criteo-like, 8 partitions)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(p, remote, moved)| vec![p.clone(), remote.to_string(), moved.to_string()])
            .collect();
        write!(
            f,
            "{}",
            render_table(&["policy", "remote fetches", "rows migrated"], &rows)
        )
    }
}

/// Convenience: run all ablations at the given scale.
pub fn run(
    scale: f64,
) -> (
    StalenessThroughput,
    ReplicationSweep,
    BalanceSweep,
) {
    run_with(scale, None)
}

/// Like [`run`], optionally appending telemetry records: one snapshot per
/// staleness setting (event `ablation.staleness`) and one plain record per
/// replication-sweep row (event `ablation.replication` — partitioning only,
/// no trainer, so the row fields are the full story).
pub fn run_with(
    scale: f64,
    telemetry: Option<&mut JsonlWriter>,
) -> (
    StalenessThroughput,
    ReplicationSweep,
    BalanceSweep,
) {
    run_instrumented(scale, telemetry, &Hooks::default())
}

/// Like [`run_with`], additionally threading observability [`Hooks`]
/// through the training-based sweeps (the partitioning-only sweeps have no
/// trainer to instrument).
pub fn run_instrumented(
    scale: f64,
    mut telemetry: Option<&mut JsonlWriter>,
    hooks: &Hooks,
) -> (
    StalenessThroughput,
    ReplicationSweep,
    BalanceSweep,
) {
    let data = generate(&DatasetSpec::criteo_like(scale));
    let graph = data.to_bigraph();
    let st = staleness_throughput_instrumented(
        &data,
        &[0, 10, 100, 1000],
        telemetry.as_deref_mut(),
        hooks,
    );
    let rep = replication_sweep(&graph, &[0.0, 0.005, 0.01, 0.05, 0.2]);
    if let Some(w) = telemetry {
        for &(frac, remote, factor) in &rep.rows {
            let record = Json::Obj(vec![
                ("event".into(), Json::from("ablation.replication")),
                ("budget_fraction".into(), Json::F64(frac)),
                ("remote_fetches".into(), Json::U64(remote)),
                ("replication_factor".into(), Json::F64(factor)),
            ]);
            if let Err(e) = w.write_record(&record) {
                eprintln!("telemetry: {e}");
            }
        }
    }
    (st, rep, balance_sweep(&graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_budget_monotone() {
        let data = generate(&DatasetSpec::avazu_like(0.04));
        let graph = data.to_bigraph();
        let sweep = replication_sweep(&graph, &[0.0, 0.01, 0.1]);
        assert_eq!(sweep.rows.len(), 3);
        // More budget → fewer remote fetches, more replicas.
        assert!(sweep.rows[1].1 <= sweep.rows[0].1);
        assert!(sweep.rows[2].1 <= sweep.rows[1].1);
        assert!(sweep.rows[2].2 > sweep.rows[0].2);
        assert!(sweep.to_string().contains("budget"));
    }

    #[test]
    fn staleness_increases_throughput() {
        let data = generate(&DatasetSpec::avazu_like(0.04));
        let sweep = staleness_throughput(&data, &[0, 1000]);
        let (_, tp0, bytes0) = &sweep.rows[0];
        let (_, tp1k, bytes1k) = &sweep.rows[1];
        // Looser staleness can only reduce sync traffic.
        assert!(bytes1k <= bytes0, "traffic s=1000 {bytes1k} !<= s=0 {bytes0}");
        // And throughput should not meaningfully degrade (small wobble from
        // scheduling noise is fine; the byte reduction above is the claim).
        assert!(*tp1k >= tp0 * 0.85, "throughput regressed: {tp0} -> {tp1k}");
        assert!(sweep.to_string().contains("staleness"));
    }

    #[test]
    fn aware_batching_absorbs_stragglers() {
        // A strong straggler (10x) so the compute term dominates the
        // iteration and the BSP stall is unmistakable.
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let report = straggler_tolerance(&data, 10.0);
        let homogeneous = report.rows[0].1;
        let uniform = report.rows[1].1;
        let aware = report.rows[2].1;
        assert!(uniform < homogeneous * 0.7, "uniform {uniform} vs homo {homogeneous}");
        // Speed-proportional batching recovers a large share of it.
        assert!(aware > uniform * 1.3, "aware {aware} vs uniform {uniform}");
        assert!(report.to_string().contains("straggler"));
    }

    #[test]
    fn warm_repartitioning_pareto_dominates() {
        let report = repartition_drift(0.05);
        assert_eq!(report.rows.len(), 3);
        let stale = report.rows[0].1;
        let (fresh_remote, fresh_moved) = (report.rows[1].1, report.rows[1].2);
        let (warm_remote, warm_moved) = (report.rows[2].1, report.rows[2].2);
        // Refinement recovers most of the from-scratch cut quality…
        assert!(warm_remote < stale, "warm {warm_remote} !< stale {stale}");
        assert!(
            (warm_remote as f64) < 1.3 * fresh_remote as f64,
            "warm {warm_remote} vs fresh {fresh_remote}"
        );
        // …while migrating far fewer rows.
        assert!(
            warm_moved * 2 < fresh_moved,
            "warm moved {warm_moved} vs fresh {fresh_moved}"
        );
        assert!(report.to_string().contains("drift"));
    }

    #[test]
    fn dynamic_cache_competitive_with_static() {
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let cmp = cache_comparison(&data, 128);
        assert_eq!(cmp.rows.len(), 2);
        let static_remote = cmp.rows[0].1;
        let dynamic_remote = cmp.rows[1].1;
        assert!(static_remote > 0 && dynamic_remote > 0);
        // The dynamic cache pays cold-start fetches but adapts; both designs
        // should land within a small factor of each other at equal memory.
        let ratio = dynamic_remote as f64 / static_remote as f64;
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
        assert!(cmp.to_string().contains("LFU"));
    }

    #[test]
    fn balance_weights_trade_cut_for_balance() {
        let data = generate(&DatasetSpec::avazu_like(0.04));
        let graph = data.to_bigraph();
        let sweep = balance_sweep(&graph);
        assert_eq!(sweep.rows.len(), 4);
        // The hard cap bounds imbalance in every setting.
        for (label, _, imb) in &sweep.rows {
            assert!(*imb <= 1.2 + 1e-9, "{label}: imbalance {imb}");
        }
        assert!(sweep.to_string().contains("balance"));
    }
}
