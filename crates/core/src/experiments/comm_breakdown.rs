//! **Figure 8** — per-iteration communication breakdown for HET-GMP under
//! four partitioning/staleness settings: random, 1-D only, 2-D (s = 10),
//! 2-D (s = 100), for both WDL and DCN.
//!
//! Paper shape: embeddings + gradients dominate under random partitioning;
//! 1-D cuts them sharply; 2-D with larger `s` cuts further (up to 87.5 % on
//! Company); keys/clocks are comparatively small; DCN carries a larger
//! AllReduce share than WDL (more dense parameters).

use std::fmt;

use hetgmp_cluster::Topology;
use hetgmp_data::{generate, CtrDataset, DatasetSpec};
use hetgmp_telemetry::{Json, JsonlWriter};

use crate::experiments::{emit, render_table, Hooks};
use crate::models::ModelKind;
use crate::strategy::StrategyConfig;
use crate::trainer::{Trainer, TrainerConfig};

/// One bar of Figure 8.
#[derive(Debug, Clone)]
pub struct BreakdownBar {
    /// Setting label ("random", "1-D", "2-D (s=10)", "2-D (s=100)").
    pub setting: String,
    /// Average bytes per iteration: embeddings + gradients.
    pub embed_bytes: f64,
    /// Average bytes per iteration: keys + clocks metadata.
    pub meta_bytes: f64,
    /// Average bytes per iteration: dense AllReduce.
    pub allreduce_bytes: f64,
}

/// One panel (model × dataset).
#[derive(Debug, Clone)]
pub struct BreakdownPanel {
    /// Workload label.
    pub workload: String,
    /// Bars in the paper's column order.
    pub bars: Vec<BreakdownBar>,
}

/// Full Figure 8.
#[derive(Debug, Clone)]
pub struct BreakdownReport {
    /// All panels.
    pub panels: Vec<BreakdownPanel>,
}

fn settings() -> Vec<(String, StrategyConfig)> {
    vec![
        ("random".into(), StrategyConfig::het_mp()),
        (
            "1-D".into(),
            StrategyConfig::het_gmp(0).with_replication(None),
        ),
        ("2-D (s=10)".into(), StrategyConfig::het_gmp(10)),
        ("2-D (s=100)".into(), StrategyConfig::het_gmp(100)),
    ]
}

fn run_panel(
    model: ModelKind,
    data: &CtrDataset,
    label: &str,
    mut telemetry: Option<&mut JsonlWriter>,
    hooks: &Hooks,
) -> BreakdownPanel {
    let topo = Topology::pcie_island(8);
    let mut bars = Vec::new();
    for (setting, strat) in settings() {
        let trainer = hooks.apply(Trainer::new(
            data,
            topo.clone(),
            strat,
            TrainerConfig {
                model,
                epochs: 1,
                dim: 16,
                batch_size: 256,
                hidden: vec![64, 32],
                ..Default::default()
            },
        ));
        let r = trainer.run();
        if let Some(w) = telemetry.as_deref_mut() {
            let mut extra = vec![
                ("workload", Json::from(label)),
                ("setting", Json::from(setting.as_str())),
            ];
            extra.extend(hooks.audit_extra(&r));
            emit(w, "fig8", &extra, &r.telemetry);
        }
        // Average per iteration ≈ per epoch totals / iterations; iterations
        // ≈ samples / (batch × workers). Report per-iteration bytes.
        let iters = (r.samples_processed as f64 / (256.0 * 8.0)).max(1.0);
        bars.push(BreakdownBar {
            setting,
            embed_bytes: r.traffic_bytes[0] as f64 / iters,
            meta_bytes: r.traffic_bytes[1] as f64 / iters,
            allreduce_bytes: r.traffic_bytes[2] as f64 / iters,
        });
    }
    BreakdownPanel {
        workload: label.to_string(),
        bars,
    }
}

/// Runs Figure 8 (both models × all datasets) at the given scale.
pub fn run(scale: f64) -> BreakdownReport {
    run_with(scale, None)
}

/// Like [`run`], optionally appending one telemetry snapshot per bar
/// (event `fig8`) to a JSONL writer.
pub fn run_with(scale: f64, telemetry: Option<&mut JsonlWriter>) -> BreakdownReport {
    run_instrumented(scale, telemetry, &Hooks::default())
}

/// Like [`run_with`], additionally threading observability [`Hooks`]
/// (trace collector, protocol auditor) through every trainer run; audited
/// runs carry an `audit` object in their `fig8` JSONL records.
pub fn run_instrumented(
    scale: f64,
    mut telemetry: Option<&mut JsonlWriter>,
    hooks: &Hooks,
) -> BreakdownReport {
    let mut panels = Vec::new();
    for model in [ModelKind::Wdl, ModelKind::Dcn] {
        for spec in DatasetSpec::paper_presets(scale) {
            let data = generate(&spec);
            panels.push(run_panel(
                model,
                &data,
                &format!("{}-{}", model.name(), spec.name),
                telemetry.as_deref_mut(),
                hooks,
            ));
        }
    }
    BreakdownReport { panels }
}

impl BreakdownPanel {
    /// Embedding-communication reduction of the last bar vs. the first
    /// (paper: up to 87.5 % on Company).
    pub fn embed_reduction(&self) -> f64 {
        let first = self.bars.first().map_or(0.0, |b| b.embed_bytes);
        let last = self.bars.last().map_or(0.0, |b| b.embed_bytes);
        if first == 0.0 {
            0.0
        } else {
            1.0 - last / first
        }
    }
}

impl fmt::Display for BreakdownReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for panel in &self.panels {
            writeln!(
                f,
                "Figure 8 panel — {} (embed reduction {:.1}%)",
                panel.workload,
                panel.embed_reduction() * 100.0
            )?;
            let rows: Vec<Vec<String>> = panel
                .bars
                .iter()
                .map(|b| {
                    vec![
                        b.setting.clone(),
                        format!("{:.0}", b.embed_bytes),
                        format!("{:.0}", b.meta_bytes),
                        format!("{:.0}", b.allreduce_bytes),
                    ]
                })
                .collect();
            writeln!(
                f,
                "{}",
                render_table(
                    &["setting", "embeds&grads B/iter", "keys&clocks B/iter", "allreduce B/iter"],
                    &rows
                )
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_reduces_embed_traffic() {
        let data = generate(&DatasetSpec::avazu_like(0.04));
        let panel = run_panel(ModelKind::Wdl, &data, "WDL-test", None, &Hooks::default());
        assert_eq!(panel.bars.len(), 4);
        let random = panel.bars[0].embed_bytes;
        let oned = panel.bars[1].embed_bytes;
        let s100 = panel.bars[3].embed_bytes;
        assert!(oned < random, "1-D {oned} !< random {random}");
        assert!(s100 < oned, "2-D(s=100) {s100} !< 1-D {oned}");
        assert!(panel.embed_reduction() > 0.2);
        // Metadata is small relative to embedding payload under random.
        assert!(panel.bars[0].meta_bytes < panel.bars[0].embed_bytes);
    }

    #[test]
    fn dcn_has_more_allreduce_than_wdl() {
        let data = generate(&DatasetSpec::avazu_like(0.03));
        let wdl = run_panel(ModelKind::Wdl, &data, "WDL", None, &Hooks::default());
        let dcn = run_panel(ModelKind::Dcn, &data, "DCN", None, &Hooks::default());
        assert!(
            dcn.bars[0].allreduce_bytes > wdl.bars[0].allreduce_bytes,
            "dcn {} vs wdl {}",
            dcn.bars[0].allreduce_bytes,
            wdl.bars[0].allreduce_bytes
        );
    }
}
