//! **Figure 7(a–f)** — end-to-end convergence: test AUC over (simulated)
//! time for WDL/DCN × the three datasets, comparing TF-PS, Parallax,
//! HugeCTR, HET-MP and HET-GMP (s = 0, 10, 100).
//!
//! Paper shape: the ASP CPU-PS systems (TF, Parallax) never reach the AUC
//! thresholds in the window; HugeCTR ≈ HET-MP; HET-GMP reaches the target
//! 1.64–2.66× faster than HugeCTR and 1.2–3.56× faster than HET-MP at
//! `s = 100`.

use std::fmt;

use hetgmp_cluster::Topology;
use hetgmp_data::{generate, DatasetSpec};

use crate::experiments::render_table;
use crate::models::ModelKind;
use crate::strategy::StrategyConfig;
use crate::trainer::{EvalPoint, Trainer, TrainerConfig};

/// One system's convergence curve on one workload.
#[derive(Debug, Clone)]
pub struct ConvergenceRun {
    /// System name.
    pub system: String,
    /// AUC-vs-time curve.
    pub curve: Vec<EvalPoint>,
    /// Final AUC.
    pub final_auc: f64,
    /// Simulated time to reach the workload's AUC target (post-hoc).
    pub time_to_target: Option<f64>,
}

/// Figure 7 for one (model, dataset) pair.
#[derive(Debug, Clone)]
pub struct ConvergencePanel {
    /// "WDL-avazu-like" etc.
    pub workload: String,
    /// The post-hoc AUC target used for time-to-target.
    pub auc_target: f64,
    /// All systems' runs.
    pub runs: Vec<ConvergenceRun>,
}

impl ConvergencePanel {
    /// Speedup of `a` over `b` in time-to-target (`None` when either system
    /// missed the target).
    pub fn speedup(&self, a: &str, b: &str) -> Option<f64> {
        let t = |name: &str| {
            self.runs
                .iter()
                .find(|r| r.system.starts_with(name))
                .and_then(|r| r.time_to_target)
        };
        Some(t(b)? / t(a)?)
    }
}

/// The full Figure 7: six panels.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// All panels (WDL/DCN × datasets).
    pub panels: Vec<ConvergencePanel>,
}

/// The systems compared in Figure 7.
fn systems() -> Vec<StrategyConfig> {
    vec![
        StrategyConfig::tf_ps(),
        StrategyConfig::parallax(),
        StrategyConfig::hugectr(),
        StrategyConfig::het_mp(),
        // "Even if we remove the staleness tolerance (i.e., s = 0), the
        // hybrid graph partitioning still makes HET-GMP outperform" — the
        // s = 0 variant is pure hybrid partitioning; replicas that must be
        // re-validated on every read would only add sync churn.
        StrategyConfig::het_gmp(0).with_replication(None),
        StrategyConfig::het_gmp(10),
        StrategyConfig::het_gmp(100),
    ]
}

/// Runs one panel.
pub fn run_panel(model: ModelKind, spec: &DatasetSpec, epochs: usize) -> ConvergencePanel {
    let data = generate(spec);
    let topo = Topology::pcie_island(8); // cluster A node, as in the paper
    let mut runs = Vec::new();
    for strat in systems() {
        let trainer = Trainer::new(
            &data,
            topo.clone(),
            strat.clone(),
            TrainerConfig {
                model,
                epochs,
                // dim 32: enough embedding bytes per lookup that the
                // communication differences the figure is about are visible
                // over the fixed per-iteration costs.
                dim: 32,
                batch_size: 256,
                hidden: vec![64, 32],
                ..Default::default()
            },
        );
        let result = trainer.run();
        runs.push(ConvergenceRun {
            system: result.strategy.clone(),
            final_auc: result.final_auc,
            curve: result.curve,
            time_to_target: None,
        });
    }
    // Post-hoc target: just below the best GPU system's final AUC, so the
    // winner reaches it and time-to-target is measurable for all systems
    // that got close (mirrors the paper's fixed 76 %/80 % thresholds).
    let best = runs
        .iter()
        .map(|r| r.final_auc)
        .fold(f64::MIN, f64::max);
    let target = best - 0.005;
    for run in &mut runs {
        run.time_to_target = run
            .curve
            .iter()
            .find(|p| p.auc >= target)
            .map(|p| p.sim_time);
    }
    ConvergencePanel {
        workload: format!("{}-{}", model.name(), spec.name),
        auc_target: target,
        runs,
    }
}

/// Runs all six panels at the given dataset scale.
pub fn run(scale: f64, epochs: usize) -> ConvergenceReport {
    let mut panels = Vec::new();
    for model in [ModelKind::Wdl, ModelKind::Dcn] {
        for spec in DatasetSpec::paper_presets(scale) {
            panels.push(run_panel(model, &spec, epochs));
        }
    }
    ConvergenceReport { panels }
}

impl fmt::Display for ConvergencePanel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 panel — {} (AUC target {:.4})",
            self.workload, self.auc_target
        )?;
        let rows: Vec<Vec<String>> = self
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    format!("{:.4}", r.final_auc),
                    r.time_to_target
                        .map_or("—".to_string(), |t| format!("{:.4}s", t)),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["system", "final AUC", "time-to-target"], &rows)
        )?;
        // Curves, one line per system.
        for r in &self.runs {
            let pts: Vec<String> = r
                .curve
                .iter()
                .map(|p| format!("({:.3}s, {:.4})", p.sim_time, p.auc))
                .collect();
            writeln!(f, "  {}: {}", r.system, pts.join(" "))?;
        }
        Ok(())
    }
}

impl fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for panel in &self.panels {
            writeln!(f, "{panel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn het_gmp_beats_baselines_on_time() {
        let spec = DatasetSpec::avazu_like(0.04);
        let panel = run_panel(ModelKind::Wdl, &spec, 3);
        assert_eq!(panel.runs.len(), 7);
        // Every GPU system reaches a reasonable AUC.
        let gmp = panel
            .runs
            .iter()
            .find(|r| r.system.starts_with("HET-GMP(s=100"))
            .expect("gmp run");
        assert!(gmp.final_auc > 0.6, "AUC {}", gmp.final_auc);
        // HET-GMP's epoch time is shorter than HugeCTR's (same #epochs, less
        // communication).
        let time = |name: &str| {
            panel
                .runs
                .iter()
                .find(|r| r.system.starts_with(name))
                .and_then(|r| r.curve.last())
                .map(|p| p.sim_time)
                .expect("curve")
        };
        assert!(
            time("HET-GMP(s=100") < time("HugeCTR"),
            "gmp {} vs hugectr {}",
            time("HET-GMP(s=100"),
            time("HugeCTR")
        );
        assert!(
            time("HugeCTR") < time("TF-PS"),
            "hugectr {} vs tf {}",
            time("HugeCTR"),
            time("TF-PS")
        );
        // Display renders.
        assert!(panel.to_string().contains("Figure 7"));
    }
}
