//! **Figure 3** — embedding co-occurrence graphs cluster into dense
//! diagonal blocks (8 clusters per dataset, METIS in the paper, our
//! size-constrained clusterer here).
//!
//! The reproduction reports the 8×8 cluster weight matrix and its diagonal
//! density, against a strided-assignment baseline: locality exists exactly
//! when the clustered diagonal density far exceeds the baseline's.

use std::fmt;

use hetgmp_bigraph::{CooccurrenceConfig, CooccurrenceGraph};
use hetgmp_data::{generate, CtrDataset, DatasetSpec};
use hetgmp_partition::cluster_cooccurrence;

use crate::experiments::render_table;

/// Figure 3 result for one dataset.
#[derive(Debug, Clone)]
pub struct CooccurrenceReport {
    /// Dataset label.
    pub dataset: String,
    /// Number of clusters (8 in the paper's illustration).
    pub k: usize,
    /// Cluster×cluster co-occurrence weight matrix.
    pub weight_matrix: Vec<Vec<u64>>,
    /// Fraction of weight on the diagonal after clustering.
    pub clustered_density: f64,
    /// Same metric for a strided (locality-oblivious) assignment.
    pub baseline_density: f64,
}

/// Runs Figure 3 on one dataset with `k` clusters.
pub fn run_dataset(data: &CtrDataset, label: &str, k: usize) -> CooccurrenceReport {
    let graph = data.to_bigraph();
    let co = CooccurrenceGraph::build(&graph, &CooccurrenceConfig::default());
    let assignment = cluster_cooccurrence(&co, k, 5);
    let strided: Vec<u32> = (0..co.num_nodes()).map(|i| (i % k) as u32).collect();
    CooccurrenceReport {
        dataset: label.to_string(),
        k,
        weight_matrix: co.cluster_weight_matrix(&assignment, k),
        clustered_density: co.diagonal_density(&assignment, k),
        baseline_density: co.diagonal_density(&strided, k),
    }
}

/// Runs Figure 3 over all datasets at the given scale (8 clusters, as the
/// paper illustrates for an 8-GPU server).
pub fn run(scale: f64) -> Vec<CooccurrenceReport> {
    DatasetSpec::paper_presets(scale)
        .iter()
        .map(|spec| {
            let data = generate(spec);
            run_dataset(&data, &spec.name, 8)
        })
        .collect()
}

impl fmt::Display for CooccurrenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3 — co-occurrence clustering ({}): diagonal density {:.3} (strided baseline {:.3})",
            self.dataset, self.clustered_density, self.baseline_density
        )?;
        let headers: Vec<String> = (0..self.k).map(|c| format!("c{c}")).collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .weight_matrix
            .iter()
            .map(|row| row.iter().map(|w| w.to_string()).collect())
            .collect();
        write!(f, "{}", render_table(&header_refs, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_blocks_emerge() {
        let mut spec = DatasetSpec::avazu_like(0.04);
        spec.cluster_affinity = 0.9;
        let data = generate(&spec);
        let report = run_dataset(&data, "avazu-like", 8);
        assert!(
            report.clustered_density > report.baseline_density + 0.15,
            "clustered {:.3} vs baseline {:.3}",
            report.clustered_density,
            report.baseline_density
        );
        assert_eq!(report.weight_matrix.len(), 8);
        assert!(report.to_string().contains("Figure 3"));
    }
}
