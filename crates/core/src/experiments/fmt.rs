//! Plain-text table rendering shared by the experiment reports.

/// Renders a column-aligned text table with a header row and a rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows are equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
