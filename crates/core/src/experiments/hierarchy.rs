//! **Figure 9** — heterogeneity-aware (hierarchical) partitioning:
//! throughput under random / non-hierarchical / hierarchical 1-D
//! partitioning on 16 workers across 2 machines (no replication), plus the
//! worker×worker embedding-fetch heatmap.
//!
//! Paper shape: hierarchical > non-hierarchical > random throughput on all
//! datasets; the fetch matrix is uniform for random, block-diagonal-ish for
//! non-hierarchical, and strongly machine-block-diagonal for hierarchical.

use std::fmt;

use hetgmp_cluster::Topology;
use hetgmp_data::{generate, CtrDataset, DatasetSpec};

use crate::experiments::render_table;
use crate::models::ModelKind;
use crate::strategy::StrategyConfig;
use crate::trainer::{Trainer, TrainerConfig};

/// One policy's measurement.
#[derive(Debug, Clone)]
pub struct HierarchyRun {
    /// Policy label.
    pub policy: String,
    /// Samples per simulated second.
    pub throughput: f64,
    /// Worker×worker embedding-fetch counts per epoch.
    pub fetch_matrix: Vec<Vec<u64>>,
    /// Fetches crossing machines per epoch.
    pub cross_machine: u64,
}

/// Figure 9 for one dataset.
#[derive(Debug, Clone)]
pub struct HierarchyReport {
    /// Dataset label.
    pub dataset: String,
    /// Runs in order: random, non-hierarchical, hierarchical.
    pub runs: Vec<HierarchyRun>,
}

fn policies(topo: &Topology) -> Vec<(String, StrategyConfig)> {
    vec![
        ("random".into(), StrategyConfig::het_mp()),
        (
            // Homogeneous weights: locality-aware but topology-oblivious.
            "non-hierarchical".into(),
            StrategyConfig::het_gmp(0).with_replication(None),
        ),
        (
            // Weighted edge-cut from the real topology (paper: inter-machine
            // cost 10× intra-machine).
            "hierarchical".into(),
            StrategyConfig::het_gmp(0)
                .with_replication(None)
                .with_weight_matrix(Some(topo.weight_matrix())),
        ),
    ]
}

/// Runs Figure 9 on one dataset (16 workers / 2 machines, as in the paper).
pub fn run_dataset(data: &CtrDataset, label: &str) -> HierarchyReport {
    let topo = Topology::cluster_b(2); // 2 machines × 8 GPUs, 10 GbE
    let mut runs = Vec::new();
    for (policy, strat) in policies(&topo) {
        let trainer = Trainer::new(
            data,
            topo.clone(),
            strat,
            TrainerConfig {
                model: ModelKind::Wdl,
                epochs: 1,
                dim: 32,
                batch_size: 512,
                hidden: vec![64, 32],
                ..Default::default()
            },
        );
        let r = trainer.run();
        let pm = r.partition_metrics.as_ref().expect("GPU strategy");
        let machine_of: Vec<usize> = (0..topo.num_workers())
            .map(|w| topo.machine_of(w))
            .collect();
        runs.push(HierarchyRun {
            policy,
            throughput: r.throughput,
            fetch_matrix: pm.fetch_matrix.clone(),
            cross_machine: pm.cross_machine_fetches(&machine_of),
        });
    }
    HierarchyReport {
        dataset: label.to_string(),
        runs,
    }
}

/// Runs Figure 9(a) over all three datasets at the given scale.
pub fn run(scale: f64) -> Vec<HierarchyReport> {
    DatasetSpec::paper_presets(scale)
        .iter()
        .map(|spec| {
            let data = generate(spec);
            run_dataset(&data, &spec.name)
        })
        .collect()
}

impl fmt::Display for HierarchyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9(a) — throughput by partitioning policy ({})", self.dataset)?;
        let rows: Vec<Vec<String>> = self
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.0}", r.throughput),
                    format!("{}", r.cross_machine),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(&["policy", "samples/s", "cross-machine fetches"], &rows)
        )?;
        writeln!(f, "Figure 9(b) — worker-pair fetch heatmap (rows: reader)")?;
        for r in &self.runs {
            writeln!(f, "  [{}]", r.policy)?;
            for row in &r.fetch_matrix {
                let cells: Vec<String> = row.iter().map(|c| format!("{c:>6}")).collect();
                writeln!(f, "    {}", cells.join(" "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_reduces_cross_machine_traffic() {
        let mut spec = DatasetSpec::avazu_like(0.04);
        spec.cluster_affinity = 0.9;
        let data = generate(&spec);
        let report = run_dataset(&data, "avazu-like");
        assert_eq!(report.runs.len(), 3);
        let random = &report.runs[0];
        let hier = &report.runs[2];
        assert!(
            hier.cross_machine < random.cross_machine,
            "hier {} !< random {}",
            hier.cross_machine,
            random.cross_machine
        );
        // Throughput ordering (the paper's headline for Fig 9a).
        assert!(
            hier.throughput > random.throughput,
            "hier {} !> random {}",
            hier.throughput,
            random.throughput
        );
        assert!(report.to_string().contains("Figure 9"));
    }
}
