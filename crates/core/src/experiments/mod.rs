//! Experiment runners — one module per table/figure of the paper's §7
//! (plus the motivating Figures 1 and 3 and extra ablations).
//!
//! Every module exposes a `run(...)` returning a plain data struct that
//! implements `Display` (the text rendering the `hetgmp-bench` binaries
//! print), so results are equally consumable programmatically (tests,
//! `EXPERIMENTS.md` generation) and on stdout.
//!
//! All experiments take a `scale` parameter: 1.0 reproduces the default
//! scaled-down datasets (see DESIGN.md's substitutions), smaller values give
//! quick smoke runs. Shapes — orderings, crossovers, reduction factors —
//! are stable across scales; absolute numbers are not comparable with the
//! paper's testbed (see EXPERIMENTS.md).

use hetgmp_telemetry::{Json, JsonlWriter, TelemetrySnapshot};

pub mod ablation;
pub mod comm_breakdown;
pub mod convergence;
pub mod cooccurrence;
pub mod hierarchy;
pub mod overhead;
pub mod partitioners;
pub mod scalability;
pub mod staleness;

mod fmt;

pub use fmt::render_table;

/// Appends one telemetry record, reporting (not panicking on) write
/// failures — a full disk must not abort a long experiment run.
pub(crate) fn emit(
    writer: &mut JsonlWriter,
    event: &str,
    extra: &[(&str, Json)],
    snapshot: &TelemetrySnapshot,
) {
    if let Err(e) = writer.write_snapshot(event, extra, snapshot) {
        eprintln!("telemetry: {e}");
    }
}
