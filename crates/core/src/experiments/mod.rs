//! Experiment runners — one module per table/figure of the paper's §7
//! (plus the motivating Figures 1 and 3 and extra ablations).
//!
//! Every module exposes a `run(...)` returning a plain data struct that
//! implements `Display` (the text rendering the `hetgmp-bench` binaries
//! print), so results are equally consumable programmatically (tests,
//! `EXPERIMENTS.md` generation) and on stdout.
//!
//! All experiments take a `scale` parameter: 1.0 reproduces the default
//! scaled-down datasets (see DESIGN.md's substitutions), smaller values give
//! quick smoke runs. Shapes — orderings, crossovers, reduction factors —
//! are stable across scales; absolute numbers are not comparable with the
//! paper's testbed (see EXPERIMENTS.md).

use std::sync::Arc;

use hetgmp_telemetry::{AuditMode, Json, JsonlWriter, TelemetrySnapshot, TraceCollector};

use crate::trainer::{TrainResult, Trainer};

pub mod ablation;
pub mod comm_breakdown;
pub mod convergence;
pub mod cooccurrence;
pub mod hierarchy;
pub mod overhead;
pub mod partitioners;
pub mod scalability;
pub mod staleness;

mod fmt;

pub use fmt::render_table;

/// Appends one telemetry record, reporting (not panicking on) write
/// failures — a full disk must not abort a long experiment run.
pub(crate) fn emit(
    writer: &mut JsonlWriter,
    event: &str,
    extra: &[(&str, Json)],
    snapshot: &TelemetrySnapshot,
) {
    if let Err(e) = writer.write_snapshot(event, extra, snapshot) {
        eprintln!("telemetry: {e}");
    }
}

/// Optional observability hooks threaded through the experiment runners
/// that train: a shared Chrome-trace collector and a protocol-audit mode.
/// The default is fully off, so `run(...)`/`run_with(...)` behave exactly
/// as before.
#[derive(Clone, Default)]
pub struct Hooks {
    /// Trace collector shared by every trainer run in the experiment (build
    /// it with one worker slot per trainer worker — the experiment runners
    /// use 8-worker topologies).
    pub tracer: Option<Arc<TraceCollector>>,
    /// Protocol-audit mode applied to every trainer run.
    pub audit: AuditMode,
    /// Software-pipeline depth applied to every trainer run (`None` keeps
    /// each runner's default of 1, the sequential schedule).
    pub pipeline_depth: Option<usize>,
    /// Worker threads per dense GEMM applied to every trainer run (`None`
    /// keeps each runner's default of 1, sequential kernels).
    pub gemm_threads: Option<usize>,
    /// Wire format for embedding and dense-gradient payloads applied to
    /// every trainer run (`None` keeps each runner's default of f32).
    pub sync_format: Option<hetgmp_comms::SyncFormat>,
    /// Error feedback on lossy gradient pushes (`None` keeps the default
    /// of enabled; irrelevant under f32).
    pub sync_error_feedback: Option<bool>,
}

impl Hooks {
    /// Applies the hooks to a trainer.
    pub(crate) fn apply<'d>(&self, mut trainer: Trainer<'d>) -> Trainer<'d> {
        if let Some(t) = &self.tracer {
            trainer = trainer.with_tracer(Arc::clone(t));
        }
        trainer = trainer.with_pipeline(self.pipeline_depth, self.gemm_threads);
        trainer = trainer.with_sync_format(self.sync_format, self.sync_error_feedback);
        trainer.with_audit(self.audit)
    }

    /// The audit JSONL field for a run under these hooks: the summary's
    /// JSON form when auditing, nothing otherwise.
    pub(crate) fn audit_extra(&self, result: &TrainResult) -> Option<(&'static str, Json)> {
        result.audit.as_ref().map(|a| ("audit", a.to_json()))
    }
}
