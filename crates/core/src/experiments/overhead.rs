//! **Figure 1** — communication share of WDL training time on a
//! HugeCTR-style GPU model-parallel system under three interconnects
//! (4-GPU NVLink, 4-GPU PCIe, 8-GPU QPI) over the three datasets.
//!
//! Paper values: NVLink 50/39/30 %, PCIe 89/84/79 %, QPI 91/87/83 % for
//! Avazu/Criteo/Company. The reproduction must show the same two gradients:
//! slower interconnect ⇒ larger share, and (at fixed interconnect) the
//! share ordering across datasets.

use std::fmt;

use hetgmp_cluster::Topology;
use hetgmp_data::{generate, DatasetSpec};

use crate::experiments::render_table;
use crate::strategy::StrategyConfig;
use crate::trainer::{Trainer, TrainerConfig};

/// One measured cell of Figure 1.
#[derive(Debug, Clone)]
pub struct OverheadCell {
    /// Topology label ("4-GPU NVLink", …).
    pub topology: String,
    /// Dataset label.
    pub dataset: String,
    /// Communication time / epoch time, in `[0, 1]`.
    pub comm_fraction: f64,
}

/// Full Figure 1 result.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// All cells, topology-major.
    pub cells: Vec<OverheadCell>,
}

/// Runs Figure 1 at the given dataset scale.
pub fn run(scale: f64) -> OverheadReport {
    let topologies = vec![
        Topology::nvlink_island(4),
        Topology::pcie_island(4),
        Topology::qpi_dual_socket(8),
    ];
    let specs = DatasetSpec::paper_presets(scale);
    let mut cells = Vec::new();
    for topo in &topologies {
        for spec in &specs {
            let data = generate(spec);
            let trainer = Trainer::new(
                &data,
                topo.clone(),
                StrategyConfig::hugectr(),
                TrainerConfig {
                    epochs: 1,
                    dim: 32,
                    batch_size: 256,
                    hidden: vec![64, 32],
                    ..Default::default()
                },
            );
            let result = trainer.run();
            cells.push(OverheadCell {
                topology: topo.name.clone(),
                dataset: spec.name.clone(),
                comm_fraction: result.breakdown.comm_fraction(),
            });
        }
    }
    OverheadReport { cells }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1 — communication time / epoch time (WDL on HugeCTR-style MP)"
        )?;
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.topology.clone(),
                    c.dataset.clone(),
                    format!("{:.1}%", c.comm_fraction * 100.0),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&["topology", "dataset", "comm share"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_interconnect_larger_share() {
        let report = run(0.02);
        let share = |topo: &str, ds: &str| {
            report
                .cells
                .iter()
                .find(|c| c.topology.contains(topo) && c.dataset.contains(ds))
                .map(|c| c.comm_fraction)
                .expect("cell present")
        };
        for ds in ["avazu", "criteo", "company"] {
            assert!(
                share("NVLink", ds) < share("PCIe", ds),
                "{ds}: NVLink {} !< PCIe {}",
                share("NVLink", ds),
                share("PCIe", ds)
            );
        }
        // The PCIe share must be substantial (paper: ~80-90%).
        assert!(share("PCIe", "criteo") > 0.4);
        // Rendering works.
        let text = report.to_string();
        assert!(text.contains("comm share"));
    }
}
