//! **Table 3** — partitioning-algorithm comparison: per-epoch remote
//! embedding communication, reduction vs. random, and partitioning time for
//! Random / BiCut / Ours (1, 3, 5 rounds), 8 partitions, all datasets.
//!
//! Paper shape (Company): BiCut −13.5 %; Ours −37.3 % (1 round), −59.7 %
//! (3), −63.8 % (5); partitioning time grows with rounds but stays
//! negligible (< 2 %) next to training time.

use std::fmt;
use std::time::Instant;

use hetgmp_bigraph::Bigraph;
use hetgmp_cluster::Topology;
use hetgmp_data::{generate, DatasetSpec};
use hetgmp_partition::{
    BiCutPartitioner, HybridConfig, HybridPartitioner, PartitionMetrics, Partitioner,
    RandomPartitioner,
};

use crate::experiments::render_table;

/// One algorithm's row for one dataset.
#[derive(Debug, Clone)]
pub struct PartitionerRow {
    /// Algorithm label.
    pub algorithm: String,
    /// Remote embedding fetches per epoch (Table 3 "Communication").
    pub communication: u64,
    /// Reduction vs. the random baseline.
    pub reduction: f64,
    /// Partitioning wall-clock seconds (real, not simulated — this is CPU
    /// work the paper also measures in real seconds).
    pub time_secs: f64,
}

/// Table 3 for one dataset.
#[derive(Debug, Clone)]
pub struct PartitionerReport {
    /// Dataset label.
    pub dataset: String,
    /// Rows in the paper's order.
    pub rows: Vec<PartitionerRow>,
}

/// The Table 3 line-up, every algorithm behind the unified
/// [`Partitioner`] interface.
fn algorithms() -> Vec<(String, Box<dyn Partitioner>)> {
    let mut algos: Vec<(String, Box<dyn Partitioner>)> = vec![
        ("Random".into(), Box::new(RandomPartitioner { seed: 7 })),
        ("BiCut".into(), Box::new(BiCutPartitioner)),
    ];
    for rounds in [1usize, 3, 5] {
        let cfg = HybridConfig {
            rounds,
            replication: None, // Table 3 measures pure partitioning quality
            ..Default::default()
        };
        algos.push((
            format!("Ours ({rounds} round{})", if rounds > 1 { "s" } else { "" }),
            Box::new(HybridPartitioner::new(cfg)),
        ));
    }
    algos
}

/// Runs Table 3 on one bigraph with 8 partitions. Every row is produced
/// through the same `Partitioner::partition(graph, topology)` call — the
/// runner knows nothing algorithm-specific.
pub fn run_graph(graph: &Bigraph, dataset: &str) -> PartitionerReport {
    let topo = Topology::nvlink_island(8);
    let mut rows = Vec::new();
    let mut random_metrics: Option<PartitionMetrics> = None;
    for (label, algo) in algorithms() {
        let t0 = Instant::now();
        let part = algo.partition(graph, &topo);
        let time_secs = t0.elapsed().as_secs_f64();
        let m = PartitionMetrics::compute(graph, &part, None);
        let reduction = random_metrics
            .as_ref()
            .map_or(0.0, |base| m.reduction_vs(base));
        if random_metrics.is_none() {
            // First row is the Random baseline the others are measured
            // against.
            random_metrics = Some(m.clone());
        }
        rows.push(PartitionerRow {
            algorithm: label,
            communication: m.remote_fetches,
            reduction,
            time_secs,
        });
    }

    PartitionerReport {
        dataset: dataset.to_string(),
        rows,
    }
}

/// Runs Table 3 over all three datasets at the given scale.
pub fn run(scale: f64) -> Vec<PartitionerReport> {
    DatasetSpec::paper_presets(scale)
        .iter()
        .map(|spec| {
            let data = generate(spec);
            let graph = data.to_bigraph();
            run_graph(&graph, &spec.name)
        })
        .collect()
}

impl fmt::Display for PartitionerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3 — partitioning algorithms ({})", self.dataset)?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.clone(),
                    r.communication.to_string(),
                    format!("{:.1}%", r.reduction * 100.0),
                    format!("{:.3}", r.time_secs),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["algorithm", "communication", "reduction", "time (s)"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let mut spec = DatasetSpec::avazu_like(0.05);
        spec.cluster_affinity = 0.9;
        let data = generate(&spec);
        let graph = data.to_bigraph();
        let report = run_graph(&graph, "avazu-like");
        assert_eq!(report.rows.len(), 5);
        let comm = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.algorithm.starts_with(name))
                .map(|r| r.communication)
                .expect("row")
        };
        // Paper ordering: Random > BiCut > Ours(1) ≥ Ours(3) ≥ Ours(5).
        assert!(comm("BiCut") < comm("Random"));
        assert!(comm("Ours (1") < comm("BiCut"));
        assert!(comm("Ours (3") <= comm("Ours (1"));
        assert!(comm("Ours (5") <= comm("Ours (3"));
        // Reduction at 5 rounds is substantial (paper: 63-68 %).
        let r5 = report
            .rows
            .iter()
            .find(|r| r.algorithm.starts_with("Ours (5"))
            .unwrap();
        // The scaled-down synthetic data is denser per feature than the
        // real datasets (tiny fields are unsplittable without replication),
        // so the bar is slightly below the paper's 63-68 %; the orderings
        // above are the reproduced shape.
        assert!(r5.reduction > 0.3, "reduction {:.2}", r5.reduction);
        // Time grows with rounds.
        let t = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.algorithm.starts_with(name))
                .map(|r| r.time_secs)
                .unwrap()
        };
        assert!(t("Ours (5") >= t("Ours (1"));
        assert!(report.to_string().contains("Table 3"));
    }
}
