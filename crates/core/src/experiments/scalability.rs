//! **Figure 10** — scalability: total WDL throughput vs. GPU count
//! (1, 2, 4, 8, 16, 24) on cluster B for HET-GMP and HugeCTR, on
//! Criteo-like and Company-like data.
//!
//! Paper shape: HugeCTR's throughput *collapses* when the GPU count crosses
//! interconnect boundaries (4 → 8 adds QPI, 8 → 16 adds Ethernet) while
//! HET-GMP keeps scaling (hierarchical placement + replication + bounded
//! staleness absorb the slow links); HET-GMP is up to 27.5× faster at 16
//! GPUs. The Company panel starts at 2 GPUs ("too large to be stored on a
//! single GPU").

use std::fmt;

use hetgmp_cluster::Topology;
use hetgmp_data::{generate, CtrDataset, DatasetSpec};

use crate::experiments::render_table;
use crate::models::ModelKind;
use crate::strategy::StrategyConfig;
use crate::trainer::{Trainer, TrainerConfig};

/// One (system, #GPUs) measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// System name.
    pub system: String,
    /// Number of workers.
    pub gpus: usize,
    /// Total throughput, samples per simulated second.
    pub throughput: f64,
}

/// Figure 10 for one dataset.
#[derive(Debug, Clone)]
pub struct ScalabilityReport {
    /// Dataset label.
    pub dataset: String,
    /// All points.
    pub points: Vec<ScalePoint>,
}

/// Runs one dataset's panel over the given GPU counts.
pub fn run_dataset(data: &CtrDataset, label: &str, gpu_counts: &[usize]) -> ScalabilityReport {
    let mut points = Vec::new();
    for &n in gpu_counts {
        let topo = Topology::cluster_b_scaled(n);
        let systems = vec![
            StrategyConfig::hugectr(),
            StrategyConfig::het_gmp(100)
                .with_weight_matrix(if n > 1 { Some(topo.weight_matrix()) } else { None }),
        ];
        for strat in systems {
            let name = if strat.name.starts_with("HET-GMP") {
                "HET-GMP".to_string()
            } else {
                strat.name.clone()
            };
            let trainer = Trainer::new(
                data,
                topo.clone(),
                strat,
                TrainerConfig {
                    model: ModelKind::Wdl,
                    epochs: 1,
                    // Wide embeddings + lean dense tower: the paper's
                    // workloads move far more embedding than dense bytes
                    // (the premise of Figures 1/8); matching that ratio is
                    // what exposes HugeCTR's collapse on slow links.
                    dim: 64,
                    // Paper-scale global batches amortise per-iteration
                    // fixed costs; small batches would let the AllReduce
                    // latency floor mask the embedding-traffic story.
                    batch_size: 1024,
                    hidden: vec![32, 16],
                    ..Default::default()
                },
            );
            let r = trainer.run();
            points.push(ScalePoint {
                system: name,
                gpus: n,
                throughput: r.throughput,
            });
        }
    }
    ScalabilityReport {
        dataset: label.to_string(),
        points,
    }
}

/// Runs Figure 10 (Criteo-like from 1 GPU, Company-like from 2) at `scale`.
///
/// The scale is clamped to ≥ 0.4: below that, 16–24 workers see shards of a
/// few hundred samples and the ladder degenerates to one iteration per
/// epoch, which measures fixed costs rather than scaling.
pub fn run(scale: f64) -> Vec<ScalabilityReport> {
    let scale = scale.max(0.4);
    let criteo = generate(&DatasetSpec::criteo_like(scale));
    let company = generate(&DatasetSpec::company_like(scale));
    vec![
        run_dataset(&criteo, "criteo-like", &[1, 2, 4, 8, 16, 24]),
        run_dataset(&company, "company-like", &[2, 4, 8, 16, 24]),
    ]
}

impl ScalabilityReport {
    /// Throughput of `system` at `gpus`.
    pub fn throughput(&self, system: &str, gpus: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.system == system && p.gpus == gpus)
            .map(|p| p.throughput)
    }

    /// Max HET-GMP / HugeCTR throughput ratio over shared GPU counts.
    pub fn max_speedup(&self) -> f64 {
        let mut best = 0.0f64;
        for p in &self.points {
            if p.system == "HET-GMP" {
                if let Some(hc) = self.throughput("HugeCTR", p.gpus) {
                    if hc > 0.0 {
                        best = best.max(p.throughput / hc);
                    }
                }
            }
        }
        best
    }
}

impl fmt::Display for ScalabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10 — total throughput vs #GPUs ({}); max speedup {:.1}x",
            self.dataset,
            self.max_speedup()
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.system.clone(),
                    p.gpus.to_string(),
                    format!("{:.0}", p.throughput),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&["system", "#GPUs", "samples/s"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hugectr_collapses_past_interconnect_boundaries() {
        // Needs enough samples that 16 workers run several iterations each,
        // and a representative embedding width so link bandwidth (not the
        // fixed per-batch overhead) dominates. Magnitudes are compressed
        // relative to the paper (see EXPERIMENTS.md: scaled vocabularies
        // make batch dedup disproportionately favour the random baseline),
        // but the shape — HugeCTR collapsing across the Ethernet boundary
        // while HET-GMP stays ahead at every point — must hold.
        let mut spec = DatasetSpec::company_like(0.4);
        spec.cluster_affinity = 0.9;
        let data = generate(&spec);
        let report = run_dataset(&data, "company-like", &[4, 16]);
        let hc4 = report.throughput("HugeCTR", 4).unwrap();
        let hc16 = report.throughput("HugeCTR", 16).unwrap();
        // Paper: HugeCTR throughput *collapses* crossing to Ethernet.
        assert!(
            hc16 < 0.6 * hc4,
            "HugeCTR should collapse: 4 GPUs {hc4} -> 16 GPUs {hc16}"
        );
        // HET-GMP ahead at both scales.
        let gmp4 = report.throughput("HET-GMP", 4).unwrap();
        let gmp16 = report.throughput("HET-GMP", 16).unwrap();
        assert!(gmp4 > hc4, "4 GPUs: HET-GMP {gmp4} !> HugeCTR {hc4}");
        assert!(gmp16 > hc16, "16 GPUs: HET-GMP {gmp16} !> HugeCTR {hc16}");
        assert!(report.max_speedup() > 1.0);
        assert!(report.to_string().contains("Figure 10"));
    }
}
