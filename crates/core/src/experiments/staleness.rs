//! **Table 2** — final test AUC vs. staleness bound `s ∈ {0, 100, 10k, ∞}`
//! on WDL over the three datasets.
//!
//! Paper shape: AUC is flat from `s = 0` through `s = 10k` (robustness of
//! bounded asynchrony) and drops visibly at `s = ∞` (unbounded drift hurts
//! quality — most on Company: 76.1 → 73.3).

use std::fmt;

use hetgmp_cluster::Topology;
use hetgmp_data::{generate, DatasetSpec};
use hetgmp_embedding::StalenessBound;
use hetgmp_telemetry::{Json, JsonlWriter};

use crate::experiments::{emit, render_table, Hooks};
use crate::models::ModelKind;
use crate::strategy::StrategyConfig;
use crate::trainer::{Trainer, TrainerConfig};

/// One dataset's row of Table 2.
#[derive(Debug, Clone)]
pub struct StalenessRow {
    /// Dataset label.
    pub dataset: String,
    /// `(s label, final AUC)` per column.
    pub aucs: Vec<(String, f64)>,
}

/// Full Table 2.
#[derive(Debug, Clone)]
pub struct StalenessReport {
    /// One row per dataset.
    pub rows: Vec<StalenessRow>,
}

/// The paper's four staleness settings.
pub fn bounds() -> Vec<(String, StalenessBound)> {
    vec![
        ("s=0".into(), StalenessBound::Bounded(0)),
        ("s=100".into(), StalenessBound::Bounded(100)),
        ("s=10k".into(), StalenessBound::Bounded(10_000)),
        ("s=inf".into(), StalenessBound::Infinite),
    ]
}

/// Runs Table 2 at the given scale/epochs.
pub fn run(scale: f64, epochs: usize) -> StalenessReport {
    run_with(scale, epochs, None)
}

/// Like [`run`], optionally appending one telemetry snapshot per cell
/// (event `table2`) to a JSONL writer.
pub fn run_with(
    scale: f64,
    epochs: usize,
    telemetry: Option<&mut JsonlWriter>,
) -> StalenessReport {
    run_instrumented(scale, epochs, telemetry, &Hooks::default())
}

/// Like [`run_with`], additionally threading observability [`Hooks`]
/// through every trainer run; audited runs carry an `audit` object in
/// their `table2` JSONL records (the auditor's gap histograms make the
/// drift behind the `s=inf` AUC drop directly visible).
pub fn run_instrumented(
    scale: f64,
    epochs: usize,
    mut telemetry: Option<&mut JsonlWriter>,
    hooks: &Hooks,
) -> StalenessReport {
    let topo = Topology::pcie_island(8);
    let mut rows = Vec::new();
    for spec in DatasetSpec::paper_presets(scale) {
        let data = generate(&spec);
        let mut aucs = Vec::new();
        for (label, bound) in bounds() {
            let mut strat = StrategyConfig::het_gmp(0);
            strat.staleness = bound;
            strat.name = format!("HET-GMP({label})");
            let trainer = hooks.apply(Trainer::new(
                &data,
                topo.clone(),
                strat,
                TrainerConfig {
                    model: ModelKind::Wdl,
                    epochs,
                    dim: 16,
                    batch_size: 256,
                    hidden: vec![64, 32],
                    ..Default::default()
                },
            ));
            let r = trainer.run();
            if let Some(w) = telemetry.as_deref_mut() {
                let mut extra = vec![
                    ("dataset", Json::from(spec.name.as_str())),
                    ("staleness", Json::from(label.as_str())),
                    ("auc", Json::F64(r.final_auc)),
                ];
                extra.extend(hooks.audit_extra(&r));
                emit(w, "table2", &extra, &r.telemetry);
            }
            aucs.push((label, r.final_auc));
        }
        rows.push(StalenessRow {
            dataset: spec.name.clone(),
            aucs,
        });
    }
    StalenessReport { rows }
}

impl fmt::Display for StalenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2 — final test AUC (%) vs staleness s (WDL)")?;
        let mut headers = vec!["dataset"];
        let labels: Vec<String> = self
            .rows
            .first()
            .map(|r| r.aucs.iter().map(|(l, _)| l.clone()).collect())
            .unwrap_or_default();
        for l in &labels {
            headers.push(l);
        }
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.dataset.clone()];
                row.extend(r.aucs.iter().map(|(_, a)| format!("{:.2}", a * 100.0)));
                row
            })
            .collect();
        write!(f, "{}", render_table(&headers, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_staleness_robust_unbounded_hurts() {
        let topo = Topology::pcie_island(8);
        let mut spec = DatasetSpec::avazu_like(0.06);
        spec.cluster_affinity = 0.9;
        let data = generate(&spec);
        let mut results = Vec::new();
        for (label, bound) in bounds() {
            let mut strat = StrategyConfig::het_gmp(0);
            strat.staleness = bound;
            let trainer = Trainer::new(
                &data,
                topo.clone(),
                strat,
                TrainerConfig {
                    model: ModelKind::Wdl,
                    epochs: 3,
                    dim: 8,
                    batch_size: 128,
                    hidden: vec![32],
                    ..Default::default()
                },
            );
            results.push((label, trainer.run().final_auc));
        }
        let s0 = results[0].1;
        let s100 = results[1].1;
        // Robustness: s=100 within a point of s=0.
        assert!(
            (s0 - s100).abs() < 0.02,
            "s=0 {s0} vs s=100 {s100} diverged"
        );
        assert!(s0 > 0.6, "model failed to learn: {s0}");
    }

    #[test]
    fn renders() {
        let report = StalenessReport {
            rows: vec![StalenessRow {
                dataset: "x".into(),
                aucs: vec![("s=0".into(), 0.77)],
            }],
        };
        let text = report.to_string();
        assert!(text.contains("Table 2"));
        assert!(text.contains("77.00"));
    }
}
