//! Distributed knowledge-graph embedding (TransE) on the HET-GMP substrate.
//!
//! The paper's §3 claims its graph-based replication and consistency
//! principles "could be naturally applied" to KG training systems. This
//! module realises that extension: a multi-worker TransE trainer whose
//! entity table is the same [`ShardedTable`] + [`WorkerEmbedding`]
//! bounded-asynchrony stack used by the CTR trainer, partitioned by the same
//! Algorithm 1 over the triple bigraph (where each sample touches exactly
//! *two* embeddings — the contrast with CTR the paper highlights in §2).
//!
//! TransE (Bordes et al. 2013): score `d(h, r, t) = ‖h + r − t‖²`; margin
//! ranking loss `max(0, γ + d(h,r,t) − d(h,r,t'))` with corrupted tails
//! `t'`. Relations are few and dense, so each worker keeps a replica synced
//! by AllReduce — exactly the paper's hybrid dense/sparse architecture.

use std::sync::atomic::{AtomicU64, Ordering};

use hetgmp_cluster::{CostModel, SimClock, TimeCategory, Topology};
use hetgmp_comms::AllReduceGroup;
use hetgmp_data::KgDataset;
use hetgmp_embedding::{ShardedTable, SparseOpt, WorkerEmbedding};
use hetgmp_partition::PartitionMetrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::strategy::StrategyConfig;

/// TransE training hyper-parameters.
#[derive(Debug, Clone)]
pub struct KgTrainerConfig {
    /// Embedding dimension for entities and relations.
    pub dim: usize,
    /// Margin `γ`.
    pub margin: f32,
    /// Entity-table optimizer.
    pub entity_opt: SparseOpt,
    /// Relation learning rate (plain SGD, AllReduce-synced).
    pub relation_lr: f32,
    /// Triples per batch per worker.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Candidates per test triple for ranking metrics.
    pub eval_candidates: usize,
    /// Test triples evaluated (cap).
    pub max_eval_triples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KgTrainerConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            margin: 1.0,
            // Adagrad: batch gradients are *summed* per row, so hot entities
            // need per-row adaptive steps or they oscillate.
            entity_opt: SparseOpt::adagrad(0.1),
            relation_lr: 0.5,
            batch_size: 256,
            epochs: 5,
            eval_candidates: 50,
            max_eval_triples: 1024,
            seed: 7,
        }
    }
}

/// Results of one KG training run.
#[derive(Debug, Clone)]
pub struct KgResult {
    /// Strategy name.
    pub strategy: String,
    /// Mean reciprocal rank of the true tail among sampled candidates.
    pub mrr: f64,
    /// Fraction of test triples whose true tail ranks in the top 10.
    pub hits_at_10: f64,
    /// Total simulated seconds.
    pub sim_time: f64,
    /// Triples processed per simulated second.
    pub throughput: f64,
    /// Remote embedding traffic, bytes.
    pub embed_bytes: u64,
    /// Partition quality on the triple bigraph.
    pub partition_metrics: PartitionMetrics,
}

/// Distributed TransE trainer.
pub struct KgTrainer<'d> {
    kg: &'d KgDataset,
    topology: Topology,
    strategy: StrategyConfig,
    config: KgTrainerConfig,
}

impl<'d> KgTrainer<'d> {
    /// Creates a trainer. Only the strategy's partition policy and staleness
    /// bound are consulted (KG has no CPU-PS mode here).
    pub fn new(
        kg: &'d KgDataset,
        topology: Topology,
        strategy: StrategyConfig,
        config: KgTrainerConfig,
    ) -> Self {
        assert!(!kg.is_empty(), "empty knowledge graph");
        Self {
            kg,
            topology,
            strategy,
            config,
        }
    }

    /// Runs training and evaluation.
    pub fn run(&self) -> KgResult {
        let cfg = &self.config;
        let n = self.topology.num_workers();
        let cost = CostModel::new(self.topology.clone());
        let (train, test) = self.kg.split(0.1);

        // Bigraph over training triples only.
        let rows: Vec<Vec<u32>> = train
            .iter()
            .map(|&i| {
                let (h, _, t) = self.kg.triples[i as usize];
                if h == t {
                    vec![h]
                } else {
                    vec![h, t]
                }
            })
            .collect();
        let graph = hetgmp_bigraph::Bigraph::from_samples(self.kg.num_entities, &rows);
        let partition = self
            .strategy
            .partition
            .partitioner(cfg.seed)
            .partition(&graph, &self.topology);
        let partition_metrics = PartitionMetrics::compute(&graph, &partition, None);
        let freq: Vec<u64> = (0..graph.num_embeddings() as u32)
            .map(|e| graph.emb_frequency(e) as u64)
            .collect();

        let shards: Vec<Vec<u32>> = partition
            .samples_by_partition()
            .into_iter()
            .map(|local| local.into_iter().map(|s| train[s as usize]).collect())
            .collect();
        let mean_shard =
            (shards.iter().map(Vec::len).sum::<usize>() as f64 / n as f64).round() as usize;
        let iters = mean_shard.max(1).div_ceil(cfg.batch_size).max(1);

        let entities = ShardedTable::new(self.kg.num_entities, cfg.dim, 0.1, cfg.seed);
        let group = AllReduceGroup::new(n);
        let triples_done = AtomicU64::new(0);
        let embed_bytes = AtomicU64::new(0);

        let mut relations: Vec<Vec<f32>> = {
            // One replica per worker, identical init.
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE1);
            let base: Vec<f32> = (0..self.kg.num_relations * cfg.dim)
                .map(|_| rng.gen_range(-0.1..0.1))
                .collect();
            (0..n).map(|_| base.clone()).collect()
        };
        let mut workers: Vec<WorkerEmbedding<'_>> = (0..n as u32)
            .map(|w| WorkerEmbedding::new(w, &entities, &partition, &freq, self.strategy.staleness))
            .collect();
        let mut clocks: Vec<SimClock> = (0..n).map(|_| SimClock::new()).collect();

        let kg = self.kg;
        for epoch in 0..cfg.epochs {
            std::thread::scope(|scope| {
                for (w, ((we, rel), clock)) in workers
                    .iter_mut()
                    .zip(relations.iter_mut())
                    .zip(clocks.iter_mut())
                    .enumerate()
                {
                    let shard = &shards[w];
                    let group = &group;
                    let cost = &cost;
                    let triples_done = &triples_done;
                    let embed_bytes = &embed_bytes;
                    scope.spawn(move || {
                        let mut rng =
                            StdRng::seed_from_u64(cfg.seed ^ ((epoch * n + w) as u64) << 8);
                        run_kg_worker_epoch(KgWorkerCtx {
                            w,
                            shard,
                            kg,
                            we,
                            rel,
                            clock,
                            iters,
                            cfg,
                            cost,
                            group,
                            rng: &mut rng,
                            triples_done,
                            embed_bytes,
                        });
                    });
                }
            });
            for we in &mut workers {
                we.flush_all(&cfg.entity_opt);
            }
        }

        // Evaluation: rank the true tail among sampled candidates.
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xEA);
        let take = test.len().min(cfg.max_eval_triples);
        let mut mrr = 0.0f64;
        let mut hits = 0usize;
        let dim = cfg.dim;
        let mut h_buf = vec![0.0f32; dim];
        let mut t_buf = vec![0.0f32; dim];
        let mut c_buf = vec![0.0f32; dim];
        let rel0 = &relations[0];
        for &i in &test[..take] {
            let (h, r, t) = kg.triples[i as usize];
            entities.read_row(h, &mut h_buf);
            entities.read_row(t, &mut t_buf);
            let rvec = &rel0[r as usize * dim..(r as usize + 1) * dim];
            let d_true = distance(&h_buf, rvec, &t_buf);
            let mut rank = 1usize;
            for _ in 0..cfg.eval_candidates {
                let cand = rng.gen_range(0..kg.num_entities as u32);
                if cand == t {
                    continue;
                }
                entities.read_row(cand, &mut c_buf);
                if distance(&h_buf, rvec, &c_buf) < d_true {
                    rank += 1;
                }
            }
            mrr += 1.0 / rank as f64;
            if rank <= 10 {
                hits += 1;
            }
        }
        let sim_time = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
        let done = triples_done.load(Ordering::Relaxed);
        KgResult {
            strategy: self.strategy.name.clone(),
            mrr: mrr / take.max(1) as f64,
            hits_at_10: hits as f64 / take.max(1) as f64,
            sim_time,
            throughput: if sim_time > 0.0 {
                done as f64 / sim_time
            } else {
                0.0
            },
            embed_bytes: embed_bytes.load(Ordering::Relaxed),
            partition_metrics,
        }
    }
}

#[inline]
fn distance(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    h.iter()
        .zip(r)
        .zip(t)
        .map(|((&hv, &rv), &tv)| {
            let d = hv + rv - tv;
            d * d
        })
        .sum()
}

struct KgWorkerCtx<'a, 'b, 'd> {
    w: usize,
    shard: &'a [u32],
    kg: &'d KgDataset,
    we: &'a mut WorkerEmbedding<'b>,
    rel: &'a mut [f32],
    clock: &'a mut SimClock,
    iters: usize,
    cfg: &'a KgTrainerConfig,
    cost: &'a CostModel,
    group: &'a AllReduceGroup,
    rng: &'a mut StdRng,
    triples_done: &'a AtomicU64,
    embed_bytes: &'a AtomicU64,
}

fn run_kg_worker_epoch(ctx: KgWorkerCtx<'_, '_, '_>) {
    let KgWorkerCtx {
        w,
        shard,
        kg,
        we,
        rel,
        clock,
        iters,
        cfg,
        cost,
        group,
        rng,
        triples_done,
        embed_bytes,
    } = ctx;
    let dim = cfg.dim;
    let mut cursor = rng.gen_range(0..shard.len().max(1));
    let mut rel_grad = vec![0.0f32; rel.len()];

    for _ in 0..iters {
        let bs = cfg.batch_size.min(shard.len().max(1));
        // Assemble ids: for each triple, h, t and a corrupted tail t'.
        let mut triple_ids = Vec::with_capacity(bs);
        let mut id_rows: Vec<Vec<u32>> = Vec::with_capacity(bs);
        if !shard.is_empty() {
            for _ in 0..bs {
                let idx = shard[cursor % shard.len()];
                cursor += 1;
                let (h, r, t) = kg.triples[idx as usize];
                let neg = rng.gen_range(0..kg.num_entities as u32);
                triple_ids.push((h, r, t, neg));
                id_rows.push(vec![h, t, neg]);
            }
        }
        let sample_refs: Vec<&[u32]> = id_rows.iter().map(Vec::as_slice).collect();
        let total_rows: usize = sample_refs.iter().map(|s| s.len()).sum();
        let mut flat = vec![0.0f32; total_rows * dim];
        let read = if total_rows > 0 {
            we.read_batch(&sample_refs, &mut flat)
        } else {
            Default::default()
        };

        // Margin-ranking gradients per triple.
        rel_grad.iter_mut().for_each(|g| *g = 0.0);
        let mut grads = vec![0.0f32; total_rows * dim];
        let mut active = 0usize;
        for (j, &(_h, r, _t, _n)) in triple_ids.iter().enumerate() {
            let base = j * 3 * dim;
            let (hv, rest) = flat[base..base + 3 * dim].split_at(dim);
            let (tv, nv) = rest.split_at(dim);
            let rv = &rel[r as usize * dim..(r as usize + 1) * dim];
            let d_pos = distance(hv, rv, tv);
            let d_neg = distance(hv, rv, nv);
            let loss = cfg.margin + d_pos - d_neg;
            if loss <= 0.0 {
                continue;
            }
            active += 1;
            let g = &mut grads[base..base + 3 * dim];
            let rg = &mut rel_grad[r as usize * dim..(r as usize + 1) * dim];
            for d in 0..dim {
                let e_pos = hv[d] + rv[d] - tv[d];
                let e_neg = hv[d] + rv[d] - nv[d];
                // dL/dh = 2(e_pos − e_neg); dL/dt = −2 e_pos; dL/dt' = 2 e_neg
                g[d] = 2.0 * (e_pos - e_neg);
                g[dim + d] = -2.0 * e_pos;
                g[2 * dim + d] = 2.0 * e_neg;
                rg[d] += 2.0 * (e_pos - e_neg);
            }
        }
        let _ = active;

        let update = if total_rows > 0 {
            we.apply_gradients(&sample_refs, &grads, &cfg.entity_opt)
        } else {
            Default::default()
        };

        // Relations: AllReduce-mean gradients, local SGD step.
        group.allreduce_mean(&mut rel_grad);
        for (p, &g) in rel.iter_mut().zip(rel_grad.iter()) {
            *p -= cfg.relation_lr * g / cfg.batch_size.max(1) as f32;
        }

        // Charge simulated time (same model as the CTR trainer).
        let compute_t = cost
            .compute
            .compute_time((6 * dim * bs) as f64 * 3.0);
        clock.advance(TimeCategory::Compute, compute_t);
        let mut comm_t = 0.0;
        for (src, &bytes) in read.data_bytes_by_src.iter().enumerate() {
            if bytes > 0 {
                comm_t += cost.transfer_time(w, src, bytes);
            }
        }
        for (dst, &bytes) in update.data_bytes_by_dst.iter().enumerate() {
            if bytes > 0 {
                comm_t += cost.transfer_time(w, dst, bytes);
            }
        }
        clock.advance_overlapped(TimeCategory::EmbedComm, comm_t, compute_t);
        clock.advance(
            TimeCategory::AllReduceComm,
            cost.allreduce_time((rel_grad.len() * 4) as u64),
        );
        embed_bytes.fetch_add(read.data_bytes + update.data_bytes, Ordering::Relaxed);
        triples_done.fetch_add(bs as u64, Ordering::Relaxed);

        // BSP barrier in simulated time.
        let mut tmax = [clock.now() as f32];
        group.allreduce_max(&mut tmax);
        clock.wait_until(tmax[0] as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_data::{generate_kg, KgSpec};

    fn small_kg() -> hetgmp_data::KgDataset {
        let mut spec = KgSpec::small();
        spec.num_entities = 400;
        spec.num_triples = 6000;
        generate_kg(&spec)
    }

    #[test]
    fn transe_learns_ranking() {
        let kg = small_kg();
        let trainer = KgTrainer::new(
            &kg,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp(100),
            KgTrainerConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let r = trainer.run();
        // Random ranking over ~50 candidates has MRR ≈ 0.09 / hits@10 ≈ 0.2;
        // a trained model must do far better.
        assert!(r.mrr > 0.3, "MRR {}", r.mrr);
        assert!(r.hits_at_10 > 0.5, "hits@10 {}", r.hits_at_10);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn hybrid_partition_cuts_kg_traffic() {
        let kg = small_kg();
        let run = |strat: StrategyConfig| {
            KgTrainer::new(
                &kg,
                Topology::pcie_island(4),
                strat,
                KgTrainerConfig {
                    epochs: 2,
                    ..Default::default()
                },
            )
            .run()
        };
        let random = run(StrategyConfig::het_mp());
        let hybrid = run(StrategyConfig::het_gmp(100));
        assert!(
            hybrid.partition_metrics.remote_fetches < random.partition_metrics.remote_fetches,
            "hybrid {} !< random {}",
            hybrid.partition_metrics.remote_fetches,
            random.partition_metrics.remote_fetches
        );
        assert!(
            hybrid.embed_bytes < random.embed_bytes,
            "hybrid bytes {} !< random {}",
            hybrid.embed_bytes,
            random.embed_bytes
        );
    }
}
