#![warn(missing_docs)]

//! # hetgmp-core
//!
//! The HET-GMP training system: CTR models, the distributed trainer, the
//! baseline systems it is compared against, and runners for every experiment
//! in the paper's evaluation (§7).
//!
//! ## System strategies (paper §7 "Baselines")
//!
//! All strategies share the same substrate (dataset, model math, cost
//! model), exactly as the paper introduces HET-MP "to alleviate the concerns
//! on the difference between the system backbones". They differ only in the
//! four axes the paper studies:
//!
//! | Strategy | Embedding home | Partitioning | Replication | Consistency |
//! |----------|---------------|--------------|-------------|-------------|
//! | `TfPs` (TensorFlow PS) | CPU host | — | none | ASP, PS dense |
//! | `Parallax` | CPU host | — | none | ASP, AllReduce dense |
//! | `HugeCtrMp` / `HetMp` | GPU | random | none | BSP |
//! | `HetGmp(s)` | GPU | hybrid graph (Alg. 1) | top-1% vertex-cut | graph-based bounded async |
//!
//! ## Experiment index
//!
//! See `DESIGN.md` at the workspace root; each `experiments::*` module maps
//! to one table or figure and is driven by a binary in `hetgmp-bench`.

pub mod experiments;
pub mod kg;
pub mod models;
pub mod pipeline;
pub mod strategy;
pub mod trainer;

pub use kg::{KgResult, KgTrainer, KgTrainerConfig};
pub use models::{CtrModel, ModelKind};
pub use pipeline::{BatchStage, PipelineDriver, StepCtx};
pub use strategy::{DenseSync, EmbedHome, PartitionPolicy, StrategyConfig};
pub use trainer::{EvalPoint, TrainResult, Trainer, TrainerConfig};
