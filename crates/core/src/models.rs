//! CTR prediction models: Wide & Deep (WDL) and Deep & Cross (DCN).
//!
//! These are the two workloads of the paper's evaluation (§7, "Datasets and
//! Models"). Both consume a mini-batch of concatenated field embeddings
//! (`batch × (fields·dim)`) and produce one logit per sample:
//!
//! * **WDL** (Cheng et al. 2016): a deep MLP tower plus a wide linear head,
//!   summed — `logit = MLP(x) + W·x`;
//! * **DCN** (Wang et al. 2017): an explicit-feature-crossing tower
//!   (`CrossLayer` stack) alongside a deep tower, concatenated into a final
//!   dense combiner — the cross tower is why DCN carries more dense
//!   parameters and hence more AllReduce traffic in the paper's Figure 8.

use hetgmp_tensor::fm::{FmInteraction, TargetAttention};
use hetgmp_tensor::layers::{CrossLayer, Dense, Layer, Mlp};
use hetgmp_tensor::tape::DenseTape;
use hetgmp_tensor::Matrix;

/// Which CTR architecture to instantiate.
///
/// WDL and DCN are the paper's evaluation workloads; DeepFM and DIN are two
/// further architectures §5.1 lists as supported by the bigraph abstraction
/// (xDeepFM is listed too but its CIN tower is out of scope here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Wide & Deep.
    Wdl,
    /// Deep & Cross.
    Dcn,
    /// DeepFM: second-order FM interaction + deep tower (Guo et al. 2017).
    DeepFm,
    /// DIN-style: target attention over behaviour fields + deep tower
    /// (Zhou et al. 2018), with field 0 as the target item.
    Din,
}

impl ModelKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Wdl => "WDL",
            ModelKind::Dcn => "DCN",
            ModelKind::DeepFm => "DeepFM",
            ModelKind::Din => "DIN",
        }
    }

    /// All supported architectures.
    pub fn all() -> [ModelKind; 4] {
        [ModelKind::Wdl, ModelKind::Dcn, ModelKind::DeepFm, ModelKind::Din]
    }
}

/// A CTR model over concatenated field embeddings.
pub struct CtrModel {
    kind: ModelKind,
    input_dim: usize,
    /// Deep tower (no scalar head for DCN; full MLP with head otherwise).
    deep: Mlp,
    /// WDL: wide linear head. DCN: final combiner over `[cross ; deep]`.
    head: Option<Dense>,
    /// DCN cross tower (empty otherwise).
    cross: Vec<CrossLayer>,
    /// DeepFM second-order interaction.
    fm: Option<FmInteraction>,
    /// DIN target attention.
    att: Option<TargetAttention>,
    deep_out_dim: usize,
}

/// Per-worker arena for allocation-free [`CtrModel`] forward/backward:
/// owns a [`DenseTape`] for the deep tower plus every named scratch matrix
/// the architecture-specific paths need (wide/FM auxiliary output, DIN
/// pooling, DCN concat/split buffers and cross-tower activations).
///
/// One tape lives for a whole training run; after the first batch every
/// buffer has its steady-state capacity, and [`ModelTape::end_batch`]
/// counts any later growth (the `dense.tape.post_warmup_growth` counter
/// that must stay 0).
#[derive(Default)]
pub struct ModelTape {
    dense: DenseTape,
    /// Second-path output (WDL wide head, DeepFM FM term).
    aux: Matrix,
    /// Second-path input gradient (also the DCN cross ping-pong scratch).
    g_aux: Matrix,
    /// DIN attention output / its gradient.
    pooled: Matrix,
    g_pooled: Matrix,
    /// DCN `[cross ; deep]` concat / its gradient / the split halves.
    cat: Matrix,
    g_cat: Matrix,
    g_cross: Matrix,
    g_deep: Matrix,
    /// DCN cross-tower activations (`cross_acts[i]` = output of layer i).
    cross_acts: Vec<Matrix>,
    /// Final per-sample logits of the most recent forward.
    logits: Matrix,
    /// Wall seconds spent in dense forward/loss/backward (throughput gauge).
    pub(crate) dense_secs: f64,
    /// Samples pushed through the dense path.
    pub(crate) dense_samples: u64,
}

impl ModelTape {
    /// Empty tape; buffers materialise on the first batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logits of the most recent [`CtrModel::forward_tape`].
    pub fn logits(&self) -> &Matrix {
        &self.logits
    }

    /// Accumulated GEMM flops (see [`DenseTape::flops`]).
    pub fn flops(&self) -> u64 {
        self.dense.flops()
    }

    /// High-water arena bytes at batch boundaries (`dense.arena_bytes`).
    pub fn arena_bytes(&self) -> usize {
        self.dense.arena_bytes()
    }

    /// Post-warmup buffer growth events (`dense.tape.post_warmup_growth`).
    pub fn post_warmup_growth(&self) -> u64 {
        self.dense.post_warmup_growth()
    }

    fn ensure_cross(&mut self, n: usize) {
        while self.cross_acts.len() < n {
            self.cross_acts.push(Matrix::zeros(0, 0));
        }
    }

    /// Closes a batch: snapshots total reserved bytes (deep tape + every
    /// named scratch buffer) and counts post-warmup growth.
    pub fn end_batch(&mut self) {
        let extra = self.aux.capacity_bytes()
            + self.g_aux.capacity_bytes()
            + self.pooled.capacity_bytes()
            + self.g_pooled.capacity_bytes()
            + self.cat.capacity_bytes()
            + self.g_cat.capacity_bytes()
            + self.g_cross.capacity_bytes()
            + self.g_deep.capacity_bytes()
            + self.logits.capacity_bytes()
            + self
                .cross_acts
                .iter()
                .map(Matrix::capacity_bytes)
                .sum::<usize>();
        self.dense.end_batch(extra);
    }
}

impl CtrModel {
    /// Builds a model for `num_fields` fields of `dim`-dimensional
    /// embeddings with the given deep hidden sizes.
    ///
    /// # Panics
    /// Panics if `hidden` is empty.
    pub fn new(kind: ModelKind, num_fields: usize, dim: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(!hidden.is_empty(), "deep tower needs at least one hidden layer");
        let input_dim = num_fields * dim;
        match kind {
            ModelKind::Wdl => {
                let deep = Mlp::new(input_dim, hidden, seed);
                // Wide head: direct linear map input → logit.
                let head = Some(Dense::new(input_dim, 1, seed ^ 0x57AB1E));
                Self {
                    kind,
                    input_dim,
                    deep,
                    head,
                    cross: Vec::new(),
                    fm: None,
                    att: None,
                    deep_out_dim: 1,
                }
            }
            ModelKind::Dcn => {
                // Deep tower without scalar head; ReLU fused into each
                // Dense kernel (same math and parameter order).
                let mut layers: Vec<Box<dyn Layer>> = Vec::new();
                let mut d = input_dim;
                for (i, &h) in hidden.iter().enumerate() {
                    layers.push(Box::new(Dense::new_relu(d, h, seed.wrapping_add(i as u64))));
                    d = h;
                }
                let deep = Mlp::from_layers(layers);
                let cross = (0..3)
                    .map(|i| CrossLayer::new(input_dim, seed.wrapping_add(100 + i)))
                    .collect();
                let head = Some(Dense::new(input_dim + d, 1, seed.wrapping_add(999)));
                Self {
                    kind,
                    input_dim,
                    deep,
                    head,
                    cross,
                    fm: None,
                    att: None,
                    deep_out_dim: d,
                }
            }
            ModelKind::DeepFm => Self {
                kind,
                input_dim,
                deep: Mlp::new(input_dim, hidden, seed),
                head: None,
                cross: Vec::new(),
                fm: Some(FmInteraction::new(num_fields, dim)),
                att: None,
                deep_out_dim: 1,
            },
            ModelKind::Din => {
                let att = TargetAttention::new(num_fields, dim);
                let deep = Mlp::new(att.out_dim(), hidden, seed);
                Self {
                    kind,
                    input_dim,
                    deep,
                    head: None,
                    cross: Vec::new(),
                    fm: None,
                    att: Some(att),
                    deep_out_dim: 1,
                }
            }
        }
    }

    /// The architecture kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Expected input width (`fields × dim`).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Forward pass: returns per-sample logits (`batch × 1`).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.input_dim, "input width mismatch");
        match self.kind {
            ModelKind::Wdl => {
                let deep = self.deep.forward(input);
                let wide = self
                    .head
                    .as_mut()
                    .expect("WDL has a wide head")
                    .forward(input);
                let mut out = deep;
                for (o, &w) in out.data_mut().iter_mut().zip(wide.data()) {
                    *o += w;
                }
                out
            }
            ModelKind::DeepFm => {
                let deep = self.deep.forward(input);
                let fm = self.fm.as_mut().expect("DeepFM has an FM term").forward(input);
                let mut out = deep;
                for (o, &f) in out.data_mut().iter_mut().zip(fm.data()) {
                    *o += f;
                }
                out
            }
            ModelKind::Din => {
                let pooled = self
                    .att
                    .as_mut()
                    .expect("DIN has attention")
                    .forward(input);
                self.deep.forward(&pooled)
            }
            ModelKind::Dcn => {
                let mut x = input.clone();
                for layer in &mut self.cross {
                    layer.set_x0(input.clone());
                    x = layer.forward(&x);
                }
                let deep = self.deep.forward(input);
                // Concatenate [cross ; deep] per row.
                let batch = input.rows();
                let cat_dim = self.input_dim + self.deep_out_dim;
                let mut cat = Matrix::zeros(batch, cat_dim);
                for r in 0..batch {
                    cat.row_mut(r)[..self.input_dim].copy_from_slice(x.row(r));
                    cat.row_mut(r)[self.input_dim..].copy_from_slice(deep.row(r));
                }
                self.head.as_mut().expect("DCN has a combiner").forward(&cat)
            }
        }
    }

    /// Backward pass from per-sample logit gradients; accumulates parameter
    /// gradients and returns `dL/d-input` (`batch × input_dim`) — the
    /// gradient scattered back onto the embedding rows.
    pub fn backward(&mut self, grad_logits: &Matrix) -> Matrix {
        match self.kind {
            ModelKind::Wdl => {
                let g_deep = self.deep.backward(grad_logits);
                let g_wide = self
                    .head
                    .as_mut()
                    .expect("WDL has a wide head")
                    .backward(grad_logits);
                let mut out = g_deep;
                for (o, &w) in out.data_mut().iter_mut().zip(g_wide.data()) {
                    *o += w;
                }
                out
            }
            ModelKind::DeepFm => {
                let g_deep = self.deep.backward(grad_logits);
                let g_fm = self
                    .fm
                    .as_mut()
                    .expect("DeepFM has an FM term")
                    .backward(grad_logits);
                let mut out = g_deep;
                for (o, &f) in out.data_mut().iter_mut().zip(g_fm.data()) {
                    *o += f;
                }
                out
            }
            ModelKind::Din => {
                let g_pooled = self.deep.backward(grad_logits);
                self.att
                    .as_mut()
                    .expect("DIN has attention")
                    .backward(&g_pooled)
            }
            ModelKind::Dcn => {
                let g_cat = self
                    .head
                    .as_mut()
                    .expect("DCN has a combiner")
                    .backward(grad_logits);
                let batch = g_cat.rows();
                let mut g_cross = Matrix::zeros(batch, self.input_dim);
                let mut g_deep = Matrix::zeros(batch, self.deep_out_dim);
                for r in 0..batch {
                    g_cross
                        .row_mut(r)
                        .copy_from_slice(&g_cat.row(r)[..self.input_dim]);
                    g_deep
                        .row_mut(r)
                        .copy_from_slice(&g_cat.row(r)[self.input_dim..]);
                }
                let g_deep_in = self.deep.backward(&g_deep);
                let mut g = g_cross;
                for layer in self.cross.iter_mut().rev() {
                    g = layer.backward(&g);
                }
                // x0 enters every cross layer; its direct gradient reaches
                // the input through the first layer's identity + dot paths,
                // plus the deep tower's input gradient.
                let mut out = g;
                for (o, &d) in out.data_mut().iter_mut().zip(g_deep_in.data()) {
                    *o += d;
                }
                out
            }
        }
    }

    /// Allocation-free forward pass into `tape` (logits land in
    /// [`ModelTape::logits`]). Mathematically identical to [`Self::forward`]
    /// but reuses the tape's buffers across batches — zero steady-state
    /// allocations once every buffer reached its high-water size.
    pub fn forward_tape(&mut self, input: &Matrix, tape: &mut ModelTape) {
        assert_eq!(input.cols(), self.input_dim, "input width mismatch");
        let batch = input.rows();
        match self.kind {
            ModelKind::Wdl | ModelKind::DeepFm => {
                self.deep.forward_tape(input, &mut tape.dense);
                match self.kind {
                    ModelKind::Wdl => {
                        let head = self.head.as_mut().expect("WDL has a wide head");
                        head.forward_into(input, &mut tape.aux);
                        tape.dense.add_flops(head.flops(batch));
                    }
                    _ => {
                        let fm = self.fm.as_mut().expect("DeepFM has an FM term");
                        fm.forward_into(input, &mut tape.aux);
                    }
                }
                let deep_out = tape.dense.output();
                tape.logits.reset(batch, 1);
                for ((o, &d), &a) in tape
                    .logits
                    .data_mut()
                    .iter_mut()
                    .zip(deep_out.data())
                    .zip(tape.aux.data())
                {
                    *o = d + a;
                }
            }
            ModelKind::Din => {
                let att = self.att.as_mut().expect("DIN has attention");
                att.forward_into(input, &mut tape.pooled);
                self.deep.forward_tape(&tape.pooled, &mut tape.dense);
                tape.logits.reset(batch, 1);
                let (logits, dense) = (&mut tape.logits, &tape.dense);
                logits.data_mut().copy_from_slice(dense.output().data());
            }
            ModelKind::Dcn => {
                let ncross = self.cross.len();
                tape.ensure_cross(ncross);
                for i in 0..ncross {
                    let (before, rest) = tape.cross_acts.split_at_mut(i);
                    let prev: &Matrix = if i == 0 { input } else { &before[i - 1] };
                    self.cross[i].forward_with_x0(input, prev, &mut rest[0]);
                    tape.dense.add_flops(self.cross[i].flops(batch));
                }
                self.deep.forward_tape(input, &mut tape.dense);
                let cat_dim = self.input_dim + self.deep_out_dim;
                {
                    let (cat, dense, cross_acts) =
                        (&mut tape.cat, &tape.dense, &tape.cross_acts);
                    cat.reset(batch, cat_dim);
                    let x = cross_acts.last().expect("cross tower is non-empty");
                    let deep_out = dense.output();
                    for r in 0..batch {
                        cat.row_mut(r)[..self.input_dim].copy_from_slice(x.row(r));
                        cat.row_mut(r)[self.input_dim..].copy_from_slice(deep_out.row(r));
                    }
                }
                let head = self.head.as_mut().expect("DCN has a combiner");
                head.forward_into(&tape.cat, &mut tape.logits);
                tape.dense.add_flops(head.flops(batch));
            }
        }
        tape.dense_samples += batch as u64;
    }

    /// Allocation-free backward pass from per-sample logit gradients;
    /// accumulates parameter gradients and writes `dL/d-input`
    /// (`batch × input_dim`) into `grad_in`. Pairs with the immediately
    /// preceding [`Self::forward_tape`] on the same `tape`.
    pub fn backward_tape(
        &mut self,
        input: &Matrix,
        grad_logits: &Matrix,
        grad_in: &mut Matrix,
        tape: &mut ModelTape,
    ) {
        let batch = grad_logits.rows();
        match self.kind {
            ModelKind::Wdl | ModelKind::DeepFm => {
                self.deep
                    .backward_tape(input, grad_logits, grad_in, &mut tape.dense);
                match self.kind {
                    ModelKind::Wdl => {
                        let head = self.head.as_mut().expect("WDL has a wide head");
                        head.backward_into(input, grad_logits, &mut tape.g_aux);
                        tape.dense.add_flops(2 * head.flops(batch));
                    }
                    _ => {
                        let fm = self.fm.as_mut().expect("DeepFM has an FM term");
                        fm.backward_into(input, grad_logits, &mut tape.g_aux);
                    }
                }
                for (o, &a) in grad_in.data_mut().iter_mut().zip(tape.g_aux.data()) {
                    *o += a;
                }
            }
            ModelKind::Din => {
                self.deep.backward_tape(
                    &tape.pooled,
                    grad_logits,
                    &mut tape.g_pooled,
                    &mut tape.dense,
                );
                let att = self.att.as_mut().expect("DIN has attention");
                att.backward_into(input, &tape.g_pooled, grad_in);
            }
            ModelKind::Dcn => {
                let head = self.head.as_mut().expect("DCN has a combiner");
                head.backward_into(&tape.cat, grad_logits, &mut tape.g_cat);
                tape.dense.add_flops(2 * head.flops(batch));
                {
                    let (g_cat, g_cross, g_deep) =
                        (&tape.g_cat, &mut tape.g_cross, &mut tape.g_deep);
                    g_cross.reset(batch, self.input_dim);
                    g_deep.reset(batch, self.deep_out_dim);
                    for r in 0..batch {
                        g_cross
                            .row_mut(r)
                            .copy_from_slice(&g_cat.row(r)[..self.input_dim]);
                        g_deep
                            .row_mut(r)
                            .copy_from_slice(&g_cat.row(r)[self.input_dim..]);
                    }
                }
                self.deep
                    .backward_tape(input, &tape.g_deep, grad_in, &mut tape.dense);
                // Cross chain backward, newest → oldest, ping-ponging the
                // upstream gradient between `g_cross` and `g_aux`.
                for i in (0..self.cross.len()).rev() {
                    tape.dense.add_flops(2 * self.cross[i].flops(batch));
                    let layer_in: &Matrix = if i == 0 {
                        input
                    } else {
                        &tape.cross_acts[i - 1]
                    };
                    self.cross[i].backward_with_x0(
                        input,
                        layer_in,
                        &tape.g_cross,
                        &mut tape.g_aux,
                    );
                    std::mem::swap(&mut tape.g_cross, &mut tape.g_aux);
                }
                // Same identity as legacy backward: input grad = cross-chain
                // grad + deep tower grad (f32 a+b is commutative bitwise).
                for (o, &c) in grad_in.data_mut().iter_mut().zip(tape.g_cross.data()) {
                    *o += c;
                }
            }
        }
    }

    /// Visits all `(param, grad)` buffers in a stable order (cross → deep →
    /// head) — the dense payload of AllReduce.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.cross {
            layer.visit_params(f);
        }
        self.deep.visit_params(f);
        if let Some(head) = &mut self.head {
            head.visit_params(f);
        }
        // FM and attention are parameter-free: all their learning flows
        // through the embedding table itself.
    }

    /// Total dense (non-embedding) parameter count.
    pub fn num_dense_params(&mut self) -> usize {
        let mut total = 0usize;
        self.visit_params(&mut |p, _| total += p.len());
        total
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        let mut _noop = 0;
        self.visit_params(&mut |_, g| {
            g.iter_mut().for_each(|x| *x = 0.0);
            _noop += 1;
        });
    }

    /// Flattens dense parameters into one vector.
    pub fn flatten_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p, _| out.extend_from_slice(p));
        out
    }

    /// Flattens dense gradients into one vector.
    pub fn flatten_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.flatten_grads_into(&mut out);
        out
    }

    /// Flattens dense gradients into a caller-owned buffer (cleared first),
    /// so the training loop reuses one allocation across iterations.
    pub fn flatten_grads_into(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |_, g| out.extend_from_slice(g));
    }

    /// Loads dense parameters from a flat vector.
    pub fn load_params(&mut self, flat: &[f32]) {
        let mut cursor = 0usize;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&flat[cursor..cursor + p.len()]);
            cursor += p.len();
        });
        assert_eq!(cursor, flat.len(), "flat length mismatch");
    }

    /// Loads dense gradients from a flat vector (post-AllReduce).
    pub fn load_grads(&mut self, flat: &[f32]) {
        let mut cursor = 0usize;
        self.visit_params(&mut |_, g| {
            g.copy_from_slice(&flat[cursor..cursor + g.len()]);
            cursor += g.len();
        });
        assert_eq!(cursor, flat.len(), "flat length mismatch");
    }

    /// Rough FLOP count of one sample's forward+backward dense pass (used by
    /// the simulated compute-time model). 2 FLOPs per MAC, backward ≈ 2×
    /// forward.
    pub fn flops_per_sample(&mut self) -> f64 {
        // Dense layers dominate; count their parameters × 2 (MAC) × 3
        // (forward + two backward GEMMs).
        self.num_dense_params() as f64 * 2.0 * 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_tensor::bce_with_logits;

    fn batch(rows: usize, dim: usize, seed: u64) -> Matrix {
        let mut v = Vec::with_capacity(rows * dim);
        let mut state = seed;
        for _ in 0..rows * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.push(((state >> 33) as f32 / u32::MAX as f32) - 0.5);
        }
        Matrix::from_vec(rows, dim, v)
    }

    #[test]
    fn wdl_shapes() {
        let mut m = CtrModel::new(ModelKind::Wdl, 4, 8, &[16, 8], 1);
        assert_eq!(m.input_dim(), 32);
        let x = batch(5, 32, 7);
        let y = m.forward(&x);
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 1);
    }

    #[test]
    fn dcn_shapes_and_more_params() {
        let mut wdl = CtrModel::new(ModelKind::Wdl, 4, 8, &[16, 8], 1);
        let mut dcn = CtrModel::new(ModelKind::Dcn, 4, 8, &[16, 8], 1);
        let x = batch(3, 32, 9);
        let y = dcn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (3, 1));
        // DCN's cross tower adds parameters — the paper's reason for its
        // larger AllReduce share in Figure 8.
        assert!(dcn.num_dense_params() > 0);
        assert!(wdl.num_dense_params() > 0);
        assert!(
            dcn.num_dense_params() as f64 / wdl.num_dense_params() as f64 > 0.5,
            "DCN should be comparable or larger"
        );
    }

    #[test]
    fn wdl_gradients_reduce_loss() {
        train_reduces_loss(ModelKind::Wdl);
    }

    #[test]
    fn dcn_gradients_reduce_loss() {
        train_reduces_loss(ModelKind::Dcn);
    }

    #[test]
    fn deepfm_gradients_reduce_loss() {
        train_reduces_loss(ModelKind::DeepFm);
    }

    #[test]
    fn din_gradients_reduce_loss() {
        // DIN compresses the input to [target ; pooled] with parameter-free
        // attention, so with *fixed* (untrained) embeddings it learns more
        // slowly than the full-width towers — most of its capacity lives in
        // the embedding table, which this unit test does not update.
        train_reduces_loss_by(ModelKind::Din, 0.95);
    }

    #[test]
    fn all_models_forward_shapes() {
        for kind in ModelKind::all() {
            let mut m = CtrModel::new(kind, 4, 8, &[16], 3);
            let x = batch(5, 32, 7);
            let y = m.forward(&x);
            assert_eq!((y.rows(), y.cols()), (5, 1), "{kind:?}");
            // Embedding gradient must flow for every architecture.
            let g = Matrix::from_vec(5, 1, vec![1.0; 5]);
            m.zero_grad();
            let gx = m.backward(&g);
            assert_eq!(gx.cols(), 32, "{kind:?}");
            assert!(gx.norm() > 0.0, "{kind:?} blocked embedding gradients");
        }
    }

    fn train_reduces_loss(kind: ModelKind) {
        train_reduces_loss_by(kind, 0.8);
    }

    fn train_reduces_loss_by(kind: ModelKind, factor: f32) {
        let mut m = CtrModel::new(kind, 3, 4, &[16], 3);
        let x = batch(16, 12, 5);
        let labels: Vec<f32> = (0..16).map(|i| (i % 2) as f32).collect();
        let initial = {
            let logits = m.forward(&x);
            bce_with_logits(&logits, &labels).0
        };
        let mut last = initial;
        for _ in 0..60 {
            let logits = m.forward(&x);
            let (loss, grad) = bce_with_logits(&logits, &labels);
            last = loss;
            m.zero_grad();
            let _ = m.backward(&grad);
            m.visit_params(&mut |p, g| {
                for (pi, gi) in p.iter_mut().zip(g.iter()) {
                    *pi -= 0.3 * gi;
                }
            });
        }
        assert!(
            last < initial * factor,
            "{:?}: loss {initial} -> {last}",
            kind
        );
    }

    #[test]
    fn embedding_gradient_flows() {
        // The input gradient must be non-zero — it is what trains the
        // embedding table.
        let mut m = CtrModel::new(ModelKind::Dcn, 2, 4, &[8], 11);
        let x = batch(4, 8, 3);
        let logits = m.forward(&x);
        let (_, grad) = bce_with_logits(&logits, &[1.0, 0.0, 1.0, 0.0]);
        m.zero_grad();
        let gx = m.backward(&grad);
        assert_eq!(gx.rows(), 4);
        assert_eq!(gx.cols(), 8);
        assert!(gx.norm() > 0.0);
    }

    #[test]
    fn tape_path_matches_legacy_bit_for_bit() {
        // The tape path must be a pure re-plumbing: same kernels, same
        // summation order ⇒ identical logits, input gradients, and parameter
        // gradients for every architecture.
        for kind in ModelKind::all() {
            let mut legacy = CtrModel::new(kind, 4, 8, &[16, 8], 7);
            let mut taped = CtrModel::new(kind, 4, 8, &[16, 8], 7);
            let mut tape = ModelTape::new();
            let x = batch(6, 32, 13);
            let g = batch(6, 1, 17);

            let logits_legacy = legacy.forward(&x);
            legacy.zero_grad();
            let gx_legacy = legacy.backward(&g);

            taped.forward_tape(&x, &mut tape);
            taped.zero_grad();
            let mut gx_taped = Matrix::zeros(0, 0);
            taped.backward_tape(&x, &g, &mut gx_taped, &mut tape);
            tape.end_batch();

            assert_eq!(logits_legacy.data(), tape.logits().data(), "{kind:?} logits");
            assert_eq!(gx_legacy.data(), gx_taped.data(), "{kind:?} input grad");
            assert_eq!(
                legacy.flatten_grads(),
                taped.flatten_grads(),
                "{kind:?} param grads"
            );
            assert!(tape.flops() > 0, "{kind:?} flop counter");
            assert!(tape.arena_bytes() > 0, "{kind:?} arena bytes");
        }
    }

    #[test]
    fn tape_steady_state_does_not_grow() {
        for kind in ModelKind::all() {
            let mut m = CtrModel::new(kind, 4, 8, &[16, 8], 7);
            let mut tape = ModelTape::new();
            let x = batch(6, 32, 13);
            let g = batch(6, 1, 17);
            let mut gx = Matrix::zeros(0, 0);
            for _ in 0..4 {
                m.forward_tape(&x, &mut tape);
                m.zero_grad();
                m.backward_tape(&x, &g, &mut gx, &mut tape);
                tape.end_batch();
            }
            assert_eq!(tape.post_warmup_growth(), 0, "{kind:?} grew after warmup");
        }
    }

    #[test]
    fn flatten_load_roundtrip() {
        let mut m = CtrModel::new(ModelKind::Dcn, 2, 4, &[8], 1);
        let flat = m.flatten_params();
        assert_eq!(flat.len(), m.num_dense_params());
        let mut m2 = CtrModel::new(ModelKind::Dcn, 2, 4, &[8], 2);
        m2.load_params(&flat);
        assert_eq!(m2.flatten_params(), flat);
        // Identical params ⇒ identical outputs.
        let x = batch(3, 8, 4);
        assert_eq!(m.forward(&x).data(), m2.forward(&x).data());
    }

    #[test]
    fn flops_positive() {
        let mut m = CtrModel::new(ModelKind::Wdl, 8, 16, &[64, 32], 1);
        assert!(m.flops_per_sample() > 1000.0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(ModelKind::Wdl.name(), "WDL");
        assert_eq!(ModelKind::Dcn.name(), "DCN");
        assert_eq!(ModelKind::DeepFm.name(), "DeepFM");
        assert_eq!(ModelKind::Din.name(), "DIN");
        assert_eq!(ModelKind::all().len(), 4);
    }
}
