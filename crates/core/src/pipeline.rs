//! The stage-based batch runtime: one worker's inner training loop,
//! restructured as a software pipeline over [`StepCtx`] batch slots.
//!
//! ## Stages
//!
//! Every batch flows through four stages, tracked on its slot:
//!
//! ```text
//!   Fetch ──► Compute ──► Push ──► Sync
//!   (embedding      (dense       (gradient      (dense AllReduce
//!    read)           fwd/bwd)     write-back)    + BSP barrier)
//! ```
//!
//! At `pipeline_depth == 1` the loop is the classic fully sequential
//! schedule — one slot, every stage in program order, per-rank write-back
//! barriers — byte-for-byte the pre-pipeline trainer.
//!
//! At `pipeline_depth >= 2` the runtime overlaps batch `i+1`'s Fetch with
//! batch `i`'s Sync: the main thread publishes the next fetch into a
//! work-stealing [`PrefetchCell`], a companion thread (spawned per epoch
//! inside a nested [`std::thread::scope`]) claims it while the main thread
//! blocks in collectives, and the main thread steals the job back and runs
//! it inline if the companion never got scheduled — so an oversubscribed
//! host degrades to the sequential fetch cost instead of paying a
//! cross-thread handoff per batch. The worker's [`EmbeddingWorker`] handle
//! travels with the job; ownership ping-pongs, nothing is shared. The
//! pipelined schedule also replaces the sequential loop's per-rank
//! write-back barriers (`n + 1` full rendezvous per iteration) with one
//! token ring ([`AllReduceGroup::in_rank_order`]) plus a writes-done
//! rendezvous (the strict-audit abort vote doubles as it when auditing is
//! on), fuses the dense mean-AllReduce and BSP clock-max barriers into one
//! collective ([`AllReduceGroup::fused_mean_max`]), and skips the fault
//! fence entirely when the fault schedule is empty.
//!
//! ## Buffer ownership
//!
//! Each [`StepCtx`] owns the *entire* per-batch working set — embedding
//! input matrix, labels, loss/input gradients, and the dense
//! [`ModelTape`] arena — so a slot can be handed to the companion thread
//! (and back) without any sharing; the main thread keeps only per-worker
//! state (model, clock, cursor, dense-gradient buffer).
//!
//! ## Determinism contract
//!
//! On fault-free runs, losses, AUC and checkpoints are **bit-identical**
//! across every `pipeline_depth` and `gemm_threads` setting:
//!
//! * reads-before-writes is preserved — a prefetch for batch `i+1` is only
//!   issued after the writes-done rendezvous of batch `i` (an explicit
//!   barrier, or the abort vote when auditing is on), and no peer can begin
//!   batch `i+1` write-backs until every worker has consumed its prefetch
//!   (the reads-done fence);
//! * write-backs keep the same canonical rank-ascending serialization (the
//!   token ring realizes exactly the order the barrier loop realized);
//! * the fused collective reuses the value-sorted summation of the plain
//!   mean-AllReduce, so gradient means match bitwise;
//! * row-panel parallel GEMMs ([`GemmPool`]) split only the output rows,
//!   never a reduction, so they match the sequential kernels bitwise.
//!
//! Only the *simulated* overlap accounting differs: a prefetched batch's
//! embedding-read charge may hide behind the previous iteration's dense-sync
//! window (`pipeline.overlap_ratio` reports how much was hidden). Simulated
//! timestamps therefore drift between depths, which is why faulted runs —
//! whose fault *firing times* are clock-dependent — are exempt from the
//! bit-match (they stay protocol-correct and strict-audit clean; see the
//! depth-4 crash tests).
//!
//! Depth > 2 behaves like depth 2: the write-back dependency caps useful
//! lookahead at one batch, so extra slots simply sit idle (kept for API
//! orthogonality and benchmarked as such).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use hetgmp_cluster::{
    CostModel, FaultSchedule, LinkClass, SimClock, TimeCategory, Topology, WorkerFaultKind,
};
use hetgmp_comms::{AllReduceGroup, DenseQuantizer, TrafficClass, TrafficLedger};
use hetgmp_data::CtrDataset;
use hetgmp_embedding::{EmbeddingWorker, ReadReport, ShardedTable, UpdateReport};
use hetgmp_partition::Partition;
use hetgmp_telemetry::{names, HistogramSummary, Json, ProtocolAuditor, Recorder, TraceCollector};
use hetgmp_tensor::{bce_with_logits_into, DenseOptimizer, GemmPool, Matrix, Sgd};

use crate::models::{CtrModel, ModelTape};
use crate::strategy::{DenseSync, EmbedHome, StrategyConfig};
use crate::trainer::{CheckpointImage, TrainerConfig, WorkerFaultState};

/// The stage a [`StepCtx`] batch slot is currently in. `Idle` slots sit in
/// the [`PipelineDriver`]'s free list; active slots advance strictly
/// `Fetch → Compute → Push → Sync` and back to `Idle` when recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStage {
    /// In the free list, no batch assigned.
    Idle,
    /// Batch assembled; embedding rows being (pre)fetched into `input`.
    Fetch,
    /// Dense forward/backward on the slot's tape.
    Compute,
    /// Embedding-gradient write-back to the shared table.
    Push,
    /// Dense gradient synchronisation (AllReduce / PS push-pull).
    Sync,
}

impl BatchStage {
    fn can_advance_to(self, next: BatchStage) -> bool {
        matches!(
            (self, next),
            (BatchStage::Idle, BatchStage::Fetch)
                | (BatchStage::Fetch, BatchStage::Compute)
                | (BatchStage::Compute, BatchStage::Push)
                | (BatchStage::Push, BatchStage::Sync)
        )
    }
}

/// One in-flight batch's complete working set. Owning everything a batch
/// touches (instead of the pre-pipeline trainer's ~600 lines of per-batch
/// locals) is what lets the runtime hand a whole batch to a companion
/// thread and double-buffer slots without sharing.
pub struct StepCtx {
    stage: BatchStage,
    /// Dataset indices of this batch's samples (assembled by the main
    /// thread, in cursor order — the companion never advances the cursor).
    pub(crate) batch_idx: Vec<u32>,
    /// Per-sample labels, filled during Compute.
    pub(crate) labels: Vec<f32>,
    /// Flat embedding input (`batch × fields·dim`), filled during Fetch.
    pub(crate) input: Matrix,
    /// Loss gradient w.r.t. the logits.
    pub(crate) grad_logits: Matrix,
    /// Gradient w.r.t. the embedding input (consumed by Push).
    pub(crate) grad_input: Matrix,
    /// Dense forward/backward arena — all model-internal scratch.
    pub(crate) tape: ModelTape,
    /// Traffic report of this batch's embedding read.
    pub(crate) read_report: ReadReport,
    /// Whether the Fetch was *issued* a batch ahead of consumption (set at
    /// publish time, deterministic — independent of which thread the OS
    /// actually ran the fetch on).
    pub(crate) prefetched: bool,
}

impl StepCtx {
    /// A fresh slot with empty buffers; everything grows to its steady-state
    /// size during the first batches and is then reused (the `dense.*`
    /// gauges assert zero steady-state growth per tape).
    pub fn new() -> Self {
        Self {
            stage: BatchStage::Idle,
            batch_idx: Vec::new(),
            labels: Vec::new(),
            input: Matrix::zeros(0, 0),
            grad_logits: Matrix::zeros(0, 0),
            grad_input: Matrix::zeros(0, 0),
            tape: ModelTape::new(),
            read_report: ReadReport::default(),
            prefetched: false,
        }
    }

    /// The slot's current pipeline stage.
    pub fn stage(&self) -> BatchStage {
        self.stage
    }

    /// Whether the slot's last Fetch was issued a batch ahead of
    /// consumption (regardless of which thread ended up executing it).
    pub fn is_prefetched(&self) -> bool {
        self.prefetched
    }

    fn advance_to(&mut self, next: BatchStage) {
        debug_assert!(
            self.stage.can_advance_to(next),
            "illegal stage transition {:?} -> {next:?}",
            self.stage
        );
        self.stage = next;
    }

    fn finish(&mut self) {
        debug_assert_eq!(self.stage, BatchStage::Sync, "recycled mid-stage");
        self.stage = BatchStage::Idle;
    }
}

impl Default for StepCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-worker pipeline observability, accumulated across epochs and
/// aggregated into the `pipeline.*` metrics by the trainer.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PipelineStats {
    /// Wall seconds the main thread spent blocked waiting for a fetch the
    /// companion had claimed (stage stall). Stolen-back fetches run inline
    /// and add nothing here.
    pub(crate) stall_secs: f64,
    /// Wall seconds of fetch work the companion thread actually executed
    /// (i.e. genuine overlap realized by the host scheduler).
    pub(crate) prefetch_secs: f64,
    /// Batches whose Fetch was issued a batch ahead of consumption
    /// (deterministic issue-order count, not an executed-on-companion
    /// count).
    pub(crate) prefetched: u64,
    /// Batches executed by the *pipelined* path (depth >= 2); the
    /// occupancy denominator. Stays 0 on the sequential path.
    pub(crate) batches: u64,
}

/// Per-stage attribution profiler: bounded-memory wall and simulated-time
/// histograms for each [`BatchStage`] of the batch loop, plus a
/// self-measurement of its own cost.
///
/// The hot loop never touches the recorder: stage durations accumulate
/// into plain stack arrays (`pending_*`), fold into local
/// [`HistogramSummary`]s once per batch, and merge into the worker's
/// recorder once per epoch ([`Recorder::histogram_merge`]) — so the
/// steady-state cost per batch is a handful of `Instant` reads and eight
/// histogram folds. That cost is itself measured: `finish_batch` times its
/// own bookkeeping and adds a calibrated per-read cost for every timestamp
/// the loop took, accumulating `overhead_secs` (exported as the
/// `telemetry.overhead_secs` gauge; the pipeline bench asserts it stays
/// under 2% of hot-path wall time).
///
/// Wall attribution is from the worker main thread's perspective: `fetch`
/// is assembly + embedding read (or, for a prefetched batch, the time to
/// acquire it — stall + steal-back); `write_back` includes the rank-order
/// rendezvous that serializes it; `sync` is the dense collective.
/// Simulated attribution follows the cost model's charges: `fetch` = the
/// embedding read's comm seconds, `write_back` = the gradient write-back's
/// comm seconds, `compute` = the batch's compute charge, `sync` = the
/// dense-sync charge (metadata stays in `time.meta_comm_secs`).
pub struct StageProfiler {
    wall: [HistogramSummary; 4],
    sim: [HistogramSummary; 4],
    pending_wall: [f64; 4],
    pending_sim: [f64; 4],
    overhead_secs: f64,
    /// Calibrated wall cost of one `Instant::now()` read.
    timer_read_secs: f64,
    /// Timer reads taken by the loop since the last `finish_batch`.
    stamps: u32,
    /// Pre-rendered metric names, so the flush never formats.
    wall_names: [String; 4],
    sim_names: [String; 4],
}

impl StageProfiler {
    /// A profiler with a freshly calibrated timer cost (a few µs, once per
    /// worker per run).
    pub fn new() -> Self {
        let metric = |stage: &str, kind: &str| {
            format!("{}{stage}.{kind}_secs", names::PIPELINE_STAGE_PREFIX)
        };
        let stage_names = names::PIPELINE_STAGES;
        Self {
            wall: [HistogramSummary::empty(); 4],
            sim: [HistogramSummary::empty(); 4],
            pending_wall: [0.0; 4],
            pending_sim: [0.0; 4],
            overhead_secs: 0.0,
            timer_read_secs: Self::calibrate_timer(),
            stamps: 0,
            wall_names: stage_names.map(|s| metric(s, "wall")),
            sim_names: stage_names.map(|s| metric(s, "sim")),
        }
    }

    /// Measures the cost of one `Instant::now()` by timing a short burst.
    fn calibrate_timer() -> f64 {
        const READS: u32 = 512;
        let t0 = Instant::now();
        for _ in 0..READS {
            std::hint::black_box(Instant::now());
        }
        t0.elapsed().as_secs_f64() / f64::from(READS)
    }

    fn slot(stage: BatchStage) -> usize {
        match stage {
            BatchStage::Fetch => 0,
            BatchStage::Compute => 1,
            BatchStage::Push => 2,
            BatchStage::Sync | BatchStage::Idle => 3,
        }
    }

    /// Takes a stage-start timestamp (counted toward the overhead).
    pub fn start(&mut self) -> Instant {
        self.stamps += 1;
        Instant::now()
    }

    /// Credits the wall time since `since` to `stage`.
    pub fn wall(&mut self, stage: BatchStage, since: Instant) {
        self.stamps += 1;
        self.pending_wall[Self::slot(stage)] += since.elapsed().as_secs_f64();
    }

    /// Credits `secs` of simulated time to `stage`.
    pub fn sim(&mut self, stage: BatchStage, secs: f64) {
        self.pending_sim[Self::slot(stage)] += secs;
    }

    /// The simulated seconds credited so far this batch, in stage order
    /// `[fetch, compute, write_back, sync]` (feeds the per-stage trace
    /// spans).
    pub fn pending_sim(&self) -> [f64; 4] {
        self.pending_sim
    }

    /// Folds the batch's pending stage times into the histograms and
    /// charges the profiler's own bookkeeping to `overhead_secs`.
    pub fn finish_batch(&mut self) {
        let t0 = Instant::now();
        for i in 0..4 {
            self.wall[i].observe(self.pending_wall[i]);
            self.sim[i].observe(self.pending_sim[i]);
            self.pending_wall[i] = 0.0;
            self.pending_sim[i] = 0.0;
        }
        // Own cost: this fold, its two timer reads, and every stage stamp
        // the loop took since the previous fold.
        self.overhead_secs += t0.elapsed().as_secs_f64()
            + f64::from(self.stamps + 2) * self.timer_read_secs;
        self.stamps = 0;
    }

    /// Merges the accumulated histograms into `recorder` and resets them
    /// (called once per epoch; merges are additive across epochs and
    /// workers).
    pub fn flush(&mut self, recorder: &dyn Recorder) {
        for i in 0..4 {
            recorder.histogram_merge(&self.wall_names[i], &self.wall[i]);
            recorder.histogram_merge(&self.sim_names[i], &self.sim[i]);
            self.wall[i] = HistogramSummary::empty();
            self.sim[i] = HistogramSummary::empty();
        }
    }

    /// Wall seconds the profiler has charged to itself so far.
    pub fn overhead_secs(&self) -> f64 {
        self.overhead_secs
    }
}

impl Default for StageProfiler {
    fn default() -> Self {
        Self::new()
    }
}

/// Owns a worker's [`StepCtx`] slot pool and hands slots to the stage loop:
/// `acquire` an `Idle` slot for a new batch, `recycle` it after Sync. Depth
/// is fixed at construction ([`TrainerConfig::pipeline_depth`]); the loop
/// never holds more than two slots live (current + one prefetch in flight),
/// so extra depth is spare capacity, not extra lookahead.
pub struct PipelineDriver {
    depth: usize,
    free: Vec<StepCtx>,
}

impl PipelineDriver {
    pub(crate) fn new(slots: Vec<StepCtx>) -> Self {
        let depth = slots.len();
        debug_assert!(depth >= 1, "pipeline needs at least one slot");
        Self { depth, free: slots }
    }

    /// The configured pipeline depth (total slot count).
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn acquire(&mut self) -> StepCtx {
        self.free
            .pop()
            .expect("pipeline slots exhausted: acquire without matching recycle")
    }

    fn recycle(&mut self, ctx: StepCtx) {
        debug_assert!(self.free.len() < self.depth, "recycled a foreign slot");
        self.free.push(ctx);
    }

    fn into_slots(self) -> Vec<StepCtx> {
        debug_assert_eq!(self.free.len(), self.depth, "pipeline slot leaked");
        self.free
    }
}

/// All the borrowed context one worker needs for one epoch.
pub(crate) struct WorkerEpoch<'a, 'b, 'd> {
    pub(crate) w: usize,
    pub(crate) shard: &'a [u32],
    pub(crate) dataset: &'d CtrDataset,
    pub(crate) emb: &'a mut (dyn EmbeddingWorker + 'b),
    pub(crate) model: &'a mut CtrModel,
    pub(crate) slots: &'a mut Vec<StepCtx>,
    pub(crate) pstats: &'a mut PipelineStats,
    pub(crate) pool: Option<Arc<GemmPool>>,
    pub(crate) clock: &'a mut SimClock,
    pub(crate) cursor: &'a mut usize,
    pub(crate) iters: usize,
    pub(crate) epoch: usize,
    pub(crate) cfg: &'a TrainerConfig,
    pub(crate) strategy: &'a StrategyConfig,
    pub(crate) topology: &'a Topology,
    pub(crate) cost: &'a CostModel,
    pub(crate) group: &'a AllReduceGroup,
    pub(crate) ledger: &'a TrafficLedger,
    pub(crate) dense_bytes: u64,
    pub(crate) flops_per_sample: f64,
    pub(crate) samples: &'a AtomicU64,
    pub(crate) loss_sum_micro: &'a AtomicU64,
    pub(crate) loss_batches: &'a AtomicU64,
    pub(crate) compute_scale: f64,
    pub(crate) batch_size: usize,
    pub(crate) tracer: Option<&'a TraceCollector>,
    pub(crate) auditor: Option<&'a ProtocolAuditor>,
    pub(crate) table: &'a ShardedTable,
    pub(crate) partition: &'a Partition,
    pub(crate) faults: &'a FaultSchedule,
    pub(crate) fstate: &'a mut WorkerFaultState,
    pub(crate) image: Option<Arc<CheckpointImage>>,
    pub(crate) nonfinite: &'a AtomicU64,
    pub(crate) recorder: Arc<dyn Recorder>,
    pub(crate) profiler: &'a mut StageProfiler,
}

/// Runs one worker's epoch, dispatching on the configured depth: depth 1 is
/// the classic sequential schedule, depth >= 2 the prefetching pipeline.
pub(crate) fn run_worker_epoch(ctx: WorkerEpoch<'_, '_, '_>) {
    if ctx.cfg.pipeline_depth >= 2 {
        run_epoch_pipelined(ctx)
    } else {
        run_epoch_sequential(ctx)
    }
}

/// A prefetch request: the worker's embedding handle travels into the
/// [`PrefetchCell`] together with the slot it fills, and both come back in
/// [`FetchDone`] — exclusive ownership ping-pongs, nothing is shared.
struct FetchJob<'a, 'b> {
    emb: &'a mut (dyn EmbeddingWorker + 'b),
    ctx: StepCtx,
}

struct FetchDone<'a, 'b> {
    emb: &'a mut (dyn EmbeddingWorker + 'b),
    ctx: StepCtx,
    /// Wall seconds the fetch took *on the companion thread*; 0.0 when the
    /// main thread stole the job back and ran it inline.
    fetch_secs: f64,
}

/// The work-stealing handoff between a worker's main thread and its fetch
/// companion. The main thread publishes the next batch's fetch job right
/// after the write-back rendezvous; the companion claims it whenever the OS
/// schedules it — typically while the main thread is blocked inside the
/// dense collective, which is exactly the window the prefetch is meant to
/// fill. If the companion has *not* claimed the job by the time the main
/// thread needs the batch, the main thread steals it back and runs the
/// fetch inline: the degenerate case costs one uncontended mutex
/// acquisition instead of a cross-thread handoff (park + unpark), which is
/// what keeps depth >= 2 from regressing on a saturated host.
///
/// Determinism: which thread executes the fetch is OS-scheduling dependent,
/// but the fetch itself is the same pure read either way (the table is
/// quiescent between the write-back rendezvous and the next reads-done
/// fence). `StepCtx::prefetched` therefore records *issue* order — set when
/// the job is published, deterministic — and only the wall-clock fields of
/// [`PipelineStats`] (`stall_secs`, `prefetch_secs`) record what the
/// scheduler actually did.
struct PrefetchCell<'a, 'b> {
    state: Mutex<PrefetchState<'a, 'b>>,
    ready: Condvar,
}

enum PrefetchState<'a, 'b> {
    /// No job in flight.
    Idle,
    /// A job is published and unclaimed. The main thread may always steal
    /// it back; the companion may claim it only when it was `offered`
    /// (hosts with spare cores) — otherwise a companion that happens to be
    /// awake (fresh spawn, spurious wakeup) would grab work the main
    /// thread is better off running inline.
    Published { job: FetchJob<'a, 'b>, offered: bool },
    /// The companion claimed the job and is fetching.
    Claimed,
    /// The companion finished; the result waits for the main thread.
    Done(FetchDone<'a, 'b>),
    /// Epoch over — the companion exits.
    Shutdown,
}

/// Runs one fetch job to completion: sample-slice assembly plus the batched
/// embedding read. Shared by the companion thread and the steal-back path so
/// both executors run byte-for-byte the same read.
fn execute_fetch<'a, 'b, 'd>(
    job: FetchJob<'a, 'b>,
    dataset: &'d CtrDataset,
    fields: usize,
    dim: usize,
    slices: &mut Vec<&'d [u32]>,
) -> FetchDone<'a, 'b> {
    let FetchJob { emb, mut ctx } = job;
    slices.clear();
    slices.extend(ctx.batch_idx.iter().map(|&i| dataset.sample(i as usize)));
    if !slices.is_empty() {
        ctx.input.reset(slices.len(), fields * dim);
        ctx.read_report = emb.read_batch(slices, ctx.input.data_mut());
    } else {
        ctx.read_report = ReadReport::default();
    }
    FetchDone { emb, ctx, fetch_secs: 0.0 }
}

/// The companion thread body: claim published jobs until shutdown. It only
/// ever touches state it exclusively owns (the claimed job's emb + slot).
fn companion_loop(
    cell: &PrefetchCell<'_, '_>,
    dataset: &CtrDataset,
    fields: usize,
    dim: usize,
    batch_size: usize,
) {
    let mut slices: Vec<&[u32]> = Vec::with_capacity(batch_size);
    loop {
        let job = {
            let mut st = cell.state.lock().expect("prefetch cell poisoned");
            loop {
                match &*st {
                    PrefetchState::Published { offered: true, .. } => {
                        let PrefetchState::Published { job, .. } =
                            std::mem::replace(&mut *st, PrefetchState::Claimed)
                        else {
                            unreachable!()
                        };
                        break job;
                    }
                    PrefetchState::Shutdown => return,
                    _ => st = cell.ready.wait(st).expect("prefetch cell poisoned"),
                }
            }
        };
        let t0 = Instant::now();
        let mut done = execute_fetch(job, dataset, fields, dim, &mut slices);
        done.fetch_secs = t0.elapsed().as_secs_f64();
        let mut st = cell.state.lock().expect("prefetch cell poisoned");
        *st = PrefetchState::Done(done);
        cell.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Depth 1: the classic sequential schedule.
// ---------------------------------------------------------------------------

fn run_epoch_sequential(ctx: WorkerEpoch<'_, '_, '_>) {
    let WorkerEpoch {
        w,
        shard,
        dataset,
        emb,
        model,
        slots,
        pstats: _,
        pool,
        clock,
        cursor,
        iters,
        epoch,
        cfg,
        strategy,
        topology,
        cost,
        group,
        ledger,
        dense_bytes,
        flops_per_sample,
        samples,
        loss_sum_micro,
        loss_batches,
        compute_scale,
        batch_size,
        tracer,
        auditor,
        table,
        partition,
        faults,
        fstate,
        image,
        nonfinite,
        recorder,
        profiler,
    } = ctx;
    let dim = cfg.dim;
    let fields = dataset.num_fields;
    let is_bsp = matches!(strategy.dense_sync, DenseSync::AllReduce)
        && matches!(strategy.embed_home, EmbedHome::Gpu);
    let epoch_start = clock.now();

    // One slot carries every per-batch buffer; reused across thousands of
    // iterations, so the hot loop allocates nothing once warm.
    let slot = slots.first_mut().expect("trainer always allocates slots");
    let mut sample_slices: Vec<&[u32]> = Vec::with_capacity(batch_size);
    let mut dense_grads: Vec<f32> = Vec::new();
    // Stateless SGD on the replicated dense parameters (slot-keyed so a
    // momentum variant could slot in without touching the loop).
    let mut sgd = Sgd::new(cfg.dense_lr);
    // Dense-gradient wire transport. Per-epoch so its error-feedback
    // residuals reset at the same barrier replica resync does — a
    // checkpoint-resumed run bit-matches an uninterrupted one.
    let mut dense_quant = DenseQuantizer::new(cfg.sync_format, cfg.sync_error_feedback);
    let row_bytes = cfg.sync_format.row_wire_bytes(dim);

    for _ in 0..iters {
        // ---- Injected faults (iteration boundary). -------------------------
        process_due_faults(
            w, faults, fstate, clock, &recorder, tracer, image.as_deref(), table, partition,
            emb, cost, row_bytes,
        );

        // Phase fence: a crash rollback must be fully visible before any
        // peer reads the shared table this iteration, or same-seed runs
        // diverge on the rollback/read race. Pure thread rendezvous — no
        // simulated time, no data.
        group.barrier();

        // Publish the worker's simulated position so instants emitted deeper
        // in the stack (protocol decisions, traffic charges) land at this
        // batch's timestamp on the timeline.
        if let Some(t) = tracer {
            t.set_worker_time(w, clock.now());
        }
        let batch_start = clock.now();
        // ---- Assemble the batch (wrap-around over the local shard). --------
        let t_fetch = profiler.start();
        assemble_batch(slot, shard, cursor, batch_size);
        slot.advance_to(BatchStage::Fetch);
        sample_slices.clear();
        sample_slices.extend(slot.batch_idx.iter().map(|&i| dataset.sample(i as usize)));
        let actual = sample_slices.len();

        let mut have_grad = false;
        if actual > 0 {
            // ---- Embedding read under bounded asynchrony. ------------------
            slot.input.reset(actual, fields * dim);
            slot.read_report = emb.read_batch(&sample_slices, slot.input.data_mut());
        }
        profiler.wall(BatchStage::Fetch, t_fetch);
        slot.advance_to(BatchStage::Compute);
        if actual > 0 {
            // ---- Dense forward/backward (real math, blocked kernels). -----
            let t_compute = profiler.start();
            dense_compute(
                slot, model, dataset, pool.as_ref(), loss_sum_micro, loss_batches, nonfinite,
                &recorder,
            );
            profiler.wall(BatchStage::Compute, t_compute);
            have_grad = true;
        }

        // Phase fence: every worker's reads drain before any gradient lands
        // in the shared table, so a read never races a peer's same-iteration
        // write-back. The write-backs themselves then run in rank order, one
        // worker per sub-round: concurrent updates to a shared row do not
        // commute under Adagrad (the g² accumulator changes the next step),
        // so a canonical serialization is what makes same-seed runs — and
        // checkpoint resumes — reproducible. None of this touches simulated
        // time; it only pins which of the protocol's legal interleavings the
        // host threads realize.
        group.barrier();
        slot.advance_to(BatchStage::Push);
        let t_push = profiler.start();
        let mut up_report = None;
        for rank in 0..group.num_participants() {
            if rank == w && have_grad {
                // ---- Embedding gradient write-back. ------------------------
                up_report = Some(emb.apply_gradients(
                    &sample_slices,
                    slot.grad_input.data(),
                    &cfg.embed_opt,
                ));
            }
            group.barrier();
        }
        profiler.wall(BatchStage::Push, t_push);

        if let Some(up_report) = &up_report {
            // ---- Charge simulated time. ------------------------------------
            charge_batch(
                w, actual, fields, compute_scale, flops_per_sample, strategy, cost, clock,
                ledger, tracer, samples, &slot.read_report, up_report, row_bytes, 0.0, false,
                profiler,
            );
        }

        // ---- Dense synchronisation. ----------------------------------------
        slot.advance_to(BatchStage::Sync);
        let t_sync = profiler.start();
        let sync_t = sync_dense(
            w, model, &mut dense_grads, &mut dense_quant, &mut sgd, cfg.grad_clip, strategy,
            topology, cost, group, ledger, clock, tracer, dense_bytes, is_bsp, false,
        );
        profiler.wall(BatchStage::Sync, t_sync);
        profiler.sim(BatchStage::Sync, sync_t);
        slot.finish();

        if let Some(t) = tracer {
            trace_stage_spans(t, w, batch_start, profiler.pending_sim());
            t.worker_span(
                w,
                names::TRACE_BATCH,
                batch_start,
                clock.now() - batch_start,
                &[("samples", Json::U64(actual as u64))],
            );
        }
        profiler.finish_batch();

        // Strict audit: agree collectively on whether the auditor tripped so
        // every worker leaves at the same iteration boundary (a unilateral
        // break would strand its peers in the next collective).
        if let Some(a) = auditor {
            if group.agree(a.is_tripped()) {
                break;
            }
        }
    }

    if let Some(t) = tracer {
        t.worker_span(
            w,
            names::TRACE_EPOCH,
            epoch_start,
            clock.now() - epoch_start,
            &[("epoch", Json::U64(epoch as u64))],
        );
    }
}

// ---------------------------------------------------------------------------
// Depth >= 2: the prefetching pipeline.
// ---------------------------------------------------------------------------

fn run_epoch_pipelined(ctx: WorkerEpoch<'_, '_, '_>) {
    let WorkerEpoch {
        w,
        shard,
        dataset,
        emb,
        model,
        slots,
        pstats,
        pool,
        clock,
        cursor,
        iters,
        epoch,
        cfg,
        strategy,
        topology,
        cost,
        group,
        ledger,
        dense_bytes,
        flops_per_sample,
        samples,
        loss_sum_micro,
        loss_batches,
        compute_scale,
        batch_size,
        tracer,
        auditor,
        table,
        partition,
        faults,
        fstate,
        image,
        nonfinite,
        recorder,
        profiler,
    } = ctx;
    let dim = cfg.dim;
    let fields = dataset.num_fields;
    let is_bsp = matches!(strategy.dense_sync, DenseSync::AllReduce)
        && matches!(strategy.embed_home, EmbedHome::Gpu);
    let epoch_start = clock.now();
    // Whether *any* worker can fault this run decides — uniformly across
    // workers, so the collective schedules agree — whether the per-iteration
    // fault fence is needed at all.
    let have_faults =
        (0..group.num_participants()).any(|p| !faults.worker_faults(p).is_empty());

    // Pre-size the embedding scratch so the companion thread never grows
    // buffers mid-prefetch (allocation hint only, never correctness).
    emb.reserve_batch(batch_size, fields);
    let mut emb_slot = Some(emb);

    let mut driver = PipelineDriver::new(std::mem::take(slots));
    let mut sample_slices: Vec<&[u32]> = Vec::with_capacity(batch_size);
    let mut dense_grads: Vec<f32> = Vec::new();
    let mut sgd = Sgd::new(cfg.dense_lr);
    // Dense-gradient wire transport; per-epoch, exactly as in the
    // sequential schedule, so depths bit-match each other.
    let mut dense_quant = DenseQuantizer::new(cfg.sync_format, cfg.sync_error_feedback);
    let row_bytes = cfg.sync_format.row_wire_bytes(dim);
    // The previous iteration's dense-sync seconds: the window a prefetched
    // embedding read can hide behind on the simulated clock (the fetch
    // genuinely ran during that sync on the wall clock).
    let mut prev_sync_t = 0.0f64;

    let cell = PrefetchCell {
        state: Mutex::new(PrefetchState::Idle),
        ready: Condvar::new(),
    };
    // Wake the companion at publish time only when the host has cores to
    // spare beyond the worker main threads. On an oversubscribed host the
    // freshly-woken companion wins the scheduler's favor, claims the job,
    // and the main thread later blocks on it — a net loss over just running
    // the fetch inline, which the steal-back path does for free. The
    // companion still exists either way (and the shutdown wake still
    // reaches it); this gate only decides who is *likely* to run the fetch,
    // which the determinism contract is explicitly independent of.
    let spare_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        > group.num_participants();

    std::thread::scope(|scope| {
        let cell_ref = &cell;
        scope.spawn(move || companion_loop(cell_ref, dataset, fields, dim, batch_size));

        let mut inflight = false;
        for i in 0..iters {
            // ---- Acquire this iteration's slot (prefetched or inline). ----
            // Fetch wall time from the main thread's perspective: the stall
            // waiting on the companion, the steal-back inline read, or the
            // first iteration's inline fetch — whichever path ran.
            let t_fetch = profiler.start();
            let mut slot = if inflight {
                inflight = false;
                let done = {
                    let mut st = cell.state.lock().expect("prefetch cell poisoned");
                    if matches!(&*st, PrefetchState::Published { .. }) {
                        // The companion never took the job: steal it back
                        // and fetch inline — same thread the sequential
                        // schedule uses, no handoff, no waiting.
                        let PrefetchState::Published { job, .. } =
                            std::mem::replace(&mut *st, PrefetchState::Idle)
                        else {
                            unreachable!()
                        };
                        drop(st);
                        execute_fetch(job, dataset, fields, dim, &mut sample_slices)
                    } else {
                        // Claimed (or already done): wait for the companion.
                        let wait = Instant::now();
                        while !matches!(&*st, PrefetchState::Done(_)) {
                            st = cell.ready.wait(st).expect("prefetch cell poisoned");
                        }
                        pstats.stall_secs += wait.elapsed().as_secs_f64();
                        let PrefetchState::Done(done) =
                            std::mem::replace(&mut *st, PrefetchState::Idle)
                        else {
                            unreachable!()
                        };
                        pstats.prefetch_secs += done.fetch_secs;
                        if let Some(t) = tracer {
                            t.set_worker_time(w, clock.now());
                            t.worker_instant(
                                w,
                                names::TRACE_PIPELINE_PREFETCH,
                                &[("wall_secs", Json::F64(done.fetch_secs))],
                            );
                        }
                        done
                    }
                };
                pstats.prefetched += 1;
                emb_slot = Some(done.emb);
                done.ctx
            } else {
                // First iteration (or post-abort): fetch inline. The table
                // is quiescent at an iteration boundary, so this is the
                // same read the sequential schedule performs.
                let mut slot = driver.acquire();
                assemble_batch(&mut slot, shard, cursor, batch_size);
                slot.advance_to(BatchStage::Fetch);
                sample_slices.clear();
                sample_slices
                    .extend(slot.batch_idx.iter().map(|&i| dataset.sample(i as usize)));
                if !sample_slices.is_empty() {
                    slot.input.reset(sample_slices.len(), fields * dim);
                    let emb = emb_slot.as_deref_mut().expect("emb handle present");
                    slot.read_report = emb.read_batch(&sample_slices, slot.input.data_mut());
                }
                slot
            };
            profiler.wall(BatchStage::Fetch, t_fetch);
            pstats.batches += 1;
            if let Some(t) = tracer {
                t.set_worker_time(w, clock.now());
            }
            let batch_start = clock.now();
            // The write-back needs the sample slices regardless of where the
            // fetch ran; rebuilding them is a handful of pointer derefs.
            sample_slices.clear();
            sample_slices.extend(slot.batch_idx.iter().map(|&i| dataset.sample(i as usize)));
            let actual = sample_slices.len();

            // ---- Reads-done fence: all fetches (pre- or inline) precede ----
            // any same-iteration write-back, as in the sequential schedule.
            group.barrier();

            // ---- Dense compute on the slot's own tape. --------------------
            slot.advance_to(BatchStage::Compute);
            let mut have_grad = false;
            if actual > 0 {
                let t_compute = profiler.start();
                dense_compute(
                    &mut slot, model, dataset, pool.as_ref(), loss_sum_micro, loss_batches,
                    nonfinite, &recorder,
                );
                profiler.wall(BatchStage::Compute, t_compute);
                have_grad = true;
            }

            // ---- Write-back: token ring replaces the per-rank barriers. ---
            // Same canonical rank-ascending serialization, two rendezvous
            // (ring handoff + fence) instead of n + 1 full barriers.
            slot.advance_to(BatchStage::Push);
            let t_push = profiler.start();
            let up_report = {
                let emb = emb_slot.as_deref_mut().expect("emb handle present");
                group.in_rank_order(w, || {
                    have_grad.then(|| {
                        emb.apply_gradients(
                            &sample_slices,
                            slot.grad_input.data(),
                            &cfg.embed_opt,
                        )
                    })
                })
            };
            profiler.wall(BatchStage::Push, t_push);
            // ---- Writes-done ordering. ------------------------------------
            // Before any thread may *execute* the batch i+1 fetch, every
            // rank's ring turn must be complete — a low rank exits its turn
            // while higher ranks are still writing. Three cases:
            //  * auditing on: the abort vote below is a full rendezvous
            //    entered by each rank only after its ring turn, so
            //    return-from-vote already happens-after the last write;
            //  * no vote, no spare cores: the published job is never offered
            //    to the companion, so the fetch runs at steal-back time —
            //    after this iteration's dense collective, itself a full
            //    rendezvous past every ring turn;
            //  * no vote, spare cores: the companion may start fetching the
            //    moment the job is published, so an explicit barrier must
            //    order the publish after the last ring turn.
            // Injected faults keep the barrier unconditionally (rollbacks
            // below must be ordered against every peer's write-back).
            // None of these forms charges simulated time.
            if have_faults || (auditor.is_none() && spare_cores) {
                group.barrier();
            }

            // ---- Charge simulated time. -----------------------------------
            if let Some(up_report) = &up_report {
                let extra = if slot.prefetched { prev_sync_t } else { 0.0 };
                charge_batch(
                    w, actual, fields, compute_scale, flops_per_sample, strategy, cost,
                    clock, ledger, tracer, samples, &slot.read_report, up_report, row_bytes,
                    extra, slot.prefetched, profiler,
                );
            }

            // ---- Injected faults (skipped entirely on fault-free runs). ---
            if have_faults {
                process_due_faults(
                    w, faults, fstate, clock, &recorder, tracer, image.as_deref(), table,
                    partition, emb_slot.as_deref_mut().expect("emb handle present"), cost,
                    row_bytes,
                );
                // Rollback-visibility fence: no peer may prefetch (below)
                // until every rollback is complete.
                group.barrier();
            }

            // ---- Collective abort decision gates the next prefetch. -------
            let tripped = match auditor {
                Some(a) => group.agree(a.is_tripped()),
                None => false,
            };

            // ---- Issue the prefetch for batch i + 1. ----------------------
            // Safe: every worker has passed the writes-done fence (and the
            // fault fence), so the table holds exactly this iteration's
            // final state, and no peer can write batch i+1 gradients until
            // after the next reads-done fence.
            if !tripped && i + 1 < iters {
                let mut next = driver.acquire();
                assemble_batch(&mut next, shard, cursor, batch_size);
                next.advance_to(BatchStage::Fetch);
                // Issued ahead of consumption — deterministic, regardless of
                // which thread the scheduler ends up running the fetch on.
                next.prefetched = true;
                let job = FetchJob {
                    emb: emb_slot.take().expect("emb handle present"),
                    ctx: next,
                };
                let mut st = cell.state.lock().expect("prefetch cell poisoned");
                *st = PrefetchState::Published { job, offered: spare_cores };
                if spare_cores {
                    cell.ready.notify_one();
                }
                drop(st);
                inflight = true;
            }

            // ---- Dense sync: one fused collective under BSP. --------------
            slot.advance_to(BatchStage::Sync);
            let t_sync = profiler.start();
            prev_sync_t = sync_dense(
                w, model, &mut dense_grads, &mut dense_quant, &mut sgd, cfg.grad_clip,
                strategy, topology, cost, group, ledger, clock, tracer, dense_bytes, is_bsp,
                is_bsp,
            );
            profiler.wall(BatchStage::Sync, t_sync);
            profiler.sim(BatchStage::Sync, prev_sync_t);
            slot.finish();

            if let Some(t) = tracer {
                trace_stage_spans(t, w, batch_start, profiler.pending_sim());
                t.worker_span(
                    w,
                    names::TRACE_BATCH,
                    batch_start,
                    clock.now() - batch_start,
                    &[("samples", Json::U64(actual as u64))],
                );
            }
            profiler.finish_batch();
            driver.recycle(slot);
            if tripped {
                break;
            }
        }
        // Companion shutdown: flip the cell so its wait loop exits; the
        // scope join waits for it. No prefetch is ever in flight here (the
        // last iteration and the abort path both skip the issue).
        let mut st = cell.state.lock().expect("prefetch cell poisoned");
        *st = PrefetchState::Shutdown;
        cell.ready.notify_all();
    });

    *slots = driver.into_slots();

    if let Some(t) = tracer {
        t.worker_span(
            w,
            names::TRACE_EPOCH,
            epoch_start,
            clock.now() - epoch_start,
            &[("epoch", Json::U64(epoch as u64))],
        );
    }
}

// ---------------------------------------------------------------------------
// Shared stage bodies (both schedules run exactly this code).
// ---------------------------------------------------------------------------

/// Fills the slot's batch from the local shard, wrap-around over the
/// persistent cursor — always on the main thread, so issue order equals
/// cursor order at every depth.
fn assemble_batch(slot: &mut StepCtx, shard: &[u32], cursor: &mut usize, batch_size: usize) {
    let bs = batch_size.min(shard.len().max(1));
    slot.batch_idx.clear();
    if !shard.is_empty() {
        // (Degenerate empty-shard corner: skip math, still join
        // collectives so peers don't deadlock.)
        for _ in 0..bs {
            slot.batch_idx.push(shard[*cursor % shard.len()]);
            *cursor += 1;
        }
    }
    slot.read_report = ReadReport::default();
    slot.prefetched = false;
}

/// Dense forward/backward on the slot's tape — real math, blocked kernels,
/// optionally row-panel parallel under the worker's [`GemmPool`].
/// Everything between entry and `end_batch` reuses tape buffers — zero
/// allocations once warm (the `dense.*` gauges assert it).
#[allow(clippy::too_many_arguments)]
fn dense_compute(
    slot: &mut StepCtx,
    model: &mut CtrModel,
    dataset: &CtrDataset,
    pool: Option<&Arc<GemmPool>>,
    loss_sum_micro: &AtomicU64,
    loss_batches: &AtomicU64,
    nonfinite: &AtomicU64,
    recorder: &Arc<dyn Recorder>,
) {
    let StepCtx {
        batch_idx,
        labels,
        input,
        grad_logits,
        grad_input,
        tape,
        ..
    } = slot;
    let mut body = || {
        let dense_start = Instant::now();
        model.forward_tape(input, tape);
        labels.clear();
        labels.extend(batch_idx.iter().map(|&i| dataset.label(i as usize)));
        let batch_loss = bce_with_logits_into(tape.logits(), labels, grad_logits);
        if batch_loss.is_finite() {
            loss_sum_micro
                .fetch_add((batch_loss.max(0.0) as f64 * 1e6) as u64, Ordering::Relaxed);
            loss_batches.fetch_add(1, Ordering::Relaxed);
        } else {
            // `max(0.0)` on a NaN would silently yield 0.0 and bury the
            // divergence in the epoch's mean loss; count it instead.
            nonfinite.fetch_add(1, Ordering::Relaxed);
            recorder.counter_add(names::TRAIN_LOSS_NONFINITE, 1);
        }
        model.zero_grad();
        model.backward_tape(input, grad_logits, grad_input, tape);
        tape.dense_secs += dense_start.elapsed().as_secs_f64();
        tape.end_batch();
    };
    match pool {
        Some(p) => p.install(body),
        None => body(),
    }
}

/// Charges one batch's simulated time (compute, input pipeline, embedding
/// comm, metadata) and records its traffic. `extra_overlap` widens the
/// embedding read's hide-behind window by the previous iteration's
/// dense-sync seconds when the read was prefetched; the sequential schedule
/// passes `0.0, false` and is unchanged.
#[allow(clippy::too_many_arguments)]
fn charge_batch(
    w: usize,
    actual: usize,
    fields: usize,
    compute_scale: f64,
    flops_per_sample: f64,
    strategy: &StrategyConfig,
    cost: &CostModel,
    clock: &mut SimClock,
    ledger: &TrafficLedger,
    tracer: Option<&TraceCollector>,
    samples: &AtomicU64,
    read_report: &ReadReport,
    up_report: &UpdateReport,
    row_bytes: u64,
    extra_overlap: f64,
    prefetched: bool,
    profiler: &mut StageProfiler,
) {
    // The straggler factor scales arithmetic throughput, not the
    // fixed launch overhead (a slow accelerator still dispatches
    // kernels at normal latency).
    let flops = flops_per_sample * actual as f64;
    let compute_t = cost.compute.per_batch_overhead
        + (flops / cost.compute.flops_per_second) * compute_scale;
    clock.advance(TimeCategory::Compute, compute_t);
    profiler.sim(BatchStage::Compute, compute_t);

    // Input pipeline (overlapped behind compute).
    let input_bytes = (actual * fields * 4) as u64;
    clock.advance_overlapped(
        TimeCategory::HostIo,
        cost.link_transfer_time(LinkClass::HostPcie, input_bytes),
        compute_t,
    );

    let comm = charge_embedding_comm(
        w, strategy, cost, read_report, up_report, row_bytes, tracer, clock.now(),
    );
    let embed_t = comm.read + comm.write_back;
    let meta_t = comm.meta;
    profiler.sim(BatchStage::Fetch, comm.read);
    profiler.sim(BatchStage::Push, comm.write_back);
    let window = if strategy.overlap { compute_t } else { 0.0 } + extra_overlap;
    if strategy.overlap || prefetched {
        clock.advance_overlapped(TimeCategory::EmbedComm, embed_t, window);
    } else {
        clock.advance(TimeCategory::EmbedComm, embed_t);
    }
    clock.advance(TimeCategory::MetaComm, meta_t);

    ledger.record(
        w,
        TrafficClass::EmbedData,
        read_report.data_bytes + up_report.data_bytes,
        read_report.messages + up_report.messages,
    );
    ledger.record(
        w,
        TrafficClass::KeysClocks,
        read_report.meta_bytes + up_report.meta_bytes,
        read_report.messages + up_report.messages,
    );
    samples.fetch_add(actual as u64, Ordering::Relaxed);
}

/// Dense gradient synchronisation: mean-AllReduce, clip, SGD step, charges,
/// and the BSP clock barrier. Returns the dense-sync seconds charged (the
/// next iteration's prefetch overlap window).
///
/// `fused == false` is the sequential schedule verbatim: plain
/// `allreduce_mean`, then charges, then a separate f32 `allreduce_max`
/// barrier under BSP. `fused == true` (pipelined BSP) charges first and
/// then issues **one** [`AllReduceGroup::fused_mean_max`] whose max lane
/// carries the post-charge clock — the gradient mean is bit-identical (same
/// value-sorted summation, same `1/n` scaling); only the barrier's f64
/// (vs f32) clock precision differs, which never feeds back into the math
/// on fault-free runs.
#[allow(clippy::too_many_arguments)]
fn sync_dense(
    w: usize,
    model: &mut CtrModel,
    dense_grads: &mut Vec<f32>,
    quant: &mut DenseQuantizer,
    sgd: &mut Sgd,
    grad_clip: Option<f32>,
    strategy: &StrategyConfig,
    topology: &Topology,
    cost: &CostModel,
    group: &AllReduceGroup,
    ledger: &TrafficLedger,
    clock: &mut SimClock,
    tracer: Option<&TraceCollector>,
    dense_bytes: u64,
    is_bsp: bool,
    fused: bool,
) -> f64 {
    model.flatten_grads_into(dense_grads);
    // The local gradient crosses the wire once per collective; transporting
    // it before the reduction (identical in the fused and plain paths)
    // keeps losses depth-invariant under every format.
    quant.transport(dense_grads);
    if fused {
        debug_assert!(is_bsp, "the fused collective is a BSP barrier");
        let t = cost.allreduce_time_at(dense_bytes, clock.now());
        trace_allreduce_span(tracer, topology, w, clock.now(), t, dense_bytes);
        clock.advance(TimeCategory::AllReduceComm, t);
        ledger.record(w, TrafficClass::AllReduce, allreduce_bytes(dense_bytes, topology), 1);
        let (max_clock, _) = group.fused_mean_max(dense_grads, clock.now(), false);
        clip_and_step(model, dense_grads, sgd, grad_clip);
        clock.wait_until(max_clock);
        return t;
    }

    group.allreduce_mean(dense_grads);
    clip_and_step(model, dense_grads, sgd, grad_clip);

    let t = match strategy.dense_sync {
        DenseSync::AllReduce => {
            let t = cost.allreduce_time_at(dense_bytes, clock.now());
            trace_allreduce_span(tracer, topology, w, clock.now(), t, dense_bytes);
            clock.advance(TimeCategory::AllReduceComm, t);
            ledger.record(w, TrafficClass::AllReduce, allreduce_bytes(dense_bytes, topology), 1);
            t
        }
        DenseSync::PsAsync => {
            // Push gradients + pull parameters over the shared host link.
            let n = topology.num_workers() as u64;
            let t = cost.link_transfer_time(LinkClass::HostPcie, 2 * dense_bytes * n);
            if let Some(tr) = tracer {
                tr.link_span(
                    LinkClass::HostPcie.label(),
                    names::TRACE_ALLREDUCE,
                    clock.now(),
                    t,
                    &[("worker", Json::U64(w as u64)), ("bytes", Json::U64(2 * dense_bytes))],
                );
            }
            clock.advance(TimeCategory::AllReduceComm, t);
            ledger.record(w, TrafficClass::AllReduce, 2 * dense_bytes, 2);
            t
        }
    };

    // BSP: the AllReduce is a barrier in simulated time too.
    if is_bsp {
        let mut m = [clock.now() as f32];
        group.allreduce_max(&mut m);
        clock.wait_until(m[0] as f64);
    } else {
        // ASP systems do not barrier; simulated clocks drift freely,
        // but the OS threads still rendezvous at the collective above
        // (math-level combining without a time barrier).
    }
    t
}

/// Global-norm clip, then one SGD step on the (replicated) dense
/// parameters — same math as the former inline loop (`p -= lr·g`), routed
/// through the optimizer abstraction's slot protocol.
fn clip_and_step(
    model: &mut CtrModel,
    dense_grads: &mut [f32],
    sgd: &mut Sgd,
    grad_clip: Option<f32>,
) {
    if let Some(clip) = grad_clip {
        let norm = dense_grads.iter().map(|g| g * g).sum::<f32>().sqrt();
        if norm > clip {
            let scale = clip / norm;
            for g in dense_grads.iter_mut() {
                *g *= scale;
            }
        }
    }
    model.load_grads(dense_grads);
    sgd.begin_step();
    let mut slot = 0usize;
    model.visit_params(&mut |p, g| {
        sgd.update(slot, p, g);
        slot += 1;
    });
}

/// The ring's bottleneck hop names the AllReduce span's track.
fn trace_allreduce_span(
    tracer: Option<&TraceCollector>,
    topology: &Topology,
    w: usize,
    start: f64,
    t: f64,
    dense_bytes: u64,
) {
    if let Some(tr) = tracer {
        let n = topology.num_workers();
        let label = if n > 1 {
            topology.link(w, (w + 1) % n).label()
        } else {
            LinkClass::Local.label()
        };
        tr.link_span(
            label,
            names::TRACE_ALLREDUCE,
            start,
            t,
            &[("worker", Json::U64(w as u64)), ("bytes", Json::U64(dense_bytes))],
        );
    }
}

/// Consumes every fault event due at the worker's current simulated time.
/// Faults fire inside the affected worker's own thread, between
/// collectives: the worker never abandons a rendezvous, so peers are
/// never stranded — they simply absorb the downtime through the BSP
/// simulated-time barrier.
#[allow(clippy::too_many_arguments)]
fn process_due_faults(
    w: usize,
    faults: &FaultSchedule,
    fstate: &mut WorkerFaultState,
    clock: &mut SimClock,
    recorder: &Arc<dyn Recorder>,
    tracer: Option<&TraceCollector>,
    image: Option<&CheckpointImage>,
    table: &ShardedTable,
    partition: &Partition,
    emb: &mut dyn EmbeddingWorker,
    cost: &CostModel,
    row_bytes: u64,
) {
    while let Some(f) = faults.worker_faults(w).get(fstate.next) {
        if f.at > clock.now() {
            break;
        }
        fstate.next += 1;
        match f.kind {
            WorkerFaultKind::Stall { duration } => {
                let start = clock.now();
                clock.advance(TimeCategory::Fault, duration);
                fstate.stall_secs += duration;
                recorder.counter_add(names::FAULT_STALLS, 1);
                recorder.gauge_set(names::FAULT_STALL_SECS, fstate.stall_secs);
                if let Some(t) = tracer {
                    t.worker_span(
                        w,
                        names::TRACE_FAULT_STALL,
                        start,
                        duration,
                        &[("duration_secs", Json::F64(duration))],
                    );
                }
            }
            WorkerFaultKind::Crash => {
                let crash_time = clock.now();
                if let Some(t) = tracer {
                    t.set_worker_time(w, crash_time);
                    t.worker_instant(w, names::TRACE_FAULT_CRASH, &[]);
                }
                let image = image.expect("crash schedules always capture a checkpoint image");
                // The device's state is gone. Roll this worker's primary
                // rows back to the checkpoint image (clocks move
                // backwards; peers' saturating gap math reads them as
                // fresh, so the staleness invariant holds), then discard
                // worker-local pendings and re-prime replicas.
                let dim = table.dim();
                let zero_accum = vec![0.0f32; dim];
                let roll_accums = table.has_optimizer_state();
                let mut lost = 0u64;
                let mut rolled = 0u64;
                for e in 0..table.num_rows() as u32 {
                    if partition.primary_of(e) != w as u32 {
                        continue;
                    }
                    let cur = table.clock(e);
                    let ck = image.clocks[e as usize];
                    if cur != ck {
                        table.restore_row(
                            e,
                            &image.values[e as usize * dim..(e as usize + 1) * dim],
                            ck,
                        );
                        // Optimizer state rolls back with the values it
                        // produced (a `None` capture means it was zero).
                        if roll_accums {
                            table.restore_accum(
                                e,
                                image.accums.as_ref().map_or(&zero_accum[..], |a| {
                                    &a[e as usize * dim..(e as usize + 1) * dim]
                                }),
                            );
                        }
                        rolled += 1;
                        lost += cur.saturating_sub(ck);
                    }
                }
                let refreshed = emb.recover_from_crash();
                // Recovery cost: restart, restore this worker's shard of
                // the image over the host link, re-fetch refreshed
                // replicas from peers, and replay the work done since the
                // image was captured.
                let n_workers = cost.topology.num_workers() as u64;
                let restore_t = cost
                    .link_transfer_time(LinkClass::HostPcie, image.bytes / n_workers.max(1));
                let refresh_t =
                    mean_link_time(w, cost, refreshed.saturating_mul(row_bytes));
                let replay_t = (crash_time - image.sim_times[w]).max(0.0);
                let recovery_t = faults.restart_overhead() + restore_t + refresh_t + replay_t;
                clock.advance(TimeCategory::Fault, recovery_t);
                fstate.recovery_secs += recovery_t;
                recorder.counter_add(names::FAULT_CRASHES, 1);
                recorder.counter_add(names::FAULT_LOST_UPDATES, lost);
                recorder.counter_add(names::FAULT_RESTORED_ROWS, rolled + refreshed);
                recorder.gauge_set(names::FAULT_RECOVERY_SECS, fstate.recovery_secs);
                if let Some(t) = tracer {
                    t.worker_span(
                        w,
                        names::TRACE_FAULT_RECOVERY,
                        crash_time,
                        recovery_t,
                        &[
                            ("lost_updates", Json::U64(lost)),
                            ("restored_rows", Json::U64(rolled + refreshed)),
                        ],
                    );
                }
            }
        }
    }
}

/// Ring AllReduce wire bytes: `2·(N−1)/N · payload` per worker.
pub(crate) fn allreduce_bytes(dense_bytes: u64, topology: &Topology) -> u64 {
    let n = topology.num_workers() as u64;
    if n <= 1 {
        0
    } else {
        2 * (n - 1) * dense_bytes / n
    }
}

/// One batch's embedding-communication seconds, split by direction so the
/// stage profiler can attribute them: `read` belongs to the Fetch stage,
/// `write_back` to Push, `meta` to neither (it stays `time.meta_comm`).
/// The total charge is exactly `read + write_back` — the split never
/// changes what the clock advances by.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EmbedCommTimes {
    pub(crate) read: f64,
    pub(crate) write_back: f64,
    pub(crate) meta: f64,
}

/// Converts the per-source byte breakdowns into per-direction embedding
/// and metadata seconds ([`EmbedCommTimes`]) for worker `w` under the given
/// strategy. When a tracer is attached, each per-peer transfer also becomes
/// a `trace.link.transfer` span on the link-class track, laid out
/// sequentially from `start_secs`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn charge_embedding_comm(
    w: usize,
    strategy: &StrategyConfig,
    cost: &CostModel,
    read: &ReadReport,
    up: &UpdateReport,
    row_bytes: u64,
    tracer: Option<&TraceCollector>,
    start_secs: f64,
) -> EmbedCommTimes {
    match strategy.embed_home {
        EmbedHome::CpuPs => {
            // Every lookup/update crosses the host link, regardless of the
            // GPU partition: charge the full working set. The parameter
            // server's host link is a *shared* resource: N workers pulling
            // simultaneously each see 1/N of its bandwidth — this contention
            // is precisely why the paper's CPU-PS baselines (TF, Parallax)
            // fall behind GPU model parallelism (Figure 7).
            let n = cost.topology.num_workers() as u64;
            let lookups = read.lookups();
            let updates = up.updates();
            let dim_bytes = if lookups + updates > 0 {
                // data_bytes only counts remote rows; reconstruct full rows
                // from counts via bytes-per-row of the remote ones, falling
                // back to the configured wire size when everything was local.
                estimate_row_bytes(read, up, row_bytes)
            } else {
                0
            };
            let total_bytes = (lookups + updates) * dim_bytes * n;
            let t = cost.link_transfer_time(LinkClass::HostPcie, total_bytes);
            if let Some(tr) = tracer {
                if total_bytes > 0 {
                    tr.link_span(
                        LinkClass::HostPcie.label(),
                        names::TRACE_LINK_TRANSFER,
                        start_secs,
                        t,
                        &[("worker", Json::U64(w as u64)), ("bytes", Json::U64(total_bytes))],
                    );
                }
            }
            let meta_bytes = (lookups + updates) * 12 * n;
            let mt = cost.link_transfer_time(LinkClass::HostPcie, meta_bytes);
            // The shared-link charge was computed over the combined working
            // set; apportion it by row count for stage attribution only
            // (lookups are Fetch work, updates are Push work).
            let read_frac = if lookups + updates > 0 {
                lookups as f64 / (lookups + updates) as f64
            } else {
                0.0
            };
            EmbedCommTimes {
                read: t * read_frac,
                write_back: t * (1.0 - read_frac),
                meta: mt,
            }
        }
        EmbedHome::Gpu => {
            let mut t = 0.0;
            for (src, &bytes) in read.data_bytes_by_src.iter().enumerate() {
                if bytes > 0 {
                    let dt = cost.transfer_time_at(w, src, bytes, start_secs + t);
                    if let Some(tr) = tracer {
                        tr.link_span(
                            cost.topology.link(w, src).label(),
                            names::TRACE_LINK_TRANSFER,
                            start_secs + t,
                            dt,
                            &[
                                ("dir", Json::from("read")),
                                ("worker", Json::U64(w as u64)),
                                ("peer", Json::U64(src as u64)),
                                ("bytes", Json::U64(bytes)),
                            ],
                        );
                    }
                    t += dt;
                }
            }
            let read_t = t;
            for (dst, &bytes) in up.data_bytes_by_dst.iter().enumerate() {
                if bytes > 0 {
                    let dt = cost.transfer_time_at(w, dst, bytes, start_secs + t);
                    if let Some(tr) = tracer {
                        tr.link_span(
                            cost.topology.link(w, dst).label(),
                            names::TRACE_LINK_TRANSFER,
                            start_secs + t,
                            dt,
                            &[
                                ("dir", Json::from("writeback")),
                                ("worker", Json::U64(w as u64)),
                                ("peer", Json::U64(dst as u64)),
                                ("bytes", Json::U64(bytes)),
                            ],
                        );
                    }
                    t += dt;
                }
            }
            // Latency is charged per (batch, peer) round-trip inside
            // `transfer_time` above — real systems coalesce a batch's rows
            // into one request per peer, so per-row latency would be wrong.
            // Metadata crosses the same fabric; charge it at the worker's
            // mean link bandwidth.
            let meta = read.meta_bytes + up.meta_bytes;
            let mt = if meta > 0 {
                mean_link_time(w, cost, meta)
            } else {
                0.0
            };
            EmbedCommTimes {
                read: read_t,
                write_back: t - read_t,
                meta: mt,
            }
        }
    }
}

/// Emits per-stage sub-spans (`trace.stage.<stage>`) under the batch span:
/// the batch's simulated stage seconds laid end-to-end from `batch_start`,
/// in pipeline order fetch → compute → write_back → sync. An approximation
/// by construction — overlapped charges genuinely overlap on the clock —
/// but it makes the batch's composition visible on the timeline. Gated at
/// [`TraceLevel::Sync`] so default (`batch`-level) traces stay lean.
fn trace_stage_spans(tracer: &TraceCollector, w: usize, batch_start: f64, sim: [f64; 4]) {
    if !tracer.enabled(hetgmp_telemetry::TraceLevel::Sync) {
        return;
    }
    let mut at = batch_start;
    for (i, stage) in names::PIPELINE_STAGES.iter().enumerate() {
        if sim[i] > 0.0 {
            tracer.worker_span(
                w,
                &format!("{}{stage}", names::TRACE_STAGE_PREFIX),
                at,
                sim[i],
                &[],
            );
            at += sim[i];
        }
    }
}

/// Bytes per embedding row, estimated from whichever report carried data;
/// `fallback` (the configured per-row wire size) covers all-local batches.
fn estimate_row_bytes(read: &ReadReport, up: &UpdateReport, fallback: u64) -> u64 {
    let remote_rows = read.remote_total() + up.remote_writebacks;
    match (read.data_bytes + up.data_bytes).checked_div(remote_rows) {
        Some(b) if remote_rows > 0 => b,
        _ => fallback,
    }
}

/// α-β time for `bytes` over worker `w`'s average non-local link.
pub(crate) fn mean_link_time(w: usize, cost: &CostModel, bytes: u64) -> f64 {
    let n = cost.topology.num_workers();
    if n <= 1 {
        return 0.0;
    }
    let mut total = 0.0;
    for p in 0..n {
        if p != w {
            total += cost.transfer_time(w, p, bytes / (n as u64 - 1).max(1));
        }
    }
    total / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hetgmp_cluster::{FaultSchedule, Topology};
    use hetgmp_data::{generate, DatasetSpec};
    use hetgmp_telemetry::AuditMode;

    use crate::strategy::StrategyConfig;
    use crate::trainer::{TrainResult, Trainer, TrainerConfig};

    use super::*;

    fn tiny_dataset() -> hetgmp_data::CtrDataset {
        let mut spec = DatasetSpec::tiny();
        spec.num_samples = 512;
        generate(&spec)
    }

    fn fast_config() -> TrainerConfig {
        TrainerConfig {
            epochs: 2,
            batch_size: 64,
            dim: 8,
            hidden: vec![16],
            max_eval_samples: 256,
            ..Default::default()
        }
    }

    fn run_shape(
        data: &hetgmp_data::CtrDataset,
        depth: usize,
        threads: usize,
    ) -> TrainResult {
        Trainer::new(
            data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            TrainerConfig {
                pipeline_depth: depth,
                gemm_threads: threads,
                ..fast_config()
            },
        )
        .run()
    }

    /// Asserts the determinism contract between two fault-free runs: the
    /// whole training curve (losses, AUC, log-loss) matches bitwise.
    /// Simulated times are deliberately excluded — prefetch overlap changes
    /// the simulated schedule, never the math.
    fn assert_bit_identical(a: &TrainResult, b: &TrainResult, what: &str) {
        assert_eq!(a.curve.len(), b.curve.len(), "{what}: curve length");
        assert_eq!(a.samples_processed, b.samples_processed, "{what}: samples");
        for (pa, pb) in a.curve.iter().zip(&b.curve) {
            assert_eq!(
                pa.train_loss.to_bits(),
                pb.train_loss.to_bits(),
                "{what}: epoch {} train_loss {} vs {}",
                pa.epoch,
                pa.train_loss,
                pb.train_loss
            );
            assert_eq!(
                pa.auc.to_bits(),
                pb.auc.to_bits(),
                "{what}: epoch {} auc {} vs {}",
                pa.epoch,
                pa.auc,
                pb.auc
            );
            assert_eq!(
                pa.log_loss.to_bits(),
                pb.log_loss.to_bits(),
                "{what}: epoch {} log_loss {} vs {}",
                pa.epoch,
                pa.log_loss,
                pb.log_loss
            );
        }
    }

    #[test]
    fn depth_and_thread_matrix_is_bit_identical_to_sequential() {
        let data = tiny_dataset();
        let baseline = run_shape(&data, 1, 1);
        assert!(baseline.final_auc > 0.55, "AUC {}", baseline.final_auc);
        for depth in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                if (depth, threads) == (1, 1) {
                    continue;
                }
                let r = run_shape(&data, depth, threads);
                assert_bit_identical(
                    &baseline,
                    &r,
                    &format!("depth {depth} x threads {threads}"),
                );
            }
        }
    }

    #[test]
    fn pipelined_run_reports_prefetch_stats() {
        let data = tiny_dataset();
        let r = run_shape(&data, 2, 1);
        assert_eq!(
            r.telemetry.gauge(names::PIPELINE_DEPTH).unwrap_or(0.0),
            2.0
        );
        // Every iteration but each epoch's first consumes a prefetch.
        let prefetched = r.telemetry.counter(names::PIPELINE_PREFETCHED_BATCHES);
        assert!(prefetched > 0, "no batch was prefetched");
        let occupancy = r
            .telemetry
            .gauge(names::PIPELINE_STAGE_OCCUPANCY)
            .unwrap_or(0.0);
        assert!(
            occupancy > 0.5 && occupancy < 1.0,
            "occupancy {occupancy} outside (0.5, 1.0)"
        );
        // The sequential run records the shape but no pipelined batches.
        let seq = run_shape(&data, 1, 1);
        assert_eq!(seq.telemetry.counter(names::PIPELINE_PREFETCHED_BATCHES), 0);
        assert_eq!(
            seq.telemetry.gauge(names::PIPELINE_DEPTH).unwrap_or(0.0),
            1.0
        );
    }

    #[test]
    fn pipelined_strict_audit_crash_run_recovers_clean() {
        // The PR 3 fault contract must survive the pipelined schedule at its
        // deepest setting: a crash (with rollback) plus a stall under BSP +
        // strict audit completes the full curve with zero violations, and the
        // collective abort vote keeps every worker leaving at the same
        // iteration boundary (a deadlock here would hang the test).
        let data = tiny_dataset();
        let faults = Arc::new(
            FaultSchedule::parse("stall@0:0.0:0.003; crash@1:0.000001", 2, 42).unwrap(),
        );
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(0),
            TrainerConfig {
                pipeline_depth: 4,
                ..fast_config()
            },
        )
        .with_audit(AuditMode::Strict)
        .with_faults(faults)
        .run();
        let audit = r.audit.expect("audit enabled");
        assert_eq!(audit.total_violations(), 0, "{}", audit.render());
        assert!(audit.strict_failure.is_none());
        assert_eq!(r.curve.len(), 2, "faulted pipelined run did not complete");
        assert_eq!(r.telemetry.counter(names::FAULT_CRASHES), 1);
        assert_eq!(r.telemetry.counter(names::FAULT_STALLS), 1);
        assert!(r.breakdown.fault > 0.0, "no fault time charged");
        assert!(r.final_auc > 0.55, "AUC collapsed: {}", r.final_auc);
    }

    #[test]
    fn pipelined_checkpoint_resume_matches_sequential_resume() {
        // Checkpoint/resume operates on whole StepCtx slots: a depth-2 run
        // resumed from a checkpoint replays exactly the math a sequential
        // resume replays, so the two resumed runs match bitwise.
        let dir = std::env::temp_dir().join(format!(
            "hetgmp-pipeline-ckpt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let data = tiny_dataset();
        let full = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(0),
            TrainerConfig {
                checkpoint_every: 1,
                checkpoint_dir: Some(dir.clone()),
                pipeline_depth: 2,
                ..fast_config()
            },
        )
        .run();
        let resume = |depth: usize| {
            Trainer::new(
                &data,
                Topology::pcie_island(2),
                StrategyConfig::het_gmp(0),
                TrainerConfig {
                    resume_from: Some(dir.join("ckpt-epoch-1.hgmr")),
                    pipeline_depth: depth,
                    ..fast_config()
                },
            )
            .run()
        };
        let seq = resume(1);
        let piped = resume(2);
        assert_eq!(piped.curve.len(), 1, "resume should only run epoch 2");
        assert_bit_identical(&seq, &piped, "resumed depth 2 vs resumed depth 1");
        // And the resumed run agrees with the uninterrupted one within the
        // established acceptance tolerance.
        assert!(
            (piped.final_auc - full.final_auc).abs() < 0.01,
            "resumed {} vs uninterrupted {}",
            piped.final_auc,
            full.final_auc
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builder_validates_pipeline_fields() {
        assert!(TrainerConfig::builder().pipeline_depth(1).build().is_ok());
        assert!(TrainerConfig::builder().pipeline_depth(8).build().is_ok());
        let err = TrainerConfig::builder().pipeline_depth(0).build().unwrap_err();
        assert_eq!(err.exit_code(), 78, "{err}");
        assert!(err.to_string().contains("pipeline_depth"), "{err}");
        assert!(TrainerConfig::builder().pipeline_depth(9).build().is_err());
        assert!(TrainerConfig::builder().gemm_threads(32).build().is_ok());
        assert!(TrainerConfig::builder().gemm_threads(0).build().is_err());
        assert!(TrainerConfig::builder().gemm_threads(33).build().is_err());
    }

    #[test]
    fn hand_built_zero_pipeline_config_is_an_error_not_a_hang() {
        // TrainerConfig's fields are public; a zero depth would mean no batch
        // slots (and a zero thread count no GEMM workers), so try_run must
        // reject both before any thread spawns.
        let data = tiny_dataset();
        for cfg in [
            TrainerConfig {
                pipeline_depth: 0,
                ..fast_config()
            },
            TrainerConfig {
                gemm_threads: 0,
                ..fast_config()
            },
        ] {
            let err = Trainer::new(
                &data,
                Topology::pcie_island(2),
                StrategyConfig::het_gmp(100),
                cfg,
            )
            .try_run()
            .unwrap_err();
            assert_eq!(err.exit_code(), 78, "{err}");
        }
    }

    #[test]
    fn stage_transitions_enforce_the_legal_order() {
        let mut ctx = StepCtx::new();
        assert_eq!(ctx.stage(), BatchStage::Idle);
        ctx.advance_to(BatchStage::Fetch);
        ctx.advance_to(BatchStage::Compute);
        ctx.advance_to(BatchStage::Push);
        ctx.advance_to(BatchStage::Sync);
        ctx.finish();
        assert_eq!(ctx.stage(), BatchStage::Idle);
        assert!(!BatchStage::Idle.can_advance_to(BatchStage::Compute));
        assert!(!BatchStage::Fetch.can_advance_to(BatchStage::Push));
        assert!(!BatchStage::Sync.can_advance_to(BatchStage::Fetch));
    }

    #[test]
    fn driver_round_trips_its_slots() {
        let mut driver = PipelineDriver::new(vec![StepCtx::new(), StepCtx::new()]);
        assert_eq!(driver.depth(), 2);
        let mut a = driver.acquire();
        let _b = driver.acquire();
        a.advance_to(BatchStage::Fetch);
        a.advance_to(BatchStage::Compute);
        a.advance_to(BatchStage::Push);
        a.advance_to(BatchStage::Sync);
        a.finish();
        driver.recycle(a);
        driver.recycle(_b);
        assert_eq!(driver.into_slots().len(), 2);
    }
}
