//! System strategies: HET-GMP and the baselines of §7.

use hetgmp_embedding::StalenessBound;
use hetgmp_partition::{HybridConfig, ReplicationBudget};

/// Where the embedding table lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedHome {
    /// Distributed over GPU memory (HugeCTR / HET-MP / HET-GMP).
    Gpu,
    /// On CPU parameter servers; every access crosses the host link
    /// (TensorFlow-PS, Parallax).
    CpuPs,
}

/// How dense (DNN) parameters are synchronised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseSync {
    /// Ring AllReduce each iteration (BSP).
    AllReduce,
    /// Asynchronous push/pull through a CPU parameter server: workers do not
    /// wait for each other (the paper's ASP baselines). Mathematically
    /// modelled as mean-combining at iteration granularity without a time
    /// barrier, plus host-link costs.
    PsAsync,
}

/// How a worker keeps local copies of remote-primary embeddings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheDesign {
    /// Statically planned vertex-cut secondaries (HET-GMP, Algorithm 1
    /// step 2).
    StaticVertexCut,
    /// A dynamic LFU cache sized to this fraction of the embedding table
    /// per worker — the predecessor HET's cache-enabled architecture.
    DynamicLfu {
        /// Cache capacity as a fraction of the total embedding count.
        capacity_fraction: f64,
    },
}

/// How the bigraph is partitioned.
#[derive(Debug, Clone)]
pub enum PartitionPolicy {
    /// Uniform random (HET-MP / HugeCTR hash distribution).
    Random,
    /// Algorithm 1 with the given parameters.
    Hybrid(HybridConfig),
}

/// Full description of one system under test.
#[derive(Debug, Clone)]
pub struct StrategyConfig {
    /// Display name ("TF-PS", "Parallax", "HugeCTR", "HET-MP", "HET-GMP").
    pub name: String,
    /// Embedding placement.
    pub embed_home: EmbedHome,
    /// Partitioning policy (ignored for `CpuPs`, where the table is not
    /// GPU-resident).
    pub partition: PartitionPolicy,
    /// Staleness bound for secondary replicas.
    pub staleness: StalenessBound,
    /// Dense-parameter synchronisation.
    pub dense_sync: DenseSync,
    /// Whether embedding communication overlaps with computation (paper §6,
    /// "Asynchronous Execution" — a property of the Hetu backbone shared by
    /// HET-MP and HET-GMP).
    pub overlap: bool,
    /// Local-copy management (static vertex-cut vs dynamic LFU).
    pub cache: CacheDesign,
}

impl StrategyConfig {
    /// TensorFlow 1.15 parameter-server baseline: CPU-hosted embeddings and
    /// dense parameters, asynchronous SGD.
    pub fn tf_ps() -> Self {
        Self {
            name: "TF-PS".into(),
            embed_home: EmbedHome::CpuPs,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::PsAsync,
            overlap: false,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// Parallax: hybrid architecture — sparse parameters via PS, dense via
    /// AllReduce (Kim et al. 2019).
    pub fn parallax() -> Self {
        Self {
            name: "Parallax".into(),
            embed_home: EmbedHome::CpuPs,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::AllReduce,
            overlap: false,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HugeCTR v2.3-style GPU model parallelism: embedding table hashed
    /// across GPU memory, BSP.
    pub fn hugectr() -> Self {
        Self {
            name: "HugeCTR".into(),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::AllReduce,
            overlap: false,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HET-MP: the paper's auxiliary baseline — the HET-GMP system with
    /// random partitioning and no replication (same backbone, so the deltas
    /// to HET-GMP isolate the graph-based contributions).
    pub fn het_mp() -> Self {
        Self {
            name: "HET-MP".into(),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::AllReduce,
            overlap: true,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HET-GMP with staleness bound `s`: hybrid graph partitioning (default
    /// Algorithm 1 parameters, top-1% replication) + bounded asynchrony.
    pub fn het_gmp(s: u64) -> Self {
        Self {
            name: format!("HET-GMP(s={s})"),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Hybrid(HybridConfig::default()),
            staleness: StalenessBound::Bounded(s),
            dense_sync: DenseSync::AllReduce,
            overlap: true,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HET (Miao et al., VLDB 2022) — the predecessor cache-enabled
    /// architecture: random model-parallel placement plus a per-worker
    /// dynamic LFU cache under bounded staleness `s`.
    pub fn het_cache(s: u64, capacity_fraction: f64) -> Self {
        Self {
            name: format!("HET(cache,s={s})"),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(s),
            dense_sync: DenseSync::AllReduce,
            overlap: true,
            cache: CacheDesign::DynamicLfu { capacity_fraction },
        }
    }

    /// HET-GMP with unbounded staleness (`s = ∞`, Table 2's last column).
    pub fn het_gmp_asp() -> Self {
        Self {
            name: "HET-GMP(s=inf)".into(),
            staleness: StalenessBound::Infinite,
            ..Self::het_gmp(0)
        }
    }

    /// Overrides the replication budget (None disables vertex-cut).
    pub fn with_replication(mut self, budget: Option<ReplicationBudget>) -> Self {
        if let PartitionPolicy::Hybrid(cfg) = &mut self.partition {
            cfg.replication = budget;
        }
        self
    }

    /// Overrides the number of 1D rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        if let PartitionPolicy::Hybrid(cfg) = &mut self.partition {
            cfg.rounds = rounds;
        }
        self
    }

    /// Supplies a topology weight matrix for hierarchy-aware partitioning.
    pub fn with_weight_matrix(mut self, weights: Option<Vec<Vec<f64>>>) -> Self {
        if let PartitionPolicy::Hybrid(cfg) = &mut self.partition {
            cfg.onedee.weights = weights;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_axes() {
        let tf = StrategyConfig::tf_ps();
        assert_eq!(tf.embed_home, EmbedHome::CpuPs);
        assert_eq!(tf.dense_sync, DenseSync::PsAsync);

        let px = StrategyConfig::parallax();
        assert_eq!(px.embed_home, EmbedHome::CpuPs);
        assert_eq!(px.dense_sync, DenseSync::AllReduce);

        let hc = StrategyConfig::hugectr();
        assert_eq!(hc.embed_home, EmbedHome::Gpu);
        assert!(matches!(hc.partition, PartitionPolicy::Random));

        let gmp = StrategyConfig::het_gmp(100);
        assert!(matches!(gmp.partition, PartitionPolicy::Hybrid(_)));
        assert_eq!(gmp.staleness, StalenessBound::Bounded(100));
        assert!(gmp.overlap);

        assert_eq!(
            StrategyConfig::het_gmp_asp().staleness,
            StalenessBound::Infinite
        );
    }

    #[test]
    fn builders_modify_hybrid() {
        let s = StrategyConfig::het_gmp(10)
            .with_rounds(5)
            .with_replication(None);
        match s.partition {
            PartitionPolicy::Hybrid(cfg) => {
                assert_eq!(cfg.rounds, 5);
                assert!(cfg.replication.is_none());
            }
            _ => panic!("expected hybrid"),
        }
    }

    #[test]
    fn builders_noop_on_random() {
        let s = StrategyConfig::het_mp().with_rounds(9);
        assert!(matches!(s.partition, PartitionPolicy::Random));
    }
}
