//! System strategies: HET-GMP and the baselines of §7.

use std::sync::Arc;

use hetgmp_embedding::StalenessBound;
use hetgmp_partition::{
    BiCutPartitioner, HybridConfig, HybridPartitioner, MultilevelConfig, MultilevelPartitioner,
    Partitioner, RandomPartitioner, ReplicationBudget,
};
use hetgmp_telemetry::{HetGmpError, Recorder, TraceCollector};

/// Where the embedding table lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedHome {
    /// Distributed over GPU memory (HugeCTR / HET-MP / HET-GMP).
    Gpu,
    /// On CPU parameter servers; every access crosses the host link
    /// (TensorFlow-PS, Parallax).
    CpuPs,
}

/// How dense (DNN) parameters are synchronised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseSync {
    /// Ring AllReduce each iteration (BSP).
    AllReduce,
    /// Asynchronous push/pull through a CPU parameter server: workers do not
    /// wait for each other (the paper's ASP baselines). Mathematically
    /// modelled as mean-combining at iteration granularity without a time
    /// barrier, plus host-link costs.
    PsAsync,
}

/// How a worker keeps local copies of remote-primary embeddings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheDesign {
    /// Statically planned vertex-cut secondaries (HET-GMP, Algorithm 1
    /// step 2).
    StaticVertexCut,
    /// A dynamic LFU cache sized to this fraction of the embedding table
    /// per worker — the predecessor HET's cache-enabled architecture.
    DynamicLfu {
        /// Cache capacity as a fraction of the total embedding count.
        capacity_fraction: f64,
    },
}

/// How the bigraph is partitioned.
#[derive(Debug, Clone)]
pub enum PartitionPolicy {
    /// Uniform random (HET-MP / HugeCTR hash distribution).
    Random,
    /// The BiCut baseline (Chen et al. 2015).
    BiCut,
    /// Algorithm 1 with the given parameters.
    Hybrid(HybridConfig),
    /// METIS-style multilevel coarsen–partition–refine.
    Multilevel(MultilevelConfig),
}

impl PartitionPolicy {
    /// The unified [`Partitioner`] this policy names. All trainer and
    /// experiment code dispatches through this single interface — no
    /// algorithm-specific call sites.
    pub fn partitioner(&self, seed: u64) -> Box<dyn Partitioner> {
        self.partitioner_recorded(seed, None)
    }

    /// Like [`PartitionPolicy::partitioner`], with a telemetry recorder
    /// attached where the algorithm supports one (Algorithm 1 emits
    /// `partition.*` metrics).
    pub fn partitioner_recorded(
        &self,
        seed: u64,
        recorder: Option<Arc<dyn Recorder>>,
    ) -> Box<dyn Partitioner> {
        self.partitioner_instrumented(seed, recorder, None)
    }

    /// Like [`PartitionPolicy::partitioner_recorded`], additionally wiring a
    /// trace collector where supported (Algorithm 1 emits
    /// `trace.partition.round` spans on the driver track).
    pub fn partitioner_instrumented(
        &self,
        seed: u64,
        recorder: Option<Arc<dyn Recorder>>,
        tracer: Option<Arc<TraceCollector>>,
    ) -> Box<dyn Partitioner> {
        match self {
            PartitionPolicy::Random => Box::new(RandomPartitioner { seed }),
            PartitionPolicy::BiCut => Box::new(BiCutPartitioner),
            PartitionPolicy::Hybrid(cfg) => {
                let mut p = HybridPartitioner::new(cfg.clone());
                if let Some(r) = recorder {
                    p = p.with_recorder(r);
                }
                if let Some(t) = tracer {
                    p = p.with_tracer(t);
                }
                Box::new(p)
            }
            PartitionPolicy::Multilevel(cfg) => Box::new(MultilevelPartitioner {
                config: cfg.clone(),
            }),
        }
    }
}

/// Full description of one system under test.
#[derive(Debug, Clone)]
pub struct StrategyConfig {
    /// Display name ("TF-PS", "Parallax", "HugeCTR", "HET-MP", "HET-GMP").
    pub name: String,
    /// Embedding placement.
    pub embed_home: EmbedHome,
    /// Partitioning policy (ignored for `CpuPs`, where the table is not
    /// GPU-resident).
    pub partition: PartitionPolicy,
    /// Staleness bound for secondary replicas.
    pub staleness: StalenessBound,
    /// Dense-parameter synchronisation.
    pub dense_sync: DenseSync,
    /// Whether embedding communication overlaps with computation (paper §6,
    /// "Asynchronous Execution" — a property of the Hetu backbone shared by
    /// HET-MP and HET-GMP).
    pub overlap: bool,
    /// Local-copy management (static vertex-cut vs dynamic LFU).
    pub cache: CacheDesign,
}

impl StrategyConfig {
    /// TensorFlow 1.15 parameter-server baseline: CPU-hosted embeddings and
    /// dense parameters, asynchronous SGD.
    pub fn tf_ps() -> Self {
        Self {
            name: "TF-PS".into(),
            embed_home: EmbedHome::CpuPs,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::PsAsync,
            overlap: false,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// Parallax: hybrid architecture — sparse parameters via PS, dense via
    /// AllReduce (Kim et al. 2019).
    pub fn parallax() -> Self {
        Self {
            name: "Parallax".into(),
            embed_home: EmbedHome::CpuPs,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::AllReduce,
            overlap: false,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HugeCTR v2.3-style GPU model parallelism: embedding table hashed
    /// across GPU memory, BSP.
    pub fn hugectr() -> Self {
        Self {
            name: "HugeCTR".into(),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::AllReduce,
            overlap: false,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HET-MP: the paper's auxiliary baseline — the HET-GMP system with
    /// random partitioning and no replication (same backbone, so the deltas
    /// to HET-GMP isolate the graph-based contributions).
    pub fn het_mp() -> Self {
        Self {
            name: "HET-MP".into(),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(0),
            dense_sync: DenseSync::AllReduce,
            overlap: true,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HET-GMP with staleness bound `s`: hybrid graph partitioning (default
    /// Algorithm 1 parameters, top-1% replication) + bounded asynchrony.
    pub fn het_gmp(s: u64) -> Self {
        Self {
            name: format!("HET-GMP(s={s})"),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Hybrid(HybridConfig::default()),
            staleness: StalenessBound::Bounded(s),
            dense_sync: DenseSync::AllReduce,
            overlap: true,
            cache: CacheDesign::StaticVertexCut,
        }
    }

    /// HET (Miao et al., VLDB 2022) — the predecessor cache-enabled
    /// architecture: random model-parallel placement plus a per-worker
    /// dynamic LFU cache under bounded staleness `s`.
    pub fn het_cache(s: u64, capacity_fraction: f64) -> Self {
        Self {
            name: format!("HET(cache,s={s})"),
            embed_home: EmbedHome::Gpu,
            partition: PartitionPolicy::Random,
            staleness: StalenessBound::Bounded(s),
            dense_sync: DenseSync::AllReduce,
            overlap: true,
            cache: CacheDesign::DynamicLfu { capacity_fraction },
        }
    }

    /// HET-GMP with unbounded staleness (`s = ∞`, Table 2's last column).
    pub fn het_gmp_asp() -> Self {
        Self {
            name: "HET-GMP(s=inf)".into(),
            staleness: StalenessBound::Infinite,
            ..Self::het_gmp(0)
        }
    }

    /// Overrides the replication budget (None disables vertex-cut).
    pub fn with_replication(mut self, budget: Option<ReplicationBudget>) -> Self {
        if let PartitionPolicy::Hybrid(cfg) = &mut self.partition {
            cfg.replication = budget;
        }
        self
    }

    /// Overrides the number of 1D rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        if let PartitionPolicy::Hybrid(cfg) = &mut self.partition {
            cfg.rounds = rounds;
        }
        self
    }

    /// Supplies a topology weight matrix for hierarchy-aware partitioning.
    pub fn with_weight_matrix(mut self, weights: Option<Vec<Vec<f64>>>) -> Self {
        if let PartitionPolicy::Hybrid(cfg) = &mut self.partition {
            cfg.onedee.weights = weights;
        }
        self
    }

    /// A validating builder for a custom strategy, starting from the
    /// HET-GMP(s=0) preset. [`StrategyConfigBuilder::build`] rejects
    /// nonsensical axis combinations (empty name, zero hybrid rounds, LFU
    /// cache fractions outside `(0, 1]`) with a [`HetGmpError::Config`].
    pub fn builder() -> StrategyConfigBuilder {
        StrategyConfigBuilder {
            cfg: Self {
                name: "custom".into(),
                ..Self::het_gmp(0)
            },
        }
    }
}

/// Builder for [`StrategyConfig`] — see [`StrategyConfig::builder`].
#[derive(Debug, Clone)]
pub struct StrategyConfigBuilder {
    cfg: StrategyConfig,
}

impl StrategyConfigBuilder {
    /// Display name (must be non-empty).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Embedding placement.
    pub fn embed_home(mut self, home: EmbedHome) -> Self {
        self.cfg.embed_home = home;
        self
    }

    /// Partitioning policy.
    pub fn partition(mut self, policy: PartitionPolicy) -> Self {
        self.cfg.partition = policy;
        self
    }

    /// Staleness bound for secondary replicas.
    pub fn staleness(mut self, bound: StalenessBound) -> Self {
        self.cfg.staleness = bound;
        self
    }

    /// Dense-parameter synchronisation.
    pub fn dense_sync(mut self, sync: DenseSync) -> Self {
        self.cfg.dense_sync = sync;
        self
    }

    /// Whether embedding communication overlaps with computation.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.cfg.overlap = overlap;
        self
    }

    /// Local-copy management.
    pub fn cache(mut self, cache: CacheDesign) -> Self {
        self.cfg.cache = cache;
        self
    }

    /// Validates and returns the strategy.
    pub fn build(self) -> Result<StrategyConfig, HetGmpError> {
        let c = &self.cfg;
        if c.name.is_empty() {
            return Err(HetGmpError::config("name", "strategy name must be non-empty"));
        }
        if let PartitionPolicy::Hybrid(cfg) = &c.partition {
            if cfg.rounds == 0 {
                return Err(HetGmpError::config(
                    "partition.rounds",
                    "Algorithm 1 needs at least one 1D round",
                ));
            }
        }
        if let CacheDesign::DynamicLfu { capacity_fraction } = c.cache {
            if !(capacity_fraction > 0.0 && capacity_fraction <= 1.0) {
                return Err(HetGmpError::config(
                    "cache.capacity_fraction",
                    format!("must lie in (0, 1], got {capacity_fraction}"),
                ));
            }
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_axes() {
        let tf = StrategyConfig::tf_ps();
        assert_eq!(tf.embed_home, EmbedHome::CpuPs);
        assert_eq!(tf.dense_sync, DenseSync::PsAsync);

        let px = StrategyConfig::parallax();
        assert_eq!(px.embed_home, EmbedHome::CpuPs);
        assert_eq!(px.dense_sync, DenseSync::AllReduce);

        let hc = StrategyConfig::hugectr();
        assert_eq!(hc.embed_home, EmbedHome::Gpu);
        assert!(matches!(hc.partition, PartitionPolicy::Random));

        let gmp = StrategyConfig::het_gmp(100);
        assert!(matches!(gmp.partition, PartitionPolicy::Hybrid(_)));
        assert_eq!(gmp.staleness, StalenessBound::Bounded(100));
        assert!(gmp.overlap);

        assert_eq!(
            StrategyConfig::het_gmp_asp().staleness,
            StalenessBound::Infinite
        );
    }

    #[test]
    fn builders_modify_hybrid() {
        let s = StrategyConfig::het_gmp(10)
            .with_rounds(5)
            .with_replication(None);
        match s.partition {
            PartitionPolicy::Hybrid(cfg) => {
                assert_eq!(cfg.rounds, 5);
                assert!(cfg.replication.is_none());
            }
            _ => panic!("expected hybrid"),
        }
    }

    #[test]
    fn builders_noop_on_random() {
        let s = StrategyConfig::het_mp().with_rounds(9);
        assert!(matches!(s.partition, PartitionPolicy::Random));
    }

    #[test]
    fn strategy_builder_validates() {
        let s = StrategyConfig::builder()
            .name("mine")
            .staleness(StalenessBound::Bounded(50))
            .cache(CacheDesign::DynamicLfu {
                capacity_fraction: 0.1,
            })
            .build()
            .unwrap();
        assert_eq!(s.name, "mine");
        assert_eq!(s.staleness, StalenessBound::Bounded(50));

        let err = StrategyConfig::builder().name("").build().unwrap_err();
        assert_eq!(err.exit_code(), 78);
        assert!(StrategyConfig::builder()
            .cache(CacheDesign::DynamicLfu {
                capacity_fraction: 0.0,
            })
            .build()
            .is_err());
        let bad_rounds = PartitionPolicy::Hybrid(HybridConfig {
            rounds: 0,
            ..Default::default()
        });
        assert!(StrategyConfig::builder().partition(bad_rounds).build().is_err());
    }
}
