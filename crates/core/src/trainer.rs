//! The distributed trainer: real multi-threaded training with simulated
//! interconnect time.
//!
//! Workers are OS threads executing *real* training math — embedding
//! lookups through the bounded-asynchrony protocol, exact forward/backward
//! passes, gradient write-back, dense AllReduce — while *time* is charged to
//! per-worker [`SimClock`]s from the `hetgmp-cluster` cost model. This keeps
//! quality effects honest (staleness genuinely degrades AUC) and makes
//! performance effects reproducible and hardware-independent (communication
//! volume is exact; time = volume over modelled links).
//!
//! Timing model per iteration (matching the paper's §6 execution):
//! `compute` (FLOPs/rate) + `embedding comm` (per-source α-β over the real
//! links; overlapped with compute on Hetu-backbone systems) + `metadata` +
//! `dense sync` (ring AllReduce bound for BSP — which is also a simulated-
//! clock barrier — or host-link push/pull for PS systems, no barrier).
//!
//! ASP baselines (TF-PS, Parallax): the paper observes they fail to reach
//! the AUC targets *within the time window*. Here their gradient math is
//! mean-combined like BSP (keeping the substrate shared) but no clock
//! barrier is applied and every sparse access pays the CPU host link — so
//! they are time-starved exactly as measured in Figure 7.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hetgmp_bigraph::Bigraph;
use hetgmp_cluster::{CostModel, LinkClass, SimClock, TimeBreakdown, TimeCategory, Topology};
use hetgmp_comms::{AllReduceGroup, TrafficClass, TrafficLedger};
use hetgmp_data::CtrDataset;
use hetgmp_embedding::{
    CachedWorkerEmbedding, EmbeddingWorker, ShardedTable, SparseOpt, StalenessBound,
    WorkerEmbedding,
};
use hetgmp_partition::{Partition, PartitionMetrics};
use hetgmp_telemetry::{
    names, AuditMode, AuditSummary, HetGmpError, Json, MetricsRegistry, ProtocolAuditor, Recorder,
    TelemetrySnapshot, TraceCollector,
};
use hetgmp_tensor::{auc, bce_with_logits, log_loss, Matrix};

use crate::models::{CtrModel, ModelKind};
use crate::strategy::{CacheDesign, DenseSync, EmbedHome, StrategyConfig};

/// Trainer hyper-parameters (model + schedule).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Model architecture.
    pub model: ModelKind,
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Deep-tower hidden sizes.
    pub hidden: Vec<usize>,
    /// Mini-batch size per worker.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Sparse optimizer for the embedding table.
    pub embed_opt: SparseOpt,
    /// Dense-parameter learning rate (plain SGD on the DNN).
    pub dense_lr: f32,
    /// Fraction of samples held out for testing.
    pub test_fraction: f64,
    /// Cap on evaluated test samples (evaluation cost control).
    pub max_eval_samples: usize,
    /// Stop early once test AUC reaches this target (Figure 7's convergence
    /// thresholds: ~0.76 Avazu, ~0.80 Criteo).
    pub auc_target: Option<f64>,
    /// Global-norm gradient clip for the dense parameters (`None` disables).
    /// DCN's cross layers can diverge without it on wide inputs — the same
    /// reason production CTR systems clip.
    pub grad_clip: Option<f32>,
    /// Per-worker compute slowdown factors (1.0 = nominal; 4.0 = a 4×
    /// straggler). `None` = homogeneous accelerators.
    pub compute_scales: Option<Vec<f64>>,
    /// Heterogeneity-aware load balancing (paper §3: a "heterogeneity aware
    /// load-balancer design considering both computation and
    /// communications"): give each worker a batch size proportional to its
    /// speed so BSP iterations finish together despite uneven accelerators.
    pub hetero_aware_batching: bool,
    /// RNG seed (model init, shuffling).
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Wdl,
            dim: 16,
            hidden: vec![64, 32],
            batch_size: 256,
            epochs: 3,
            embed_opt: SparseOpt::adagrad(0.05),
            dense_lr: 0.05,
            test_fraction: 0.1,
            max_eval_samples: 8192,
            auc_target: None,
            grad_clip: Some(5.0),
            compute_scales: None,
            hetero_aware_batching: false,
            seed: 42,
        }
    }
}

impl TrainerConfig {
    /// A validating builder starting from [`TrainerConfig::default`].
    /// Unlike struct-literal construction, [`TrainerConfigBuilder::build`]
    /// rejects invalid hyper-parameters (`dim == 0`, empty `hidden`,
    /// `test_fraction` outside `(0, 1)`) with a [`HetGmpError::Config`]
    /// instead of panicking deep inside training.
    pub fn builder() -> TrainerConfigBuilder {
        TrainerConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`TrainerConfig`] — see [`TrainerConfig::builder`].
#[derive(Debug, Clone)]
pub struct TrainerConfigBuilder {
    cfg: TrainerConfig,
}

impl TrainerConfigBuilder {
    /// Model architecture.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.cfg.model = model;
        self
    }

    /// Embedding dimension `d` (must be positive).
    pub fn dim(mut self, dim: usize) -> Self {
        self.cfg.dim = dim;
        self
    }

    /// Deep-tower hidden sizes (must be non-empty).
    pub fn hidden(mut self, hidden: Vec<usize>) -> Self {
        self.cfg.hidden = hidden;
        self
    }

    /// Mini-batch size per worker (must be positive).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.cfg.batch_size = batch_size;
        self
    }

    /// Training epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Sparse optimizer for the embedding table.
    pub fn embed_opt(mut self, opt: SparseOpt) -> Self {
        self.cfg.embed_opt = opt;
        self
    }

    /// Dense-parameter learning rate.
    pub fn dense_lr(mut self, lr: f32) -> Self {
        self.cfg.dense_lr = lr;
        self
    }

    /// Held-out test fraction (must lie strictly between 0 and 1).
    pub fn test_fraction(mut self, f: f64) -> Self {
        self.cfg.test_fraction = f;
        self
    }

    /// Cap on evaluated test samples.
    pub fn max_eval_samples(mut self, n: usize) -> Self {
        self.cfg.max_eval_samples = n;
        self
    }

    /// Early-stop AUC target.
    pub fn auc_target(mut self, target: Option<f64>) -> Self {
        self.cfg.auc_target = target;
        self
    }

    /// Dense gradient clip (`None` disables).
    pub fn grad_clip(mut self, clip: Option<f32>) -> Self {
        self.cfg.grad_clip = clip;
        self
    }

    /// Per-worker compute slowdown factors.
    pub fn compute_scales(mut self, scales: Option<Vec<f64>>) -> Self {
        self.cfg.compute_scales = scales;
        self
    }

    /// Heterogeneity-aware load balancing.
    pub fn hetero_aware_batching(mut self, on: bool) -> Self {
        self.cfg.hetero_aware_batching = on;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<TrainerConfig, HetGmpError> {
        let c = &self.cfg;
        if c.dim == 0 {
            return Err(HetGmpError::config("dim", "embedding dimension must be positive"));
        }
        if c.hidden.is_empty() {
            return Err(HetGmpError::config("hidden", "at least one hidden layer is required"));
        }
        if c.hidden.contains(&0) {
            return Err(HetGmpError::config("hidden", "hidden layer sizes must be positive"));
        }
        if !(c.test_fraction > 0.0 && c.test_fraction < 1.0) {
            return Err(HetGmpError::config(
                "test_fraction",
                format!("must lie strictly between 0 and 1, got {}", c.test_fraction),
            ));
        }
        if c.batch_size == 0 {
            return Err(HetGmpError::config("batch_size", "must be positive"));
        }
        if let Some(scales) = &c.compute_scales {
            if scales.iter().any(|&s| !s.is_finite() || s <= 0.0) {
                return Err(HetGmpError::config(
                    "compute_scales",
                    "every slowdown factor must be positive and finite",
                ));
            }
        }
        Ok(self.cfg)
    }
}

/// One evaluation point on the convergence curve (Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct EvalPoint {
    /// Epoch index (1-based, at the epoch's end).
    pub epoch: usize,
    /// Simulated wall-clock seconds (max over workers).
    pub sim_time: f64,
    /// Test AUC.
    pub auc: f64,
    /// Test log-loss.
    pub log_loss: f64,
    /// Mean training BCE loss over the epoch's batches — the objective `F`
    /// of the paper's Theorem 1 (the quantity that provably decreases).
    pub train_loss: f64,
}

/// Everything measured in one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Strategy display name.
    pub strategy: String,
    /// Convergence curve (one point per epoch).
    pub curve: Vec<EvalPoint>,
    /// Final test AUC.
    pub final_auc: f64,
    /// Total simulated seconds (max over workers).
    pub sim_time: f64,
    /// Simulated seconds until `auc_target` was reached, if it was.
    pub time_to_target: Option<f64>,
    /// Samples processed (including wrap-around re-visits).
    pub samples_processed: u64,
    /// Throughput in samples / simulated second.
    pub throughput: f64,
    /// Merged per-category time across workers.
    pub breakdown: TimeBreakdown,
    /// Per-worker time breakdowns.
    pub per_worker: Vec<TimeBreakdown>,
    /// Total traffic bytes by class (embed data / keys+clocks / allreduce).
    pub traffic_bytes: [u64; 3],
    /// Partition quality metrics (remote fetch statistics; `None` for
    /// CPU-PS systems where the GPU partition is meaningless).
    pub partition_metrics: Option<PartitionMetrics>,
    /// Unified metrics from every component of the run: traffic classes,
    /// time categories, embedding protocol events, partitioner rounds.
    pub telemetry: TelemetrySnapshot,
    /// Bounded-async protocol audit summary (`None` unless auditing was
    /// enabled with [`Trainer::with_audit`]).
    pub audit: Option<AuditSummary>,
}

/// The distributed trainer for one (dataset, topology, strategy) triple.
pub struct Trainer<'d> {
    dataset: &'d CtrDataset,
    topology: Topology,
    strategy: StrategyConfig,
    config: TrainerConfig,
    tracer: Option<Arc<TraceCollector>>,
    audit: AuditMode,
}

impl<'d> Trainer<'d> {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics if the topology has no workers or the dataset is empty.
    pub fn new(
        dataset: &'d CtrDataset,
        topology: Topology,
        strategy: StrategyConfig,
        config: TrainerConfig,
    ) -> Self {
        assert!(topology.num_workers() >= 1, "need at least one worker");
        assert!(dataset.num_samples() > 0, "empty dataset");
        Self {
            dataset,
            topology,
            strategy,
            config,
            tracer: None,
            audit: AuditMode::Off,
        }
    }

    /// Attaches a trace collector: the run emits Chrome-trace events
    /// (epoch/batch spans per worker, link transfers, partitioner rounds,
    /// protocol decisions at sync detail level) into `tracer`. Build the
    /// collector with one slot per worker in this trainer's topology.
    pub fn with_tracer(mut self, tracer: Arc<TraceCollector>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enables the runtime protocol auditor: every staleness decision is
    /// checked against the strategy's [`StalenessBound`]. `Count` tallies
    /// violations into the result's [`AuditSummary`]; `Strict` additionally
    /// aborts training at the next iteration boundary after a violation.
    pub fn with_audit(mut self, mode: AuditMode) -> Self {
        self.audit = mode;
        self
    }

    /// Builds the partition this strategy would train with (also used by
    /// partition-only experiments). Dispatches through the unified
    /// [`hetgmp_partition::Partitioner`] interface.
    pub fn build_partition(&self, graph: &Bigraph) -> Partition {
        self.strategy
            .partition
            .partitioner(self.config.seed)
            .partition(graph, &self.topology)
    }

    /// [`Trainer::build_partition`] with `partition.*` telemetry recorded
    /// into `recorder`.
    fn build_partition_recorded(
        &self,
        graph: &Bigraph,
        recorder: Arc<dyn Recorder>,
    ) -> Partition {
        self.strategy
            .partition
            .partitioner_instrumented(self.config.seed, Some(recorder), self.tracer.clone())
            .partition(graph, &self.topology)
    }

    /// Runs training and returns the measurements.
    pub fn run(&self) -> TrainResult {
        let cfg = &self.config;
        let n = self.topology.num_workers();
        let cost = CostModel::new(self.topology.clone());
        // One registry for the whole run: the partitioner records globally,
        // each worker thread records into its own recorder (no hot-path
        // contention), and the final snapshot merges everything.
        let registry = MetricsRegistry::new(n);
        let auditor = if self.audit.is_on() {
            let bound = match self.strategy.staleness {
                StalenessBound::Bounded(s) => s as f64,
                StalenessBound::Infinite => f64::INFINITY,
            };
            Some(Arc::new(ProtocolAuditor::new(bound, self.audit)))
        } else {
            None
        };

        // ---- Data & partition ------------------------------------------------
        let split = self.dataset.split(cfg.test_fraction);
        let train_rows: Vec<Vec<u32>> = split
            .train
            .iter()
            .map(|&i| self.dataset.sample(i as usize).to_vec())
            .collect();
        let graph = Bigraph::from_samples(self.dataset.num_features, &train_rows);
        let partition = self.build_partition_recorded(&graph, registry.global());
        let partition_metrics = match self.strategy.embed_home {
            EmbedHome::Gpu => Some(PartitionMetrics::compute(&graph, &partition, None)),
            EmbedHome::CpuPs => None,
        };
        let freq: Vec<u64> = (0..graph.num_embeddings() as u32)
            .map(|e| graph.emb_frequency(e) as u64)
            .collect();

        // Worker shards (dataset indices).
        let shards: Vec<Vec<u32>> = partition
            .samples_by_partition()
            .into_iter()
            .map(|local| local.into_iter().map(|s| split.train[s as usize]).collect())
            .collect();
        // Iterations per epoch follow the *mean* shard size (workers with
        // smaller shards wrap around; persistent cursors even out coverage
        // across epochs). Using the max would let residual imbalance from
        // the partitioner's slack inflate every worker's iteration count.
        let mean_shard =
            (shards.iter().map(Vec::len).sum::<usize>() as f64 / n as f64).round() as usize;
        let iters_per_epoch = mean_shard.max(1).div_ceil(cfg.batch_size).max(1);

        // ---- Shared state ----------------------------------------------------
        let table = ShardedTable::new(self.dataset.num_features, cfg.dim, 0.05, cfg.seed);
        let group = AllReduceGroup::new(n);
        let mut ledger = TrafficLedger::from_registry(&registry);
        if let Some(t) = &self.tracer {
            ledger.attach_tracer(Arc::clone(t));
        }
        let ledger = ledger;
        let samples_processed = AtomicU64::new(0);
        // Training-loss accumulators (fixed-point micro-units so plain
        // atomics suffice).
        let loss_sum_micro = AtomicU64::new(0);
        let loss_batches = AtomicU64::new(0);

        // Per-worker persistent state: static vertex-cut replicas (HET-GMP)
        // or a dynamic LFU cache (HET-style), behind one trait.
        let mut embeddings: Vec<Box<dyn EmbeddingWorker + '_>> = (0..n as u32)
            .map(|w| -> Box<dyn EmbeddingWorker + '_> {
                match self.strategy.cache {
                    CacheDesign::StaticVertexCut => Box::new(WorkerEmbedding::new(
                        w,
                        &table,
                        &partition,
                        &freq,
                        self.strategy.staleness,
                    )),
                    CacheDesign::DynamicLfu { capacity_fraction } => {
                        let capacity =
                            (graph.num_embeddings() as f64 * capacity_fraction) as usize;
                        Box::new(CachedWorkerEmbedding::new(
                            w,
                            &table,
                            &partition,
                            capacity,
                            self.strategy.staleness,
                        ))
                    }
                }
            })
            .collect();
        for (w, emb) in embeddings.iter_mut().enumerate() {
            emb.attach_recorder(registry.worker(w));
            if let Some(a) = &auditor {
                emb.attach_auditor(Arc::clone(a));
            }
            if let Some(t) = &self.tracer {
                emb.attach_tracer(Arc::clone(t));
            }
        }
        let mut models: Vec<CtrModel> = (0..n)
            .map(|_| {
                CtrModel::new(
                    cfg.model,
                    self.dataset.num_fields,
                    cfg.dim,
                    &cfg.hidden,
                    cfg.seed, // identical init across workers
                )
            })
            .collect();
        let dense_bytes = (models[0].num_dense_params() * 4) as u64;
        let flops_per_sample = models[0].flops_per_sample();
        // Per-worker compute scales and (optionally) speed-proportional
        // batch sizes so a straggler's BSP iteration takes as long as its
        // peers'.
        let compute_scales: Vec<f64> = match &cfg.compute_scales {
            Some(scales) => {
                assert_eq!(scales.len(), n, "compute_scales length != workers");
                assert!(scales.iter().all(|&s| s > 0.0), "scales must be positive");
                scales.clone()
            }
            None => vec![1.0; n],
        };
        let batch_sizes: Vec<usize> = if cfg.hetero_aware_batching {
            let speeds: Vec<f64> = compute_scales.iter().map(|&s| 1.0 / s).collect();
            let mean_speed = speeds.iter().sum::<f64>() / n as f64;
            speeds
                .iter()
                .map(|&sp| ((cfg.batch_size as f64 * sp / mean_speed).round() as usize).max(1))
                .collect()
        } else {
            vec![cfg.batch_size; n]
        };
        let mut clocks: Vec<SimClock> = (0..n)
            .map(|w| SimClock::with_recorder(registry.worker(w)))
            .collect();
        let mut cursors: Vec<usize> = vec![0; n];

        let strategy = &self.strategy;
        let dataset = self.dataset;
        let topology = &self.topology;
        let cost_ref = &cost;
        let group_ref = &group;
        let ledger_ref = &ledger;
        let samples_ctr = &samples_processed;
        let loss_sum_ref = &loss_sum_micro;
        let loss_batches_ref = &loss_batches;
        let tracer_ref: Option<&TraceCollector> = self.tracer.as_deref();
        let auditor_ref: Option<&ProtocolAuditor> = auditor.as_deref();

        // ---- Epoch loop ------------------------------------------------------
        let mut curve: Vec<EvalPoint> = Vec::with_capacity(cfg.epochs);
        let mut time_to_target: Option<f64> = None;
        for epoch in 1..=cfg.epochs {
            loss_sum_micro.store(0, Ordering::Relaxed);
            loss_batches.store(0, Ordering::Relaxed);
            std::thread::scope(|scope| {
                // Move disjoint &mut of per-worker state into threads.
                for (w, ((emb, model), (clock, cursor))) in embeddings
                    .iter_mut()
                    .zip(models.iter_mut())
                    .zip(clocks.iter_mut().zip(cursors.iter_mut()))
                    .enumerate()
                {
                    let shard = &shards[w];
                    let compute_scale = compute_scales[w];
                    let batch_size = batch_sizes[w];
                    scope.spawn(move || {
                        run_worker_epoch(WorkerEpoch {
                            w,
                            shard,
                            dataset,
                            emb: &mut **emb,
                            model,
                            clock,
                            cursor,
                            iters: iters_per_epoch,
                            epoch,
                            cfg,
                            strategy,
                            topology,
                            cost: cost_ref,
                            group: group_ref,
                            ledger: ledger_ref,
                            dense_bytes,
                            flops_per_sample,
                            samples: samples_ctr,
                            loss_sum_micro: loss_sum_ref,
                            loss_batches: loss_batches_ref,
                            compute_scale,
                            batch_size,
                            tracer: tracer_ref,
                            auditor: auditor_ref,
                        });
                    });
                }
            });

            // Strict audit: a tripped auditor aborted every worker at the
            // last iteration boundary; abandon the run without evaluating.
            if auditor.as_ref().is_some_and(|a| a.is_tripped()) {
                break;
            }

            // ---- Evaluation barrier -----------------------------------------
            // Flush deferred secondary gradients so the evaluation (and the
            // next epoch) sees every update; charge the write-backs.
            for (w, (emb, clock)) in embeddings.iter_mut().zip(clocks.iter_mut()).enumerate() {
                let rep = emb.flush_all(&cfg.embed_opt);
                if rep.data_bytes > 0 {
                    let mut t = 0.0;
                    for (dst, &bytes) in rep.data_bytes_by_dst.iter().enumerate() {
                        if bytes > 0 {
                            t += cost.transfer_time(w, dst, bytes);
                        }
                    }
                    clock.advance(TimeCategory::EmbedComm, t);
                    ledger.record(w, TrafficClass::EmbedData, rep.data_bytes, rep.messages);
                    ledger.record(w, TrafficClass::KeysClocks, rep.meta_bytes, 0);
                }
            }
            let sim_time = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
            let (auc_v, ll) = self.evaluate(&mut models, &table, &split.test);
            let batches = loss_batches.load(Ordering::Relaxed).max(1);
            let train_loss =
                loss_sum_micro.load(Ordering::Relaxed) as f64 / 1e6 / batches as f64;
            curve.push(EvalPoint {
                epoch,
                sim_time,
                auc: auc_v,
                log_loss: ll,
                train_loss,
            });
            registry.global().gauge_set(names::TRAIN_AUC, auc_v);
            registry.global().gauge_set(names::TRAIN_SIM_TIME, sim_time);
            if let Some(target) = cfg.auc_target {
                if auc_v >= target && time_to_target.is_none() {
                    time_to_target = Some(sim_time);
                    break;
                }
            }
        }

        let per_worker: Vec<TimeBreakdown> = clocks.iter().map(|c| *c.breakdown()).collect();
        let mut breakdown = TimeBreakdown::default();
        for b in &per_worker {
            breakdown = breakdown.merged(b);
        }
        let sim_time = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
        let samples_total = samples_processed.load(Ordering::Relaxed);
        let final_auc = curve.last().map_or(0.5, |p| p.auc);
        registry
            .global()
            .counter_add(names::TRAIN_SAMPLES, samples_total);
        registry.global().gauge_set(names::TRAIN_SIM_TIME, sim_time);
        registry.global().gauge_set(names::TRAIN_AUC, final_auc);
        TrainResult {
            strategy: self.strategy.name.clone(),
            final_auc,
            sim_time,
            time_to_target,
            samples_processed: samples_total,
            throughput: if sim_time > 0.0 {
                samples_total as f64 / sim_time
            } else {
                0.0
            },
            breakdown,
            per_worker,
            traffic_bytes: [
                ledger.total_bytes(TrafficClass::EmbedData),
                ledger.total_bytes(TrafficClass::KeysClocks),
                ledger.total_bytes(TrafficClass::AllReduce),
            ],
            partition_metrics,
            telemetry: registry.snapshot(),
            audit: auditor.as_ref().map(|a| a.summary()),
            curve,
        }
    }

    /// Evaluates test AUC/log-loss with the mean dense model and the fresh
    /// global embedding table.
    fn evaluate(
        &self,
        models: &mut [CtrModel],
        table: &ShardedTable,
        test: &[u32],
    ) -> (f64, f64) {
        let cfg = &self.config;
        let n = models.len();
        // Mean dense parameters (identical under BSP; averaged under ASP).
        let mut mean = models[0].flatten_params();
        for model in models.iter_mut().skip(1) {
            for (m, x) in mean.iter_mut().zip(model.flatten_params()) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut eval_model = CtrModel::new(
            cfg.model,
            self.dataset.num_fields,
            cfg.dim,
            &cfg.hidden,
            cfg.seed,
        );
        eval_model.load_params(&mean);

        let take = test.len().min(cfg.max_eval_samples);
        let mut scores = Vec::with_capacity(take);
        let mut labels = Vec::with_capacity(take);
        let fields = self.dataset.num_fields;
        let dim = cfg.dim;
        let mut row = vec![0.0f32; dim];
        for chunk in test[..take].chunks(512) {
            let mut input = Matrix::zeros(chunk.len(), fields * dim);
            for (r, &idx) in chunk.iter().enumerate() {
                let sample = self.dataset.sample(idx as usize);
                for (f, &e) in sample.iter().enumerate() {
                    table.read_row(e, &mut row);
                    input.row_mut(r)[f * dim..(f + 1) * dim].copy_from_slice(&row);
                }
                labels.push(self.dataset.label(idx as usize));
            }
            let logits = eval_model.forward(&input);
            scores.extend(logits.data().iter().map(|&z| 1.0 / (1.0 + (-z).exp())));
        }
        (auc(&scores, &labels), log_loss(&scores, &labels))
    }
}

/// All the borrowed context one worker needs for one epoch.
struct WorkerEpoch<'a, 'b, 'd> {
    w: usize,
    shard: &'a [u32],
    dataset: &'d CtrDataset,
    emb: &'a mut (dyn EmbeddingWorker + 'b),
    model: &'a mut CtrModel,
    clock: &'a mut SimClock,
    cursor: &'a mut usize,
    iters: usize,
    epoch: usize,
    cfg: &'a TrainerConfig,
    strategy: &'a StrategyConfig,
    topology: &'a Topology,
    cost: &'a CostModel,
    group: &'a AllReduceGroup,
    ledger: &'a TrafficLedger,
    dense_bytes: u64,
    flops_per_sample: f64,
    samples: &'a AtomicU64,
    loss_sum_micro: &'a AtomicU64,
    loss_batches: &'a AtomicU64,
    compute_scale: f64,
    batch_size: usize,
    tracer: Option<&'a TraceCollector>,
    auditor: Option<&'a ProtocolAuditor>,
}

fn run_worker_epoch(ctx: WorkerEpoch<'_, '_, '_>) {
    let WorkerEpoch {
        w,
        shard,
        dataset,
        emb,
        model,
        clock,
        cursor,
        iters,
        epoch,
        cfg,
        strategy,
        topology,
        cost,
        group,
        ledger,
        dense_bytes,
        flops_per_sample,
        samples,
        loss_sum_micro,
        loss_batches,
        compute_scale,
        batch_size,
        tracer,
        auditor,
    } = ctx;
    let dim = cfg.dim;
    let fields = dataset.num_fields;
    let is_bsp = matches!(strategy.dense_sync, DenseSync::AllReduce)
        && matches!(strategy.embed_home, EmbedHome::Gpu);
    let epoch_start = clock.now();

    for _ in 0..iters {
        // Publish the worker's simulated position so instants emitted deeper
        // in the stack (protocol decisions, traffic charges) land at this
        // batch's timestamp on the timeline.
        if let Some(t) = tracer {
            t.set_worker_time(w, clock.now());
        }
        let batch_start = clock.now();
        // ---- Assemble the batch (wrap-around over the local shard). --------
        let bs = batch_size.min(shard.len().max(1));
        let mut batch_idx = Vec::with_capacity(bs);
        if shard.is_empty() {
            // Degenerate single-worker shard corner: skip math, still join
            // collectives so peers don't deadlock.
            batch_idx.clear();
        } else {
            for _ in 0..bs {
                batch_idx.push(shard[*cursor % shard.len()]);
                *cursor += 1;
            }
        }
        let sample_slices: Vec<&[u32]> = batch_idx
            .iter()
            .map(|&i| dataset.sample(i as usize))
            .collect();
        let actual = sample_slices.len();

        let mut read_report = Default::default();
        if actual > 0 {
            // ---- Embedding read under bounded asynchrony. ------------------
            let mut flat = vec![0.0f32; actual * fields * dim];
            read_report = emb.read_batch(&sample_slices, &mut flat);

            // ---- Dense forward/backward (real math). ----------------------
            let input = Matrix::from_vec(actual, fields * dim, flat);
            let logits = model.forward(&input);
            let labels: Vec<f32> = batch_idx
                .iter()
                .map(|&i| dataset.label(i as usize))
                .collect();
            let (batch_loss, grad_logits) = bce_with_logits(&logits, &labels);
            loss_sum_micro.fetch_add((batch_loss.max(0.0) as f64 * 1e6) as u64, Ordering::Relaxed);
            loss_batches.fetch_add(1, Ordering::Relaxed);
            model.zero_grad();
            let grad_input = model.backward(&grad_logits);

            // ---- Embedding gradient write-back. ----------------------------
            let up_report =
                emb.apply_gradients(&sample_slices, grad_input.data(), &cfg.embed_opt);

            // ---- Charge simulated time. ------------------------------------
            // The straggler factor scales arithmetic throughput, not the
            // fixed launch overhead (a slow accelerator still dispatches
            // kernels at normal latency).
            let flops = flops_per_sample * actual as f64;
            let compute_t = cost.compute.per_batch_overhead
                + (flops / cost.compute.flops_per_second) * compute_scale;
            clock.advance(TimeCategory::Compute, compute_t);

            // Input pipeline (overlapped behind compute).
            let input_bytes = (actual * fields * 4) as u64;
            clock.advance_overlapped(
                TimeCategory::HostIo,
                cost.link_transfer_time(LinkClass::HostPcie, input_bytes),
                compute_t,
            );

            let (embed_t, meta_t) = charge_embedding_comm(
                w,
                strategy,
                cost,
                &read_report,
                &up_report,
                tracer,
                clock.now(),
            );
            if strategy.overlap {
                clock.advance_overlapped(TimeCategory::EmbedComm, embed_t, compute_t);
            } else {
                clock.advance(TimeCategory::EmbedComm, embed_t);
            }
            clock.advance(TimeCategory::MetaComm, meta_t);

            ledger.record(
                w,
                TrafficClass::EmbedData,
                read_report.data_bytes + up_report.data_bytes,
                read_report.messages + up_report.messages,
            );
            ledger.record(
                w,
                TrafficClass::KeysClocks,
                read_report.meta_bytes + up_report.meta_bytes,
                read_report.messages + up_report.messages,
            );
            samples.fetch_add(actual as u64, Ordering::Relaxed);
        }
        let _ = &read_report;

        // ---- Dense synchronisation. ----------------------------------------
        let mut grads = model.flatten_grads();
        group.allreduce_mean(&mut grads);
        if let Some(clip) = cfg.grad_clip {
            let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
            if norm > clip {
                let scale = clip / norm;
                for g in &mut grads {
                    *g *= scale;
                }
            }
        }
        model.load_grads(&grads);
        // SGD step on the (replicated) dense parameters.
        model.visit_params(&mut |p, g| {
            for (pi, gi) in p.iter_mut().zip(g.iter()) {
                *pi -= cfg.dense_lr * gi;
            }
        });

        match strategy.dense_sync {
            DenseSync::AllReduce => {
                let t = cost.allreduce_time(dense_bytes);
                if let Some(tr) = tracer {
                    // The ring's bottleneck hop names the track.
                    let n = topology.num_workers();
                    let label = if n > 1 {
                        topology.link(w, (w + 1) % n).label()
                    } else {
                        LinkClass::Local.label()
                    };
                    tr.link_span(
                        label,
                        names::TRACE_ALLREDUCE,
                        clock.now(),
                        t,
                        &[("worker", Json::U64(w as u64)), ("bytes", Json::U64(dense_bytes))],
                    );
                }
                clock.advance(TimeCategory::AllReduceComm, t);
                ledger.record(w, TrafficClass::AllReduce, allreduce_bytes(dense_bytes, topology), 1);
            }
            DenseSync::PsAsync => {
                // Push gradients + pull parameters over the shared host link.
                let n = topology.num_workers() as u64;
                let t = cost.link_transfer_time(LinkClass::HostPcie, 2 * dense_bytes * n);
                if let Some(tr) = tracer {
                    tr.link_span(
                        LinkClass::HostPcie.label(),
                        names::TRACE_ALLREDUCE,
                        clock.now(),
                        t,
                        &[("worker", Json::U64(w as u64)), ("bytes", Json::U64(2 * dense_bytes))],
                    );
                }
                clock.advance(TimeCategory::AllReduceComm, t);
                ledger.record(w, TrafficClass::AllReduce, 2 * dense_bytes, 2);
            }
        }

        // BSP: the AllReduce is a barrier in simulated time too.
        if is_bsp {
            let mut t = [clock.now() as f32];
            group.allreduce_max(&mut t);
            clock.wait_until(t[0] as f64);
        } else {
            // ASP systems do not barrier; simulated clocks drift freely,
            // but the OS threads still rendezvous at the collective above
            // (math-level combining without a time barrier).
        }

        if let Some(t) = tracer {
            t.worker_span(
                w,
                names::TRACE_BATCH,
                batch_start,
                clock.now() - batch_start,
                &[("samples", Json::U64(actual as u64))],
            );
        }

        // Strict audit: agree collectively on whether the auditor tripped so
        // every worker leaves at the same iteration boundary (a unilateral
        // break would strand its peers in the next collective).
        if let Some(a) = auditor {
            let mut flag = [if a.is_tripped() { 1.0f32 } else { 0.0 }];
            group.allreduce_max(&mut flag);
            if flag[0] > 0.0 {
                break;
            }
        }
    }

    if let Some(t) = tracer {
        t.worker_span(
            w,
            names::TRACE_EPOCH,
            epoch_start,
            clock.now() - epoch_start,
            &[("epoch", Json::U64(epoch as u64))],
        );
    }
}

/// Ring AllReduce wire bytes: `2·(N−1)/N · payload` per worker.
fn allreduce_bytes(dense_bytes: u64, topology: &Topology) -> u64 {
    let n = topology.num_workers() as u64;
    if n <= 1 {
        0
    } else {
        2 * (n - 1) * dense_bytes / n
    }
}

/// Converts the per-source byte breakdowns into (embedding-data seconds,
/// metadata seconds) for worker `w` under the given strategy. When a tracer
/// is attached, each per-peer transfer also becomes a `trace.link.transfer`
/// span on the link-class track, laid out sequentially from `start_secs`.
#[allow(clippy::too_many_arguments)]
fn charge_embedding_comm(
    w: usize,
    strategy: &StrategyConfig,
    cost: &CostModel,
    read: &hetgmp_embedding::ReadReport,
    up: &hetgmp_embedding::UpdateReport,
    tracer: Option<&TraceCollector>,
    start_secs: f64,
) -> (f64, f64) {
    match strategy.embed_home {
        EmbedHome::CpuPs => {
            // Every lookup/update crosses the host link, regardless of the
            // GPU partition: charge the full working set. The parameter
            // server's host link is a *shared* resource: N workers pulling
            // simultaneously each see 1/N of its bandwidth — this contention
            // is precisely why the paper's CPU-PS baselines (TF, Parallax)
            // fall behind GPU model parallelism (Figure 7).
            let n = cost.topology.num_workers() as u64;
            let lookups = read.lookups();
            let updates = up.updates();
            let dim_bytes = if lookups + updates > 0 {
                // data_bytes only counts remote rows; reconstruct full rows
                // from counts via bytes-per-row of the remote ones, falling
                // back to a dim-16 default when everything was local.
                estimate_row_bytes(read, up)
            } else {
                0
            };
            let total_bytes = (lookups + updates) * dim_bytes * n;
            let t = cost.link_transfer_time(LinkClass::HostPcie, total_bytes);
            if let Some(tr) = tracer {
                if total_bytes > 0 {
                    tr.link_span(
                        LinkClass::HostPcie.label(),
                        names::TRACE_LINK_TRANSFER,
                        start_secs,
                        t,
                        &[("worker", Json::U64(w as u64)), ("bytes", Json::U64(total_bytes))],
                    );
                }
            }
            let meta_bytes = (lookups + updates) * 12 * n;
            let mt = cost.link_transfer_time(LinkClass::HostPcie, meta_bytes);
            (t, mt)
        }
        EmbedHome::Gpu => {
            let mut t = 0.0;
            for (src, &bytes) in read.data_bytes_by_src.iter().enumerate() {
                if bytes > 0 {
                    let dt = cost.transfer_time(w, src, bytes);
                    if let Some(tr) = tracer {
                        tr.link_span(
                            cost.topology.link(w, src).label(),
                            names::TRACE_LINK_TRANSFER,
                            start_secs + t,
                            dt,
                            &[
                                ("dir", Json::from("read")),
                                ("worker", Json::U64(w as u64)),
                                ("peer", Json::U64(src as u64)),
                                ("bytes", Json::U64(bytes)),
                            ],
                        );
                    }
                    t += dt;
                }
            }
            for (dst, &bytes) in up.data_bytes_by_dst.iter().enumerate() {
                if bytes > 0 {
                    let dt = cost.transfer_time(w, dst, bytes);
                    if let Some(tr) = tracer {
                        tr.link_span(
                            cost.topology.link(w, dst).label(),
                            names::TRACE_LINK_TRANSFER,
                            start_secs + t,
                            dt,
                            &[
                                ("dir", Json::from("writeback")),
                                ("worker", Json::U64(w as u64)),
                                ("peer", Json::U64(dst as u64)),
                                ("bytes", Json::U64(bytes)),
                            ],
                        );
                    }
                    t += dt;
                }
            }
            // Latency is charged per (batch, peer) round-trip inside
            // `transfer_time` above — real systems coalesce a batch's rows
            // into one request per peer, so per-row latency would be wrong.
            // Metadata crosses the same fabric; charge it at the worker's
            // mean link bandwidth.
            let meta = read.meta_bytes + up.meta_bytes;
            let mt = if meta > 0 {
                mean_link_time(w, cost, meta)
            } else {
                0.0
            };
            (t, mt)
        }
    }
}

/// Bytes per embedding row, estimated from whichever report carried data.
fn estimate_row_bytes(read: &hetgmp_embedding::ReadReport, up: &hetgmp_embedding::UpdateReport) -> u64 {
    let remote_rows = read.remote_total() + up.remote_writebacks;
    match (read.data_bytes + up.data_bytes).checked_div(remote_rows) {
        Some(b) if remote_rows > 0 => b,
        _ => 64, // dim-16 f32 default when no remote sample exists
    }
}

/// α-β time for `bytes` over worker `w`'s average non-local link.
fn mean_link_time(w: usize, cost: &CostModel, bytes: u64) -> f64 {
    let n = cost.topology.num_workers();
    if n <= 1 {
        return 0.0;
    }
    let mut total = 0.0;
    for p in 0..n {
        if p != w {
            total += cost.transfer_time(w, p, bytes / (n as u64 - 1).max(1));
        }
    }
    total / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_data::{generate, DatasetSpec};

    fn tiny_dataset() -> CtrDataset {
        let mut spec = DatasetSpec::tiny();
        spec.num_samples = 512;
        generate(&spec)
    }

    fn fast_config() -> TrainerConfig {
        TrainerConfig {
            epochs: 2,
            batch_size: 64,
            dim: 8,
            hidden: vec![16],
            max_eval_samples: 256,
            ..Default::default()
        }
    }

    #[test]
    fn builder_validates_hyper_parameters() {
        let ok = TrainerConfig::builder()
            .dim(8)
            .hidden(vec![16])
            .batch_size(64)
            .epochs(2)
            .test_fraction(0.2)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(ok.dim, 8);
        assert_eq!(ok.hidden, vec![16]);
        assert_eq!(ok.test_fraction, 0.2);

        let err = TrainerConfig::builder().dim(0).build().unwrap_err();
        assert!(err.to_string().contains("dim"), "{err}");
        assert_eq!(err.exit_code(), 78);
        assert!(TrainerConfig::builder().hidden(vec![]).build().is_err());
        assert!(TrainerConfig::builder().hidden(vec![16, 0]).build().is_err());
        assert!(TrainerConfig::builder().test_fraction(0.0).build().is_err());
        assert!(TrainerConfig::builder().test_fraction(1.0).build().is_err());
        assert!(TrainerConfig::builder().batch_size(0).build().is_err());
        assert!(TrainerConfig::builder()
            .compute_scales(Some(vec![1.0, 0.0]))
            .build()
            .is_err());
    }

    #[test]
    fn het_gmp_trains_and_improves_auc() {
        let data = tiny_dataset();
        let trainer = Trainer::new(
            &data,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp(100),
            TrainerConfig {
                epochs: 4,
                ..fast_config()
            },
        );
        let result = trainer.run();
        assert_eq!(result.curve.len(), 4);
        assert!(result.final_auc > 0.6, "AUC {}", result.final_auc);
        assert!(result.sim_time > 0.0);
        assert!(result.throughput > 0.0);
        // Simulated time increases monotonically along the curve.
        for wpair in result.curve.windows(2) {
            assert!(wpair[1].sim_time >= wpair[0].sim_time);
        }
    }

    #[test]
    fn baselines_run_all_strategies() {
        let data = tiny_dataset();
        for strat in [
            StrategyConfig::tf_ps(),
            StrategyConfig::parallax(),
            StrategyConfig::hugectr(),
            StrategyConfig::het_mp(),
            StrategyConfig::het_gmp_asp(),
        ] {
            let trainer = Trainer::new(
                &data,
                Topology::pcie_island(2),
                strat.clone(),
                fast_config(),
            );
            let r = trainer.run();
            assert!(r.sim_time > 0.0, "{}: no time charged", strat.name);
            assert!(r.samples_processed > 0);
        }
    }

    #[test]
    fn het_gmp_communicates_less_than_het_mp() {
        // Needs a dataset with real locality/skew for partitioning to bite;
        // tiny()'s 120-row table is too dense to separate the systems.
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let topo = Topology::pcie_island(4);
        let mp = Trainer::new(&data, topo.clone(), StrategyConfig::het_mp(), fast_config()).run();
        let gmp = Trainer::new(
            &data,
            topo,
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .run();
        assert!(
            gmp.traffic_bytes[0] < mp.traffic_bytes[0],
            "embed traffic: gmp {} vs mp {}",
            gmp.traffic_bytes[0],
            mp.traffic_bytes[0]
        );
    }

    #[test]
    fn cpu_ps_slower_than_gpu_mp() {
        // Needs enough unique rows per batch (and a representative embedding
        // width) for the shared host link to become the bottleneck, as in
        // the paper's Figure 7.
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let topo = Topology::pcie_island(4);
        let cfg = TrainerConfig {
            dim: 32,
            batch_size: 128,
            ..fast_config()
        };
        let tf = Trainer::new(&data, topo.clone(), StrategyConfig::tf_ps(), cfg.clone()).run();
        let mp = Trainer::new(&data, topo, StrategyConfig::het_mp(), cfg).run();
        assert!(
            tf.throughput < mp.throughput,
            "tf {} vs mp {}",
            tf.throughput,
            mp.throughput
        );
    }

    #[test]
    fn het_dynamic_cache_trains() {
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let topo = Topology::pcie_island(4);
        let het = Trainer::new(
            &data,
            topo.clone(),
            StrategyConfig::het_cache(100, 0.02),
            fast_config(),
        )
        .run();
        assert!(het.final_auc > 0.6, "AUC {}", het.final_auc);
        // The cache adapts: HET moves fewer embedding bytes than the
        // cache-less HugeCTR on the same placement.
        let hc = Trainer::new(&data, topo, StrategyConfig::hugectr(), fast_config()).run();
        assert!(
            het.traffic_bytes[0] < hc.traffic_bytes[0],
            "HET {} !< HugeCTR {}",
            het.traffic_bytes[0],
            hc.traffic_bytes[0]
        );
    }

    #[test]
    fn single_worker_no_comm() {
        let data = tiny_dataset();
        let r = Trainer::new(
            &data,
            Topology::cluster_b_scaled(1),
            StrategyConfig::het_mp(),
            fast_config(),
        )
        .run();
        assert_eq!(r.traffic_bytes[0], 0, "single worker should be all-local");
        assert!(r.breakdown.compute > 0.0);
    }

    #[test]
    fn strict_audit_bsp_has_zero_violations() {
        use hetgmp_telemetry::AuditMode;
        let data = tiny_dataset();
        // BSP (s = 0): every read must be served perfectly fresh; a correct
        // protocol implementation never violates the bound.
        let r = Trainer::new(
            &data,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp(0),
            fast_config(),
        )
        .with_audit(AuditMode::Strict)
        .run();
        let audit = r.audit.expect("audit enabled");
        assert_eq!(audit.total_violations(), 0, "{}", audit.render());
        assert!(audit.strict_failure.is_none());
        assert!(audit.intra_reads + audit.inter_checks > 0, "auditor saw no decisions");
        assert_eq!(audit.bound, 0.0);
        // The full curve ran: strict mode did not abort.
        assert_eq!(r.curve.len(), 2);
    }

    #[test]
    fn audit_asp_observes_drift_without_violations() {
        use hetgmp_telemetry::AuditMode;
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let r = Trainer::new(
            &data,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp_asp(),
            fast_config(),
        )
        .with_audit(AuditMode::Count)
        .run();
        let audit = r.audit.expect("audit enabled");
        // s = ∞ admits every gap: no read can violate it…
        assert_eq!(audit.total_violations(), 0);
        // …but secondaries genuinely drift from their primaries.
        assert!(
            audit.max_intra_gap > 0.0,
            "ASP run showed no staleness drift: {}",
            audit.render()
        );
        assert!(audit.bound.is_infinite());
    }

    #[test]
    fn traced_run_covers_workers_and_links() {
        use hetgmp_telemetry::{TraceCollector, TraceLevel, TraceTrack};
        let data = tiny_dataset();
        let tracer = Arc::new(TraceCollector::new(2, TraceLevel::Sync));
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .with_tracer(Arc::clone(&tracer))
        .run();
        assert!(r.sim_time > 0.0);
        let events = tracer.events();
        for w in 0..2 {
            assert!(
                events
                    .iter()
                    .any(|e| e.track == TraceTrack::Worker(w) && e.name == names::TRACE_BATCH),
                "no batch spans for worker {w}"
            );
            assert!(events
                .iter()
                .any(|e| e.track == TraceTrack::Worker(w) && e.name == names::TRACE_EPOCH));
        }
        // Two workers on one PCIe island exchange embedding bytes.
        assert!(
            events
                .iter()
                .any(|e| matches!(&e.track, TraceTrack::Link(_))
                    && e.name == names::TRACE_LINK_TRANSFER),
            "no link transfer spans"
        );
        // Algorithm 1's rounds land on the driver track.
        assert!(events
            .iter()
            .any(|e| e.track == TraceTrack::Driver && e.name == names::TRACE_PARTITION_ROUND));
        // Durations are simulated time: every batch span fits in the run.
        for e in events.iter().filter(|e| e.name == names::TRACE_BATCH) {
            assert!(e.dur_us >= 0.0 && e.ts_us + e.dur_us <= r.sim_time * 1e6 + 1.0);
        }
    }

    #[test]
    fn time_to_target_recorded() {
        let data = tiny_dataset();
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            TrainerConfig {
                epochs: 8,
                auc_target: Some(0.55),
                ..fast_config()
            },
        )
        .run();
        assert!(r.time_to_target.is_some(), "target never reached");
        // Early stop: fewer curve points than epochs.
        assert!(r.curve.len() <= 8);
    }
}
