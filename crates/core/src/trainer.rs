//! The distributed trainer: real multi-threaded training with simulated
//! interconnect time.
//!
//! Workers are OS threads executing *real* training math — embedding
//! lookups through the bounded-asynchrony protocol, exact forward/backward
//! passes, gradient write-back, dense AllReduce — while *time* is charged to
//! per-worker [`SimClock`]s from the `hetgmp-cluster` cost model. This keeps
//! quality effects honest (staleness genuinely degrades AUC) and makes
//! performance effects reproducible and hardware-independent (communication
//! volume is exact; time = volume over modelled links).
//!
//! Timing model per iteration (matching the paper's §6 execution):
//! `compute` (FLOPs/rate) + `embedding comm` (per-source α-β over the real
//! links; overlapped with compute on Hetu-backbone systems) + `metadata` +
//! `dense sync` (ring AllReduce bound for BSP — which is also a simulated-
//! clock barrier — or host-link push/pull for PS systems, no barrier).
//!
//! ASP baselines (TF-PS, Parallax): the paper observes they fail to reach
//! the AUC targets *within the time window*. Here their gradient math is
//! mean-combined like BSP (keeping the substrate shared) but no clock
//! barrier is applied and every sparse access pays the CPU host link — so
//! they are time-starved exactly as measured in Figure 7.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hetgmp_bigraph::Bigraph;
use hetgmp_cluster::{
    CostModel, FaultSchedule, LinkClass, SimClock, TimeBreakdown, TimeCategory, Topology,
};
use hetgmp_comms::{AllReduceGroup, SyncFormat, TrafficClass, TrafficLedger};
use hetgmp_data::CtrDataset;
use hetgmp_embedding::{
    load_run, run_encoded_len, save_run, CachedWorkerEmbedding, EmbeddingWorker, RunState,
    ShardedTable, SparseOpt, StalenessBound, WorkerEmbedding, WorkerState,
};
use hetgmp_partition::{Partition, PartitionMetrics};
use hetgmp_telemetry::{
    names, AuditMode, AuditSummary, HetGmpError, Json, MetricsRegistry, ProtocolAuditor, Recorder,
    RunManifest, TelemetrySnapshot, TraceCollector,
};
use hetgmp_tensor::{auc, log_loss, GemmPool, Matrix};

use crate::models::{CtrModel, ModelKind};
use crate::pipeline::{
    mean_link_time, run_worker_epoch, PipelineStats, StageProfiler, StepCtx, WorkerEpoch,
};
use crate::strategy::{CacheDesign, EmbedHome, StrategyConfig};

/// Trainer hyper-parameters (model + schedule).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Model architecture.
    pub model: ModelKind,
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Deep-tower hidden sizes.
    pub hidden: Vec<usize>,
    /// Mini-batch size per worker.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Sparse optimizer for the embedding table.
    pub embed_opt: SparseOpt,
    /// Dense-parameter learning rate (plain SGD on the DNN).
    pub dense_lr: f32,
    /// Fraction of samples held out for testing.
    pub test_fraction: f64,
    /// Cap on evaluated test samples (evaluation cost control).
    pub max_eval_samples: usize,
    /// Stop early once test AUC reaches this target (Figure 7's convergence
    /// thresholds: ~0.76 Avazu, ~0.80 Criteo).
    pub auc_target: Option<f64>,
    /// Global-norm gradient clip for the dense parameters (`None` disables).
    /// DCN's cross layers can diverge without it on wide inputs — the same
    /// reason production CTR systems clip.
    pub grad_clip: Option<f32>,
    /// Per-worker compute slowdown factors (1.0 = nominal; 4.0 = a 4×
    /// straggler). `None` = homogeneous accelerators.
    pub compute_scales: Option<Vec<f64>>,
    /// Heterogeneity-aware load balancing (paper §3: a "heterogeneity aware
    /// load-balancer design considering both computation and
    /// communications"): give each worker a batch size proportional to its
    /// speed so BSP iterations finish together despite uneven accelerators.
    pub hetero_aware_batching: bool,
    /// RNG seed (model init, shuffling).
    pub seed: u64,
    /// Write a run checkpoint every this many epochs (0 disables
    /// checkpointing). Requires `checkpoint_dir`.
    pub checkpoint_every: usize,
    /// Directory receiving `ckpt-epoch-<N>.hgmr` run-checkpoint files.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume training from this run-checkpoint file: the embedding table
    /// (values + clocks), dense models, shard cursors and simulated clocks
    /// are restored and the epoch loop continues after the checkpointed
    /// epoch. The dataset, topology, strategy and hyper-parameters must
    /// match the run that wrote the checkpoint.
    pub resume_from: Option<PathBuf>,
    /// Software-pipeline depth: the number of in-flight [`StepCtx`]
    /// (crate::pipeline::StepCtx) batch slots per worker. `1` (the default)
    /// is the classic fully sequential inner loop; `>= 2` runs each worker's
    /// embedding fetch for batch `i+1` on a companion thread while batch `i`
    /// finishes its dense sync, and replaces the per-rank write-back
    /// barriers with a token ring plus one fused sync collective. Losses,
    /// AUC and checkpoints are bit-identical across depths on fault-free
    /// runs; only the simulated overlap accounting (and wall-clock speed)
    /// changes.
    pub pipeline_depth: usize,
    /// Worker threads per dense GEMM (`1` = sequential kernels). Values
    /// `>= 2` install a per-worker [`hetgmp_tensor::GemmPool`] that splits
    /// large GEMMs into row panels; panel splits are bit-identical to the
    /// sequential kernels by construction.
    pub gemm_threads: usize,
    /// Wire format for inter-worker embedding payloads and the dense
    /// AllReduce (`f32` default = bit-exact identity transport). Lossy
    /// formats decode-on-arrival, so replicas hold exactly what a real
    /// receiver would; the ledger and cost model charge compressed bytes.
    pub sync_format: SyncFormat,
    /// Per-row error feedback on lossy gradient pushes (EF-SGD style).
    /// Ignored under `f32`; on by default.
    pub sync_error_feedback: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Wdl,
            dim: 16,
            hidden: vec![64, 32],
            batch_size: 256,
            epochs: 3,
            embed_opt: SparseOpt::adagrad(0.05),
            dense_lr: 0.05,
            test_fraction: 0.1,
            max_eval_samples: 8192,
            auc_target: None,
            grad_clip: Some(5.0),
            compute_scales: None,
            hetero_aware_batching: false,
            seed: 42,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume_from: None,
            pipeline_depth: 1,
            gemm_threads: 1,
            sync_format: SyncFormat::F32,
            sync_error_feedback: true,
        }
    }
}

impl TrainerConfig {
    /// A validating builder starting from [`TrainerConfig::default`].
    /// Unlike struct-literal construction, [`TrainerConfigBuilder::build`]
    /// rejects invalid hyper-parameters (`dim == 0`, empty `hidden`,
    /// `test_fraction` outside `(0, 1)`) with a [`HetGmpError::Config`]
    /// instead of panicking deep inside training.
    pub fn builder() -> TrainerConfigBuilder {
        TrainerConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`TrainerConfig`] — see [`TrainerConfig::builder`].
#[derive(Debug, Clone)]
pub struct TrainerConfigBuilder {
    cfg: TrainerConfig,
}

impl TrainerConfigBuilder {
    /// Model architecture.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.cfg.model = model;
        self
    }

    /// Embedding dimension `d` (must be positive).
    pub fn dim(mut self, dim: usize) -> Self {
        self.cfg.dim = dim;
        self
    }

    /// Deep-tower hidden sizes (must be non-empty).
    pub fn hidden(mut self, hidden: Vec<usize>) -> Self {
        self.cfg.hidden = hidden;
        self
    }

    /// Mini-batch size per worker (must be positive).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.cfg.batch_size = batch_size;
        self
    }

    /// Training epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Sparse optimizer for the embedding table.
    pub fn embed_opt(mut self, opt: SparseOpt) -> Self {
        self.cfg.embed_opt = opt;
        self
    }

    /// Dense-parameter learning rate.
    pub fn dense_lr(mut self, lr: f32) -> Self {
        self.cfg.dense_lr = lr;
        self
    }

    /// Held-out test fraction (must lie strictly between 0 and 1).
    pub fn test_fraction(mut self, f: f64) -> Self {
        self.cfg.test_fraction = f;
        self
    }

    /// Cap on evaluated test samples.
    pub fn max_eval_samples(mut self, n: usize) -> Self {
        self.cfg.max_eval_samples = n;
        self
    }

    /// Early-stop AUC target.
    pub fn auc_target(mut self, target: Option<f64>) -> Self {
        self.cfg.auc_target = target;
        self
    }

    /// Dense gradient clip (`None` disables).
    pub fn grad_clip(mut self, clip: Option<f32>) -> Self {
        self.cfg.grad_clip = clip;
        self
    }

    /// Per-worker compute slowdown factors.
    pub fn compute_scales(mut self, scales: Option<Vec<f64>>) -> Self {
        self.cfg.compute_scales = scales;
        self
    }

    /// Heterogeneity-aware load balancing.
    pub fn hetero_aware_batching(mut self, on: bool) -> Self {
        self.cfg.hetero_aware_batching = on;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Checkpoint period in epochs (0 disables).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.cfg.checkpoint_every = every;
        self
    }

    /// Directory for run checkpoints.
    pub fn checkpoint_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cfg.checkpoint_dir = dir;
        self
    }

    /// Run-checkpoint file to resume from.
    pub fn resume_from(mut self, path: Option<PathBuf>) -> Self {
        self.cfg.resume_from = path;
        self
    }

    /// Software-pipeline depth (in-flight batch slots per worker; must lie
    /// in `1..=8`). Depth 1 is the sequential inner loop.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.cfg.pipeline_depth = depth;
        self
    }

    /// Threads per dense GEMM (must lie in `1..=32`). 1 keeps the
    /// sequential kernels.
    pub fn gemm_threads(mut self, threads: usize) -> Self {
        self.cfg.gemm_threads = threads;
        self
    }

    /// Wire format for inter-worker embedding payloads and the dense
    /// AllReduce. `f32` (the default) is the bit-exact identity transport.
    pub fn sync_format(mut self, format: SyncFormat) -> Self {
        self.cfg.sync_format = format;
        self
    }

    /// Enables/disables per-row error feedback on lossy gradient pushes.
    pub fn sync_error_feedback(mut self, on: bool) -> Self {
        self.cfg.sync_error_feedback = on;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<TrainerConfig, HetGmpError> {
        let c = &self.cfg;
        if c.dim == 0 {
            return Err(HetGmpError::config("dim", "embedding dimension must be positive"));
        }
        if c.hidden.is_empty() {
            return Err(HetGmpError::config("hidden", "at least one hidden layer is required"));
        }
        if c.hidden.contains(&0) {
            return Err(HetGmpError::config("hidden", "hidden layer sizes must be positive"));
        }
        if !(c.test_fraction > 0.0 && c.test_fraction < 1.0) {
            return Err(HetGmpError::config(
                "test_fraction",
                format!("must lie strictly between 0 and 1, got {}", c.test_fraction),
            ));
        }
        if c.batch_size == 0 {
            return Err(HetGmpError::config("batch_size", "must be positive"));
        }
        if let Some(scales) = &c.compute_scales {
            if scales.iter().any(|&s| !s.is_finite() || s <= 0.0) {
                return Err(HetGmpError::config(
                    "compute_scales",
                    "every slowdown factor must be positive and finite",
                ));
            }
        }
        if c.checkpoint_every > 0 && c.checkpoint_dir.is_none() {
            return Err(HetGmpError::config(
                "checkpoint_every",
                "periodic checkpointing requires a checkpoint_dir",
            ));
        }
        if c.checkpoint_dir.is_some() && c.checkpoint_every == 0 {
            return Err(HetGmpError::config(
                "checkpoint_dir",
                "checkpoint_dir is set but checkpoint_every is 0 (checkpointing disabled)",
            ));
        }
        if !(1..=8).contains(&c.pipeline_depth) {
            return Err(HetGmpError::config(
                "pipeline_depth",
                format!("must lie in 1..=8, got {}", c.pipeline_depth),
            ));
        }
        if !(1..=32).contains(&c.gemm_threads) {
            return Err(HetGmpError::config(
                "gemm_threads",
                format!("must lie in 1..=32, got {}", c.gemm_threads),
            ));
        }
        Ok(self.cfg)
    }
}

/// One evaluation point on the convergence curve (Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct EvalPoint {
    /// Epoch index (1-based, at the epoch's end).
    pub epoch: usize,
    /// Simulated wall-clock seconds (max over workers).
    pub sim_time: f64,
    /// Test AUC.
    pub auc: f64,
    /// Test log-loss.
    pub log_loss: f64,
    /// Mean training BCE loss over the epoch's batches — the objective `F`
    /// of the paper's Theorem 1 (the quantity that provably decreases).
    pub train_loss: f64,
    /// Fraction of this epoch's batches served by a prefetch, summed over
    /// workers (0 at `pipeline_depth == 1`, where nothing is prefetched).
    pub stage_occupancy: f64,
    /// Wall seconds this epoch's workers spent stalled waiting on a
    /// prefetch that had not finished (0 at depth 1).
    pub stall_secs: f64,
}

/// Everything measured in one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Strategy display name.
    pub strategy: String,
    /// Convergence curve (one point per epoch).
    pub curve: Vec<EvalPoint>,
    /// Final test AUC.
    pub final_auc: f64,
    /// Total simulated seconds (max over workers).
    pub sim_time: f64,
    /// Simulated seconds until `auc_target` was reached, if it was.
    pub time_to_target: Option<f64>,
    /// Samples processed (including wrap-around re-visits).
    pub samples_processed: u64,
    /// Throughput in samples / simulated second.
    pub throughput: f64,
    /// Merged per-category time across workers.
    pub breakdown: TimeBreakdown,
    /// Per-worker time breakdowns.
    pub per_worker: Vec<TimeBreakdown>,
    /// Total traffic bytes by class (embed data / keys+clocks / allreduce).
    pub traffic_bytes: [u64; 3],
    /// Partition quality metrics (remote fetch statistics; `None` for
    /// CPU-PS systems where the GPU partition is meaningless).
    pub partition_metrics: Option<PartitionMetrics>,
    /// Unified metrics from every component of the run: traffic classes,
    /// time categories, embedding protocol events, partitioner rounds.
    pub telemetry: TelemetrySnapshot,
    /// Bounded-async protocol audit summary (`None` unless auditing was
    /// enabled with [`Trainer::with_audit`]).
    pub audit: Option<AuditSummary>,
    /// Batches whose training loss came back non-finite (NaN/∞). Non-zero
    /// means the run diverged; the CLI treats it as a data error.
    pub nonfinite_batches: u64,
    /// The run's identity stamp (seed, config digest, shape, build):
    /// written into every artifact this run produces so `inspect diff` can
    /// flag cross-run comparisons whose configurations differ.
    pub manifest: RunManifest,
}

/// The manifest's digest input: the strategy and every hyper-parameter
/// that shapes the math or the schedule. Workspace-volatile fields
/// (checkpoint/resume paths) and the seed are excluded — the seed is its
/// own manifest field, and two runs of the same experiment must digest
/// identically regardless of where they write or resume from.
fn config_digest_text(strategy: &StrategyConfig, cfg: &TrainerConfig) -> String {
    format!(
        "{strategy:?}|model={:?}|dim={}|hidden={:?}|batch={}|epochs={}|opt={:?}|lr={}|test={}|\
         eval={}|target={:?}|clip={:?}|scales={:?}|hetero={}|ckpt_every={}|depth={}|threads={}|\
         sync_format={}|sync_ef={}",
        cfg.model,
        cfg.dim,
        cfg.hidden,
        cfg.batch_size,
        cfg.epochs,
        cfg.embed_opt,
        cfg.dense_lr,
        cfg.test_fraction,
        cfg.max_eval_samples,
        cfg.auc_target,
        cfg.grad_clip,
        cfg.compute_scales,
        cfg.hetero_aware_batching,
        cfg.checkpoint_every,
        cfg.pipeline_depth,
        cfg.gemm_threads,
        cfg.sync_format,
        cfg.sync_error_feedback,
    )
}

/// The distributed trainer for one (dataset, topology, strategy) triple.
pub struct Trainer<'d> {
    dataset: &'d CtrDataset,
    topology: Topology,
    strategy: StrategyConfig,
    config: TrainerConfig,
    tracer: Option<Arc<TraceCollector>>,
    audit: AuditMode,
    faults: Option<Arc<FaultSchedule>>,
}

impl<'d> Trainer<'d> {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics if the topology has no workers or the dataset is empty.
    pub fn new(
        dataset: &'d CtrDataset,
        topology: Topology,
        strategy: StrategyConfig,
        config: TrainerConfig,
    ) -> Self {
        assert!(topology.num_workers() >= 1, "need at least one worker");
        assert!(dataset.num_samples() > 0, "empty dataset");
        Self {
            dataset,
            topology,
            strategy,
            config,
            tracer: None,
            audit: AuditMode::Off,
            faults: None,
        }
    }

    /// Attaches a trace collector: the run emits Chrome-trace events
    /// (epoch/batch spans per worker, link transfers, partitioner rounds,
    /// protocol decisions at sync detail level) into `tracer`. Build the
    /// collector with one slot per worker in this trainer's topology.
    pub fn with_tracer(mut self, tracer: Arc<TraceCollector>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Overrides the software-pipeline shape of this trainer's config:
    /// `depth` in-flight batch slots per worker
    /// ([`TrainerConfig::pipeline_depth`]) and `gemm_threads` workers per
    /// dense GEMM ([`TrainerConfig::gemm_threads`]). `None` keeps the
    /// config's value. This is the experiment runners' hook path, so one
    /// CLI flag applies a single pipeline setting to every run in an
    /// experiment; the values are validated by [`Trainer::try_run`].
    pub fn with_pipeline(mut self, depth: Option<usize>, gemm_threads: Option<usize>) -> Self {
        if let Some(d) = depth {
            self.config.pipeline_depth = d;
        }
        if let Some(t) = gemm_threads {
            self.config.gemm_threads = t;
        }
        self
    }

    /// Overrides the wire format for embedding and dense-gradient payloads
    /// ([`TrainerConfig::sync_format`]) and lossy-push error feedback
    /// ([`TrainerConfig::sync_error_feedback`]). `None` keeps the config's
    /// value. This is the experiment runners' hook path, so one CLI flag
    /// applies a single wire format to every run in an experiment.
    pub fn with_sync_format(
        mut self,
        format: Option<SyncFormat>,
        error_feedback: Option<bool>,
    ) -> Self {
        if let Some(f) = format {
            self.config.sync_format = f;
        }
        if let Some(ef) = error_feedback {
            self.config.sync_error_feedback = ef;
        }
        self
    }

    /// Enables the runtime protocol auditor: every staleness decision is
    /// checked against the strategy's [`StalenessBound`]. `Count` tallies
    /// violations into the result's [`AuditSummary`]; `Strict` additionally
    /// aborts training at the next iteration boundary after a violation.
    pub fn with_audit(mut self, mode: AuditMode) -> Self {
        self.audit = mode;
        self
    }

    /// Injects a deterministic fault schedule: workers crash or stall and
    /// links degrade at the scheduled simulated times. Crash recovery rolls
    /// the failed worker back to the last checkpoint image and charges the
    /// restore, replica refresh and replay to its simulated clock as
    /// `time.fault_secs`. The schedule must cover this trainer's worker
    /// count.
    pub fn with_faults(mut self, faults: Arc<FaultSchedule>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builds the partition this strategy would train with (also used by
    /// partition-only experiments). Dispatches through the unified
    /// [`hetgmp_partition::Partitioner`] interface.
    pub fn build_partition(&self, graph: &Bigraph) -> Partition {
        self.strategy
            .partition
            .partitioner(self.config.seed)
            .partition(graph, &self.topology)
    }

    /// [`Trainer::build_partition`] with `partition.*` telemetry recorded
    /// into `recorder`.
    fn build_partition_recorded(
        &self,
        graph: &Bigraph,
        recorder: Arc<dyn Recorder>,
    ) -> Partition {
        self.strategy
            .partition
            .partitioner_instrumented(self.config.seed, Some(recorder), self.tracer.clone())
            .partition(graph, &self.topology)
    }

    /// Runs training and returns the measurements.
    ///
    /// # Panics
    /// Panics on configuration or checkpoint I/O errors; use
    /// [`Trainer::try_run`] to handle them.
    pub fn run(&self) -> TrainResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("training run failed: {e}"))
    }

    /// Runs training and returns the measurements, or an error when the
    /// fault schedule does not match the topology or checkpoint I/O fails.
    pub fn try_run(&self) -> Result<TrainResult, HetGmpError> {
        let cfg = &self.config;
        let n = self.topology.num_workers();
        let faults = self
            .faults
            .clone()
            .unwrap_or_else(|| Arc::new(FaultSchedule::empty(n)));
        if faults.num_workers() != n {
            return Err(HetGmpError::config(
                "faults",
                format!(
                    "fault schedule covers {} workers but topology has {n}",
                    faults.num_workers()
                ),
            ));
        }
        // TrainerBuilder validates the ranges, but TrainerConfig's fields are
        // public — a hand-built config with a zero here would hang (no slots)
        // or panic (no GEMM workers) deep in the run.
        if cfg.pipeline_depth == 0 {
            return Err(HetGmpError::config("pipeline_depth", "must be at least 1"));
        }
        if cfg.gemm_threads == 0 {
            return Err(HetGmpError::config("gemm_threads", "must be at least 1"));
        }
        let manifest = RunManifest::new(
            cfg.seed,
            RunManifest::digest_of(&config_digest_text(&self.strategy, cfg)),
            n,
            cfg.pipeline_depth,
            cfg.gemm_threads,
        );
        if let Some(t) = &self.tracer {
            t.attach_manifest(manifest.clone());
        }
        let cost = CostModel::new(self.topology.clone()).with_faults(Arc::clone(&faults));
        // One registry for the whole run: the partitioner records globally,
        // each worker thread records into its own recorder (no hot-path
        // contention), and the final snapshot merges everything.
        let registry = MetricsRegistry::new(n);
        let auditor = if self.audit.is_on() {
            let bound = match self.strategy.staleness {
                StalenessBound::Bounded(s) => s as f64,
                StalenessBound::Infinite => f64::INFINITY,
            };
            Some(Arc::new(ProtocolAuditor::new(bound, self.audit)))
        } else {
            None
        };

        // ---- Data & partition ------------------------------------------------
        let split = self.dataset.split(cfg.test_fraction);
        let train_rows: Vec<Vec<u32>> = split
            .train
            .iter()
            .map(|&i| self.dataset.sample(i as usize).to_vec())
            .collect();
        let graph = Bigraph::from_samples(self.dataset.num_features, &train_rows);
        let partition = self.build_partition_recorded(&graph, registry.global());
        let partition_metrics = match self.strategy.embed_home {
            EmbedHome::Gpu => Some(PartitionMetrics::compute(&graph, &partition, None)),
            EmbedHome::CpuPs => None,
        };
        let freq: Vec<u64> = (0..graph.num_embeddings() as u32)
            .map(|e| graph.emb_frequency(e) as u64)
            .collect();

        // Worker shards (dataset indices).
        let shards: Vec<Vec<u32>> = partition
            .samples_by_partition()
            .into_iter()
            .map(|local| local.into_iter().map(|s| split.train[s as usize]).collect())
            .collect();
        // Iterations per epoch follow the *mean* shard size (workers with
        // smaller shards wrap around; persistent cursors even out coverage
        // across epochs). Using the max would let residual imbalance from
        // the partitioner's slack inflate every worker's iteration count.
        let mean_shard =
            (shards.iter().map(Vec::len).sum::<usize>() as f64 / n as f64).round() as usize;
        let iters_per_epoch = mean_shard.max(1).div_ceil(cfg.batch_size).max(1);

        // ---- Shared state ----------------------------------------------------
        let table = ShardedTable::new(self.dataset.num_features, cfg.dim, 0.05, cfg.seed);
        let group = AllReduceGroup::new(n);
        let mut ledger = TrafficLedger::from_registry(&registry);
        if let Some(t) = &self.tracer {
            ledger.attach_tracer(Arc::clone(t));
        }
        let ledger = ledger;
        let samples_processed = AtomicU64::new(0);
        // Training-loss accumulators (fixed-point micro-units so plain
        // atomics suffice).
        let loss_sum_micro = AtomicU64::new(0);
        let loss_batches = AtomicU64::new(0);

        // Per-worker persistent state: static vertex-cut replicas (HET-GMP)
        // or a dynamic LFU cache (HET-style), behind one trait.
        let mut embeddings: Vec<Box<dyn EmbeddingWorker + '_>> = (0..n as u32)
            .map(|w| -> Box<dyn EmbeddingWorker + '_> {
                match self.strategy.cache {
                    CacheDesign::StaticVertexCut => Box::new(WorkerEmbedding::new(
                        w,
                        &table,
                        &partition,
                        &freq,
                        self.strategy.staleness,
                    )),
                    CacheDesign::DynamicLfu { capacity_fraction } => {
                        let capacity =
                            (graph.num_embeddings() as f64 * capacity_fraction) as usize;
                        Box::new(CachedWorkerEmbedding::new(
                            w,
                            &table,
                            &partition,
                            capacity,
                            self.strategy.staleness,
                        ))
                    }
                }
            })
            .collect();
        for (w, emb) in embeddings.iter_mut().enumerate() {
            // Select the wire format before attaching telemetry: the
            // replica re-prime that a lossy format triggers is initial
            // placement, not steady-state traffic, so it stays uncharged
            // and unmetered like construction-time placement does.
            emb.set_sync_format(cfg.sync_format, cfg.sync_error_feedback);
            emb.attach_recorder(registry.worker(w));
            if let Some(a) = &auditor {
                emb.attach_auditor(Arc::clone(a));
            }
            if let Some(t) = &self.tracer {
                emb.attach_tracer(Arc::clone(t));
            }
            // Hooks must survive every construction path (a regression here
            // once silently dropped the auditor when a cache design rebuilt
            // its inner worker).
            debug_assert_eq!(
                emb.hooks_attached(),
                (true, auditor.is_some(), self.tracer.is_some()),
                "telemetry hooks dropped on worker {w}"
            );
        }
        let mut models: Vec<CtrModel> = (0..n)
            .map(|_| {
                CtrModel::new(
                    cfg.model,
                    self.dataset.num_fields,
                    cfg.dim,
                    &cfg.hidden,
                    cfg.seed, // identical init across workers
                )
            })
            .collect();
        // One batch-slot pool per worker: every per-batch buffer (tape arena,
        // embedding input, gradients) lives inside the pool's `StepCtx` slots
        // for the whole run (zero steady-state allocations); the pipelined
        // schedule double-buffers across them.
        let mut slot_pools: Vec<Vec<StepCtx>> = (0..n)
            .map(|_| (0..cfg.pipeline_depth).map(|_| StepCtx::new()).collect())
            .collect();
        let mut pipe_stats: Vec<PipelineStats> = vec![PipelineStats::default(); n];
        // Per-worker stage profilers persist across epochs (their timer
        // calibration is paid once) and flush into the worker recorders at
        // every epoch boundary.
        let mut profilers: Vec<StageProfiler> = (0..n).map(|_| StageProfiler::new()).collect();
        // Optional row-panel GEMM pools, one per worker; helper threads
        // persist across every epoch and batch.
        let gemm_pools: Vec<Option<Arc<GemmPool>>> = (0..n)
            .map(|_| (cfg.gemm_threads > 1).then(|| GemmPool::new(cfg.gemm_threads)))
            .collect();
        let dense_bytes = cfg.sync_format.dense_wire_bytes(models[0].num_dense_params());
        let flops_per_sample = models[0].flops_per_sample();
        // Per-worker compute scales and (optionally) speed-proportional
        // batch sizes so a straggler's BSP iteration takes as long as its
        // peers'.
        let compute_scales: Vec<f64> = match &cfg.compute_scales {
            Some(scales) => {
                assert_eq!(scales.len(), n, "compute_scales length != workers");
                assert!(scales.iter().all(|&s| s > 0.0), "scales must be positive");
                scales.clone()
            }
            None => vec![1.0; n],
        };
        let batch_sizes: Vec<usize> = if cfg.hetero_aware_batching {
            let speeds: Vec<f64> = compute_scales.iter().map(|&s| 1.0 / s).collect();
            let mean_speed = speeds.iter().sum::<f64>() / n as f64;
            speeds
                .iter()
                .map(|&sp| ((cfg.batch_size as f64 * sp / mean_speed).round() as usize).max(1))
                .collect()
        } else {
            vec![cfg.batch_size; n]
        };
        let mut clocks: Vec<SimClock> = (0..n)
            .map(|w| SimClock::with_recorder(registry.worker(w)))
            .collect();
        let mut cursors: Vec<usize> = vec![0; n];
        let mut fault_states: Vec<WorkerFaultState> =
            (0..n).map(|_| WorkerFaultState::default()).collect();
        let nonfinite = AtomicU64::new(0);
        let num_dense = models[0].num_dense_params();

        // ---- Resume ----------------------------------------------------------
        let mut start_epoch = 1usize;
        if let Some(path) = &cfg.resume_from {
            let file = File::open(path).map_err(|e| HetGmpError::io(path.clone(), e))?;
            let state = load_run(&table, &mut BufReader::new(file))
                .map_err(|e| e.into_workspace(path.clone()))?;
            if state.workers.len() != n {
                return Err(HetGmpError::config(
                    "resume_from",
                    format!(
                        "checkpoint has {} workers but topology has {n}",
                        state.workers.len()
                    ),
                ));
            }
            for (w, ws) in state.workers.iter().enumerate() {
                if ws.dense_params.len() != num_dense {
                    return Err(HetGmpError::config(
                        "resume_from",
                        format!(
                            "checkpoint dense model has {} parameters but this \
                             configuration has {num_dense}",
                            ws.dense_params.len()
                        ),
                    ));
                }
                models[w].load_params(&ws.dense_params);
                cursors[w] = ws.cursor as usize;
                // Seeding the resumed clock is a free forward jump: the time
                // before the checkpoint was already charged by the original
                // run.
                clocks[w].wait_until(ws.sim_time);
                // Skip fault events the original run already took.
                let events = faults.worker_faults(w);
                while fault_states[w].next < events.len()
                    && events[fault_states[w].next].at <= ws.sim_time
                {
                    fault_states[w].next += 1;
                }
            }
            start_epoch = state.epoch as usize + 1;
        }

        // In-memory image crashes roll back to; refreshed at every
        // checkpoint save. Only materialised when the schedule can crash.
        let mut ckpt_image: Option<Arc<CheckpointImage>> = faults
            .has_crashes()
            .then(|| Arc::new(CheckpointImage::capture(&table, &clocks, num_dense)));

        let worker_recorders: Vec<Arc<dyn Recorder>> = (0..n)
            .map(|w| registry.worker(w) as Arc<dyn Recorder>)
            .collect();

        let strategy = &self.strategy;
        let dataset = self.dataset;
        let topology = &self.topology;
        let cost_ref = &cost;
        let group_ref = &group;
        let ledger_ref = &ledger;
        let samples_ctr = &samples_processed;
        let loss_sum_ref = &loss_sum_micro;
        let loss_batches_ref = &loss_batches;
        let tracer_ref: Option<&TraceCollector> = self.tracer.as_deref();
        let auditor_ref: Option<&ProtocolAuditor> = auditor.as_deref();
        let faults_ref: &FaultSchedule = &faults;
        let nonfinite_ref = &nonfinite;
        let table_ref = &table;
        let partition_ref = &partition;

        // ---- Epoch loop ------------------------------------------------------
        let mut curve: Vec<EvalPoint> = Vec::with_capacity(cfg.epochs);
        let mut time_to_target: Option<f64> = None;
        // Cumulative pipeline counters at the previous epoch boundary, so
        // each EvalPoint carries this epoch's delta (the occupancy/stall
        // timeline `inspect report` renders).
        let (mut seen_prefetched, mut seen_batches, mut seen_stall) = (0u64, 0u64, 0.0f64);
        // Wall-clock throughput baseline (hotpath.*): simulated time measures
        // the modelled cluster; wall time measures this implementation.
        let wall_start = Instant::now();
        for epoch in start_epoch..=cfg.epochs {
            loss_sum_micro.store(0, Ordering::Relaxed);
            loss_batches.store(0, Ordering::Relaxed);
            std::thread::scope(|scope| {
                // Move disjoint &mut of per-worker state into threads.
                for (w, (((((emb, model), (clock, cursor)), fstate), (slots, pstats)), profiler)) in
                    embeddings
                        .iter_mut()
                        .zip(models.iter_mut())
                        .zip(clocks.iter_mut().zip(cursors.iter_mut()))
                        .zip(fault_states.iter_mut())
                        .zip(slot_pools.iter_mut().zip(pipe_stats.iter_mut()))
                        .zip(profilers.iter_mut())
                        .enumerate()
                {
                    let shard = &shards[w];
                    let compute_scale = compute_scales[w];
                    let batch_size = batch_sizes[w];
                    let image = ckpt_image.clone();
                    let recorder = Arc::clone(&worker_recorders[w]);
                    let pool = gemm_pools[w].clone();
                    scope.spawn(move || {
                        run_worker_epoch(WorkerEpoch {
                            w,
                            shard,
                            dataset,
                            emb: &mut **emb,
                            model,
                            slots,
                            pstats,
                            pool,
                            clock,
                            cursor,
                            iters: iters_per_epoch,
                            epoch,
                            cfg,
                            strategy,
                            topology,
                            cost: cost_ref,
                            group: group_ref,
                            ledger: ledger_ref,
                            dense_bytes,
                            flops_per_sample,
                            samples: samples_ctr,
                            loss_sum_micro: loss_sum_ref,
                            loss_batches: loss_batches_ref,
                            compute_scale,
                            batch_size,
                            tracer: tracer_ref,
                            auditor: auditor_ref,
                            table: table_ref,
                            partition: partition_ref,
                            faults: faults_ref,
                            fstate,
                            image,
                            nonfinite: nonfinite_ref,
                            recorder,
                            profiler,
                        });
                    });
                }
            });

            // Per-stage histograms leave the workers once per epoch — one
            // merge per (stage, kind) per worker, off the hot path.
            for (w, prof) in profilers.iter_mut().enumerate() {
                prof.flush(worker_recorders[w].as_ref());
            }

            // Strict audit: a tripped auditor aborted every worker at the
            // last iteration boundary; abandon the run without evaluating.
            if auditor.as_ref().is_some_and(|a| a.is_tripped()) {
                break;
            }

            // ---- Evaluation barrier -----------------------------------------
            // Flush deferred secondary gradients so the evaluation (and the
            // next epoch) sees every update; charge the write-backs.
            for (w, (emb, clock)) in embeddings.iter_mut().zip(clocks.iter_mut()).enumerate() {
                let rep = emb.flush_all(&cfg.embed_opt);
                if rep.data_bytes > 0 {
                    let mut t = 0.0;
                    for (dst, &bytes) in rep.data_bytes_by_dst.iter().enumerate() {
                        if bytes > 0 {
                            t += cost.transfer_time_at(w, dst, bytes, clock.now());
                        }
                    }
                    clock.advance(TimeCategory::EmbedComm, t);
                    ledger.record(w, TrafficClass::EmbedData, rep.data_bytes, rep.messages);
                    ledger.record(w, TrafficClass::KeysClocks, rep.meta_bytes, rep.messages);
                }
            }
            // Second pass, after *every* worker has flushed: re-prime local
            // replicas from the now-final table. This makes the state
            // entering the next epoch identical to what a checkpoint resume
            // reconstructs (resumed workers warm-load replicas from the
            // restored table), so a resumed run replays the uninterrupted
            // run's math.
            for (w, (emb, clock)) in embeddings.iter_mut().zip(clocks.iter_mut()).enumerate() {
                let refreshed = emb.sync_replicas();
                if refreshed > 0 {
                    let bytes = refreshed.saturating_mul(cfg.sync_format.row_wire_bytes(cfg.dim));
                    clock.advance(TimeCategory::EmbedComm, mean_link_time(w, &cost, bytes));
                    ledger.record(w, TrafficClass::EmbedData, bytes, refreshed);
                }
            }

            // ---- Periodic checkpoint ----------------------------------------
            // Written at the epoch boundary, after the flush above: nothing is
            // pending, so the file captures an exact, resumable state.
            if cfg.checkpoint_every > 0 && epoch % cfg.checkpoint_every == 0 {
                // TrainerBuilder validates this pairing, but TrainerConfig's
                // fields are public — a hand-built config can reach here with
                // no directory, and that must surface as a config error, not
                // a panic.
                let dir = cfg.checkpoint_dir.as_ref().ok_or_else(|| {
                    HetGmpError::config(
                        "checkpoint_dir",
                        "checkpoint_every > 0 but checkpoint_dir is unset",
                    )
                })?;
                std::fs::create_dir_all(dir).map_err(|e| HetGmpError::io(dir.clone(), e))?;
                let state = RunState {
                    epoch: epoch as u64,
                    workers: (0..n)
                        .map(|w| WorkerState {
                            sim_time: clocks[w].now(),
                            cursor: cursors[w] as u64,
                            dense_params: models[w].flatten_params(),
                        })
                        .collect(),
                };
                let path = dir.join(format!("ckpt-epoch-{epoch}.hgmr"));
                let file = File::create(&path).map_err(|e| HetGmpError::io(path.clone(), e))?;
                let mut writer = BufWriter::new(file);
                let bytes = save_run(&table, &state, &mut writer)
                    .map_err(|e| e.into_workspace(path.clone()))?;
                // Every worker streams its shard of the image over the host
                // link in parallel; charge each one its share.
                let io_t =
                    cost.link_transfer_time(LinkClass::HostPcie, bytes / n.max(1) as u64);
                let ckpt_start = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
                for clock in clocks.iter_mut() {
                    clock.advance(TimeCategory::HostIo, io_t);
                }
                registry.global().counter_add(names::CHECKPOINT_SAVES, 1);
                registry.global().counter_add(names::CHECKPOINT_BYTES, bytes);
                if let Some(t) = &self.tracer {
                    t.driver_span(
                        names::TRACE_CHECKPOINT,
                        ckpt_start,
                        io_t,
                        &[
                            ("epoch", Json::U64(epoch as u64)),
                            ("bytes", Json::U64(bytes)),
                        ],
                    );
                }
                // Future crashes roll back to this image instead of the
                // start-of-run one.
                if ckpt_image.is_some() {
                    ckpt_image = Some(Arc::new(CheckpointImage::capture(
                        &table, &clocks, num_dense,
                    )));
                }
            }

            let sim_time = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
            let (auc_v, ll) = self.evaluate(&mut models, &table, &split.test);
            let batches = loss_batches.load(Ordering::Relaxed).max(1);
            let train_loss =
                loss_sum_micro.load(Ordering::Relaxed) as f64 / 1e6 / batches as f64;
            let tot_prefetched: u64 = pipe_stats.iter().map(|p| p.prefetched).sum();
            let tot_batches: u64 = pipe_stats.iter().map(|p| p.batches).sum();
            let tot_stall: f64 = pipe_stats.iter().map(|p| p.stall_secs).sum();
            let epoch_batches = tot_batches - seen_batches;
            let stage_occupancy = if epoch_batches > 0 {
                (tot_prefetched - seen_prefetched) as f64 / epoch_batches as f64
            } else {
                0.0
            };
            let stall_secs = tot_stall - seen_stall;
            (seen_prefetched, seen_batches, seen_stall) = (tot_prefetched, tot_batches, tot_stall);
            curve.push(EvalPoint {
                epoch,
                sim_time,
                auc: auc_v,
                log_loss: ll,
                train_loss,
                stage_occupancy,
                stall_secs,
            });
            registry.global().gauge_set(names::TRAIN_AUC, auc_v);
            registry.global().gauge_set(names::TRAIN_SIM_TIME, sim_time);
            if let Some(target) = cfg.auc_target {
                if auc_v >= target && time_to_target.is_none() {
                    time_to_target = Some(sim_time);
                    break;
                }
            }
        }

        let per_worker: Vec<TimeBreakdown> = clocks.iter().map(|c| *c.breakdown()).collect();
        let mut breakdown = TimeBreakdown::default();
        for b in &per_worker {
            breakdown = breakdown.merged(b);
        }
        let sim_time = clocks.iter().map(|c| c.now()).fold(0.0, f64::max);
        let samples_total = samples_processed.load(Ordering::Relaxed);
        let final_auc = curve.last().map_or(0.5, |p| p.auc);
        registry
            .global()
            .counter_add(names::TRAIN_SAMPLES, samples_total);
        registry.global().gauge_set(names::TRAIN_SIM_TIME, sim_time);
        registry.global().gauge_set(names::TRAIN_AUC, final_auc);
        let wall_secs = wall_start.elapsed().as_secs_f64();
        registry.global().gauge_set(
            names::HOTPATH_SAMPLES_PER_SEC,
            if wall_secs > 0.0 {
                samples_total as f64 / wall_secs
            } else {
                0.0
            },
        );
        registry.global().gauge_set(
            names::HOTPATH_LOCK_ACQUISITIONS,
            table.lock_acquisitions() as f64,
        );
        // Dense-engine telemetry, aggregated over every slot's tape: real
        // GEMM work done, arena high-water mark, steady-state allocation
        // violations (must stay 0), and dense-path-only throughput.
        registry.global().counter_add(
            names::DENSE_GEMM_FLOPS,
            slot_pools.iter().flatten().map(|s| s.tape.flops()).sum::<u64>(),
        );
        registry.global().gauge_set(
            names::DENSE_ARENA_BYTES,
            slot_pools.iter().flatten().map(|s| s.tape.arena_bytes()).sum::<usize>() as f64,
        );
        registry.global().gauge_set(
            names::DENSE_TAPE_GROWTH,
            slot_pools.iter().flatten().map(|s| s.tape.post_warmup_growth()).sum::<u64>() as f64,
        );
        let dense_secs: f64 = slot_pools.iter().flatten().map(|s| s.tape.dense_secs).sum();
        let dense_samples: u64 = slot_pools.iter().flatten().map(|s| s.tape.dense_samples).sum();
        registry.global().gauge_set(
            names::DENSE_SAMPLES_PER_SEC,
            if dense_secs > 0.0 {
                dense_samples as f64 / dense_secs
            } else {
                0.0
            },
        );
        // Pipeline telemetry: configured shape, prefetch effectiveness, and
        // how much overlappable simulated time the overlap machinery hid.
        registry
            .global()
            .gauge_set(names::PIPELINE_DEPTH, cfg.pipeline_depth as f64);
        registry
            .global()
            .gauge_set(names::PIPELINE_GEMM_THREADS, cfg.gemm_threads as f64);
        let prefetched: u64 = pipe_stats.iter().map(|p| p.prefetched).sum();
        let pipe_batches: u64 = pipe_stats.iter().map(|p| p.batches).sum();
        registry
            .global()
            .counter_add(names::PIPELINE_PREFETCHED_BATCHES, prefetched);
        registry.global().gauge_set(
            names::PIPELINE_STALL_SECS,
            pipe_stats.iter().map(|p| p.stall_secs).sum::<f64>(),
        );
        registry.global().gauge_set(
            names::PIPELINE_PREFETCH_SECS,
            pipe_stats.iter().map(|p| p.prefetch_secs).sum::<f64>(),
        );
        registry.global().gauge_set(
            names::PIPELINE_STAGE_OCCUPANCY,
            if pipe_batches > 0 {
                prefetched as f64 / pipe_batches as f64
            } else {
                0.0
            },
        );
        let hidden: f64 = clocks.iter().map(|c| c.hidden_secs()).sum();
        let overlappable: f64 = clocks.iter().map(|c| c.overlappable_secs()).sum();
        registry.global().gauge_set(
            names::PIPELINE_OVERLAP_RATIO,
            if overlappable > 0.0 { hidden / overlappable } else { 0.0 },
        );
        // What the profilers cost this run: their own bookkeeping plus the
        // calibrated price of every timestamp the stage loops took. The
        // pipeline bench asserts this stays under 2% of hot-path wall time.
        registry.global().gauge_set(
            names::TELEMETRY_OVERHEAD_SECS,
            profilers.iter().map(StageProfiler::overhead_secs).sum::<f64>(),
        );
        Ok(TrainResult {
            strategy: self.strategy.name.clone(),
            final_auc,
            sim_time,
            time_to_target,
            samples_processed: samples_total,
            throughput: if sim_time > 0.0 {
                samples_total as f64 / sim_time
            } else {
                0.0
            },
            breakdown,
            per_worker,
            traffic_bytes: [
                ledger.total_bytes(TrafficClass::EmbedData),
                ledger.total_bytes(TrafficClass::KeysClocks),
                ledger.total_bytes(TrafficClass::AllReduce),
            ],
            partition_metrics,
            telemetry: registry.snapshot(),
            audit: auditor.as_ref().map(|a| a.summary()),
            nonfinite_batches: nonfinite.load(Ordering::Relaxed),
            manifest,
            curve,
        })
    }

    /// Evaluates test AUC/log-loss with the mean dense model and the fresh
    /// global embedding table.
    fn evaluate(
        &self,
        models: &mut [CtrModel],
        table: &ShardedTable,
        test: &[u32],
    ) -> (f64, f64) {
        let cfg = &self.config;
        let n = models.len();
        // Mean dense parameters (identical under BSP; averaged under ASP).
        let mut mean = models[0].flatten_params();
        for model in models.iter_mut().skip(1) {
            for (m, x) in mean.iter_mut().zip(model.flatten_params()) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut eval_model = CtrModel::new(
            cfg.model,
            self.dataset.num_fields,
            cfg.dim,
            &cfg.hidden,
            cfg.seed,
        );
        eval_model.load_params(&mean);

        let take = test.len().min(cfg.max_eval_samples);
        let mut scores = Vec::with_capacity(take);
        let mut labels = Vec::with_capacity(take);
        let fields = self.dataset.num_fields;
        let dim = cfg.dim;
        let mut row = vec![0.0f32; dim];
        for chunk in test[..take].chunks(512) {
            let mut input = Matrix::zeros(chunk.len(), fields * dim);
            for (r, &idx) in chunk.iter().enumerate() {
                let sample = self.dataset.sample(idx as usize);
                for (f, &e) in sample.iter().enumerate() {
                    table.read_row(e, &mut row);
                    input.row_mut(r)[f * dim..(f + 1) * dim].copy_from_slice(&row);
                }
                labels.push(self.dataset.label(idx as usize));
            }
            let logits = eval_model.forward(&input);
            scores.extend(logits.data().iter().map(|&z| 1.0 / (1.0 + (-z).exp())));
        }
        (auc(&scores, &labels), log_loss(&scores, &labels))
    }
}

/// Per-worker fault-injection cursor and accumulated downtime, persistent
/// across epochs (the schedule is consumed once per run).
#[derive(Debug, Default)]
pub(crate) struct WorkerFaultState {
    /// Index of the next unconsumed event in `faults.worker_faults(w)`.
    pub(crate) next: usize,
    /// Total stall seconds charged so far (gauge source).
    pub(crate) stall_secs: f64,
    /// Total crash-recovery seconds charged so far (gauge source).
    pub(crate) recovery_secs: f64,
}

/// In-memory copy of the last checkpoint: per-row values + clocks of the
/// whole embedding table and each worker's simulated time at capture. Crash
/// recovery rolls the crashed worker's primary rows back to this image.
/// Dense parameters are *not* stored: a recovering worker copies them from
/// any live peer (replicated under BSP), which is charged but needs no data.
pub(crate) struct CheckpointImage {
    pub(crate) clocks: Vec<u64>,
    pub(crate) values: Vec<f32>,
    /// Per-row Adagrad accumulators at capture time (`None` if the table
    /// held no optimizer state yet, i.e. the accumulators were all zero).
    /// Rollback must restore these alongside the values: an accumulator
    /// that kept post-crash curvature would shrink the replayed steps and
    /// diverge from the uninterrupted run.
    pub(crate) accums: Option<Vec<f32>>,
    pub(crate) sim_times: Vec<f64>,
    /// Serialized size of the equivalent on-disk checkpoint; used to charge
    /// restore transfer time.
    pub(crate) bytes: u64,
}

impl CheckpointImage {
    fn capture(table: &ShardedTable, clocks: &[SimClock], dense_len: usize) -> Self {
        let rows = table.num_rows();
        let dim = table.dim();
        let mut row_clocks = Vec::with_capacity(rows);
        let mut values = vec![0.0f32; rows * dim];
        for r in 0..rows as u32 {
            let c = table.read_row(r, &mut values[r as usize * dim..(r as usize + 1) * dim]);
            row_clocks.push(c);
        }
        let accums = table.has_optimizer_state().then(|| {
            let mut a = vec![0.0f32; rows * dim];
            for r in 0..rows as u32 {
                table.read_accum(r, &mut a[r as usize * dim..(r as usize + 1) * dim]);
            }
            a
        });
        Self {
            clocks: row_clocks,
            values,
            accums,
            sim_times: clocks.iter().map(|c| c.now()).collect(),
            bytes: run_encoded_len(table, clocks.len(), dense_len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_data::{generate, DatasetSpec};

    fn tiny_dataset() -> CtrDataset {
        let mut spec = DatasetSpec::tiny();
        spec.num_samples = 512;
        generate(&spec)
    }

    fn fast_config() -> TrainerConfig {
        TrainerConfig {
            epochs: 2,
            batch_size: 64,
            dim: 8,
            hidden: vec![16],
            max_eval_samples: 256,
            ..Default::default()
        }
    }

    #[test]
    fn builder_validates_hyper_parameters() {
        let ok = TrainerConfig::builder()
            .dim(8)
            .hidden(vec![16])
            .batch_size(64)
            .epochs(2)
            .test_fraction(0.2)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(ok.dim, 8);
        assert_eq!(ok.hidden, vec![16]);
        assert_eq!(ok.test_fraction, 0.2);

        let err = TrainerConfig::builder().dim(0).build().unwrap_err();
        assert!(err.to_string().contains("dim"), "{err}");
        assert_eq!(err.exit_code(), 78);
        assert!(TrainerConfig::builder().hidden(vec![]).build().is_err());
        assert!(TrainerConfig::builder().hidden(vec![16, 0]).build().is_err());
        assert!(TrainerConfig::builder().test_fraction(0.0).build().is_err());
        assert!(TrainerConfig::builder().test_fraction(1.0).build().is_err());
        assert!(TrainerConfig::builder().batch_size(0).build().is_err());
        assert!(TrainerConfig::builder()
            .compute_scales(Some(vec![1.0, 0.0]))
            .build()
            .is_err());
    }

    #[test]
    fn het_gmp_trains_and_improves_auc() {
        let data = tiny_dataset();
        let trainer = Trainer::new(
            &data,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp(100),
            TrainerConfig {
                epochs: 4,
                ..fast_config()
            },
        );
        let result = trainer.run();
        assert_eq!(result.curve.len(), 4);
        assert!(result.final_auc > 0.6, "AUC {}", result.final_auc);
        assert!(result.sim_time > 0.0);
        assert!(result.throughput > 0.0);
        // Simulated time increases monotonically along the curve.
        for wpair in result.curve.windows(2) {
            assert!(wpair[1].sim_time >= wpair[0].sim_time);
        }
    }

    #[test]
    fn baselines_run_all_strategies() {
        let data = tiny_dataset();
        for strat in [
            StrategyConfig::tf_ps(),
            StrategyConfig::parallax(),
            StrategyConfig::hugectr(),
            StrategyConfig::het_mp(),
            StrategyConfig::het_gmp_asp(),
        ] {
            let trainer = Trainer::new(
                &data,
                Topology::pcie_island(2),
                strat.clone(),
                fast_config(),
            );
            let r = trainer.run();
            assert!(r.sim_time > 0.0, "{}: no time charged", strat.name);
            assert!(r.samples_processed > 0);
        }
    }

    #[test]
    fn het_gmp_communicates_less_than_het_mp() {
        // Needs a dataset with real locality/skew for partitioning to bite;
        // tiny()'s 120-row table is too dense to separate the systems.
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let topo = Topology::pcie_island(4);
        let mp = Trainer::new(&data, topo.clone(), StrategyConfig::het_mp(), fast_config()).run();
        let gmp = Trainer::new(
            &data,
            topo,
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .run();
        assert!(
            gmp.traffic_bytes[0] < mp.traffic_bytes[0],
            "embed traffic: gmp {} vs mp {}",
            gmp.traffic_bytes[0],
            mp.traffic_bytes[0]
        );
    }

    #[test]
    fn cpu_ps_slower_than_gpu_mp() {
        // Needs enough unique rows per batch (and a representative embedding
        // width) for the shared host link to become the bottleneck, as in
        // the paper's Figure 7.
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let topo = Topology::pcie_island(4);
        let cfg = TrainerConfig {
            dim: 32,
            batch_size: 128,
            ..fast_config()
        };
        let tf = Trainer::new(&data, topo.clone(), StrategyConfig::tf_ps(), cfg.clone()).run();
        let mp = Trainer::new(&data, topo, StrategyConfig::het_mp(), cfg).run();
        assert!(
            tf.throughput < mp.throughput,
            "tf {} vs mp {}",
            tf.throughput,
            mp.throughput
        );
    }

    #[test]
    fn het_dynamic_cache_trains() {
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let topo = Topology::pcie_island(4);
        let het = Trainer::new(
            &data,
            topo.clone(),
            StrategyConfig::het_cache(100, 0.02),
            fast_config(),
        )
        .run();
        assert!(het.final_auc > 0.6, "AUC {}", het.final_auc);
        // The cache adapts: HET moves fewer embedding bytes than the
        // cache-less HugeCTR on the same placement.
        let hc = Trainer::new(&data, topo, StrategyConfig::hugectr(), fast_config()).run();
        assert!(
            het.traffic_bytes[0] < hc.traffic_bytes[0],
            "HET {} !< HugeCTR {}",
            het.traffic_bytes[0],
            hc.traffic_bytes[0]
        );
    }

    #[test]
    fn single_worker_no_comm() {
        let data = tiny_dataset();
        let r = Trainer::new(
            &data,
            Topology::cluster_b_scaled(1),
            StrategyConfig::het_mp(),
            fast_config(),
        )
        .run();
        assert_eq!(r.traffic_bytes[0], 0, "single worker should be all-local");
        assert!(r.breakdown.compute > 0.0);
    }

    #[test]
    fn strict_audit_bsp_has_zero_violations() {
        use hetgmp_telemetry::AuditMode;
        let data = tiny_dataset();
        // BSP (s = 0): every read must be served perfectly fresh; a correct
        // protocol implementation never violates the bound.
        let r = Trainer::new(
            &data,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp(0),
            fast_config(),
        )
        .with_audit(AuditMode::Strict)
        .run();
        let audit = r.audit.expect("audit enabled");
        assert_eq!(audit.total_violations(), 0, "{}", audit.render());
        assert!(audit.strict_failure.is_none());
        assert!(audit.intra_reads + audit.inter_checks > 0, "auditor saw no decisions");
        assert_eq!(audit.bound, 0.0);
        // The full curve ran: strict mode did not abort.
        assert_eq!(r.curve.len(), 2);
    }

    #[test]
    fn audit_asp_observes_drift_without_violations() {
        use hetgmp_telemetry::AuditMode;
        let data = generate(&DatasetSpec::avazu_like(0.05));
        let r = Trainer::new(
            &data,
            Topology::pcie_island(4),
            StrategyConfig::het_gmp_asp(),
            fast_config(),
        )
        .with_audit(AuditMode::Count)
        .run();
        let audit = r.audit.expect("audit enabled");
        // s = ∞ admits every gap: no read can violate it…
        assert_eq!(audit.total_violations(), 0);
        // …but secondaries genuinely drift from their primaries.
        assert!(
            audit.max_intra_gap > 0.0,
            "ASP run showed no staleness drift: {}",
            audit.render()
        );
        assert!(audit.bound.is_infinite());
    }

    #[test]
    fn traced_run_covers_workers_and_links() {
        use hetgmp_telemetry::{TraceCollector, TraceLevel, TraceTrack};
        let data = tiny_dataset();
        let tracer = Arc::new(TraceCollector::new(2, TraceLevel::Sync));
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .with_tracer(Arc::clone(&tracer))
        .run();
        assert!(r.sim_time > 0.0);
        let events = tracer.events();
        for w in 0..2 {
            assert!(
                events
                    .iter()
                    .any(|e| e.track == TraceTrack::Worker(w) && e.name == names::TRACE_BATCH),
                "no batch spans for worker {w}"
            );
            assert!(events
                .iter()
                .any(|e| e.track == TraceTrack::Worker(w) && e.name == names::TRACE_EPOCH));
        }
        // Two workers on one PCIe island exchange embedding bytes.
        assert!(
            events
                .iter()
                .any(|e| matches!(&e.track, TraceTrack::Link(_))
                    && e.name == names::TRACE_LINK_TRANSFER),
            "no link transfer spans"
        );
        // Algorithm 1's rounds land on the driver track.
        assert!(events
            .iter()
            .any(|e| e.track == TraceTrack::Driver && e.name == names::TRACE_PARTITION_ROUND));
        // Durations are simulated time: every batch span fits in the run.
        for e in events.iter().filter(|e| e.name == names::TRACE_BATCH) {
            assert!(e.dur_us >= 0.0 && e.ts_us + e.dur_us <= r.sim_time * 1e6 + 1.0);
        }
    }

    #[test]
    fn time_to_target_recorded() {
        let data = tiny_dataset();
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            TrainerConfig {
                epochs: 8,
                auc_target: Some(0.55),
                ..fast_config()
            },
        )
        .run();
        assert!(r.time_to_target.is_some(), "target never reached");
        // Early stop: fewer curve points than epochs.
        assert!(r.curve.len() <= 8);
    }

    #[test]
    fn builder_validates_checkpoint_fields() {
        // Period without a directory (and vice versa) is a config error.
        let err = TrainerConfig::builder()
            .checkpoint_every(2)
            .build()
            .unwrap_err();
        assert_eq!(err.exit_code(), 78, "{err}");
        assert!(TrainerConfig::builder()
            .checkpoint_dir(Some(PathBuf::from("/tmp/ckpts")))
            .build()
            .is_err());
        assert!(TrainerConfig::builder()
            .checkpoint_every(2)
            .checkpoint_dir(Some(PathBuf::from("/tmp/ckpts")))
            .build()
            .is_ok());
    }

    #[test]
    fn hand_built_config_missing_checkpoint_dir_is_an_error_not_a_panic() {
        // TrainerConfig's fields are public, so a caller can bypass
        // TrainerBuilder's validation entirely; the trainer must still
        // surface the broken pairing as a config error, not a panic at the
        // first checkpoint boundary.
        let data = tiny_dataset();
        let err = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            TrainerConfig {
                checkpoint_every: 1,
                checkpoint_dir: None,
                ..fast_config()
            },
        )
        .try_run()
        .unwrap_err();
        assert_eq!(err.exit_code(), 78, "{err}");
        assert!(err.to_string().contains("checkpoint_dir"), "{err}");
    }

    #[test]
    fn run_records_hotpath_baseline_metrics() {
        let data = tiny_dataset();
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .run();
        assert!(r.telemetry.counter(names::HOTPATH_BATCH_READ_ROWS) > 0);
        assert!(r.telemetry.counter(names::HOTPATH_BATCH_APPLY_ROWS) > 0);
        assert!(
            r.telemetry.gauge(names::HOTPATH_LOCK_ACQUISITIONS).unwrap_or(0.0) > 0.0,
            "lock gauge missing"
        );
        assert!(
            r.telemetry.gauge(names::HOTPATH_SAMPLES_PER_SEC).unwrap_or(0.0) > 0.0,
            "throughput gauge missing"
        );
    }

    #[test]
    fn fault_schedule_must_match_topology() {
        let data = tiny_dataset();
        let faults = Arc::new(FaultSchedule::empty(3));
        let err = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .with_faults(faults)
        .try_run()
        .unwrap_err();
        assert_eq!(err.exit_code(), 78, "{err}");
    }

    #[test]
    fn normal_run_has_no_nonfinite_batches() {
        let data = tiny_dataset();
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .run();
        assert_eq!(r.nonfinite_batches, 0);
    }

    #[test]
    fn faulted_bsp_run_recovers_and_audits_clean() {
        use hetgmp_telemetry::AuditMode;
        let data = tiny_dataset();
        // One stall on worker 0 at t=0 and one crash on worker 1 shortly
        // after training starts, under the strictest protocol setting
        // (BSP, strict audit): the run must complete its full curve with
        // zero violations, and the downtime must appear as fault time.
        let faults = Arc::new(
            FaultSchedule::parse("stall@0:0.0:0.003; crash@1:0.000001", 2, 42).unwrap(),
        );
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(0),
            fast_config(),
        )
        .with_audit(AuditMode::Strict)
        .with_faults(faults)
        .run();
        let audit = r.audit.expect("audit enabled");
        assert_eq!(audit.total_violations(), 0, "{}", audit.render());
        assert!(audit.strict_failure.is_none());
        assert_eq!(r.curve.len(), 2, "faulted run did not complete");
        assert!(r.breakdown.fault > 0.0, "no fault time charged");
        assert_eq!(r.telemetry.counter(names::FAULT_CRASHES), 1);
        assert_eq!(r.telemetry.counter(names::FAULT_STALLS), 1);
        assert!(r.telemetry.gauge(names::FAULT_RECOVERY_SECS).unwrap_or(0.0) > 0.0);
        // Faults slow the run down but never change the math's correctness.
        assert!(r.final_auc > 0.55, "AUC collapsed under faults: {}", r.final_auc);
    }

    #[test]
    fn faulted_run_emits_fault_trace_events() {
        use hetgmp_telemetry::{TraceCollector, TraceLevel, TraceTrack};
        let data = tiny_dataset();
        let tracer = Arc::new(TraceCollector::new(2, TraceLevel::Sync));
        let faults = Arc::new(
            FaultSchedule::parse("stall@0:0.0:0.002; crash@1:0.000001", 2, 42).unwrap(),
        );
        Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(100),
            fast_config(),
        )
        .with_tracer(Arc::clone(&tracer))
        .with_faults(faults)
        .run();
        let events = tracer.events();
        assert!(events
            .iter()
            .any(|e| e.track == TraceTrack::Worker(0) && e.name == names::TRACE_FAULT_STALL));
        assert!(events
            .iter()
            .any(|e| e.track == TraceTrack::Worker(1) && e.name == names::TRACE_FAULT_CRASH));
        assert!(events
            .iter()
            .any(|e| e.track == TraceTrack::Worker(1) && e.name == names::TRACE_FAULT_RECOVERY));
    }

    #[test]
    fn checkpointed_run_writes_resumable_files() {
        let dir = std::env::temp_dir().join(format!(
            "hetgmp-trainer-ckpt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let data = tiny_dataset();
        let cfg = TrainerConfig {
            checkpoint_every: 1,
            checkpoint_dir: Some(dir.clone()),
            ..fast_config()
        };
        let r = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(0),
            cfg,
        )
        .run();
        assert_eq!(r.telemetry.counter(names::CHECKPOINT_SAVES), 2);
        assert!(r.telemetry.counter(names::CHECKPOINT_BYTES) > 0);
        for epoch in 1..=2 {
            let path = dir.join(format!("ckpt-epoch-{epoch}.hgmr"));
            assert!(path.is_file(), "missing {}", path.display());
        }
        // Resume from epoch 1's checkpoint: the resumed run replays epoch 2
        // from identical state (the epoch barrier re-primes replicas to
        // exactly what a resume warm-loads, and the intra-iteration phase
        // fences plus order-independent AllReduce make the math replayable),
        // so the final AUC must agree within the acceptance tolerance.
        let resumed = Trainer::new(
            &data,
            Topology::pcie_island(2),
            StrategyConfig::het_gmp(0),
            TrainerConfig {
                resume_from: Some(dir.join("ckpt-epoch-1.hgmr")),
                ..fast_config()
            },
        )
        .run();
        assert_eq!(resumed.curve.len(), 1, "resume should only run epoch 2");
        assert_eq!(resumed.curve[0].epoch, 2);
        assert!(
            (resumed.final_auc - r.final_auc).abs() < 0.01,
            "resumed {} vs uninterrupted {}",
            resumed.final_auc,
            r.final_auc
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
