//! In-memory CTR dataset, batching, and bigraph export.

use hetgmp_bigraph::Bigraph;

/// A materialised CTR dataset.
///
/// Samples are stored row-major: sample `i` occupies
/// `features[i*num_fields .. (i+1)*num_fields]`, each entry a **global**
/// feature id (embedding-table row). Labels are `0.0` / `1.0`.
#[derive(Debug, Clone)]
pub struct CtrDataset {
    /// Dataset name (propagated from the spec).
    pub name: String,
    /// Number of fields per sample.
    pub num_fields: usize,
    /// Total number of features (embedding rows).
    pub num_features: usize,
    /// Flattened `num_samples × num_fields` feature-id matrix.
    pub features: Vec<u32>,
    /// Click labels, one per sample.
    pub labels: Vec<f32>,
    /// Latent cluster of each sample (generator metadata; useful for
    /// verifying that partitioning recovers the planted structure).
    pub clusters: Vec<u16>,
}

impl CtrDataset {
    /// Number of samples.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.labels.len()
    }

    /// Feature ids of sample `i`.
    #[inline]
    pub fn sample(&self, i: usize) -> &[u32] {
        &self.features[i * self.num_fields..(i + 1) * self.num_fields]
    }

    /// Label of sample `i`.
    #[inline]
    pub fn label(&self, i: usize) -> f32 {
        self.labels[i]
    }

    /// Base click-through rate (mean label).
    pub fn ctr(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(|&l| l as f64).sum::<f64>() / self.labels.len() as f64
    }

    /// Exports the access pattern as a [`Bigraph`] (paper §5.1): one sample
    /// vertex per row, one embedding vertex per feature, an edge per lookup.
    pub fn to_bigraph(&self) -> Bigraph {
        let edges: Vec<(u32, u32)> = (0..self.num_samples())
            .flat_map(|i| {
                self.sample(i)
                    .iter()
                    .map(move |&f| (i as u32, f))
                    .collect::<Vec<_>>()
            })
            .collect();
        Bigraph::from_edges(self.num_samples(), self.num_features, &edges)
    }

    /// Splits into train/test by holding out every `1/test_fraction`-th
    /// sample (deterministic, preserves cluster mixture).
    ///
    /// # Panics
    /// Panics unless `0.0 < test_fraction < 1.0`.
    pub fn split(&self, test_fraction: f64) -> TrainTestSplit {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1), got {test_fraction}"
        );
        let stride = (1.0 / test_fraction).round().max(2.0) as usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for i in 0..self.num_samples() {
            if i % stride == stride - 1 {
                test.push(i as u32);
            } else {
                train.push(i as u32);
            }
        }
        TrainTestSplit { train, test }
    }

    /// Iterator over mini-batches of the given sample index list.
    pub fn batches<'a>(&'a self, indices: &'a [u32], batch_size: usize) -> BatchIter<'a> {
        assert!(batch_size > 0, "batch_size must be positive");
        BatchIter {
            dataset: self,
            indices,
            batch_size,
            cursor: 0,
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.features.len() * 4 + self.labels.len() * 4 + self.clusters.len() * 2
    }
}

/// Train/test index lists produced by [`CtrDataset::split`].
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training-sample indices.
    pub train: Vec<u32>,
    /// Held-out test-sample indices.
    pub test: Vec<u32>,
}

/// One mini-batch: borrowed feature rows + labels.
#[derive(Debug)]
pub struct Batch<'a> {
    /// The sample indices in this batch.
    pub indices: &'a [u32],
    dataset: &'a CtrDataset,
}

impl<'a> Batch<'a> {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when empty (never produced by [`BatchIter`]).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Feature ids of the `j`-th sample in the batch.
    pub fn sample(&self, j: usize) -> &'a [u32] {
        self.dataset.sample(self.indices[j] as usize)
    }

    /// Label of the `j`-th sample in the batch.
    pub fn label(&self, j: usize) -> f32 {
        self.dataset.label(self.indices[j] as usize)
    }

    /// All distinct feature ids accessed by this batch, sorted ascending —
    /// the batch's embedding-lookup working set.
    pub fn unique_features(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .indices
            .iter()
            .flat_map(|&i| self.dataset.sample(i as usize).iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Iterator over consecutive mini-batches (last batch may be short).
#[derive(Debug)]
pub struct BatchIter<'a> {
    dataset: &'a CtrDataset,
    indices: &'a [u32],
    batch_size: usize,
    cursor: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Batch<'a>;

    fn next(&mut self) -> Option<Batch<'a>> {
        if self.cursor >= self.indices.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.indices.len());
        let batch = Batch {
            indices: &self.indices[self.cursor..end],
            dataset: self.dataset,
        };
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CtrDataset {
        CtrDataset {
            name: "toy".into(),
            num_fields: 2,
            num_features: 6,
            features: vec![0, 3, 1, 4, 2, 5, 0, 4],
            labels: vec![1.0, 0.0, 1.0, 0.0],
            clusters: vec![0, 0, 1, 1],
        }
    }

    #[test]
    fn sample_access() {
        let d = toy();
        assert_eq!(d.num_samples(), 4);
        assert_eq!(d.sample(0), &[0, 3]);
        assert_eq!(d.sample(3), &[0, 4]);
        assert_eq!(d.label(2), 1.0);
        assert_eq!(d.ctr(), 0.5);
    }

    #[test]
    fn bigraph_export() {
        let d = toy();
        let g = d.to_bigraph();
        assert_eq!(g.num_samples(), 4);
        assert_eq!(g.num_embeddings(), 6);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.emb_frequency(0), 2);
        assert_eq!(g.emb_frequency(4), 2);
    }

    #[test]
    fn split_deterministic_disjoint() {
        let d = toy();
        let s = d.split(0.25);
        assert_eq!(s.train.len() + s.test.len(), 4);
        for t in &s.test {
            assert!(!s.train.contains(t));
        }
        let s2 = d.split(0.25);
        assert_eq!(s.train, s2.train);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn split_rejects_bad_fraction() {
        toy().split(1.5);
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy();
        let idx: Vec<u32> = (0..4).collect();
        let sizes: Vec<usize> = d.batches(&idx, 3).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![3, 1]);
        let seen: Vec<u32> = d
            .batches(&idx, 3)
            .flat_map(|b| b.indices.to_vec())
            .collect();
        assert_eq!(seen, idx);
    }

    #[test]
    fn batch_unique_features_sorted_dedup() {
        let d = toy();
        let idx: Vec<u32> = (0..4).collect();
        let batch = d.batches(&idx, 4).next().expect("one batch");
        assert_eq!(batch.unique_features(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(batch.sample(3), &[0, 4]);
        assert_eq!(batch.label(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_size_panics() {
        let d = toy();
        let idx = [0u32];
        let _ = d.batches(&idx, 0);
    }
}
