//! Synthetic CTR dataset generator with planted skewness, locality and a
//! logistic ground-truth labelling model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::CtrDataset;
use crate::spec::DatasetSpec;
use crate::zipf::Zipf;

/// Generates a dataset from a [`DatasetSpec`]. Deterministic in `spec.seed`.
///
/// Generation model, per sample:
/// 1. draw a latent cluster `c ~ Uniform(num_clusters)`;
/// 2. for every field `f`: with probability `cluster_affinity` draw the
///    feature from cluster `c`'s contiguous slice of field `f`'s vocabulary
///    (Zipf-ranked within the slice), otherwise draw from the whole field
///    vocabulary (Zipf-ranked globally) — this plants both *skewness* (Zipf)
///    and *locality* (cluster slices);
/// 3. the label is `Bernoulli(σ(Σ_f w[x_f] / √F + b_c))` where `w` are
///    planted per-feature weights and `b_c` a small per-cluster bias, so a
///    trained model has real signal to recover (test AUC well above 0.5).
pub fn generate(spec: &DatasetSpec) -> CtrDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let num_fields = spec.num_fields();
    let total = spec.total_features();
    assert!(num_fields > 0, "dataset must have at least one field");
    assert!(
        (0.0..=1.0).contains(&spec.cluster_affinity),
        "cluster_affinity must be in [0,1]"
    );
    assert!(spec.num_clusters > 0, "need at least one cluster");

    // Planted ground-truth weights (Box–Muller normals).
    let weights: Vec<f32> = (0..total)
        .map(|_| normal(&mut rng) as f32 * spec.weight_std as f32)
        .collect();
    let cluster_bias: Vec<f32> = (0..spec.num_clusters)
        .map(|_| normal(&mut rng) as f32 * 0.3)
        .collect();

    // Per-field samplers: one global Zipf and per-cluster slice Zipfs.
    // A slice is a contiguous range of the field vocabulary; slices are only
    // meaningful when the field vocabulary is at least num_clusters wide.
    struct FieldSampler {
        offset: usize,
        vocab: usize,
        global: Zipf,
        slice: Zipf,
    }
    let field_samplers: Vec<FieldSampler> = (0..num_fields)
        .map(|f| {
            let vocab = spec.field_vocab[f];
            let slice_len = (vocab / spec.num_clusters).max(1);
            FieldSampler {
                offset: spec.field_offset(f),
                vocab,
                global: Zipf::new(vocab, spec.zipf_exponent),
                slice: Zipf::new(slice_len, spec.zipf_exponent),
            }
        })
        .collect();

    let mut features = Vec::with_capacity(spec.num_samples * num_fields);
    let mut labels = Vec::with_capacity(spec.num_samples);
    let mut clusters = Vec::with_capacity(spec.num_samples);
    let inv_sqrt_f = 1.0 / (num_fields as f32).sqrt();

    for _ in 0..spec.num_samples {
        let c = rng.gen_range(0..spec.num_clusters);
        clusters.push(c as u16);
        let mut logit = cluster_bias[c];
        for fs in &field_samplers {
            let local: usize = if rng.gen::<f64>() < spec.cluster_affinity {
                // Cluster slice: rotate the slice start by cluster so hot
                // ranks differ per cluster.
                let slice_len = fs.slice.len();
                let start = (c * slice_len) % fs.vocab;
                (start + fs.slice.sample(&mut rng)) % fs.vocab
            } else {
                fs.global.sample(&mut rng)
            };
            let gid = (fs.offset + local) as u32;
            features.push(gid);
            logit += weights[gid as usize] * inv_sqrt_f;
        }
        let p = sigmoid(logit);
        labels.push(if rng.gen::<f32>() < p { 1.0 } else { 0.0 });
    }

    CtrDataset {
        name: spec.name.clone(),
        num_fields,
        num_features: total,
        features,
        labels,
        clusters,
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// One standard normal via Box–Muller.
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_bigraph::{CooccurrenceConfig, CooccurrenceGraph, DegreeStats};

    #[test]
    fn deterministic_in_seed() {
        let spec = DatasetSpec::tiny();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        let mut spec2 = spec.clone();
        spec2.seed += 1;
        let c = generate(&spec2);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn shape_matches_spec() {
        let spec = DatasetSpec::tiny();
        let d = generate(&spec);
        assert_eq!(d.num_samples(), spec.num_samples);
        assert_eq!(d.num_fields, spec.num_fields());
        assert_eq!(d.num_features, spec.total_features());
        assert_eq!(d.features.len(), spec.num_samples * spec.num_fields());
        // Every feature id falls in its field's vocabulary range.
        for i in 0..d.num_samples() {
            let row = d.sample(i);
            for (f, &gid) in row.iter().enumerate() {
                let lo = spec.field_offset(f) as u32;
                let hi = lo + spec.field_vocab[f] as u32;
                assert!(gid >= lo && gid < hi, "field {f}: {gid} not in [{lo},{hi})");
            }
        }
    }

    #[test]
    fn labels_are_binary_and_mixed() {
        let d = generate(&DatasetSpec::tiny());
        assert!(d.labels.iter().all(|&l| l == 0.0 || l == 1.0));
        let ctr = d.ctr();
        assert!(ctr > 0.05 && ctr < 0.95, "degenerate CTR {ctr}");
    }

    #[test]
    fn skewness_planted() {
        let mut spec = DatasetSpec::tiny();
        spec.num_samples = 4096;
        let d = generate(&spec);
        let g = d.to_bigraph();
        let stats = DegreeStats::embeddings(&g);
        assert!(stats.gini > 0.4, "gini = {} too even", stats.gini);
        // tiny() has only 120 features over 4 fields, so the hottest 12
        // features cannot hold a large share of the 4-per-sample lookups;
        // 30% already demonstrates heavy skew at this scale.
        assert!(
            stats.top10pct_mass > 0.3,
            "top10pct_mass = {}",
            stats.top10pct_mass
        );
    }

    #[test]
    fn locality_planted() {
        let mut spec = DatasetSpec::tiny();
        spec.num_samples = 2048;
        spec.cluster_affinity = 0.95;
        let d = generate(&spec);
        let g = d.to_bigraph();
        // Cluster the co-occurrence graph by the *planted* clusters: density
        // should beat a shuffled assignment by a wide margin.
        let co = CooccurrenceGraph::build(&g, &CooccurrenceConfig::default());
        // Assign each embedding to the cluster that uses it most.
        let mut counts = vec![[0u32; 4]; d.num_features];
        for i in 0..d.num_samples() {
            let c = d.clusters[i] as usize;
            for &f in d.sample(i) {
                counts[f as usize][c] += 1;
            }
        }
        let assignment: Vec<u32> = counts
            .iter()
            .map(|cs| {
                cs.iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0)
            })
            .collect();
        let planted = co.diagonal_density(&assignment, 4);
        let shuffled: Vec<u32> = (0..d.num_features as u32).map(|i| i % 4).collect();
        let random = co.diagonal_density(&shuffled, 4);
        assert!(
            planted > random + 0.2,
            "planted {planted} vs random {random}"
        );
    }

    #[test]
    fn affinity_zero_removes_locality() {
        let mut spec = DatasetSpec::tiny();
        spec.cluster_affinity = 0.0;
        spec.num_samples = 512;
        let d = generate(&spec);
        assert_eq!(d.num_samples(), 512); // just exercises the code path
    }

    #[test]
    fn labels_correlate_with_planted_weights() {
        // With strong weights, the empirical CTR conditioned on hot features
        // should vary — check label entropy is not independent of features by
        // verifying per-cluster CTRs differ (cluster bias is planted).
        let mut spec = DatasetSpec::tiny();
        spec.num_samples = 8192;
        spec.weight_std = 2.5;
        let d = generate(&spec);
        let mut sums = vec![(0.0f64, 0usize); spec.num_clusters];
        for i in 0..d.num_samples() {
            let c = d.clusters[i] as usize;
            sums[c].0 += d.labels[i] as f64;
            sums[c].1 += 1;
        }
        let ctrs: Vec<f64> = sums.iter().map(|&(s, n)| s / n.max(1) as f64).collect();
        let spread = ctrs.iter().cloned().fold(f64::MIN, f64::max)
            - ctrs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.01, "per-cluster CTRs too uniform: {ctrs:?}");
    }

    #[test]
    fn paper_preset_generation_smoke() {
        let d = generate(&DatasetSpec::avazu_like(0.02));
        assert!(d.num_samples() >= 64);
        assert_eq!(d.num_fields, 22);
    }
}
