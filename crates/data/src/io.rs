//! Dataset import/export: libsvm-style sparse lines and CSV with the
//! hashing trick.
//!
//! The paper's public datasets (Avazu, Criteo) are distributed as CSV/TSV of
//! categorical fields; the common interchange for one-hot CTR data is the
//! libsvm format. These readers let a downstream user run the real datasets
//! through this system instead of the synthetic generators (the experiments
//! only require a [`CtrDataset`]).

use std::io::{BufRead, Write};

use hetgmp_telemetry::HetGmpError;

use crate::dataset::CtrDataset;

/// Errors raised while parsing a dataset file — the workspace-wide
/// [`HetGmpError`]. Malformed content carries a 1-based line number;
/// invalid arguments (`num_fields == 0`) are `Config` errors, not panics.
pub type ParseError = HetGmpError;

/// Wraps a reader-level I/O failure. The readers here take any `BufRead`,
/// so there is no file path to attribute; the CLI attributes the path when
/// it opens the file.
fn stream_err(e: std::io::Error) -> HetGmpError {
    HetGmpError::io("<stream>", e)
}

/// Reads libsvm-style lines: `label idx[:val] idx[:val] …` where `idx` is a
/// global feature id (values, if present, are ignored — CTR features are
/// one-hot). Lines are padded/truncated to exactly `num_fields` features;
/// padding uses a dedicated feature id appended to the vocabulary.
///
/// Returns a dataset whose `num_features` covers the maximum id seen plus
/// the padding id.
pub fn read_libsvm<R: BufRead>(reader: R, num_fields: usize) -> Result<CtrDataset, ParseError> {
    if num_fields == 0 {
        return Err(HetGmpError::config("num_fields", "must be positive"));
    }
    let mut features: Vec<u32> = Vec::new();
    let mut labels: Vec<f32> = Vec::new();
    let mut max_id = 0u32;
    let mut row = Vec::with_capacity(num_fields);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(stream_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label_tok = parts
            .next()
            .ok_or_else(|| HetGmpError::data_unattributed(lineno + 1, "missing label"))?;
        let label: f32 = label_tok.parse().map_err(|_| {
            HetGmpError::data_unattributed(lineno + 1, format!("bad label {label_tok:?}"))
        })?;
        row.clear();
        for tok in parts.take(num_fields) {
            let idx_str = tok.split(':').next().unwrap_or(tok);
            let idx: u32 = idx_str.parse().map_err(|_| {
                HetGmpError::data_unattributed(
                    lineno + 1,
                    format!("bad feature index {idx_str:?}"),
                )
            })?;
            max_id = max_id.max(idx);
            row.push(idx);
        }
        // Padding slot decided after the scan; mark with sentinel for now.
        while row.len() < num_fields {
            row.push(u32::MAX);
        }
        features.extend_from_slice(&row);
        labels.push(if label > 0.5 { 1.0 } else { 0.0 });
    }
    let pad_id = max_id + 1;
    for f in &mut features {
        if *f == u32::MAX {
            *f = pad_id;
        }
    }
    Ok(CtrDataset {
        name: "libsvm".into(),
        num_fields,
        num_features: pad_id as usize + 1,
        clusters: vec![0; labels.len()],
        features,
        labels,
    })
}

/// Writes a dataset in the libsvm-style format accepted by
/// [`read_libsvm`] (`label idx:1 …`).
pub fn write_libsvm<W: Write>(dataset: &CtrDataset, mut writer: W) -> std::io::Result<()> {
    for i in 0..dataset.num_samples() {
        let label = if dataset.label(i) > 0.5 { 1 } else { 0 };
        write!(writer, "{label}")?;
        for &f in dataset.sample(i) {
            write!(writer, " {f}:1")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Reads CSV lines `label,cat1,cat2,…` of categorical strings, mapping each
/// field's values into its own hash space of `buckets_per_field` ids (the
/// hashing trick — how production CTR pipelines ingest raw categorical
/// data). Empty fields hash like any other value (the empty string).
pub fn read_csv_hashed<R: BufRead>(
    reader: R,
    num_fields: usize,
    buckets_per_field: usize,
) -> Result<CtrDataset, ParseError> {
    if num_fields == 0 {
        return Err(HetGmpError::config("num_fields", "must be positive"));
    }
    if buckets_per_field == 0 {
        return Err(HetGmpError::config("buckets_per_field", "must be positive"));
    }
    let mut features: Vec<u32> = Vec::new();
    let mut labels: Vec<f32> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(stream_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split(',');
        let label_tok = cols
            .next()
            .ok_or_else(|| HetGmpError::data_unattributed(lineno + 1, "missing label column"))?;
        let label: f32 = label_tok.trim().parse().map_err(|_| {
            HetGmpError::data_unattributed(lineno + 1, format!("bad label {label_tok:?}"))
        })?;
        let mut count = 0usize;
        for f in 0..num_fields {
            let value = cols.next().unwrap_or("");
            let bucket = fnv1a(value.as_bytes()) as usize % buckets_per_field;
            features.push((f * buckets_per_field + bucket) as u32);
            count += 1;
        }
        debug_assert_eq!(count, num_fields);
        labels.push(if label > 0.5 { 1.0 } else { 0.0 });
    }
    Ok(CtrDataset {
        name: "csv".into(),
        num_fields,
        num_features: num_fields * buckets_per_field,
        clusters: vec![0; labels.len()],
        features,
        labels,
    })
}

/// FNV-1a 64-bit (stable across runs and platforms — hashed feature ids
/// must be reproducible).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn libsvm_roundtrip() {
        let text = "1 3:1 7:1\n0 2:1 9:1\n# comment\n\n1 5:1 1:1\n";
        let d = read_libsvm(Cursor::new(text), 2).unwrap();
        assert_eq!(d.num_samples(), 3);
        assert_eq!(d.sample(0), &[3, 7]);
        assert_eq!(d.sample(2), &[5, 1]);
        assert_eq!(d.labels, vec![1.0, 0.0, 1.0]);
        assert_eq!(d.num_features, 11); // max id 9 + pad id 10 + 1

        let mut out = Vec::new();
        write_libsvm(&d, &mut out).unwrap();
        let d2 = read_libsvm(Cursor::new(out), 2).unwrap();
        assert_eq!(d2.features, d.features);
        assert_eq!(d2.labels, d.labels);
    }

    #[test]
    fn libsvm_pads_short_lines() {
        let text = "1 3:1\n0 2:1 4:1 6:1\n";
        let d = read_libsvm(Cursor::new(text), 3).unwrap();
        // Line 1 padded with pad id (7), line 2 truncated to 3 features.
        assert_eq!(d.sample(0), &[3, 7, 7]);
        assert_eq!(d.sample(1), &[2, 4, 6]);
    }

    #[test]
    fn libsvm_rejects_garbage() {
        let err = read_libsvm(Cursor::new("not-a-label 1:1\n"), 2).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_libsvm(Cursor::new("1 x:1\n"), 2).unwrap_err();
        assert!(err.to_string().contains("feature index"));
    }

    #[test]
    fn zero_field_counts_error_instead_of_panicking() {
        let err = read_libsvm(Cursor::new("1 1:1\n"), 0).unwrap_err();
        assert!(err.to_string().contains("num_fields"), "{err}");
        assert_eq!(err.exit_code(), 78);
        let err = read_csv_hashed(Cursor::new("1,a\n"), 2, 0).unwrap_err();
        assert!(err.to_string().contains("buckets_per_field"), "{err}");
    }

    #[test]
    fn csv_hashing_is_stable_and_field_scoped() {
        let text = "1,appA,deviceX\n0,appB,deviceX\n1,appA,deviceY\n";
        let d = read_csv_hashed(Cursor::new(text), 2, 100).unwrap();
        assert_eq!(d.num_samples(), 3);
        assert_eq!(d.num_features, 200);
        // Same value in the same field hashes identically.
        assert_eq!(d.sample(0)[0], d.sample(2)[0]);
        // Field 0 ids live in [0,100), field 1 in [100,200).
        for i in 0..3 {
            assert!(d.sample(i)[0] < 100);
            assert!((100..200).contains(&d.sample(i)[1]));
        }
        // Same string in *different* fields gets different ids.
        let text2 = "1,same,same\n";
        let d2 = read_csv_hashed(Cursor::new(text2), 2, 100).unwrap();
        assert_ne!(d2.sample(0)[0], d2.sample(0)[1]);
    }

    #[test]
    fn csv_missing_trailing_fields_hash_empty() {
        let text = "0,onlyfirst\n";
        let d = read_csv_hashed(Cursor::new(text), 3, 50).unwrap();
        assert_eq!(d.sample(0).len(), 3);
        // Fields 1 and 2 both hashed "" but in their own spaces.
        assert_ne!(d.sample(0)[1], d.sample(0)[2]);
    }

    #[test]
    fn imported_dataset_feeds_the_pipeline() {
        let text = (0..50)
            .map(|i| format!("{},{},{}", i % 2, i % 5, (i * 3) % 7))
            .collect::<Vec<_>>()
            .join("\n");
        let d = read_csv_hashed(Cursor::new(text), 2, 32).unwrap();
        let g = d.to_bigraph();
        assert_eq!(g.num_samples(), 50);
        assert_eq!(g.num_edges(), 100);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
