//! Synthetic knowledge-graph workload.
//!
//! The paper scopes its evaluation to CTR models but names knowledge-graph
//! embedding as a natural target: *"in knowledge graph embeddings, a data
//! sample only needs to access two embeddings for an edge"* (§2) and *"our
//! graph-based replication (vertex-cut) and consistency principles could be
//! naturally applied"* to KG training systems (§3). This module provides
//! the substrate for that extension: a synthetic KG with clustered entities
//! and *learnable relational structure* — each (cluster, relation) pair maps
//! to a target cluster, so a translation model (TransE) has real signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use hetgmp_bigraph::Bigraph;

/// Parameters of a synthetic knowledge graph.
#[derive(Debug, Clone)]
pub struct KgSpec {
    /// Number of entities (embedding rows).
    pub num_entities: usize,
    /// Number of relation types.
    pub num_relations: usize,
    /// Number of triples to generate.
    pub num_triples: usize,
    /// Latent entity clusters (locality structure).
    pub num_clusters: usize,
    /// Probability a head is drawn from its cluster slice (vs. globally).
    pub cluster_affinity: f64,
    /// Zipf exponent for entity popularity.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KgSpec {
    /// A small default KG (FB15k-flavoured shape at toy scale).
    pub fn small() -> Self {
        Self {
            num_entities: 2000,
            num_relations: 20,
            num_triples: 20_000,
            num_clusters: 8,
            cluster_affinity: 0.85,
            zipf_exponent: 0.9,
            seed: 0x6B67,
        }
    }
}

/// A materialised triple store.
#[derive(Debug, Clone)]
pub struct KgDataset {
    /// Number of entities.
    pub num_entities: usize,
    /// Number of relation types.
    pub num_relations: usize,
    /// `(head, relation, tail)` triples.
    pub triples: Vec<(u32, u32, u32)>,
    /// Latent cluster of each entity (generator metadata).
    pub entity_cluster: Vec<u16>,
}

/// Generates a KG from a spec; deterministic in `spec.seed`.
pub fn generate_kg(spec: &KgSpec) -> KgDataset {
    assert!(spec.num_clusters > 0 && spec.num_entities >= spec.num_clusters);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let slice = spec.num_entities / spec.num_clusters;
    let cluster_of = |e: usize| (e / slice.max(1)).min(spec.num_clusters - 1) as u16;
    let entity_cluster: Vec<u16> = (0..spec.num_entities).map(cluster_of).collect();

    let global = Zipf::new(spec.num_entities, spec.zipf_exponent);
    let in_slice = Zipf::new(slice.max(1), spec.zipf_exponent);

    let mut triples = Vec::with_capacity(spec.num_triples);
    for _ in 0..spec.num_triples {
        let c = rng.gen_range(0..spec.num_clusters);
        let h = if rng.gen::<f64>() < spec.cluster_affinity {
            (c * slice + in_slice.sample(&mut rng)).min(spec.num_entities - 1)
        } else {
            global.sample(&mut rng)
        };
        let r = rng.gen_range(0..spec.num_relations);
        // Learnable structure: relation r points into a fixed target
        // cluster (independent of the head's cluster — a cyclic
        // head-dependent mapping would not be representable by a single
        // TransE translation vector).
        let target_cluster = (r + 1) % spec.num_clusters;
        let t = if rng.gen::<f64>() < spec.cluster_affinity {
            (target_cluster * slice + in_slice.sample(&mut rng)).min(spec.num_entities - 1)
        } else {
            global.sample(&mut rng)
        };
        triples.push((h as u32, r as u32, t as u32));
    }
    KgDataset {
        num_entities: spec.num_entities,
        num_relations: spec.num_relations,
        triples,
        entity_cluster,
    }
}

impl KgDataset {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Exports the access pattern as a [`Bigraph`]: one sample vertex per
    /// triple connecting its head and tail **entity** vertices — the
    /// "two embeddings per sample" shape the paper contrasts with CTR.
    pub fn to_bigraph(&self) -> Bigraph {
        let rows: Vec<Vec<u32>> = self
            .triples
            .iter()
            .map(|&(h, _, t)| if h == t { vec![h] } else { vec![h, t] })
            .collect();
        Bigraph::from_samples(self.num_entities, &rows)
    }

    /// Deterministic train/test split by stride.
    pub fn split(&self, test_fraction: f64) -> (Vec<u32>, Vec<u32>) {
        assert!(test_fraction > 0.0 && test_fraction < 1.0);
        let stride = (1.0 / test_fraction).round().max(2.0) as usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for i in 0..self.triples.len() {
            if i % stride == stride - 1 {
                test.push(i as u32);
            } else {
                train.push(i as u32);
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_bigraph::DegreeStats;

    #[test]
    fn deterministic_and_shaped() {
        let spec = KgSpec::small();
        let a = generate_kg(&spec);
        let b = generate_kg(&spec);
        assert_eq!(a.triples, b.triples);
        assert_eq!(a.len(), spec.num_triples);
        for &(h, r, t) in &a.triples {
            assert!((h as usize) < spec.num_entities);
            assert!((t as usize) < spec.num_entities);
            assert!((r as usize) < spec.num_relations);
        }
    }

    #[test]
    fn bigraph_has_two_embeddings_per_sample() {
        let kg = generate_kg(&KgSpec::small());
        let g = kg.to_bigraph();
        assert_eq!(g.num_samples(), kg.len());
        for s in 0..200u32 {
            assert!(g.sample_degree(s) <= 2);
            assert!(g.sample_degree(s) >= 1);
        }
    }

    #[test]
    fn entity_popularity_is_skewed() {
        let kg = generate_kg(&KgSpec::small());
        let g = kg.to_bigraph();
        let stats = DegreeStats::embeddings(&g);
        assert!(stats.gini > 0.3, "gini {}", stats.gini);
    }

    #[test]
    fn relations_have_structure() {
        // For a fixed (head cluster, relation) the tail cluster concentrates
        // on one value — the planted translation signal.
        let kg = generate_kg(&KgSpec::small());
        let spec = KgSpec::small();
        let mut counts = vec![vec![0u32; spec.num_clusters]; spec.num_clusters];
        for &(h, r, t) in &kg.triples {
            if r == 3 {
                let hc = kg.entity_cluster[h as usize] as usize;
                let tc = kg.entity_cluster[t as usize] as usize;
                counts[hc][tc] += 1;
            }
        }
        for (hc, row) in counts.iter().enumerate() {
            let total: u32 = row.iter().sum();
            if total < 20 {
                continue;
            }
            let max = *row.iter().max().unwrap();
            assert!(
                max as f64 / total as f64 > 0.5,
                "cluster {hc}: tail distribution too flat"
            );
        }
    }

    #[test]
    fn split_partitions_triples() {
        let kg = generate_kg(&KgSpec::small());
        let (train, test) = kg.split(0.1);
        assert_eq!(train.len() + test.len(), kg.len());
        assert!(!test.is_empty());
    }
}
