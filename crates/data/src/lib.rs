#![warn(missing_docs)]

//! # hetgmp-data
//!
//! Synthetic CTR training data for the HET-GMP reproduction.
//!
//! The paper evaluates on Avazu (4.0·10⁷ samples, 9.4·10⁶ features, 22
//! fields), Criteo (4.6·10⁷ / 3.4·10⁷ / 26) and a private Tencent "Company"
//! dataset (3.6·10⁷ / 6.6·10⁷ / 43). None are redistributable here, and the
//! private one never was — so this crate generates **synthetic datasets that
//! plant the two structural properties HET-GMP exploits** (paper §4):
//!
//! * **skewness** — per-field feature popularity is Zipf-distributed, giving
//!   the power-law embedding degree distribution the vertex-cut replication
//!   step relies on;
//! * **locality** — each sample belongs to a latent *cluster* and draws most
//!   of its features from the cluster's slice of each field's vocabulary, so
//!   co-accessed embeddings really do cluster (the paper's Figure 3 block
//!   structure) and locality-aware partitioning has something to find.
//!
//! Labels come from a planted logistic ground-truth model, so training a
//! real model on this data produces a meaningful, improvable test AUC — which
//! is what makes the convergence (Fig 7) and staleness (Table 2) experiments
//! reproducible in *shape*.
//!
//! Dataset presets ([`DatasetSpec::avazu_like`] etc.) match each paper
//! dataset's field count and its features-per-sample ratio at a configurable
//! scale factor.

pub mod dataset;
pub mod io;
pub mod kg;
pub mod generate;
pub mod spec;
pub mod zipf;

pub use dataset::{Batch, BatchIter, CtrDataset, TrainTestSplit};
pub use generate::generate;
pub use io::{read_csv_hashed, read_libsvm, write_libsvm, ParseError};
pub use kg::{generate_kg, KgDataset, KgSpec};
pub use spec::DatasetSpec;
pub use zipf::Zipf;
