//! Dataset specifications and paper-matched presets.

/// Parameters of a synthetic CTR dataset.
///
/// A dataset has `num_fields` categorical fields; field `f` has its own
/// vocabulary of `field_vocab[f]` features, and the global feature (=
/// embedding row) id space is the concatenation of the field vocabularies.
/// Each sample carries exactly one feature per field (standard CTR layout,
/// matching the paper's Table 1 datasets).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Human-readable name, e.g. `"avazu-like"`.
    pub name: String,
    /// Number of samples to generate.
    pub num_samples: usize,
    /// Per-field vocabulary sizes. `sum` = total number of features =
    /// number of embedding-table rows.
    pub field_vocab: Vec<usize>,
    /// Zipf exponent of within-field feature popularity (skewness knob).
    pub zipf_exponent: f64,
    /// Number of latent sample clusters (locality structure).
    pub num_clusters: usize,
    /// Probability that a field value is drawn from the sample's cluster
    /// slice rather than the global field vocabulary (locality knob, `q`).
    pub cluster_affinity: f64,
    /// Standard deviation of planted per-feature logit weights.
    pub weight_std: f64,
    /// RNG seed; everything derived from the spec is deterministic in it.
    pub seed: u64,
}

impl DatasetSpec {
    /// Splits `total_features` across `num_fields` with a geometric decay so
    /// a few "ID-like" fields hold most of the vocabulary (as in real CTR
    /// data, where device/ad IDs dwarf categorical fields like day-of-week).
    fn geometric_vocab(total_features: usize, num_fields: usize, decay: f64) -> Vec<usize> {
        assert!(num_fields > 0);
        let weights: Vec<f64> = (0..num_fields).map(|i| decay.powi(i as i32)).collect();
        let wsum: f64 = weights.iter().sum();
        let mut vocab: Vec<usize> = weights
            .iter()
            .map(|w| ((w / wsum) * total_features as f64).round().max(4.0) as usize)
            .collect();
        // Adjust the largest field so the total matches exactly.
        let diff = total_features as i64 - vocab.iter().sum::<usize>() as i64;
        vocab[0] = (vocab[0] as i64 + diff).max(4) as usize;
        vocab
    }

    fn preset(
        name: &str,
        base_samples: usize,
        base_features: usize,
        num_fields: usize,
        scale: f64,
        seed: u64,
    ) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let num_samples = ((base_samples as f64 * scale) as usize).max(64);
        let total_features = ((base_features as f64 * scale) as usize).max(num_fields * 4);
        Self {
            name: name.to_string(),
            num_samples,
            field_vocab: Self::geometric_vocab(total_features, num_fields, 0.55),
            zipf_exponent: 1.05,
            num_clusters: 8,
            cluster_affinity: 0.85,
            weight_std: 1.6,
            seed,
        }
    }

    /// Avazu-shaped: 22 fields, features ≈ 0.23 × samples (paper Table 1:
    /// 40.4M samples, 9.4M features). `scale = 1.0` gives 60 000 samples.
    pub fn avazu_like(scale: f64) -> Self {
        Self::preset("avazu-like", 60_000, 14_000, 22, scale, 0xA7A2)
    }

    /// Criteo-shaped: 26 fields, features ≈ 0.74 × samples (45.8M / 33.8M).
    pub fn criteo_like(scale: f64) -> Self {
        Self::preset("criteo-like", 60_000, 44_000, 26, scale, 0xC217E0)
    }

    /// Company-shaped (Tencent production): 43 fields, features ≈ 1.85 ×
    /// samples (35.7M / 66.1M) — the most feature-heavy, communication-bound
    /// of the three.
    pub fn company_like(scale: f64) -> Self {
        Self::preset("company-like", 50_000, 92_000, 43, scale, 0xC0409)
    }

    /// A tiny dataset for unit tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".to_string(),
            num_samples: 256,
            field_vocab: vec![64, 32, 16, 8],
            zipf_exponent: 1.0,
            num_clusters: 4,
            cluster_affinity: 0.8,
            weight_std: 1.5,
            seed: 1,
        }
    }

    /// All three paper-shaped presets at the given scale.
    pub fn paper_presets(scale: f64) -> Vec<Self> {
        vec![
            Self::avazu_like(scale),
            Self::criteo_like(scale),
            Self::company_like(scale),
        ]
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.field_vocab.len()
    }

    /// Total number of features (embedding-table rows).
    pub fn total_features(&self) -> usize {
        self.field_vocab.iter().sum()
    }

    /// Global id of the first feature of field `f`.
    pub fn field_offset(&self, f: usize) -> usize {
        self.field_vocab[..f].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_shapes() {
        let a = DatasetSpec::avazu_like(1.0);
        assert_eq!(a.num_fields(), 22);
        let c = DatasetSpec::criteo_like(1.0);
        assert_eq!(c.num_fields(), 26);
        let t = DatasetSpec::company_like(1.0);
        assert_eq!(t.num_fields(), 43);
        // Feature/sample ratios ordered as in the paper:
        let ratio = |s: &DatasetSpec| s.total_features() as f64 / s.num_samples as f64;
        assert!(ratio(&a) < ratio(&c));
        assert!(ratio(&c) < ratio(&t));
    }

    #[test]
    fn scale_changes_size() {
        let small = DatasetSpec::avazu_like(0.1);
        let big = DatasetSpec::avazu_like(1.0);
        assert!(small.num_samples < big.num_samples);
        assert!(small.total_features() < big.total_features());
    }

    #[test]
    fn geometric_vocab_sums_exactly() {
        let v = DatasetSpec::geometric_vocab(10_000, 10, 0.5);
        assert_eq!(v.iter().sum::<usize>(), 10_000);
        assert!(v[0] > v[5]);
        assert!(v.iter().all(|&x| x >= 4));
    }

    #[test]
    fn field_offsets_partition_id_space() {
        let s = DatasetSpec::tiny();
        assert_eq!(s.field_offset(0), 0);
        assert_eq!(s.field_offset(1), 64);
        assert_eq!(s.field_offset(2), 96);
        assert_eq!(s.field_offset(3), 112);
        assert_eq!(s.total_features(), 120);
    }

    #[test]
    fn tiny_vocab_minimums() {
        // Every field must be able to hold at least num_clusters slices of
        // one feature; tiny() uses 4 clusters with min field size 8.
        let s = DatasetSpec::tiny();
        assert!(s.field_vocab.iter().all(|&v| v >= s.num_clusters));
    }
}
