//! Zipf-distributed sampling over ranked items.
//!
//! `P(rank = k) ∝ 1 / k^s` for `k ∈ 1..=n`. Implemented with a precomputed
//! cumulative table and binary search: O(n) setup, O(log n) per sample,
//! exact distribution. Our per-field vocabularies are at most a few hundred
//! thousand entries, so the table is cheap; the same sampler is reused across
//! all draws from a field.

use rand::Rng;

/// A Zipf sampler over `0..n` (returns zero-based item indices; item 0 is the
/// most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` items with exponent `s ≥ 0`.
    ///
    /// `s = 0` is the uniform distribution; larger `s` is more skewed
    /// (CTR feature popularity is typically `s ≈ 1`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false — the constructor rejects `n == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one item index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of item `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_probabilities() {
        let z = Zipf::new(100, 1.2);
        for k in 1..100 {
            assert!(z.pmf(k - 1) >= z.pmf(k));
        }
        assert!(z.pmf(0) > 0.1);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.9);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_within_range_and_skewed() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 50);
            counts[k] += 1;
        }
        // Rank-0 item should dominate rank-25 item heavily.
        assert!(counts[0] > counts[25] * 5, "{} vs {}", counts[0], counts[25]);
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let expected = z.pmf(k);
            let observed = c as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "k={k} observed={observed} expected={expected}"
            );
        }
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid Zipf exponent")]
    fn negative_exponent_panics() {
        Zipf::new(5, -1.0);
    }
}
