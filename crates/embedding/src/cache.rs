//! A worker's secondary-replica cache.
//!
//! Holds the stale-tolerant copies created by vertex-cut replication. Each
//! cached row tracks:
//! * `base_clock` — the primary's clock when the row was last synchronised;
//! * `local_updates` — updates this worker applied (and wrote back) since
//!   the sync; the replica's *effective clock* is `base_clock +
//!   local_updates`, so the staleness gap `primary_clock − effective_clock`
//!   counts exactly the **other workers'** updates this copy has missed.

use std::collections::HashMap;

/// Secondary replicas for one worker.
#[derive(Debug, Clone)]
pub struct SecondaryCache {
    dim: usize,
    slots: HashMap<u32, usize>,
    data: Vec<f32>,
    base_clock: Vec<u64>,
    local_updates: Vec<u64>,
    /// Deferred ("stale") gradients awaiting write-back to the primary
    /// (paper §6: "Secondary embeddings require extra space for stale
    /// gradients").
    pending_grad: Vec<f32>,
    /// Number of batch gradients accumulated in `pending_grad` per slot.
    pending_count: Vec<u32>,
}

impl SecondaryCache {
    /// Allocates a cache for the given replica row ids (from the partition's
    /// secondary list for this worker).
    pub fn new(dim: usize, rows: &[u32]) -> Self {
        assert!(dim > 0, "dim must be positive");
        let mut slots = HashMap::with_capacity(rows.len());
        for (i, &r) in rows.iter().enumerate() {
            slots.insert(r, i);
        }
        Self {
            dim,
            data: vec![0.0; rows.len() * dim],
            base_clock: vec![0; rows.len()],
            local_updates: vec![0; rows.len()],
            pending_grad: vec![0.0; rows.len() * dim],
            pending_count: vec![0; rows.len()],
            slots,
        }
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when `row` has a slot in this cache.
    #[inline]
    pub fn contains(&self, row: u32) -> bool {
        self.slots.contains_key(&row)
    }

    /// The replica's effective clock (`base + local`), or `None` if absent.
    pub fn effective_clock(&self, row: u32) -> Option<u64> {
        self.slots
            .get(&row)
            .map(|&i| self.base_clock[i] + self.local_updates[i])
    }

    /// Reads the cached value into `out`. Returns false if absent.
    pub fn read(&self, row: u32, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.dim, "buffer length != dim");
        match self.slots.get(&row) {
            Some(&i) => {
                out.copy_from_slice(&self.data[i * self.dim..(i + 1) * self.dim]);
                true
            }
            None => false,
        }
    }

    /// Overwrites the cached value after a sync with the primary, resetting
    /// the staleness bookkeeping to `primary_clock`.
    ///
    /// # Panics
    /// Panics if `row` has no slot.
    pub fn install(&mut self, row: u32, values: &[f32], primary_clock: u64) {
        assert_eq!(values.len(), self.dim, "values length != dim");
        let &i = self.slots.get(&row).expect("row not in cache");
        self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(values);
        self.base_clock[i] = primary_clock;
        self.local_updates[i] = 0;
    }

    /// Applies a local delta to the cached copy (mirroring the update this
    /// worker wrote back to the primary) and bumps `local_updates`.
    ///
    /// Returns false (no-op) if the row is not cached.
    pub fn apply_local_delta(&mut self, row: u32, delta: &[f32]) -> bool {
        self.apply_delta_inner(row, delta, true)
    }

    /// Applies a local delta *without* advancing the effective clock — used
    /// for deferred updates whose primary write-back has not happened yet
    /// (the clock advances at flush time via [`SecondaryCache::note_flush`]).
    pub fn apply_local_delta_uncounted(&mut self, row: u32, delta: &[f32]) -> bool {
        self.apply_delta_inner(row, delta, false)
    }

    fn apply_delta_inner(&mut self, row: u32, delta: &[f32], count: bool) -> bool {
        assert_eq!(delta.len(), self.dim, "delta length != dim");
        match self.slots.get(&row) {
            Some(&i) => {
                for (d, &x) in self.data[i * self.dim..(i + 1) * self.dim]
                    .iter_mut()
                    .zip(delta)
                {
                    *d += x;
                }
                if count {
                    self.local_updates[i] += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Accumulates a deferred gradient for `row`; returns the new pending
    /// count. The caller is responsible for flushing via
    /// [`SecondaryCache::take_pending`] when its staleness budget is spent.
    ///
    /// # Panics
    /// Panics if `row` has no slot.
    pub fn accumulate_pending(&mut self, row: u32, grad: &[f32]) -> u32 {
        assert_eq!(grad.len(), self.dim, "gradient length != dim");
        let &i = self.slots.get(&row).expect("row not in cache");
        for (p, &g) in self.pending_grad[i * self.dim..(i + 1) * self.dim]
            .iter_mut()
            .zip(grad)
        {
            *p += g;
        }
        self.pending_count[i] += 1;
        self.pending_count[i]
    }

    /// Number of deferred gradients pending for `row` (0 if none or absent).
    pub fn pending_count(&self, row: u32) -> u32 {
        self.slots
            .get(&row)
            .map_or(0, |&i| self.pending_count[i])
    }

    /// Moves the accumulated pending gradient for `row` into `out` and
    /// clears it; returns false (leaving `out` untouched) when nothing is
    /// pending.
    pub fn take_pending(&mut self, row: u32, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.dim, "buffer length != dim");
        let Some(&i) = self.slots.get(&row) else {
            return false;
        };
        if self.pending_count[i] == 0 {
            return false;
        }
        let src = &mut self.pending_grad[i * self.dim..(i + 1) * self.dim];
        out.copy_from_slice(src);
        src.iter_mut().for_each(|x| *x = 0.0);
        self.pending_count[i] = 0;
        true
    }

    /// Records that `row`'s pending updates were flushed as one merged
    /// primary update (the replica's effective clock advances by one, in
    /// step with the primary's tick from the flush).
    pub fn note_flush(&mut self, row: u32) {
        if let Some(&i) = self.slots.get(&row) {
            self.local_updates[i] += 1;
        }
    }

    /// Rows that currently hold pending gradients.
    pub fn rows_with_pending(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .slots
            .iter()
            .filter(|&(_, &i)| self.pending_count[i] > 0)
            .map(|(&r, _)| r)
            .collect();
        out.sort_unstable();
        out
    }

    /// Approximate heap footprint, bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.data.len() + self.pending_grad.len()) * 4
            + self.base_clock.len() * 16
            + self.pending_count.len() * 4
            + self.slots.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache() {
        let c = SecondaryCache::new(4, &[]);
        assert!(c.is_empty());
        assert!(!c.contains(0));
        assert_eq!(c.effective_clock(0), None);
        let mut buf = vec![0.0; 4];
        assert!(!c.read(0, &mut buf));
    }

    #[test]
    fn install_and_read() {
        let mut c = SecondaryCache::new(2, &[5, 9]);
        assert_eq!(c.len(), 2);
        c.install(5, &[1.0, 2.0], 7);
        let mut buf = vec![0.0; 2];
        assert!(c.read(5, &mut buf));
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(c.effective_clock(5), Some(7));
        assert_eq!(c.effective_clock(9), Some(0)); // never synced
    }

    #[test]
    fn local_delta_bumps_effective_clock() {
        let mut c = SecondaryCache::new(2, &[3]);
        c.install(3, &[1.0, 1.0], 10);
        assert!(c.apply_local_delta(3, &[-0.5, 0.5]));
        let mut buf = vec![0.0; 2];
        c.read(3, &mut buf);
        assert_eq!(buf, vec![0.5, 1.5]);
        assert_eq!(c.effective_clock(3), Some(11));
        // Re-install resets local updates.
        c.install(3, &[0.0, 0.0], 20);
        assert_eq!(c.effective_clock(3), Some(20));
    }

    #[test]
    fn delta_on_missing_row_is_noop() {
        let mut c = SecondaryCache::new(2, &[1]);
        assert!(!c.apply_local_delta(2, &[1.0, 1.0]));
    }

    #[test]
    fn pending_accumulates_and_drains() {
        let mut c = SecondaryCache::new(2, &[4]);
        assert_eq!(c.pending_count(4), 0);
        assert_eq!(c.accumulate_pending(4, &[1.0, 2.0]), 1);
        assert_eq!(c.accumulate_pending(4, &[0.5, -1.0]), 2);
        let mut buf = vec![0.0; 2];
        assert!(c.take_pending(4, &mut buf));
        assert_eq!(buf, vec![1.5, 1.0]);
        assert_eq!(c.pending_count(4), 0);
        assert!(!c.take_pending(4, &mut buf));
        assert_eq!(c.pending_count(9), 0); // absent row
    }

    #[test]
    fn note_flush_advances_effective_clock() {
        let mut c = SecondaryCache::new(2, &[1]);
        c.install(1, &[0.0, 0.0], 5);
        c.note_flush(1);
        assert_eq!(c.effective_clock(1), Some(6));
    }

    #[test]
    fn rows_with_pending_sorted() {
        let mut c = SecondaryCache::new(1, &[9, 2, 5]);
        c.accumulate_pending(9, &[1.0]);
        c.accumulate_pending(2, &[1.0]);
        assert_eq!(c.rows_with_pending(), vec![2, 9]);
    }

    #[test]
    #[should_panic(expected = "row not in cache")]
    fn install_missing_panics() {
        let mut c = SecondaryCache::new(2, &[1]);
        c.install(2, &[0.0, 0.0], 0);
    }
}
