//! A HET-style worker view: dynamic LFU caching instead of static
//! vertex-cut replicas.
//!
//! This is the predecessor architecture the paper compares against in
//! spirit (§3: HET's "embedding-cache-enabled architecture with
//! fine-grained consistency"): rows are cached on first use by observed
//! frequency, consistency is per-embedding clock-bounded (*intra* only — the
//! graph-based *inter*-embedding synchronisation is exactly what HET-GMP
//! adds on top). Sharing `ReadReport`/`UpdateReport` with
//! [`crate::WorkerEmbedding`] makes the two designs directly comparable on
//! one substrate (see the `cache_comparison` ablation in `hetgmp-core`).

use std::collections::HashMap;
use std::sync::Arc;

use hetgmp_comms::{ErrorFeedback, SyncFormat};
use hetgmp_partition::Partition;
use hetgmp_telemetry::{names, Json, ProtocolAuditor, Recorder, TraceCollector};

use crate::lfu::LfuCache;
use crate::report::{ReadReport, UpdateReport, META_ENTRY_BYTES};
use crate::sparse_optim::SparseOpt;
use crate::table::ShardedTable;
use crate::worker::{HotScratch, StalenessBound};

/// What to do with a fetched row once the shard-grouped read lands.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FillAction {
    /// Scatter to the output only (local primary).
    None,
    /// Re-install into the cache at the observed clock (staleness sync).
    Refresh,
    /// Fill a row already admitted with placeholder data.
    Admit,
}

/// One worker's dynamically-cached embedding interface.
pub struct CachedWorkerEmbedding<'a> {
    worker: u32,
    table: &'a ShardedTable,
    part: &'a Partition,
    bound: StalenessBound,
    cache: LfuCache,
    scratch_ids: HashMap<u32, usize>,
    scratch_rows: Vec<f32>,
    scratch: HotScratch,
    /// Per-fetch cache action, aligned with `scratch.fetch_ids`.
    fill_actions: Vec<FillAction>,
    /// Wire format for inter-worker embedding payloads.
    format: SyncFormat,
    /// Whether lossy gradient pushes carry error feedback.
    feedback_on: bool,
    /// Per-row quantization residuals (push direction only).
    feedback: ErrorFeedback,
    /// Cached `format.row_wire_bytes(dim)`.
    row_bytes: u64,
    recorder: Option<Arc<dyn Recorder>>,
    auditor: Option<Arc<ProtocolAuditor>>,
    tracer: Option<Arc<TraceCollector>>,
}

impl<'a> CachedWorkerEmbedding<'a> {
    /// Creates the view with an empty cache of `capacity` rows.
    pub fn new(
        worker: u32,
        table: &'a ShardedTable,
        part: &'a Partition,
        capacity: usize,
        bound: StalenessBound,
    ) -> Self {
        assert_eq!(
            part.num_embeddings(),
            table.num_rows(),
            "partition/table mismatch"
        );
        Self {
            worker,
            table,
            part,
            bound,
            cache: LfuCache::new(table.dim(), capacity),
            scratch_ids: HashMap::new(),
            scratch_rows: Vec::new(),
            scratch: HotScratch {
                row_buf: vec![0.0f32; table.dim()],
                ..HotScratch::default()
            },
            fill_actions: Vec::new(),
            format: SyncFormat::F32,
            feedback_on: true,
            feedback: ErrorFeedback::new(),
            row_bytes: SyncFormat::F32.row_wire_bytes(table.dim()),
            recorder: None,
            auditor: None,
            tracer: None,
        }
    }

    /// Selects the wire format for inter-worker embedding payloads (see
    /// `WorkerEmbedding::set_sync_format`). Re-primes any already-cached
    /// rows through the new format.
    pub fn set_sync_format(&mut self, format: SyncFormat, error_feedback: bool) {
        self.format = format;
        self.feedback_on = error_feedback;
        self.feedback.clear();
        self.row_bytes = format.row_wire_bytes(self.table.dim());
        if !format.is_lossless() {
            self.recover_from_crash();
        }
    }

    /// Counts `rows` quantized payload rows into the `comms.quant.*`
    /// metrics (no-op for lossless formats).
    fn note_quant(&self, rows: u64) {
        if rows == 0 || self.format.is_lossless() {
            return;
        }
        if let Some(r) = &self.recorder {
            let raw = (self.table.dim() * 4) as u64;
            r.counter_add(names::COMMS_QUANT_ROWS, rows);
            r.counter_add(
                names::COMMS_QUANT_BYTES_SAVED,
                rows * raw.saturating_sub(self.row_bytes),
            );
        }
    }

    /// Attaches a telemetry recorder; reads, cache hits/misses and updates
    /// are counted into the `embedding.*` metrics from then on.
    pub fn attach_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Attaches a protocol auditor; the per-row intra staleness decisions
    /// (this design's only consistency check) are reported to it.
    pub fn attach_auditor(&mut self, auditor: Arc<ProtocolAuditor>) {
        self.auditor = Some(auditor);
    }

    /// Attaches a trace collector; per-batch read-mix instants are emitted
    /// on this worker's track at the `sync` level.
    pub fn attach_tracer(&mut self, tracer: Arc<TraceCollector>) {
        self.tracer = Some(tracer);
    }

    /// Rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.cache.len()
    }

    /// Crash recovery: re-primes every cached row from the authoritative
    /// table (the dynamic cache holds no deferred gradients — write-backs
    /// are eager — so nothing is lost, but cached values may predate a
    /// table rollback). Returns the number of rows re-fetched.
    pub fn recover_from_crash(&mut self) -> u64 {
        let dim = self.table.dim();
        let mut buf = vec![0.0f32; dim];
        let ids = self.cache.cached_ids();
        for &e in &ids {
            let clock = self.table.read_row(e, &mut buf);
            self.format.transport(&mut buf);
            self.cache.refresh(e, &buf, clock);
        }
        // A full re-prime supersedes any error-feedback residuals.
        self.feedback.clear();
        self.note_quant(ids.len() as u64);
        ids.len() as u64
    }

    /// Which telemetry hooks are attached: `(recorder, auditor, tracer)`.
    pub fn hooks_attached(&self) -> (bool, bool, bool) {
        (
            self.recorder.is_some(),
            self.auditor.is_some(),
            self.tracer.is_some(),
        )
    }

    /// Pre-sizes every read/apply scratch buffer for batches of up to
    /// `batch × fields` lookups (see `WorkerEmbedding::reserve_batch`).
    pub fn reserve_batch(&mut self, batch: usize, fields: usize) {
        let rows = batch.saturating_mul(fields);
        let dim = self.table.dim();
        self.scratch_ids.reserve(rows);
        self.scratch_rows.reserve(rows * dim);
        let s = &mut self.scratch;
        s.fetch_ids.reserve(rows);
        s.fetch_slots.reserve(rows);
        s.fetch_install.reserve(rows);
        s.fetch_buf.reserve(rows * dim);
        s.fetch_clocks.reserve(rows);
        s.reduce_slots.reserve(rows);
        s.reduce_buf.reserve(rows * dim);
        s.reduce_ids.reserve(rows);
        s.apply_ids.reserve(rows);
        s.apply_buf.reserve(rows * dim);
        s.apply_clocks.reserve(rows);
    }

    /// Reads a batch under intra-embedding bounded staleness with dynamic
    /// admission.
    pub fn read_batch(&mut self, samples: &[&[u32]], out: &mut [f32]) -> ReadReport {
        let dim = self.table.dim();
        let total: usize = samples.iter().map(|s| s.len()).sum();
        assert_eq!(out.len(), total * dim, "output buffer size mismatch");
        let mut report = ReadReport::default();
        self.scratch_ids.clear();
        self.scratch_rows.clear();

        // Classification runs strictly in batch order — LFU touches and
        // admission decisions are stateful, so they stay at decision time —
        // while the primary-table reads are collected and fetched in one
        // shard-grouped call. Missed rows are admitted with placeholder data
        // (identical victim selection) and filled when the fetch lands.
        self.scratch.fetch_ids.clear();
        self.scratch.fetch_slots.clear();
        self.fill_actions.clear();
        for sample in samples {
            for &e in *sample {
                if self.scratch_ids.contains_key(&e) {
                    continue;
                }
                let slot = self.scratch_rows.len();
                self.scratch_rows.resize(slot + dim, 0.0);
                self.cache.touch(e);
                if self.part.primary_of(e) == self.worker {
                    self.scratch.fetch_ids.push(e);
                    self.scratch.fetch_slots.push(slot);
                    self.fill_actions.push(FillAction::None);
                    report.local_primary += 1;
                } else if self.cache.contains(e) {
                    let fresh = match self.bound {
                        StalenessBound::Infinite => {
                            if let Some(a) = &self.auditor {
                                // ASP drift: served as-is at the raw gap.
                                let gap = self.table.clock(e).saturating_sub(
                                    self.cache.effective_clock(e).expect("cached"),
                                ) as f64;
                                a.observe_intra(self.recorder.as_deref(), gap, gap);
                            }
                            true
                        }
                        StalenessBound::Bounded(_) => {
                            report.meta_bytes += META_ENTRY_BYTES;
                            let gap = self
                                .table
                                .clock(e)
                                .saturating_sub(self.cache.effective_clock(e).expect("cached"));
                            let fresh =
                                matches!(self.bound, StalenessBound::Bounded(s) if gap <= s);
                            if let Some(a) = &self.auditor {
                                let served = if fresh { gap as f64 } else { 0.0 };
                                a.observe_intra(self.recorder.as_deref(), gap as f64, served);
                            }
                            fresh
                        }
                    };
                    if fresh {
                        self.cache
                            .read(e, &mut self.scratch_rows[slot..slot + dim]);
                        report.local_fresh += 1;
                    } else {
                        self.scratch.fetch_ids.push(e);
                        self.scratch.fetch_slots.push(slot);
                        self.fill_actions.push(FillAction::Refresh);
                        report.intra_syncs += 1;
                        report.data_bytes += self.row_bytes;
                        report.add_src_bytes(
                            self.part.primary_of(e),
                            self.row_bytes,
                            self.part.num_partitions(),
                        );
                        report.messages += 1;
                    }
                } else {
                    self.scratch.fetch_ids.push(e);
                    self.scratch.fetch_slots.push(slot);
                    self.fill_actions.push(FillAction::Admit);
                    report.remote_fetches += 1;
                    report.data_bytes += self.row_bytes;
                    report.add_src_bytes(
                        self.part.primary_of(e),
                        self.row_bytes,
                        self.part.num_partitions(),
                    );
                    report.meta_bytes += META_ENTRY_BYTES;
                    report.messages += 1;
                    // Dynamic admission: the fetch already paid the traffic.
                    // Admission happens *now* (placeholder values, clock as
                    // observed here) so LFU victim selection matches the
                    // per-row order exactly; the data fills in below.
                    let clock = self.table.clock(e);
                    self.scratch.row_buf.fill(0.0);
                    self.cache.admit(e, &self.scratch.row_buf, clock);
                }
                self.scratch_ids.insert(e, slot);
            }
        }

        // One shard-grouped fetch, scattered to the output scratch; synced
        // rows re-install at the clock observed by the read, admitted rows
        // fill their placeholder (a no-op if a later admission in the same
        // batch already evicted them).
        let nfetch = self.scratch.fetch_ids.len();
        if nfetch > 0 {
            let table = self.table;
            let format = self.format;
            let HotScratch {
                batch,
                fetch_ids,
                fetch_slots,
                fetch_buf,
                fetch_clocks,
                ..
            } = &mut self.scratch;
            fetch_buf.clear();
            fetch_buf.resize(nfetch * dim, 0.0);
            fetch_clocks.clear();
            fetch_clocks.resize(nfetch, 0);
            table.read_rows(fetch_ids, fetch_buf, fetch_clocks, batch);
            for k in 0..nfetch {
                let slot = fetch_slots[k];
                let row = &mut fetch_buf[k * dim..(k + 1) * dim];
                // Refresh/Admit rows crossed the interconnect; local
                // primaries (None) stay exact.
                if self.fill_actions[k] != FillAction::None {
                    format.transport(row);
                }
                self.scratch_rows[slot..slot + dim].copy_from_slice(row);
                match self.fill_actions[k] {
                    FillAction::None => {}
                    // A later admission in the same batch may have evicted a
                    // sync victim — the per-row order refreshed it first and
                    // evicted it after, landing in the same final state.
                    FillAction::Refresh => {
                        if self.cache.contains(fetch_ids[k]) {
                            self.cache.refresh(fetch_ids[k], row, fetch_clocks[k]);
                        }
                    }
                    FillAction::Admit => {
                        self.cache.fill(fetch_ids[k], row);
                    }
                }
            }
        }
        if let Some(r) = &self.recorder {
            r.counter_add(names::HOTPATH_BATCH_READ_ROWS, nfetch as u64);
        }
        self.note_quant(report.intra_syncs + report.remote_fetches);

        let mut cursor = 0usize;
        for sample in samples {
            for &e in *sample {
                let slot = self.scratch_ids[&e];
                out[cursor..cursor + dim]
                    .copy_from_slice(&self.scratch_rows[slot..slot + dim]);
                cursor += dim;
            }
        }
        if let Some(r) = &self.recorder {
            r.counter_add(names::EMBED_READ_LOCAL_PRIMARY, report.local_primary);
            r.counter_add(names::EMBED_READ_LOCAL_FRESH, report.local_fresh);
            r.counter_add(names::EMBED_READ_REMOTE, report.remote_fetches);
            r.counter_add(names::EMBED_SYNC_INTRA, report.intra_syncs);
            // For the dynamic cache a fresh or refreshed row is a hit; only a
            // full fetch-and-admit is a miss.
            r.counter_add(
                names::EMBED_CACHE_HIT,
                report.local_fresh + report.intra_syncs,
            );
            r.counter_add(names::EMBED_CACHE_MISS, report.remote_fetches);
        }
        if let Some(t) = &self.tracer {
            let w = self.worker as usize;
            t.worker_instant(
                w,
                names::TRACE_READ,
                &[
                    ("local_primary", Json::U64(report.local_primary)),
                    ("cache_hit", Json::U64(report.local_fresh + report.intra_syncs)),
                    ("cache_miss", Json::U64(report.remote_fetches)),
                ],
            );
            if report.intra_syncs > 0 {
                t.worker_instant(
                    w,
                    names::TRACE_SYNC,
                    &[("kind", Json::from("intra")), ("count", Json::U64(report.intra_syncs))],
                );
            }
        }
        report
    }

    /// Applies per-lookup gradients (local reduction, immediate write-back —
    /// HET pushes updates eagerly; deferred stale-gradient buffers are the
    /// HET-GMP refinement).
    pub fn apply_gradients(
        &mut self,
        samples: &[&[u32]],
        grads: &[f32],
        opt: &SparseOpt,
    ) -> UpdateReport {
        let dim = self.table.dim();
        let total: usize = samples.iter().map(|s| s.len()).sum();
        assert_eq!(grads.len(), total * dim, "gradient buffer size mismatch");

        // Local reduction into a flat reusable buffer — no per-row Vec
        // allocations on the hot path.
        {
            let HotScratch {
                reduce_slots,
                reduce_buf,
                ..
            } = &mut self.scratch;
            reduce_slots.clear();
            reduce_buf.clear();
            let mut cursor = 0usize;
            for sample in samples {
                for &e in *sample {
                    let g = &grads[cursor..cursor + dim];
                    match reduce_slots.get(&e) {
                        Some(&slot) => {
                            for (a, &x) in reduce_buf[slot..slot + dim].iter_mut().zip(g) {
                                *a += x;
                            }
                        }
                        None => {
                            reduce_slots.insert(e, reduce_buf.len());
                            reduce_buf.extend_from_slice(g);
                        }
                    }
                    cursor += dim;
                }
            }
        }

        let mut report = UpdateReport::default();
        // HET writes back eagerly: every reduced gradient hits the primary
        // table, so the whole batch goes through one shard-grouped apply.
        let HotScratch {
            batch,
            reduce_slots,
            reduce_buf,
            reduce_ids,
            apply_buf,
            apply_clocks,
            ..
        } = &mut self.scratch;
        reduce_ids.clear();
        reduce_ids.extend(reduce_slots.keys().copied());
        reduce_ids.sort_unstable();
        apply_buf.clear();
        let mut wire_rows = 0u64;
        for &e in reduce_ids.iter() {
            let slot = reduce_slots[&e];
            let start = apply_buf.len();
            apply_buf.extend_from_slice(&reduce_buf[slot..slot + dim]);
            // Remote-primary gradients cross the wire: transport them (with
            // error feedback when enabled) before they reach the primary.
            // Local-primary rows apply exactly.
            if self.part.primary_of(e) != self.worker && !self.format.is_lossless() {
                let wire = &mut apply_buf[start..];
                if self.feedback_on {
                    self.feedback.compensate_and_transport(self.format, e, wire);
                } else {
                    self.format.transport(wire);
                }
                wire_rows += 1;
            }
        }
        apply_clocks.clear();
        apply_clocks.resize(reduce_ids.len(), 0);
        self.table
            .apply_grads(reduce_ids, apply_buf, opt, apply_clocks, batch);
        let lr = opt.learning_rate();
        let delta = &mut self.scratch.row_buf;
        for (k, &e) in self.scratch.reduce_ids.iter().enumerate() {
            // The mirror applies the transported gradient (what the primary
            // actually received), read back out of the apply staging.
            let g = &self.scratch.apply_buf[k * dim..(k + 1) * dim];
            if self.part.primary_of(e) == self.worker {
                report.local_updates += 1;
            } else {
                report.remote_writebacks += 1;
                report.data_bytes += self.row_bytes;
                report.add_dst_bytes(
                    self.part.primary_of(e),
                    self.row_bytes,
                    self.part.num_partitions(),
                );
                report.meta_bytes += META_ENTRY_BYTES;
                report.messages += 1;
            }
            if self.cache.contains(e) {
                for (d, &x) in delta.iter_mut().zip(g) {
                    *d = -lr * x;
                }
                self.cache.apply_local_delta(e, delta);
            }
        }
        self.note_quant(wire_rows);
        if let Some(r) = &self.recorder {
            // HET-style eager write-back: nothing is deferred.
            r.counter_add(
                names::EMBED_UPDATE_DIRECT,
                report.local_updates + report.remote_writebacks,
            );
            r.counter_add(
                names::HOTPATH_BATCH_APPLY_ROWS,
                self.scratch.reduce_ids.len() as u64,
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(_table: &ShardedTable) -> Partition {
        Partition::new(2, vec![0, 1], vec![1, 1, 1, 1])
    }

    #[test]
    fn caches_after_first_fetch() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let mut w = CachedWorkerEmbedding::new(0, &table, &part, 2, StalenessBound::Bounded(10));
        let samples: Vec<&[u32]> = vec![&[0]];
        let mut out = vec![0.0; 2];
        let r1 = w.read_batch(&samples, &mut out);
        assert_eq!(r1.remote_fetches, 1);
        assert_eq!(w.cached_rows(), 1);
        let r2 = w.read_batch(&samples, &mut out);
        assert_eq!(r2.remote_fetches, 0);
        assert_eq!(r2.local_fresh, 1);
    }

    #[test]
    fn staleness_forces_refresh() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let mut w = CachedWorkerEmbedding::new(0, &table, &part, 2, StalenessBound::Bounded(1));
        let samples: Vec<&[u32]> = vec![&[0]];
        let mut out = vec![0.0; 2];
        w.read_batch(&samples, &mut out);
        for _ in 0..3 {
            table.apply_grad(0, &[1.0, 0.0], &SparseOpt::sgd(0.1));
        }
        let r = w.read_batch(&samples, &mut out);
        assert_eq!(r.intra_syncs, 1);
        assert!((out[0] + 0.3).abs() < 1e-6);
    }

    #[test]
    fn capacity_bounds_cache() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let mut w = CachedWorkerEmbedding::new(0, &table, &part, 1, StalenessBound::Bounded(10));
        let samples: Vec<&[u32]> = vec![&[0, 1, 2, 3]];
        let mut out = vec![0.0; 8];
        w.read_batch(&samples, &mut out);
        assert_eq!(w.cached_rows(), 1);
    }

    #[test]
    fn updates_route_and_mirror() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let mut w = CachedWorkerEmbedding::new(0, &table, &part, 4, StalenessBound::Bounded(10));
        let samples: Vec<&[u32]> = vec![&[0]];
        let mut out = vec![0.0; 2];
        w.read_batch(&samples, &mut out); // admit
        let r = w.apply_gradients(&samples, &[1.0, 0.0], &SparseOpt::sgd(0.1));
        assert_eq!(r.remote_writebacks, 1);
        // Cached mirror matches primary.
        w.read_batch(&samples, &mut out);
        let mut primary = vec![0.0; 2];
        table.read_row(0, &mut primary);
        assert_eq!(out, primary);
    }
}
