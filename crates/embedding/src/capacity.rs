//! Capacity planning: which embedding-model sizes fit a cluster?
//!
//! The paper's headline capacity claim (§7.4): *"Currently, with 24 GPUs
//! (32 GB), we support around 10¹¹ float parameters in the embedding
//! table."* This module reproduces that arithmetic as a first-class API —
//! given a worker count, per-worker memory and a replication budget, how
//! many rows/parameters fit, and does a given model fit?

/// Inputs to the capacity computation.
#[derive(Debug, Clone)]
pub struct CapacityPlan {
    /// Number of workers (GPUs).
    pub num_workers: usize,
    /// Usable memory per worker, bytes (after reserving activations etc.).
    pub memory_per_worker: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Bytes per scalar parameter (4 for f32).
    pub bytes_per_param: u64,
    /// Fraction of rows replicated as secondaries (vertex-cut budget);
    /// secondaries also need stale-gradient buffers (2× the row).
    pub replication_fraction: f64,
    /// Optimizer state multiplier: 1.0 = none (SGD), 2.0 = Adagrad
    /// (one accumulator per weight).
    pub optimizer_state_factor: f64,
}

impl CapacityPlan {
    /// The paper's cluster-B setup: 24 × V100 32 GB, Adagrad-free SGD
    /// accounting, top-1% replication, dimension `dim`.
    pub fn paper_cluster_b(dim: usize) -> Self {
        Self {
            num_workers: 24,
            // 32 GB minus ~2 GB working space per GPU.
            memory_per_worker: 30 * (1 << 30),
            dim,
            bytes_per_param: 4,
            replication_fraction: 0.01,
            optimizer_state_factor: 1.0,
        }
    }

    /// Bytes needed by one primary row.
    fn primary_row_bytes(&self) -> f64 {
        self.dim as f64 * self.bytes_per_param as f64 * self.optimizer_state_factor
    }

    /// Bytes needed by one secondary row (value + stale-gradient buffer,
    /// per §6 "Secondary embeddings require extra space for stale
    /// gradients").
    fn secondary_row_bytes(&self) -> f64 {
        2.0 * self.dim as f64 * self.bytes_per_param as f64
    }

    /// Maximum number of embedding rows the cluster can hold.
    pub fn max_rows(&self) -> u64 {
        let total_memory = self.memory_per_worker as f64 * self.num_workers as f64;
        // rows × primary + rows × replication × workers-ish secondaries:
        // each replicated row has on average `replication_fraction ×
        // num_workers` secondaries spread over the cluster.
        let per_row = self.primary_row_bytes()
            + self.replication_fraction
                * self.num_workers as f64
                * self.secondary_row_bytes();
        (total_memory / per_row) as u64
    }

    /// Maximum number of scalar embedding parameters (`rows × dim`).
    pub fn max_params(&self) -> u64 {
        self.max_rows() * self.dim as u64
    }

    /// True when a table of `rows` rows fits.
    pub fn fits(&self, rows: u64) -> bool {
        rows <= self.max_rows()
    }

    /// Memory footprint of `rows` rows on the busiest worker assuming
    /// balanced primaries plus a full local replication budget.
    pub fn per_worker_bytes(&self, rows: u64) -> u64 {
        let primaries = (rows as f64 / self.num_workers as f64).ceil();
        let secondaries = rows as f64 * self.replication_fraction;
        (primaries * self.primary_row_bytes() + secondaries * self.secondary_row_bytes()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_claim_reproduced() {
        // 24 × 30 GB at dim 128 with 1% replication and SGD-only state:
        // the paper claims ~10^11 parameters.
        let plan = CapacityPlan::paper_cluster_b(128);
        let params = plan.max_params();
        assert!(
            params > 5e10 as u64 && params < 3e11 as u64,
            "max params {params:.3e} not in the 10^11 ballpark"
        );
    }

    #[test]
    fn replication_costs_capacity() {
        let mut plan = CapacityPlan::paper_cluster_b(64);
        let without = {
            plan.replication_fraction = 0.0;
            plan.max_rows()
        };
        plan.replication_fraction = 0.05;
        let with = plan.max_rows();
        assert!(with < without);
    }

    #[test]
    fn adagrad_halves_capacity() {
        let mut plan = CapacityPlan::paper_cluster_b(64);
        plan.replication_fraction = 0.0;
        let sgd = plan.max_rows();
        plan.optimizer_state_factor = 2.0;
        let adagrad = plan.max_rows();
        assert!((sgd as f64 / adagrad as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn fits_and_per_worker() {
        let plan = CapacityPlan::paper_cluster_b(32);
        let rows = plan.max_rows();
        assert!(plan.fits(rows));
        assert!(!plan.fits(rows + rows / 2));
        assert!(plan.per_worker_bytes(rows) <= plan.memory_per_worker + (1 << 20));
    }

    #[test]
    fn more_workers_more_capacity() {
        let mut plan = CapacityPlan::paper_cluster_b(64);
        plan.replication_fraction = 0.0;
        let at24 = plan.max_params();
        plan.num_workers = 8;
        let at8 = plan.max_params();
        assert!(at24 > 2 * at8);
    }
}
