//! Checkpointing: versioned little-endian binary formats for the embedding
//! table and for a whole training run's restorable state.
//!
//! # Table section (`HGMP`, version 2)
//!
//! [`save_table`]/[`load_table`] serialise the primary store alone:
//!
//! ```text
//! magic     4 bytes   "HGMP"
//! version   u32       2
//! rows      u64
//! dim       u64
//! has_accum u8        1 if per-row Adagrad accumulators follow, else 0
//! rows × ( clock u64, dim × f32 values, [dim × f32 accum] )
//! ```
//!
//! All integers and floats are little-endian. [`load_table`] validates the
//! header, requires an exact shape match with the target table, and
//! restores values, per-row update clocks, **and** (when present) the
//! sparse optimizer's Adagrad accumulators — a restored table rejoins the
//! bounded-asynchrony protocol exactly where it left off and its optimizer
//! re-takes curvature-adapted steps, so a resumed run's staleness decisions
//! *and* its math match the uninterrupted run's. Version-1 files (no
//! `has_accum` byte, no accumulators) still load; their accumulators are
//! implicitly zero.
//!
//! # Run container (`HGMR`, version 1)
//!
//! [`save_run`]/[`load_run`] wrap the table section with everything else a
//! resumable run needs — per-worker simulated clocks, shard cursors, and
//! dense-model parameters:
//!
//! ```text
//! magic       4 bytes   "HGMR"
//! version     u32       1
//! epoch       u64       last completed epoch
//! workers     u64
//! dense_len   u64       dense f32 parameters per worker (uniform)
//! <table section>       a complete HGMP record (see above)
//! workers × ( sim_time f64, cursor u64, dense_len × f32 )
//! ```
//!
//! The container embeds the table section verbatim, so a `HGMR` file can be
//! opened by table-only tooling by skipping the 32-byte run header.
//! [`run_encoded_len`] gives the exact on-disk size without serialising —
//! the trainer uses it to charge simulated checkpoint I/O.

use std::io::{self, Read, Write};

use hetgmp_telemetry::HetGmpError;

use crate::table::ShardedTable;

const MAGIC: &[u8; 4] = b"HGMP";
const VERSION: u32 = 2;
/// Oldest table-section version still loadable (v1: no accumulators).
const MIN_VERSION: u32 = 1;
const RUN_MAGIC: &[u8; 4] = b"HGMR";
const RUN_VERSION: u32 = 1;

/// Checkpoint I/O failures.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a checkpoint file / wrong version.
    BadHeader(String),
    /// Shape mismatch on restore.
    ShapeMismatch {
        /// Rows/dim in the file.
        file: (usize, usize),
        /// Rows/dim of the target table.
        table: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::BadHeader(msg) => write!(f, "bad checkpoint header: {msg}"),
            CheckpointError::ShapeMismatch { file, table } => write!(
                f,
                "shape mismatch: file {}x{}, table {}x{}",
                file.0, file.1, table.0, table.1
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl CheckpointError {
    /// Converts into the workspace-wide [`HetGmpError`], attributing the
    /// checkpoint file at `path`. I/O failures map to `Io` (exit code 74);
    /// corrupt content maps to `Checkpoint` (exit code 65).
    pub fn into_workspace(self, path: impl Into<std::path::PathBuf>) -> HetGmpError {
        match self {
            CheckpointError::Io(e) => HetGmpError::io(path, e),
            other => HetGmpError::checkpoint(path, other.to_string()),
        }
    }
}

/// Writes the table (values + clocks + Adagrad accumulators when any have
/// been allocated) to `writer`.
pub fn save_table<W: Write>(table: &ShardedTable, mut writer: W) -> Result<(), CheckpointError> {
    let has_accum = table.has_optimizer_state();
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(table.num_rows() as u64).to_le_bytes())?;
    writer.write_all(&(table.dim() as u64).to_le_bytes())?;
    writer.write_all(&[u8::from(has_accum)])?;
    let mut row = vec![0.0f32; table.dim()];
    let mut accum = vec![0.0f32; table.dim()];
    for r in 0..table.num_rows() as u32 {
        let clock = table.read_row(r, &mut row);
        writer.write_all(&clock.to_le_bytes())?;
        for &x in &row {
            writer.write_all(&x.to_le_bytes())?;
        }
        if has_accum {
            table.read_accum(r, &mut accum);
            for &x in &accum {
                writer.write_all(&x.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Restores values, **row clocks**, and (version-2 files) Adagrad
/// accumulators into an existing table of matching shape. The round-trip is
/// bit-identical: a saved row's f32 values, its u64 update clock, and its
/// optimizer accumulator come back exactly, so staleness bookkeeping *and*
/// curvature-adapted step sizes continue seamlessly across a save/load
/// boundary (and a crashed worker rolled back to a checkpoint presents the
/// same clocks it checkpointed with).
pub fn load_table<R: Read>(table: &ShardedTable, mut reader: R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader(format!(
            "magic {magic:?} != {MAGIC:?}"
        )));
    }
    let mut u32buf = [0u8; 4];
    reader.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CheckpointError::BadHeader(format!(
            "version {version} unsupported"
        )));
    }
    let mut u64buf = [0u8; 8];
    reader.read_exact(&mut u64buf)?;
    let rows = u64::from_le_bytes(u64buf) as usize;
    reader.read_exact(&mut u64buf)?;
    let dim = u64::from_le_bytes(u64buf) as usize;
    let has_accum = if version >= 2 {
        let mut flag = [0u8; 1];
        reader.read_exact(&mut flag)?;
        if flag[0] > 1 {
            return Err(CheckpointError::BadHeader(format!(
                "corrupt accumulator flag {}",
                flag[0]
            )));
        }
        flag[0] == 1
    } else {
        false
    };
    if rows != table.num_rows() || dim != table.dim() {
        return Err(CheckpointError::ShapeMismatch {
            file: (rows, dim),
            table: (table.num_rows(), table.dim()),
        });
    }
    let mut row = vec![0.0f32; dim];
    let mut accum = vec![0.0f32; dim];
    let mut f32buf = [0u8; 4];
    for r in 0..rows as u32 {
        reader.read_exact(&mut u64buf)?;
        let clock = u64::from_le_bytes(u64buf);
        for x in &mut row {
            reader.read_exact(&mut f32buf)?;
            *x = f32::from_le_bytes(f32buf);
        }
        table.restore_row(r, &row, clock);
        if has_accum {
            for x in &mut accum {
                reader.read_exact(&mut f32buf)?;
                *x = f32::from_le_bytes(f32buf);
            }
            table.restore_accum(r, &accum);
        }
    }
    Ok(())
}

/// Encoded size of the `HGMP` table section for `table`, bytes. Depends on
/// whether the table currently holds optimizer state (accumulators are
/// written only when allocated).
pub fn table_encoded_len(table: &ShardedTable) -> u64 {
    let per_row = 8 + table.dim() as u64 * 4 * if table.has_optimizer_state() { 2 } else { 1 };
    4 + 4 + 8 + 8 + 1 + table.num_rows() as u64 * per_row
}

/// Encoded size of a `HGMR` run container for `table` plus `workers`
/// workers each carrying `dense_len` dense f32 parameters, bytes.
pub fn run_encoded_len(table: &ShardedTable, workers: usize, dense_len: usize) -> u64 {
    4 + 4 + 8 + 8 + 8 + table_encoded_len(table) + workers as u64 * (8 + 8 + dense_len as u64 * 4)
}

/// One worker's restorable position in a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerState {
    /// The worker's simulated clock at checkpoint time, seconds.
    pub sim_time: f64,
    /// The worker's position in its (wrap-around) shard cursor.
    pub cursor: u64,
    /// Flattened dense-model parameters.
    pub dense_params: Vec<f32>,
}

/// A whole run's restorable state (everything except the embedding table,
/// which rides alongside in the same container).
#[derive(Debug, Clone, PartialEq)]
pub struct RunState {
    /// Last completed epoch (resume starts at `epoch + 1`).
    pub epoch: u64,
    /// Per-worker clock/cursor/dense state.
    pub workers: Vec<WorkerState>,
}

/// Wraps a writer, counting bytes written.
struct CountingWriter<W> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Writes a full run checkpoint (`HGMR` container: run header + embedded
/// table section + per-worker state) and returns the bytes written.
pub fn save_run<W: Write>(
    table: &ShardedTable,
    state: &RunState,
    writer: W,
) -> Result<u64, CheckpointError> {
    let dense_len = state.workers.first().map_or(0, |w| w.dense_params.len());
    if state.workers.iter().any(|w| w.dense_params.len() != dense_len) {
        return Err(CheckpointError::BadHeader(
            "workers carry unequal dense parameter counts".into(),
        ));
    }
    let mut w = CountingWriter {
        inner: writer,
        written: 0,
    };
    w.write_all(RUN_MAGIC)?;
    w.write_all(&RUN_VERSION.to_le_bytes())?;
    w.write_all(&state.epoch.to_le_bytes())?;
    w.write_all(&(state.workers.len() as u64).to_le_bytes())?;
    w.write_all(&(dense_len as u64).to_le_bytes())?;
    save_table(table, &mut w)?;
    for ws in &state.workers {
        w.write_all(&ws.sim_time.to_le_bytes())?;
        w.write_all(&ws.cursor.to_le_bytes())?;
        for &x in &ws.dense_params {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(w.written)
}

/// Restores a run checkpoint: the embedded table section is loaded into
/// `table` (values + clocks; shape must match) and the per-worker state is
/// returned for the trainer to re-seat clocks, cursors, and dense models.
pub fn load_run<R: Read>(table: &ShardedTable, mut reader: R) -> Result<RunState, CheckpointError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != RUN_MAGIC {
        return Err(CheckpointError::BadHeader(format!(
            "magic {magic:?} != {RUN_MAGIC:?} (not a run checkpoint)"
        )));
    }
    let mut u32buf = [0u8; 4];
    reader.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != RUN_VERSION {
        return Err(CheckpointError::BadHeader(format!(
            "run version {version} unsupported"
        )));
    }
    let mut u64buf = [0u8; 8];
    reader.read_exact(&mut u64buf)?;
    let epoch = u64::from_le_bytes(u64buf);
    reader.read_exact(&mut u64buf)?;
    let workers = u64::from_le_bytes(u64buf) as usize;
    reader.read_exact(&mut u64buf)?;
    let dense_len = u64::from_le_bytes(u64buf) as usize;
    load_table(table, &mut reader)?;
    let mut out = Vec::with_capacity(workers);
    let mut f32buf = [0u8; 4];
    for _ in 0..workers {
        reader.read_exact(&mut u64buf)?;
        let sim_time = f64::from_le_bytes(u64buf);
        if !sim_time.is_finite() || sim_time < 0.0 {
            return Err(CheckpointError::BadHeader(format!(
                "corrupt worker sim_time {sim_time}"
            )));
        }
        reader.read_exact(&mut u64buf)?;
        let cursor = u64::from_le_bytes(u64buf);
        let mut dense_params = Vec::with_capacity(dense_len);
        for _ in 0..dense_len {
            reader.read_exact(&mut f32buf)?;
            dense_params.push(f32::from_le_bytes(f32buf));
        }
        out.push(WorkerState {
            sim_time,
            cursor,
            dense_params,
        });
    }
    Ok(RunState {
        epoch,
        workers: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_optim::SparseOpt;

    #[test]
    fn roundtrip_preserves_values_and_clocks() {
        let t = ShardedTable::new(32, 4, 0.1, 7);
        t.apply_grad(3, &[1.0, 2.0, 3.0, 4.0], &SparseOpt::sgd(0.1));
        t.apply_grad(3, &[0.5, 0.5, 0.5, 0.5], &SparseOpt::sgd(0.1));
        t.apply_grad(17, &[1.0, 1.0, 1.0, 1.0], &SparseOpt::sgd(0.1));
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, table_encoded_len(&t));

        let restored = ShardedTable::new(32, 4, 0.0, 99); // different init
        load_table(&restored, buf.as_slice()).unwrap();
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        for r in 0..32u32 {
            let ca = t.read_row(r, &mut a);
            let cb = restored.read_row(r, &mut b);
            assert_eq!(a, b, "row {r} values");
            assert_eq!(ca, cb, "row {r} clock");
        }
        assert_eq!(restored.clock(3), 2);
        assert_eq!(restored.clock(17), 1);
    }

    #[test]
    fn roundtrip_preserves_adagrad_accumulators() {
        let t = ShardedTable::new(16, 3, 0.1, 11);
        let opt = SparseOpt::adagrad(0.05);
        t.apply_grad(2, &[1.0, -2.0, 0.5], &opt);
        t.apply_grad(2, &[0.25, 0.25, 0.25], &opt);
        t.apply_grad(9, &[3.0, 0.0, -1.0], &opt);
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, table_encoded_len(&t));

        let restored = ShardedTable::new(16, 3, 0.0, 99);
        load_table(&restored, buf.as_slice()).unwrap();
        assert!(restored.has_optimizer_state());
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        for r in 0..16u32 {
            t.read_accum(r, &mut a);
            restored.read_accum(r, &mut b);
            assert_eq!(a, b, "row {r} accumulator");
        }
        // Identical gradients after restore produce identical (curvature-
        // shrunk) steps — the property a resumed run depends on.
        let ca = t.apply_grad(2, &[1.0, 1.0, 1.0], &opt);
        let cb = restored.apply_grad(2, &[1.0, 1.0, 1.0], &opt);
        assert_eq!(ca, cb);
        let mut ra = vec![0.0; 3];
        let mut rb = vec![0.0; 3];
        t.read_row(2, &mut ra);
        restored.read_row(2, &mut rb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn sgd_only_table_skips_accumulators() {
        let t = ShardedTable::new(8, 2, 0.1, 3);
        t.apply_grad(1, &[1.0, 1.0], &SparseOpt::sgd(0.1));
        assert!(!t.has_optimizer_state());
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        // Flag byte present, accumulator payload absent.
        assert_eq!(buf.len() as u64, 4 + 4 + 8 + 8 + 1 + 8 * (8 + 2 * 4));
        let restored = ShardedTable::new(8, 2, 0.0, 4);
        load_table(&restored, buf.as_slice()).unwrap();
        assert!(!restored.has_optimizer_state());
    }

    #[test]
    fn run_roundtrip_preserves_everything() {
        let t = ShardedTable::new(16, 2, 0.1, 5);
        t.apply_grad(9, &[1.0, -1.0], &SparseOpt::sgd(0.1));
        let state = RunState {
            epoch: 3,
            workers: vec![
                WorkerState {
                    sim_time: 12.5,
                    cursor: 400,
                    dense_params: vec![0.1, 0.2, 0.3],
                },
                WorkerState {
                    sim_time: 11.75,
                    cursor: 417,
                    dense_params: vec![-0.5, 0.25, 1.0],
                },
            ],
        };
        let mut buf = Vec::new();
        let written = save_run(&t, &state, &mut buf).unwrap();
        assert_eq!(written, buf.len() as u64);
        assert_eq!(written, run_encoded_len(&t, 2, 3));

        let restored = ShardedTable::new(16, 2, 0.0, 77);
        let got = load_run(&restored, buf.as_slice()).unwrap();
        assert_eq!(got, state);
        let mut row = vec![0.0; 2];
        assert_eq!(restored.read_row(9, &mut row), 1);
        let mut orig = vec![0.0; 2];
        t.read_row(9, &mut orig);
        assert_eq!(row, orig);
    }

    #[test]
    fn run_container_embeds_skippable_table_section() {
        // The table section starts 32 bytes in and is a valid HGMP record.
        let t = ShardedTable::new(8, 2, 0.1, 3);
        let state = RunState {
            epoch: 0,
            workers: vec![WorkerState {
                sim_time: 0.0,
                cursor: 0,
                dense_params: vec![],
            }],
        };
        let mut buf = Vec::new();
        save_run(&t, &state, &mut buf).unwrap();
        let fresh = ShardedTable::new(8, 2, 0.0, 4);
        load_table(&fresh, &buf[32..]).unwrap();
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        for r in 0..8u32 {
            t.read_row(r, &mut a);
            fresh.read_row(r, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn run_load_rejects_table_magic() {
        let t = ShardedTable::new(4, 2, 0.1, 1);
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        let err = load_run(&t, buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("not a run checkpoint"), "{err}");
    }

    #[test]
    fn run_save_rejects_ragged_dense() {
        let t = ShardedTable::new(4, 2, 0.1, 1);
        let state = RunState {
            epoch: 0,
            workers: vec![
                WorkerState {
                    sim_time: 0.0,
                    cursor: 0,
                    dense_params: vec![1.0],
                },
                WorkerState {
                    sim_time: 0.0,
                    cursor: 0,
                    dense_params: vec![1.0, 2.0],
                },
            ],
        };
        assert!(save_run(&t, &state, Vec::new()).is_err());
    }

    #[test]
    fn rejects_wrong_magic() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let err = load_table(&t, &b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let t = ShardedTable::new(8, 2, 0.1, 1);
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        let small = ShardedTable::new(4, 2, 0.0, 1);
        match load_table(&small, buf.as_slice()).unwrap_err() {
            CheckpointError::ShapeMismatch { file, table } => {
                assert_eq!(file, (8, 2));
                assert_eq!(table, (4, 2));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn workspace_conversion_keeps_path_and_exit_code() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let err = load_table(&t, &b"NOPE\x01\x00\x00\x00"[..])
            .unwrap_err()
            .into_workspace("model.hgmp");
        assert_eq!(err.exit_code(), 65);
        let msg = err.to_string();
        assert!(msg.contains("model.hgmp"), "{msg}");
        assert!(msg.contains("magic"), "{msg}");

        let io_err = CheckpointError::Io(io::Error::other("disk gone"))
            .into_workspace("model.hgmp");
        assert_eq!(io_err.exit_code(), 74);
    }

    #[test]
    fn truncated_file_errors() {
        let t = ShardedTable::new(8, 2, 0.1, 1);
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_table(&t, buf.as_slice()).is_err());
    }
}
