//! Embedding-table checkpointing: a simple, versioned little-endian binary
//! format (`HGMP` magic) for saving and restoring the primary store,
//! including row clocks — enough to pause/resume training or export a
//! trained table for serving.

use std::io::{self, Read, Write};

use hetgmp_telemetry::HetGmpError;

use crate::table::ShardedTable;

const MAGIC: &[u8; 4] = b"HGMP";
const VERSION: u32 = 1;

/// Checkpoint I/O failures.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a checkpoint file / wrong version.
    BadHeader(String),
    /// Shape mismatch on restore.
    ShapeMismatch {
        /// Rows/dim in the file.
        file: (usize, usize),
        /// Rows/dim of the target table.
        table: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::BadHeader(msg) => write!(f, "bad checkpoint header: {msg}"),
            CheckpointError::ShapeMismatch { file, table } => write!(
                f,
                "shape mismatch: file {}x{}, table {}x{}",
                file.0, file.1, table.0, table.1
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl CheckpointError {
    /// Converts into the workspace-wide [`HetGmpError`], attributing the
    /// checkpoint file at `path`. I/O failures map to `Io` (exit code 74);
    /// corrupt content maps to `Checkpoint` (exit code 65).
    pub fn into_workspace(self, path: impl Into<std::path::PathBuf>) -> HetGmpError {
        match self {
            CheckpointError::Io(e) => HetGmpError::io(path, e),
            other => HetGmpError::checkpoint(path, other.to_string()),
        }
    }
}

/// Writes the table (values + clocks) to `writer`.
pub fn save_table<W: Write>(table: &ShardedTable, mut writer: W) -> Result<(), CheckpointError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(table.num_rows() as u64).to_le_bytes())?;
    writer.write_all(&(table.dim() as u64).to_le_bytes())?;
    let mut row = vec![0.0f32; table.dim()];
    for r in 0..table.num_rows() as u32 {
        let clock = table.read_row(r, &mut row);
        writer.write_all(&clock.to_le_bytes())?;
        for &x in &row {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores values into an existing table of matching shape.
///
/// Clocks in the file are informational on restore (the in-memory clocks are
/// atomic counters starting from the restored values would require interior
/// mutation; instead the restored table starts with fresh clocks, which is
/// sound: staleness bounds are *relative* gaps).
pub fn load_table<R: Read>(table: &ShardedTable, mut reader: R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader(format!(
            "magic {magic:?} != {MAGIC:?}"
        )));
    }
    let mut u32buf = [0u8; 4];
    reader.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(CheckpointError::BadHeader(format!(
            "version {version} unsupported"
        )));
    }
    let mut u64buf = [0u8; 8];
    reader.read_exact(&mut u64buf)?;
    let rows = u64::from_le_bytes(u64buf) as usize;
    reader.read_exact(&mut u64buf)?;
    let dim = u64::from_le_bytes(u64buf) as usize;
    if rows != table.num_rows() || dim != table.dim() {
        return Err(CheckpointError::ShapeMismatch {
            file: (rows, dim),
            table: (table.num_rows(), table.dim()),
        });
    }
    let mut row = vec![0.0f32; dim];
    let mut f32buf = [0u8; 4];
    for r in 0..rows as u32 {
        reader.read_exact(&mut u64buf)?; // stored clock (see docs)
        for x in &mut row {
            reader.read_exact(&mut f32buf)?;
            *x = f32::from_le_bytes(f32buf);
        }
        table.write_row(r, &row);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_optim::SparseOpt;

    #[test]
    fn roundtrip_preserves_values() {
        let t = ShardedTable::new(32, 4, 0.1, 7);
        t.apply_grad(3, &[1.0, 2.0, 3.0, 4.0], &SparseOpt::sgd(0.1));
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();

        let restored = ShardedTable::new(32, 4, 0.0, 99); // different init
        load_table(&restored, buf.as_slice()).unwrap();
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        for r in 0..32u32 {
            t.read_row(r, &mut a);
            restored.read_row(r, &mut b);
            assert_eq!(a, b, "row {r}");
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let err = load_table(&t, &b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let t = ShardedTable::new(8, 2, 0.1, 1);
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        let small = ShardedTable::new(4, 2, 0.0, 1);
        match load_table(&small, buf.as_slice()).unwrap_err() {
            CheckpointError::ShapeMismatch { file, table } => {
                assert_eq!(file, (8, 2));
                assert_eq!(table, (4, 2));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn workspace_conversion_keeps_path_and_exit_code() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let err = load_table(&t, &b"NOPE\x01\x00\x00\x00"[..])
            .unwrap_err()
            .into_workspace("model.hgmp");
        assert_eq!(err.exit_code(), 65);
        let msg = err.to_string();
        assert!(msg.contains("model.hgmp"), "{msg}");
        assert!(msg.contains("magic"), "{msg}");

        let io_err = CheckpointError::Io(io::Error::other("disk gone"))
            .into_workspace("model.hgmp");
        assert_eq!(io_err.exit_code(), 74);
    }

    #[test]
    fn truncated_file_errors() {
        let t = ShardedTable::new(8, 2, 0.1, 1);
        let mut buf = Vec::new();
        save_table(&t, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_table(&t, buf.as_slice()).is_err());
    }
}
