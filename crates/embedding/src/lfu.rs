//! A dynamic LFU embedding cache — the design of HET (Miao et al., VLDB
//! 2022), the predecessor system the paper builds on ("HET proposes an
//! embedding-cache-enabled architecture with fine-grained consistency").
//!
//! Where HET-GMP decides replicas *statically* from the bigraph (2D
//! vertex-cut), HET caches rows *dynamically* by observed access frequency.
//! This module provides the cache so the two designs can be compared on the
//! same substrate (see the `cache_comparison` ablation).

use std::collections::HashMap;

/// A fixed-capacity least-frequently-used cache of embedding rows with
/// staleness bookkeeping compatible with the bounded-asynchrony protocol.
#[derive(Debug)]
pub struct LfuCache {
    dim: usize,
    capacity: usize,
    /// id → slot index.
    slots: HashMap<u32, usize>,
    /// Reverse map: slot → id (u32::MAX = free).
    ids: Vec<u32>,
    data: Vec<f32>,
    base_clock: Vec<u64>,
    local_updates: Vec<u64>,
    /// In-cache access frequency per slot.
    slot_freq: Vec<u64>,
    /// Global access counts (admission decisions need frequency estimates
    /// for *uncached* rows too).
    counts: HashMap<u32, u64>,
}

impl LfuCache {
    /// Creates an empty cache for rows of `dim` floats with `capacity`
    /// slots.
    pub fn new(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        Self {
            dim,
            capacity,
            slots: HashMap::with_capacity(capacity),
            ids: vec![u32::MAX; capacity],
            data: vec![0.0; capacity * dim],
            base_clock: vec![0; capacity],
            local_updates: vec![0; capacity],
            slot_freq: vec![0; capacity],
            counts: HashMap::new(),
        }
    }

    /// Capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when `row` is cached.
    pub fn contains(&self, row: u32) -> bool {
        self.slots.contains_key(&row)
    }

    /// Records an access to `row` (for admission statistics) and bumps its
    /// in-cache frequency if cached. Returns the updated global count.
    pub fn touch(&mut self, row: u32) -> u64 {
        let c = self.counts.entry(row).or_insert(0);
        *c += 1;
        let count = *c;
        if let Some(&slot) = self.slots.get(&row) {
            self.slot_freq[slot] = count;
        }
        count
    }

    /// Effective clock of a cached row.
    pub fn effective_clock(&self, row: u32) -> Option<u64> {
        self.slots
            .get(&row)
            .map(|&s| self.base_clock[s] + self.local_updates[s])
    }

    /// Reads a cached row into `out`; false when absent.
    pub fn read(&self, row: u32, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.dim, "buffer length != dim");
        match self.slots.get(&row) {
            Some(&s) => {
                out.copy_from_slice(&self.data[s * self.dim..(s + 1) * self.dim]);
                true
            }
            None => false,
        }
    }

    /// Applies a delta to a cached row, advancing its effective clock.
    pub fn apply_local_delta(&mut self, row: u32, delta: &[f32]) -> bool {
        assert_eq!(delta.len(), self.dim, "delta length != dim");
        match self.slots.get(&row) {
            Some(&s) => {
                for (d, &x) in self.data[s * self.dim..(s + 1) * self.dim]
                    .iter_mut()
                    .zip(delta)
                {
                    *d += x;
                }
                self.local_updates[s] += 1;
                true
            }
            None => false,
        }
    }

    /// Offers a freshly-fetched row for admission. Admits when a slot is
    /// free or when `row`'s observed frequency exceeds the coldest cached
    /// row's (LFU displacement). Returns true if the row is now cached.
    pub fn admit(&mut self, row: u32, values: &[f32], primary_clock: u64) -> bool {
        assert_eq!(values.len(), self.dim, "values length != dim");
        if self.capacity == 0 {
            return false;
        }
        if let Some(&s) = self.slots.get(&row) {
            // Refresh in place.
            self.install_at(s, row, values, primary_clock);
            return true;
        }
        let freq = self.counts.get(&row).copied().unwrap_or(0);
        if self.slots.len() < self.capacity {
            let s = self.ids.iter().position(|&i| i == u32::MAX).expect("free slot");
            self.slots.insert(row, s);
            self.install_at(s, row, values, primary_clock);
            self.slot_freq[s] = freq;
            return true;
        }
        // Find the coldest victim.
        let (victim_slot, &victim_freq) = self
            .slot_freq
            .iter()
            .enumerate()
            .min_by_key(|&(_, f)| *f)
            .expect("non-empty cache");
        if freq <= victim_freq {
            return false;
        }
        let victim_id = self.ids[victim_slot];
        self.slots.remove(&victim_id);
        self.slots.insert(row, victim_slot);
        self.install_at(victim_slot, row, values, primary_clock);
        self.slot_freq[victim_slot] = freq;
        true
    }

    fn install_at(&mut self, slot: usize, row: u32, values: &[f32], primary_clock: u64) {
        self.ids[slot] = row;
        self.data[slot * self.dim..(slot + 1) * self.dim].copy_from_slice(values);
        self.base_clock[slot] = primary_clock;
        self.local_updates[slot] = 0;
    }

    /// Refreshes a cached row after a staleness sync.
    ///
    /// # Panics
    /// Panics if the row is not cached.
    pub fn refresh(&mut self, row: u32, values: &[f32], primary_clock: u64) {
        let &s = self.slots.get(&row).expect("row not cached");
        self.install_at(s, row, values, primary_clock);
    }

    /// Overwrites a cached row's values without touching its clock or
    /// frequency bookkeeping. The batched read path admits rows with
    /// placeholder data at classification time (so LFU victim selection is
    /// identical to the per-row order) and fills the values once the
    /// shard-grouped fetch lands. Returns false when the row is no longer
    /// cached — evicted by a later admission in the same batch.
    pub fn fill(&mut self, row: u32, values: &[f32]) -> bool {
        assert_eq!(values.len(), self.dim, "values length != dim");
        match self.slots.get(&row) {
            Some(&s) => {
                self.data[s * self.dim..(s + 1) * self.dim].copy_from_slice(values);
                true
            }
            None => false,
        }
    }

    /// Currently cached row ids (sorted).
    pub fn cached_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.slots.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_free_slots_first() {
        let mut c = LfuCache::new(2, 2);
        assert!(c.is_empty());
        assert!(c.admit(5, &[1.0, 2.0], 0));
        assert!(c.admit(9, &[3.0, 4.0], 0));
        assert_eq!(c.len(), 2);
        let mut buf = [0.0; 2];
        assert!(c.read(5, &mut buf));
        assert_eq!(buf, [1.0, 2.0]);
    }

    #[test]
    fn lfu_displacement() {
        let mut c = LfuCache::new(1, 2);
        c.admit(1, &[1.0], 0);
        c.admit(2, &[2.0], 0);
        // Row 3 has frequency 0 — not admitted over rows with equal freq.
        assert!(!c.admit(3, &[3.0], 0));
        // Make row 3 hot: 5 accesses; rows 1/2 get 1 each.
        c.touch(1);
        c.touch(2);
        for _ in 0..5 {
            c.touch(3);
        }
        assert!(c.admit(3, &[3.0], 0));
        assert!(c.contains(3));
        // One of 1/2 was evicted.
        assert_eq!(c.len(), 2);
        assert!(!(c.contains(1) && c.contains(2)));
    }

    #[test]
    fn clock_and_delta_tracking() {
        let mut c = LfuCache::new(2, 1);
        c.admit(4, &[0.0, 0.0], 10);
        assert_eq!(c.effective_clock(4), Some(10));
        c.apply_local_delta(4, &[1.0, -1.0]);
        assert_eq!(c.effective_clock(4), Some(11));
        let mut buf = [0.0; 2];
        c.read(4, &mut buf);
        assert_eq!(buf, [1.0, -1.0]);
        c.refresh(4, &[9.0, 9.0], 20);
        assert_eq!(c.effective_clock(4), Some(20));
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut c = LfuCache::new(2, 0);
        c.touch(1);
        assert!(!c.admit(1, &[0.0, 0.0], 0));
        assert!(!c.contains(1));
    }

    #[test]
    fn readmission_refreshes() {
        let mut c = LfuCache::new(1, 1);
        c.admit(7, &[1.0], 3);
        c.apply_local_delta(7, &[0.5]);
        assert!(c.admit(7, &[2.0], 8)); // refresh path
        assert_eq!(c.effective_clock(7), Some(8));
        let mut buf = [0.0];
        c.read(7, &mut buf);
        assert_eq!(buf, [2.0]);
    }

    #[test]
    fn fill_overwrites_data_only() {
        let mut c = LfuCache::new(2, 1);
        c.admit(3, &[0.0, 0.0], 7);
        c.apply_local_delta(3, &[1.0, 1.0]);
        assert!(c.fill(3, &[5.0, 6.0]));
        assert_eq!(c.effective_clock(3), Some(8), "clock untouched by fill");
        let mut buf = [0.0; 2];
        c.read(3, &mut buf);
        assert_eq!(buf, [5.0, 6.0]);
        assert!(!c.fill(9, &[0.0, 0.0]), "absent row is a no-op");
    }

    #[test]
    fn cached_ids_sorted() {
        let mut c = LfuCache::new(1, 3);
        c.admit(9, &[0.0], 0);
        c.admit(2, &[0.0], 0);
        assert_eq!(c.cached_ids(), vec![2, 9]);
    }
}
