#![warn(missing_docs)]

//! # hetgmp-embedding
//!
//! The distributed embedding table of HET-GMP (paper §5.2–5.3, §6).
//!
//! Layout follows Figure 6: every embedding row has exactly one **primary**
//! replica (authoritative, "always up-to-date": every update is written back
//! to it) on the partition chosen by the 1D edge-cut, and may have
//! **secondary** replicas (created by 2D vertex-cut) that are allowed to go
//! stale within the bounded-asynchrony protocol:
//!
//! * **intra-embedding synchronisation** — before a worker reads its
//!   secondary copy of `x`, the copy must be within `s` updates of the
//!   primary (missed *other-worker* updates), else it is re-fetched;
//! * **inter-embedding synchronisation** — the embeddings co-accessed by one
//!   sample must be mutually fresh: for a pair `(x_i, x_j)` with access
//!   frequencies `p_i ≥ p_j`, the *normalised* clock gap
//!   `|c_i · p_j/p_i − c_j|` must not exceed `s` (clock normalisation
//!   eliminates the bias from uneven access frequencies, §5.3), else the
//!   staler secondary is synchronised.
//!
//! Components:
//! * [`ShardedTable`] — the global primary store: lock-striped rows +
//!   per-row atomic update clocks; safe for concurrent worker threads
//!   (stands in for the paper's CUDA embedding tables + NCCL p2p);
//! * [`SecondaryCache`] — one worker's secondary replicas with base-clock /
//!   local-update bookkeeping ("extra space for stale gradients", §6);
//! * [`WorkerEmbedding`] — a worker's view combining both plus the
//!   [`Partition`](hetgmp_partition::Partition): `read` with staleness
//!   checks, `apply_gradients` with local reduction and primary write-back,
//!   returning a [`ReadReport`]/[`UpdateReport`] of every byte that would
//!   have crossed the interconnect;
//! * [`SparseOpt`] — per-row SGD / Adagrad applied at the primary.

pub mod cache;
pub mod cached_worker;
pub mod capacity;
pub mod checkpoint;
pub mod lfu;
pub mod report;
pub mod sparse_optim;
pub mod table;
pub mod worker;

pub use cache::SecondaryCache;
pub use cached_worker::CachedWorkerEmbedding;
pub use capacity::CapacityPlan;
pub use checkpoint::{
    load_run, load_table, run_encoded_len, save_run, save_table, table_encoded_len,
    CheckpointError, RunState, WorkerState,
};
pub use lfu::LfuCache;
pub use report::{ReadReport, UpdateReport};
pub use sparse_optim::SparseOpt;
pub use table::{BatchScratch, ShardedTable};
pub use worker::{StalenessBound, WorkerEmbedding};

pub use hetgmp_comms::SyncFormat;

/// A worker-side embedding interface: batch reads under some consistency
/// discipline plus gradient application. Implemented by the statically
/// replicated [`WorkerEmbedding`] (HET-GMP) and the dynamically cached
/// [`CachedWorkerEmbedding`] (HET-style), so trainers can swap designs.
pub trait EmbeddingWorker: Send {
    /// Reads a batch of samples' rows into `out` (sample-major).
    fn read_batch(&mut self, samples: &[&[u32]], out: &mut [f32]) -> ReadReport;
    /// Applies per-lookup gradients aligned with the previous read.
    fn apply_gradients(
        &mut self,
        samples: &[&[u32]],
        grads: &[f32],
        opt: &SparseOpt,
    ) -> UpdateReport;
    /// Flushes any deferred state (epoch/evaluation barriers).
    fn flush_all(&mut self, opt: &SparseOpt) -> UpdateReport;
    /// Pre-sizes hot-path scratch for batches of up to `batch` samples ×
    /// `fields` lookups each, so the first batches (and the pipelined
    /// trainer's prefetch stage, which runs `read_batch` on a companion
    /// thread) never grow buffers mid-flight. Purely an allocation hint —
    /// never required for correctness. Default is a no-op.
    fn reserve_batch(&mut self, batch: usize, fields: usize) {
        let _ = (batch, fields);
    }
    /// Refreshes every worker-local replica / cached row from the
    /// authoritative table. Called at epoch barriers *after* all workers
    /// have flushed, so the in-memory state entering the next epoch is
    /// exactly what a checkpoint resume reconstructs (resumed runs warm-
    /// load replicas from the restored table). Returns the number of rows
    /// re-fetched; the caller charges their transfer. Default is a no-op
    /// for implementations that hold no local copies.
    fn sync_replicas(&mut self) -> u64 {
        0
    }
    /// Attaches a telemetry recorder for `embedding.*` metrics. Default is a
    /// no-op so trivial implementations stay trivial.
    fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn hetgmp_telemetry::Recorder>) {
        let _ = recorder;
    }
    /// Attaches a protocol auditor observing every staleness decision.
    /// Default is a no-op.
    fn attach_auditor(&mut self, auditor: std::sync::Arc<hetgmp_telemetry::ProtocolAuditor>) {
        let _ = auditor;
    }
    /// Attaches a trace collector for per-batch decision instants.
    /// Default is a no-op.
    fn attach_tracer(&mut self, tracer: std::sync::Arc<hetgmp_telemetry::TraceCollector>) {
        let _ = tracer;
    }
    /// Discards any state lost with the worker's device (pending deferred
    /// gradients, stale replicas) and re-primes local replicas from the
    /// authoritative table, as crash recovery does after the table has been
    /// rolled back to a checkpoint. Returns the number of rows re-fetched
    /// (the caller charges their transfer to the simulated clock). Default
    /// is a no-op for implementations that hold no worker-local state.
    fn recover_from_crash(&mut self) -> u64 {
        0
    }
    /// Reports which telemetry hooks are attached as
    /// `(recorder, auditor, tracer)` — used by debug assertions to verify
    /// that hooks survive every construction/injection path. Default claims
    /// none.
    fn hooks_attached(&self) -> (bool, bool, bool) {
        (false, false, false)
    }
    /// Selects the wire format for inter-worker embedding payloads and
    /// whether lossy gradient pushes carry per-row error feedback. Call
    /// before training (right after construction) so warm-loaded replicas
    /// go through the same format as steady-state fetches. Default is a
    /// no-op for implementations that move no embedding bytes.
    fn set_sync_format(&mut self, format: SyncFormat, error_feedback: bool) {
        let _ = (format, error_feedback);
    }
}

impl EmbeddingWorker for WorkerEmbedding<'_> {
    fn reserve_batch(&mut self, batch: usize, fields: usize) {
        WorkerEmbedding::reserve_batch(self, batch, fields)
    }
    fn read_batch(&mut self, samples: &[&[u32]], out: &mut [f32]) -> ReadReport {
        WorkerEmbedding::read_batch(self, samples, out)
    }
    fn apply_gradients(
        &mut self,
        samples: &[&[u32]],
        grads: &[f32],
        opt: &SparseOpt,
    ) -> UpdateReport {
        WorkerEmbedding::apply_gradients(self, samples, grads, opt)
    }
    fn flush_all(&mut self, opt: &SparseOpt) -> UpdateReport {
        WorkerEmbedding::flush_all(self, opt)
    }
    fn sync_replicas(&mut self) -> u64 {
        WorkerEmbedding::sync_all(self) as u64
    }
    fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn hetgmp_telemetry::Recorder>) {
        WorkerEmbedding::attach_recorder(self, recorder)
    }
    fn attach_auditor(&mut self, auditor: std::sync::Arc<hetgmp_telemetry::ProtocolAuditor>) {
        WorkerEmbedding::attach_auditor(self, auditor)
    }
    fn attach_tracer(&mut self, tracer: std::sync::Arc<hetgmp_telemetry::TraceCollector>) {
        WorkerEmbedding::attach_tracer(self, tracer)
    }
    fn recover_from_crash(&mut self) -> u64 {
        WorkerEmbedding::recover_from_crash(self)
    }
    fn hooks_attached(&self) -> (bool, bool, bool) {
        WorkerEmbedding::hooks_attached(self)
    }
    fn set_sync_format(&mut self, format: SyncFormat, error_feedback: bool) {
        WorkerEmbedding::set_sync_format(self, format, error_feedback)
    }
}

impl EmbeddingWorker for CachedWorkerEmbedding<'_> {
    fn reserve_batch(&mut self, batch: usize, fields: usize) {
        CachedWorkerEmbedding::reserve_batch(self, batch, fields)
    }
    fn read_batch(&mut self, samples: &[&[u32]], out: &mut [f32]) -> ReadReport {
        CachedWorkerEmbedding::read_batch(self, samples, out)
    }
    fn apply_gradients(
        &mut self,
        samples: &[&[u32]],
        grads: &[f32],
        opt: &SparseOpt,
    ) -> UpdateReport {
        CachedWorkerEmbedding::apply_gradients(self, samples, grads, opt)
    }
    fn flush_all(&mut self, _opt: &SparseOpt) -> UpdateReport {
        // Dynamic caching writes back eagerly; nothing is deferred.
        UpdateReport::default()
    }
    fn sync_replicas(&mut self) -> u64 {
        // Same mechanics as crash recovery: the dynamic cache defers
        // nothing, so "recovery" is exactly a full cached-row refresh.
        CachedWorkerEmbedding::recover_from_crash(self)
    }
    fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn hetgmp_telemetry::Recorder>) {
        CachedWorkerEmbedding::attach_recorder(self, recorder)
    }
    fn attach_auditor(&mut self, auditor: std::sync::Arc<hetgmp_telemetry::ProtocolAuditor>) {
        CachedWorkerEmbedding::attach_auditor(self, auditor)
    }
    fn attach_tracer(&mut self, tracer: std::sync::Arc<hetgmp_telemetry::TraceCollector>) {
        CachedWorkerEmbedding::attach_tracer(self, tracer)
    }
    fn recover_from_crash(&mut self) -> u64 {
        CachedWorkerEmbedding::recover_from_crash(self)
    }
    fn hooks_attached(&self) -> (bool, bool, bool) {
        CachedWorkerEmbedding::hooks_attached(self)
    }
    fn set_sync_format(&mut self, format: SyncFormat, error_feedback: bool) {
        CachedWorkerEmbedding::set_sync_format(self, format, error_feedback)
    }
}
