//! Communication accounting for embedding reads and updates.
//!
//! Every [`crate::WorkerEmbedding`] operation returns one of these reports;
//! the trainer converts them into simulated time (via `hetgmp-cluster`'s
//! cost model) and into the paper's Figure 8 traffic breakdown. Bytes are
//! split into the paper's categories: embedding data (vectors + gradients)
//! vs. metadata (sparse indices + clocks).

/// Bytes per embedding index / clock entry exchanged in metadata messages
/// (index `u32` + clock `u64`, as in the paper's "sparse indexes and clocks").
pub const META_ENTRY_BYTES: u64 = 12;

/// Accounting for one batch read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// Data bytes broken down by the partition the bytes came *from*
    /// (indexed by partition id); needed to charge heterogeneous links
    /// correctly. Empty until the first remote transfer.
    pub data_bytes_by_src: Vec<u64>,
    /// Lookups served from a local primary.
    pub local_primary: u64,
    /// Lookups served from a local secondary that passed the staleness
    /// checks (no traffic).
    pub local_fresh: u64,
    /// Secondary refreshes forced by the intra-embedding bound.
    pub intra_syncs: u64,
    /// Secondary refreshes forced by the inter-embedding bound.
    pub inter_syncs: u64,
    /// Lookups of rows with no local replica (always remote).
    pub remote_fetches: u64,
    /// Embedding-vector bytes that crossed the interconnect.
    pub data_bytes: u64,
    /// Index/clock metadata bytes that crossed the interconnect.
    pub meta_bytes: u64,
    /// Remote round-trip messages (for latency charging).
    pub messages: u64,
}

impl ReadReport {
    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.local_primary + self.local_fresh + self.intra_syncs + self.inter_syncs
            + self.remote_fetches
    }

    /// Lookups that required interconnect traffic.
    pub fn remote_total(&self) -> u64 {
        self.intra_syncs + self.inter_syncs + self.remote_fetches
    }

    /// Adds remote data bytes attributed to source partition `src`.
    pub fn add_src_bytes(&mut self, src: u32, bytes: u64, num_partitions: usize) {
        if self.data_bytes_by_src.is_empty() {
            self.data_bytes_by_src = vec![0; num_partitions];
        }
        self.data_bytes_by_src[src as usize] += bytes;
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &ReadReport) {
        if !other.data_bytes_by_src.is_empty() {
            if self.data_bytes_by_src.is_empty() {
                self.data_bytes_by_src = vec![0; other.data_bytes_by_src.len()];
            }
            for (a, &b) in self.data_bytes_by_src.iter_mut().zip(&other.data_bytes_by_src) {
                *a += b;
            }
        }
        self.local_primary += other.local_primary;
        self.local_fresh += other.local_fresh;
        self.intra_syncs += other.intra_syncs;
        self.inter_syncs += other.inter_syncs;
        self.remote_fetches += other.remote_fetches;
        self.data_bytes += other.data_bytes;
        self.meta_bytes += other.meta_bytes;
        self.messages += other.messages;
    }
}

/// Accounting for one batch gradient update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Gradient bytes broken down by destination (primary's) partition.
    /// Empty until the first remote write-back.
    pub data_bytes_by_dst: Vec<u64>,
    /// Gradient rows applied to a local primary.
    pub local_updates: u64,
    /// Gradient rows written back to a remote primary.
    pub remote_writebacks: u64,
    /// Gradient rows deferred into a secondary's stale-gradient buffer
    /// (no traffic yet; flushed later as merged write-backs).
    pub deferred: u64,
    /// Gradient bytes that crossed the interconnect.
    pub data_bytes: u64,
    /// Metadata bytes (indices/clocks) that crossed the interconnect.
    pub meta_bytes: u64,
    /// Remote messages.
    pub messages: u64,
}

impl UpdateReport {
    /// Total gradient rows applied.
    pub fn updates(&self) -> u64 {
        self.local_updates + self.remote_writebacks
    }

    /// Adds remote gradient bytes attributed to destination partition `dst`.
    pub fn add_dst_bytes(&mut self, dst: u32, bytes: u64, num_partitions: usize) {
        if self.data_bytes_by_dst.is_empty() {
            self.data_bytes_by_dst = vec![0; num_partitions];
        }
        self.data_bytes_by_dst[dst as usize] += bytes;
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &UpdateReport) {
        if !other.data_bytes_by_dst.is_empty() {
            if self.data_bytes_by_dst.is_empty() {
                self.data_bytes_by_dst = vec![0; other.data_bytes_by_dst.len()];
            }
            for (a, &b) in self.data_bytes_by_dst.iter_mut().zip(&other.data_bytes_by_dst) {
                *a += b;
            }
        }
        self.local_updates += other.local_updates;
        self.remote_writebacks += other.remote_writebacks;
        self.deferred += other.deferred;
        self.data_bytes += other.data_bytes;
        self.meta_bytes += other.meta_bytes;
        self.messages += other.messages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_totals() {
        let r = ReadReport {
            local_primary: 3,
            local_fresh: 2,
            intra_syncs: 1,
            inter_syncs: 1,
            remote_fetches: 4,
            data_bytes: 100,
            meta_bytes: 24,
            messages: 6,
            ..Default::default()
        };
        assert_eq!(r.lookups(), 11);
        assert_eq!(r.remote_total(), 6);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ReadReport::default();
        let b = ReadReport {
            local_primary: 1,
            data_bytes: 64,
            messages: 1,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.local_primary, 2);
        assert_eq!(a.data_bytes, 128);
        assert_eq!(a.messages, 2);
    }

    #[test]
    fn update_totals() {
        let mut u = UpdateReport {
            local_updates: 5,
            remote_writebacks: 3,
            ..Default::default()
        };
        assert_eq!(u.updates(), 8);
        let v = u.clone();
        u.merge(&v);
        assert_eq!(u.updates(), 16);
    }

    #[test]
    fn per_source_accounting() {
        let mut r = ReadReport::default();
        r.add_src_bytes(1, 64, 4);
        r.add_src_bytes(1, 64, 4);
        r.add_src_bytes(3, 32, 4);
        assert_eq!(r.data_bytes_by_src, vec![0, 128, 0, 32]);
        let mut other = ReadReport::default();
        other.add_src_bytes(0, 8, 4);
        r.merge(&other);
        assert_eq!(r.data_bytes_by_src, vec![8, 128, 0, 32]);
        // Merging an untracked report leaves the breakdown intact.
        r.merge(&ReadReport::default());
        assert_eq!(r.data_bytes_by_src, vec![8, 128, 0, 32]);
    }
}
