//! Sparse (per-row) optimizers applied at the primary replica.
//!
//! Unlike the dense optimizers in `hetgmp-tensor`, sparse optimizer state
//! lives *with the table* (see [`crate::ShardedTable`]): a row's Adagrad
//! accumulator must follow the row's primary, exactly as in the paper's
//! system where the optimizer runs where the parameter lives.

/// Per-row optimizer rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparseOpt {
    /// Plain SGD: `x ← x − lr·g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adagrad: `a ← a + g²; x ← x − lr·g/(√a + eps)` — the de-facto
    /// standard for CTR embedding tables.
    Adagrad {
        /// Learning rate.
        lr: f32,
        /// Denominator floor.
        eps: f32,
    },
}

impl SparseOpt {
    /// Standard Adagrad with `eps = 1e-8`.
    pub fn adagrad(lr: f32) -> Self {
        SparseOpt::Adagrad { lr, eps: 1e-8 }
    }

    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        SparseOpt::Sgd { lr }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        match *self {
            SparseOpt::Sgd { lr } => lr,
            SparseOpt::Adagrad { lr, .. } => lr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(SparseOpt::sgd(0.1).learning_rate(), 0.1);
        let a = SparseOpt::adagrad(0.05);
        assert_eq!(a.learning_rate(), 0.05);
        match a {
            SparseOpt::Adagrad { eps, .. } => assert!(eps > 0.0),
            _ => panic!("expected adagrad"),
        }
    }
}
