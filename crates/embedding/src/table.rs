//! The global primary store: lock-striped embedding rows + atomic clocks.
//!
//! This is the simulation substitute for the paper's per-GPU CUDA embedding
//! tables connected by NCCL p2p: primaries live in one shared, thread-safe
//! structure, and *who pays for an access* is decided by the caller (the
//! [`crate::WorkerEmbedding`] view consults the partition and reports bytes
//! that would have crossed the interconnect).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sparse_optim::SparseOpt;

/// Number of lock stripes. Rows are distributed round-robin (`row % SHARDS`)
/// so hot rows spread across stripes.
const SHARDS: usize = 256;

struct Shard {
    /// Rows assigned to this shard, each `dim` floats, indexed by
    /// `row / SHARDS`.
    data: Vec<f32>,
    /// Adagrad accumulators (same layout), allocated lazily on first
    /// Adagrad update.
    accum: Option<Vec<f32>>,
}

/// The authoritative embedding table: `num_rows × dim` f32, with a per-row
/// update clock counting applied gradient updates (the `c_i` of §5.3).
pub struct ShardedTable {
    dim: usize,
    num_rows: usize,
    shards: Vec<RwLock<Shard>>,
    clocks: Vec<AtomicU64>,
}

impl ShardedTable {
    /// Creates a table initialised uniformly in `[-init_scale, init_scale]`,
    /// deterministic in `seed`.
    pub fn new(num_rows: usize, dim: usize, init_scale: f32, seed: u64) -> Self {
        assert!(dim > 0, "dim must be positive");
        let rows_per_shard = num_rows.div_ceil(SHARDS);
        let mut shards = Vec::with_capacity(SHARDS);
        for s in 0..SHARDS {
            let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let data: Vec<f32> = (0..rows_per_shard * dim)
                .map(|_| rng.gen_range(-init_scale..=init_scale))
                .collect();
            shards.push(RwLock::new(Shard { data, accum: None }));
        }
        let clocks = (0..num_rows).map(|_| AtomicU64::new(0)).collect();
        Self {
            dim,
            num_rows,
            shards,
            clocks,
        }
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    #[inline]
    fn locate(&self, row: u32) -> (usize, usize) {
        let shard = row as usize % SHARDS;
        let slot = (row as usize / SHARDS) * self.dim;
        (shard, slot)
    }

    /// Current update clock of `row`.
    #[inline]
    pub fn clock(&self, row: u32) -> u64 {
        self.clocks[row as usize].load(Ordering::Acquire)
    }

    /// Reads `row` into `out`; returns the row's clock observed *before* the
    /// read (a consistent-enough snapshot for staleness bookkeeping).
    ///
    /// # Panics
    /// Panics if `out.len() != dim` or `row` out of range.
    pub fn read_row(&self, row: u32, out: &mut [f32]) -> u64 {
        assert_eq!(out.len(), self.dim, "output buffer length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let clock = self.clock(row);
        let (shard, slot) = self.locate(row);
        let guard = self.shards[shard].read();
        out.copy_from_slice(&guard.data[slot..slot + self.dim]);
        clock
    }

    /// Applies one gradient `grad` to `row` under `opt`, increments the
    /// row's clock, and returns the new clock value.
    pub fn apply_grad(&self, row: u32, grad: &[f32], opt: &SparseOpt) -> u64 {
        assert_eq!(grad.len(), self.dim, "gradient length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let (shard, slot) = self.locate(row);
        {
            let mut guard = self.shards[shard].write();
            match *opt {
                SparseOpt::Sgd { lr } => {
                    let data = &mut guard.data[slot..slot + self.dim];
                    for (p, &g) in data.iter_mut().zip(grad) {
                        *p -= lr * g;
                    }
                }
                SparseOpt::Adagrad { lr, eps } => {
                    if guard.accum.is_none() {
                        guard.accum = Some(vec![0.0; guard.data.len()]);
                    }
                    let shard_mut = &mut *guard;
                    let accum = shard_mut
                        .accum
                        .as_mut()
                        .expect("accumulator allocated above");
                    let data = &mut shard_mut.data[slot..slot + self.dim];
                    let acc = &mut accum[slot..slot + self.dim];
                    for ((p, &g), a) in data.iter_mut().zip(grad).zip(acc.iter_mut()) {
                        *a += g * g;
                        *p -= lr * g / (a.sqrt() + eps);
                    }
                }
            }
        }
        self.clocks[row as usize].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Overwrites `row` with explicit values (used by tests and by model
    /// checkpoint restore). Does not advance the clock.
    pub fn write_row(&self, row: u32, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "values length != dim");
        let (shard, slot) = self.locate(row);
        let mut guard = self.shards[shard].write();
        guard.data[slot..slot + self.dim].copy_from_slice(values);
    }

    /// Overwrites `row` with explicit values *and* clock — checkpoint
    /// restore and crash-recovery rollback, where the row must rejoin the
    /// protocol exactly as it was saved. Unlike [`ShardedTable::write_row`],
    /// the stored clock replaces the current one (it may move backwards:
    /// rolling back lost updates shrinks the clock, and staleness gaps are
    /// computed with saturating subtraction precisely so replicas that
    /// observed the lost updates read as "fresh", not as violations).
    pub fn restore_row(&self, row: u32, values: &[f32], clock: u64) {
        self.write_row(row, values);
        self.clocks[row as usize].store(clock, Ordering::Release);
    }

    /// True if any shard holds allocated optimizer (Adagrad) state.
    pub fn has_optimizer_state(&self) -> bool {
        self.shards.iter().any(|s| s.read().accum.is_some())
    }

    /// Reads `row`'s Adagrad accumulator into `out`. Returns `false` (and
    /// zero-fills `out`) if the row's shard has never taken an Adagrad
    /// update — the accumulator is implicitly zero.
    ///
    /// # Panics
    /// Panics if `out.len() != dim` or `row` out of range.
    pub fn read_accum(&self, row: u32, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.dim, "output buffer length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let (shard, slot) = self.locate(row);
        let guard = self.shards[shard].read();
        match &guard.accum {
            Some(a) => {
                out.copy_from_slice(&a[slot..slot + self.dim]);
                true
            }
            None => {
                out.fill(0.0);
                false
            }
        }
    }

    /// Overwrites `row`'s Adagrad accumulator, allocating shard state as
    /// needed (checkpoint restore and crash rollback: optimizer state must
    /// move with the values it produced, or a restored Adagrad run re-takes
    /// the early large steps and diverges from the uninterrupted one).
    pub fn restore_accum(&self, row: u32, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "values length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let (shard, slot) = self.locate(row);
        let mut guard = self.shards[shard].write();
        if guard.accum.is_none() {
            guard.accum = Some(vec![0.0; guard.data.len()]);
        }
        let accum = guard.accum.as_mut().expect("accumulator allocated above");
        accum[slot..slot + self.dim].copy_from_slice(values);
    }

    /// Sum of all clocks — total updates applied to the table.
    pub fn total_updates(&self) -> u64 {
        self.clocks
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Approximate heap footprint, bytes.
    pub fn heap_bytes(&self) -> usize {
        let data: usize = self
            .shards
            .iter()
            .map(|s| {
                let g = s.read();
                (g.data.len() + g.accum.as_ref().map_or(0, Vec::len)) * 4
            })
            .sum();
        data + self.clocks.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn init_deterministic_and_bounded() {
        let t1 = ShardedTable::new(100, 8, 0.1, 42);
        let t2 = ShardedTable::new(100, 8, 0.1, 42);
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        for row in [0u32, 57, 99] {
            t1.read_row(row, &mut a);
            t2.read_row(row, &mut b);
            assert_eq!(a, b);
            assert!(a.iter().all(|&x| x.abs() <= 0.1));
        }
    }

    #[test]
    fn sgd_update_moves_row() {
        let t = ShardedTable::new(10, 4, 0.0, 1);
        let grad = vec![1.0, -1.0, 0.5, 0.0];
        assert_eq!(t.clock(3), 0);
        let c = t.apply_grad(3, &grad, &SparseOpt::Sgd { lr: 0.1 });
        assert_eq!(c, 1);
        let mut row = vec![0.0; 4];
        let seen = t.read_row(3, &mut row);
        assert_eq!(seen, 1);
        assert_eq!(row, vec![-0.1, 0.1, -0.05, 0.0]);
        // Other rows untouched.
        t.read_row(2, &mut row);
        assert_eq!(row, vec![0.0; 4]);
        assert_eq!(t.clock(2), 0);
    }

    #[test]
    fn adagrad_adapts_step() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let opt = SparseOpt::Adagrad { lr: 1.0, eps: 1e-8 };
        t.apply_grad(0, &[1.0, 0.0], &opt);
        let mut row = vec![0.0; 2];
        t.read_row(0, &mut row);
        let first_step = -row[0];
        assert!((first_step - 1.0).abs() < 1e-4); // 1/sqrt(1)
        t.apply_grad(0, &[1.0, 0.0], &opt);
        t.read_row(0, &mut row);
        let second_step = -row[0] - first_step;
        assert!(second_step < first_step); // accumulated curvature shrinks steps
    }

    #[test]
    fn write_row_does_not_tick_clock() {
        let t = ShardedTable::new(4, 2, 0.5, 9);
        t.write_row(1, &[7.0, 8.0]);
        let mut row = vec![0.0; 2];
        assert_eq!(t.read_row(1, &mut row), 0);
        assert_eq!(row, vec![7.0, 8.0]);
    }

    #[test]
    fn restore_row_sets_values_and_clock() {
        let t = ShardedTable::new(4, 2, 0.0, 9);
        let opt = SparseOpt::Sgd { lr: 0.1 };
        for _ in 0..5 {
            t.apply_grad(1, &[1.0, 1.0], &opt);
        }
        assert_eq!(t.clock(1), 5);
        // Roll back to a checkpointed state: clock may move backwards.
        t.restore_row(1, &[7.0, 8.0], 2);
        let mut row = vec![0.0; 2];
        assert_eq!(t.read_row(1, &mut row), 2);
        assert_eq!(row, vec![7.0, 8.0]);
    }

    #[test]
    fn total_updates_counts_all() {
        let t = ShardedTable::new(8, 2, 0.0, 1);
        let opt = SparseOpt::Sgd { lr: 0.1 };
        t.apply_grad(0, &[1.0, 1.0], &opt);
        t.apply_grad(0, &[1.0, 1.0], &opt);
        t.apply_grad(5, &[1.0, 1.0], &opt);
        assert_eq!(t.total_updates(), 3);
    }

    #[test]
    fn concurrent_updates_all_applied() {
        let t = Arc::new(ShardedTable::new(64, 4, 0.0, 3));
        let opt = SparseOpt::Sgd { lr: 1.0 };
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        t.apply_grad(i % 64, &[1.0, 0.0, 0.0, 0.0], &opt);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.total_updates(), 4000);
        // Per thread, rows 0..40 receive 16 updates and rows 40..64 receive
        // 15 (1000 = 15×64 + 40); each update moves coord 0 by −1.
        let mut row = vec![0.0; 4];
        for r in 0..64u32 {
            t.read_row(r, &mut row);
            let expected = if r < 40 { -64.0 } else { -60.0 };
            assert!((row[0] - expected).abs() < 1e-3, "row {r}: {}", row[0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let mut row = vec![0.0; 2];
        t.read_row(4, &mut row);
    }

    #[test]
    #[should_panic(expected = "dim")]
    fn wrong_buffer_length_panics() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let mut row = vec![0.0; 3];
        t.read_row(0, &mut row);
    }

    #[test]
    fn heap_bytes_reasonable() {
        let t = ShardedTable::new(1000, 16, 0.1, 1);
        // Shard padding rounds up; at least rows*dim*4 bytes.
        assert!(t.heap_bytes() >= 1000 * 16 * 4);
    }
}
