//! The global primary store: lock-striped embedding rows + atomic clocks.
//!
//! This is the simulation substitute for the paper's per-GPU CUDA embedding
//! tables connected by NCCL p2p: primaries live in one shared, thread-safe
//! structure, and *who pays for an access* is decided by the caller (the
//! [`crate::WorkerEmbedding`] view consults the partition and reports bytes
//! that would have crossed the interconnect).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sparse_optim::SparseOpt;

/// Number of lock stripes. Rows are distributed round-robin (`row % SHARDS`)
/// so hot rows spread across stripes.
const SHARDS: usize = 256;

struct Shard {
    /// Rows assigned to this shard, each `dim` floats, indexed by
    /// `row / SHARDS`.
    data: Vec<f32>,
    /// Adagrad accumulators (same layout), allocated lazily on first
    /// Adagrad update.
    accum: Option<Vec<f32>>,
}

/// The authoritative embedding table: `num_rows × dim` f32, with a per-row
/// update clock counting applied gradient updates (the `c_i` of §5.3).
pub struct ShardedTable {
    dim: usize,
    num_rows: usize,
    shards: Vec<RwLock<Shard>>,
    clocks: Vec<AtomicU64>,
    /// Data-path shard lock acquisitions (reads, updates, writes — both the
    /// per-row and the batched API). The `hotpath.*` metrics and the bench
    /// harness read this to show how much the batched path amortises.
    lock_acquisitions: AtomicU64,
}

/// Reusable scratch for the batched table API ([`ShardedTable::read_rows`],
/// [`ShardedTable::apply_grads`], [`ShardedTable::write_rows`]). Callers keep
/// one per worker so grouping a batch by shard allocates nothing once the
/// buffer has warmed up.
#[derive(Default)]
pub struct BatchScratch {
    /// Permutation of `0..rows.len()` ordered by `(shard, original index)`:
    /// shard-grouped, original order preserved within a shard so duplicate
    /// rows apply in exactly the order the caller gave them.
    perm: Vec<u32>,
    /// Per-shard counters/offsets for the counting sort.
    offsets: Vec<u32>,
}

impl ShardedTable {
    /// Creates a table initialised uniformly in `[-init_scale, init_scale]`,
    /// deterministic in `seed`.
    pub fn new(num_rows: usize, dim: usize, init_scale: f32, seed: u64) -> Self {
        assert!(dim > 0, "dim must be positive");
        let rows_per_shard = num_rows.div_ceil(SHARDS);
        let mut shards = Vec::with_capacity(SHARDS);
        for s in 0..SHARDS {
            let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let data: Vec<f32> = (0..rows_per_shard * dim)
                .map(|_| rng.gen_range(-init_scale..=init_scale))
                .collect();
            shards.push(RwLock::new(Shard { data, accum: None }));
        }
        let clocks = (0..num_rows).map(|_| AtomicU64::new(0)).collect();
        Self {
            dim,
            num_rows,
            shards,
            clocks,
            lock_acquisitions: AtomicU64::new(0),
        }
    }

    /// Total data-path shard lock acquisitions since construction. One
    /// per-row call costs one acquisition; one batched call costs one per
    /// *distinct shard touched* — the quantity the hot path amortises.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    #[inline]
    fn count_lock(&self) {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Orders `scratch.perm` by `(shard, original index)` and validates every
    /// row index. Within a shard the caller's order is preserved, so a batch
    /// with duplicate rows applies them in exactly the sequence a per-row
    /// loop would.
    fn group_by_shard(&self, rows: &[u32], scratch: &mut BatchScratch) {
        assert!(
            rows.len() <= u32::MAX as usize,
            "batch too large for u32 permutation"
        );
        for &row in rows {
            assert!((row as usize) < self.num_rows, "row {row} out of range");
        }
        // Counting sort by shard: O(n + SHARDS) per batch, and stable —
        // original indices land in submission order within each shard, which
        // is what keeps duplicate-row applies bit-identical to a per-row
        // loop. (A comparison sort here dominated the batched path's cost.)
        scratch.offsets.clear();
        scratch.offsets.resize(SHARDS, 0);
        for &row in rows {
            scratch.offsets[row as usize % SHARDS] += 1;
        }
        let mut start = 0u32;
        for off in scratch.offsets.iter_mut() {
            let count = *off;
            *off = start;
            start += count;
        }
        scratch.perm.clear();
        scratch.perm.resize(rows.len(), 0);
        for (i, &row) in rows.iter().enumerate() {
            let off = &mut scratch.offsets[row as usize % SHARDS];
            scratch.perm[*off as usize] = i as u32;
            *off += 1;
        }
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    #[inline]
    fn locate(&self, row: u32) -> (usize, usize) {
        let shard = row as usize % SHARDS;
        let slot = (row as usize / SHARDS) * self.dim;
        (shard, slot)
    }

    /// Current update clock of `row`.
    #[inline]
    pub fn clock(&self, row: u32) -> u64 {
        self.clocks[row as usize].load(Ordering::Acquire)
    }

    /// Reads `row` into `out`; returns the row's clock observed *before* the
    /// read (a consistent-enough snapshot for staleness bookkeeping).
    ///
    /// # Panics
    /// Panics if `out.len() != dim` or `row` out of range.
    pub fn read_row(&self, row: u32, out: &mut [f32]) -> u64 {
        assert_eq!(out.len(), self.dim, "output buffer length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let clock = self.clock(row);
        let (shard, slot) = self.locate(row);
        self.count_lock();
        let guard = self.shards[shard].read();
        out.copy_from_slice(&guard.data[slot..slot + self.dim]);
        clock
    }

    /// Batched [`ShardedTable::read_row`]: reads `rows[k]` into
    /// `out[k*dim..(k+1)*dim]` and stores each row's pre-read clock in
    /// `clocks[k]`, taking each shard lock once per batch instead of once
    /// per row. Bit-identical to a per-row loop (rows are disjoint slices).
    ///
    /// # Panics
    /// Panics if `out.len() != rows.len() * dim`, `clocks.len() !=
    /// rows.len()`, or any row is out of range.
    pub fn read_rows(
        &self,
        rows: &[u32],
        out: &mut [f32],
        clocks: &mut [u64],
        scratch: &mut BatchScratch,
    ) {
        assert_eq!(
            out.len(),
            rows.len() * self.dim,
            "output buffer length != rows * dim"
        );
        assert_eq!(clocks.len(), rows.len(), "clocks length != rows");
        self.group_by_shard(rows, scratch);
        let dim = self.dim;
        let mut i = 0;
        while i < scratch.perm.len() {
            let shard = rows[scratch.perm[i] as usize] as usize % SHARDS;
            self.count_lock();
            let guard = self.shards[shard].read();
            while i < scratch.perm.len() {
                let k = scratch.perm[i] as usize;
                let row = rows[k];
                if row as usize % SHARDS != shard {
                    break;
                }
                clocks[k] = self.clock(row);
                let slot = (row as usize / SHARDS) * dim;
                out[k * dim..(k + 1) * dim].copy_from_slice(&guard.data[slot..slot + dim]);
                i += 1;
            }
        }
    }

    /// Applies one gradient `grad` to `row` under `opt`, increments the
    /// row's clock, and returns the new clock value.
    pub fn apply_grad(&self, row: u32, grad: &[f32], opt: &SparseOpt) -> u64 {
        assert_eq!(grad.len(), self.dim, "gradient length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let (shard, slot) = self.locate(row);
        {
            self.count_lock();
            let mut guard = self.shards[shard].write();
            Self::apply_in_shard(&mut guard, slot, self.dim, grad, opt);
        }
        self.clocks[row as usize].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The single-row update body shared by [`ShardedTable::apply_grad`] and
    /// [`ShardedTable::apply_grads`], so the two paths are the same FP
    /// operation sequence by construction.
    #[inline]
    fn apply_in_shard(guard: &mut Shard, slot: usize, dim: usize, grad: &[f32], opt: &SparseOpt) {
        match *opt {
            SparseOpt::Sgd { lr } => {
                let data = &mut guard.data[slot..slot + dim];
                for (p, &g) in data.iter_mut().zip(grad) {
                    *p -= lr * g;
                }
            }
            SparseOpt::Adagrad { lr, eps } => {
                if guard.accum.is_none() {
                    guard.accum = Some(vec![0.0; guard.data.len()]);
                }
                let shard_mut = &mut *guard;
                let accum = shard_mut
                    .accum
                    .as_mut()
                    .expect("accumulator allocated above");
                let data = &mut shard_mut.data[slot..slot + dim];
                let acc = &mut accum[slot..slot + dim];
                for ((p, &g), a) in data.iter_mut().zip(grad).zip(acc.iter_mut()) {
                    *a += g * g;
                    *p -= lr * g / (a.sqrt() + eps);
                }
            }
        }
    }

    /// Batched [`ShardedTable::apply_grad`]: applies `grads[k*dim..(k+1)*dim]`
    /// to `rows[k]` under `opt`, ticking each row's clock and storing the new
    /// clock in `clocks[k]`. Each shard lock is taken once per batch; within
    /// a shard, rows apply in the caller's order, so duplicate rows (and the
    /// resulting Adagrad accumulator sequence) are bit-identical to a
    /// per-row loop over `apply_grad`.
    ///
    /// # Panics
    /// Panics if `grads.len() != rows.len() * dim`, `clocks.len() !=
    /// rows.len()`, or any row is out of range.
    pub fn apply_grads(
        &self,
        rows: &[u32],
        grads: &[f32],
        opt: &SparseOpt,
        clocks: &mut [u64],
        scratch: &mut BatchScratch,
    ) {
        assert_eq!(
            grads.len(),
            rows.len() * self.dim,
            "gradients length != rows * dim"
        );
        assert_eq!(clocks.len(), rows.len(), "clocks length != rows");
        self.group_by_shard(rows, scratch);
        let dim = self.dim;
        let mut i = 0;
        while i < scratch.perm.len() {
            let shard = rows[scratch.perm[i] as usize] as usize % SHARDS;
            self.count_lock();
            let mut guard = self.shards[shard].write();
            while i < scratch.perm.len() {
                let k = scratch.perm[i] as usize;
                let row = rows[k];
                if row as usize % SHARDS != shard {
                    break;
                }
                let slot = (row as usize / SHARDS) * dim;
                Self::apply_in_shard(&mut guard, slot, dim, &grads[k * dim..(k + 1) * dim], opt);
                clocks[k] = self.clocks[row as usize].fetch_add(1, Ordering::AcqRel) + 1;
                i += 1;
            }
        }
    }

    /// Overwrites `row` with explicit values (used by tests and by model
    /// checkpoint restore). Does not advance the clock.
    pub fn write_row(&self, row: u32, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "values length != dim");
        let (shard, slot) = self.locate(row);
        self.count_lock();
        let mut guard = self.shards[shard].write();
        guard.data[slot..slot + self.dim].copy_from_slice(values);
    }

    /// Batched [`ShardedTable::write_row`]: overwrites `rows[k]` with
    /// `values[k*dim..(k+1)*dim]`, one shard lock per batch per shard. Does
    /// not advance clocks. Duplicate rows write in the caller's order (last
    /// write wins, same as a per-row loop).
    ///
    /// # Panics
    /// Panics if `values.len() != rows.len() * dim` or any row is out of
    /// range.
    pub fn write_rows(&self, rows: &[u32], values: &[f32], scratch: &mut BatchScratch) {
        assert_eq!(
            values.len(),
            rows.len() * self.dim,
            "values length != rows * dim"
        );
        self.group_by_shard(rows, scratch);
        let dim = self.dim;
        let mut i = 0;
        while i < scratch.perm.len() {
            let shard = rows[scratch.perm[i] as usize] as usize % SHARDS;
            self.count_lock();
            let mut guard = self.shards[shard].write();
            while i < scratch.perm.len() {
                let k = scratch.perm[i] as usize;
                let row = rows[k];
                if row as usize % SHARDS != shard {
                    break;
                }
                let slot = (row as usize / SHARDS) * dim;
                guard.data[slot..slot + dim].copy_from_slice(&values[k * dim..(k + 1) * dim]);
                i += 1;
            }
        }
    }

    /// Overwrites `row` with explicit values *and* clock — checkpoint
    /// restore and crash-recovery rollback, where the row must rejoin the
    /// protocol exactly as it was saved. Unlike [`ShardedTable::write_row`],
    /// the stored clock replaces the current one (it may move backwards:
    /// rolling back lost updates shrinks the clock, and staleness gaps are
    /// computed with saturating subtraction precisely so replicas that
    /// observed the lost updates read as "fresh", not as violations).
    pub fn restore_row(&self, row: u32, values: &[f32], clock: u64) {
        self.write_row(row, values);
        self.clocks[row as usize].store(clock, Ordering::Release);
    }

    /// True if any shard holds allocated optimizer (Adagrad) state.
    pub fn has_optimizer_state(&self) -> bool {
        self.shards.iter().any(|s| s.read().accum.is_some())
    }

    /// Reads `row`'s Adagrad accumulator into `out`. Returns `false` (and
    /// zero-fills `out`) if the row's shard has never taken an Adagrad
    /// update — the accumulator is implicitly zero.
    ///
    /// # Panics
    /// Panics if `out.len() != dim` or `row` out of range.
    pub fn read_accum(&self, row: u32, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.dim, "output buffer length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let (shard, slot) = self.locate(row);
        let guard = self.shards[shard].read();
        match &guard.accum {
            Some(a) => {
                out.copy_from_slice(&a[slot..slot + self.dim]);
                true
            }
            None => {
                out.fill(0.0);
                false
            }
        }
    }

    /// Overwrites `row`'s Adagrad accumulator, allocating shard state as
    /// needed (checkpoint restore and crash rollback: optimizer state must
    /// move with the values it produced, or a restored Adagrad run re-takes
    /// the early large steps and diverges from the uninterrupted one).
    pub fn restore_accum(&self, row: u32, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "values length != dim");
        assert!((row as usize) < self.num_rows, "row {row} out of range");
        let (shard, slot) = self.locate(row);
        let mut guard = self.shards[shard].write();
        if guard.accum.is_none() {
            guard.accum = Some(vec![0.0; guard.data.len()]);
        }
        let accum = guard.accum.as_mut().expect("accumulator allocated above");
        accum[slot..slot + self.dim].copy_from_slice(values);
    }

    /// Sum of all clocks — total updates applied to the table.
    pub fn total_updates(&self) -> u64 {
        self.clocks
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Approximate heap footprint, bytes.
    pub fn heap_bytes(&self) -> usize {
        let data: usize = self
            .shards
            .iter()
            .map(|s| {
                let g = s.read();
                (g.data.len() + g.accum.as_ref().map_or(0, Vec::len)) * 4
            })
            .sum();
        data + self.clocks.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn init_deterministic_and_bounded() {
        let t1 = ShardedTable::new(100, 8, 0.1, 42);
        let t2 = ShardedTable::new(100, 8, 0.1, 42);
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        for row in [0u32, 57, 99] {
            t1.read_row(row, &mut a);
            t2.read_row(row, &mut b);
            assert_eq!(a, b);
            assert!(a.iter().all(|&x| x.abs() <= 0.1));
        }
    }

    #[test]
    fn sgd_update_moves_row() {
        let t = ShardedTable::new(10, 4, 0.0, 1);
        let grad = vec![1.0, -1.0, 0.5, 0.0];
        assert_eq!(t.clock(3), 0);
        let c = t.apply_grad(3, &grad, &SparseOpt::Sgd { lr: 0.1 });
        assert_eq!(c, 1);
        let mut row = vec![0.0; 4];
        let seen = t.read_row(3, &mut row);
        assert_eq!(seen, 1);
        assert_eq!(row, vec![-0.1, 0.1, -0.05, 0.0]);
        // Other rows untouched.
        t.read_row(2, &mut row);
        assert_eq!(row, vec![0.0; 4]);
        assert_eq!(t.clock(2), 0);
    }

    #[test]
    fn adagrad_adapts_step() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let opt = SparseOpt::Adagrad { lr: 1.0, eps: 1e-8 };
        t.apply_grad(0, &[1.0, 0.0], &opt);
        let mut row = vec![0.0; 2];
        t.read_row(0, &mut row);
        let first_step = -row[0];
        assert!((first_step - 1.0).abs() < 1e-4); // 1/sqrt(1)
        t.apply_grad(0, &[1.0, 0.0], &opt);
        t.read_row(0, &mut row);
        let second_step = -row[0] - first_step;
        assert!(second_step < first_step); // accumulated curvature shrinks steps
    }

    #[test]
    fn write_row_does_not_tick_clock() {
        let t = ShardedTable::new(4, 2, 0.5, 9);
        t.write_row(1, &[7.0, 8.0]);
        let mut row = vec![0.0; 2];
        assert_eq!(t.read_row(1, &mut row), 0);
        assert_eq!(row, vec![7.0, 8.0]);
    }

    #[test]
    fn restore_row_sets_values_and_clock() {
        let t = ShardedTable::new(4, 2, 0.0, 9);
        let opt = SparseOpt::Sgd { lr: 0.1 };
        for _ in 0..5 {
            t.apply_grad(1, &[1.0, 1.0], &opt);
        }
        assert_eq!(t.clock(1), 5);
        // Roll back to a checkpointed state: clock may move backwards.
        t.restore_row(1, &[7.0, 8.0], 2);
        let mut row = vec![0.0; 2];
        assert_eq!(t.read_row(1, &mut row), 2);
        assert_eq!(row, vec![7.0, 8.0]);
    }

    #[test]
    fn total_updates_counts_all() {
        let t = ShardedTable::new(8, 2, 0.0, 1);
        let opt = SparseOpt::Sgd { lr: 0.1 };
        t.apply_grad(0, &[1.0, 1.0], &opt);
        t.apply_grad(0, &[1.0, 1.0], &opt);
        t.apply_grad(5, &[1.0, 1.0], &opt);
        assert_eq!(t.total_updates(), 3);
    }

    #[test]
    fn concurrent_updates_all_applied() {
        let t = Arc::new(ShardedTable::new(64, 4, 0.0, 3));
        let opt = SparseOpt::Sgd { lr: 1.0 };
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        t.apply_grad(i % 64, &[1.0, 0.0, 0.0, 0.0], &opt);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.total_updates(), 4000);
        // Per thread, rows 0..40 receive 16 updates and rows 40..64 receive
        // 15 (1000 = 15×64 + 40); each update moves coord 0 by −1.
        let mut row = vec![0.0; 4];
        for r in 0..64u32 {
            t.read_row(r, &mut row);
            let expected = if r < 40 { -64.0 } else { -60.0 };
            assert!((row[0] - expected).abs() < 1e-3, "row {r}: {}", row[0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let mut row = vec![0.0; 2];
        t.read_row(4, &mut row);
    }

    #[test]
    #[should_panic(expected = "dim")]
    fn wrong_buffer_length_panics() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let mut row = vec![0.0; 3];
        t.read_row(0, &mut row);
    }

    #[test]
    fn read_rows_matches_per_row_loop() {
        let t = ShardedTable::new(600, 8, 0.1, 7);
        let rows: Vec<u32> = vec![0, 599, 257, 1, 257, 42, 300];
        let mut scratch = BatchScratch::default();
        let mut out = vec![0.0f32; rows.len() * 8];
        let mut clocks = vec![0u64; rows.len()];
        t.read_rows(&rows, &mut out, &mut clocks, &mut scratch);
        let mut expect = vec![0.0f32; 8];
        for (k, &r) in rows.iter().enumerate() {
            let c = t.read_row(r, &mut expect);
            assert_eq!(&out[k * 8..(k + 1) * 8], &expect[..], "row {r}");
            assert_eq!(clocks[k], c, "row {r} clock");
        }
    }

    #[test]
    fn apply_grads_bit_identical_to_per_row_loop() {
        // Duplicate rows included on purpose: the batched path must preserve
        // the caller's order within a shard so accumulator sequences match.
        let rows: Vec<u32> = vec![3, 259, 3, 514, 2, 3, 258];
        let dim = 4;
        let grads: Vec<f32> = (0..rows.len() * dim).map(|i| (i as f32) * 0.3 - 2.0).collect();
        for opt in [
            SparseOpt::Sgd { lr: 0.07 },
            SparseOpt::Adagrad { lr: 0.5, eps: 1e-8 },
        ] {
            let batched = ShardedTable::new(600, dim, 0.1, 99);
            let serial = ShardedTable::new(600, dim, 0.1, 99);
            let mut scratch = BatchScratch::default();
            let mut clocks = vec![0u64; rows.len()];
            batched.apply_grads(&rows, &grads, &opt, &mut clocks, &mut scratch);
            let mut serial_clocks = vec![0u64; rows.len()];
            for (k, &r) in rows.iter().enumerate() {
                serial_clocks[k] = serial.apply_grad(r, &grads[k * dim..(k + 1) * dim], &opt);
            }
            let mut a = vec![0.0f32; dim];
            let mut b = vec![0.0f32; dim];
            for r in 0..600u32 {
                batched.read_row(r, &mut a);
                serial.read_row(r, &mut b);
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "row {r} data"
                );
                let ha = batched.read_accum(r, &mut a);
                let hb = serial.read_accum(r, &mut b);
                assert_eq!(ha, hb);
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "row {r} accum"
                );
                assert_eq!(batched.clock(r), serial.clock(r), "row {r} clock");
            }
            // A duplicated row's clocks reflect sequential application. Row 3
            // appears at positions 0, 2, 5.
            assert_eq!(
                [clocks[0], clocks[2], clocks[5]],
                [serial_clocks[0], serial_clocks[2], serial_clocks[5]]
            );
        }
    }

    #[test]
    fn write_rows_last_write_wins() {
        let t = ShardedTable::new(300, 2, 0.0, 1);
        let rows = vec![5u32, 261, 5];
        let values = vec![1.0f32, 2.0, 9.0, 9.0, 3.0, 4.0];
        let mut scratch = BatchScratch::default();
        t.write_rows(&rows, &values, &mut scratch);
        let mut out = vec![0.0f32; 2];
        t.read_row(5, &mut out);
        assert_eq!(out, vec![3.0, 4.0]); // duplicate applied in caller order
        t.read_row(261, &mut out);
        assert_eq!(out, vec![9.0, 9.0]);
        assert_eq!(t.clock(5), 0, "write_rows must not tick clocks");
    }

    #[test]
    fn batched_ops_amortise_lock_acquisitions() {
        let t = ShardedTable::new(1024, 4, 0.0, 1);
        let rows: Vec<u32> = (0..512u32).collect(); // 256 shards, 2 rows each
        let mut scratch = BatchScratch::default();
        let mut out = vec![0.0f32; rows.len() * 4];
        let mut clocks = vec![0u64; rows.len()];
        let before = t.lock_acquisitions();
        t.read_rows(&rows, &mut out, &mut clocks, &mut scratch);
        assert_eq!(t.lock_acquisitions() - before, 256);
        let before = t.lock_acquisitions();
        for &r in &rows {
            t.read_row(r, &mut out[..4]);
        }
        assert_eq!(t.lock_acquisitions() - before, 512);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_rows_out_of_range_panics() {
        let t = ShardedTable::new(4, 2, 0.0, 1);
        let mut out = vec![0.0f32; 4];
        let mut clocks = vec![0u64; 2];
        t.read_rows(&[0, 4], &mut out, &mut clocks, &mut BatchScratch::default());
    }

    #[test]
    fn heap_bytes_reasonable() {
        let t = ShardedTable::new(1000, 16, 0.1, 1);
        // Shard padding rounds up; at least rows*dim*4 bytes.
        assert!(t.heap_bytes() >= 1000 * 16 * 4);
    }
}
