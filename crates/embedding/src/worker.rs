//! A worker's view of the distributed embedding table: reads with bounded
//! asynchrony (intra- and inter-embedding synchronisation, §5.3) and
//! gradient write-back (§6 "Decentralized Communication").

use std::collections::HashMap;
use std::sync::Arc;

use hetgmp_comms::{ErrorFeedback, SyncFormat};
use hetgmp_partition::Partition;
use hetgmp_telemetry::{names, Json, ProtocolAuditor, Recorder, TraceCollector};

use crate::cache::SecondaryCache;
use crate::report::{ReadReport, UpdateReport, META_ENTRY_BYTES};
use crate::sparse_optim::SparseOpt;
use crate::table::{BatchScratch, ShardedTable};

/// Reusable hot-path scratch: every buffer the per-batch gather/update path
/// needs, allocated once per worker and recycled so steady-state iterations
/// allocate nothing.
#[derive(Default)]
pub(crate) struct HotScratch {
    /// Shard-grouping permutation for the batched table API.
    pub batch: BatchScratch,
    /// Rows to fetch from the primary table this batch.
    pub fetch_ids: Vec<u32>,
    /// Destination offset in the caller-visible row scratch for each fetch.
    pub fetch_slots: Vec<usize>,
    /// Whether each fetched row must be (re-)installed into the cache.
    pub fetch_install: Vec<bool>,
    /// Whether each fetched row crosses the interconnect (and therefore
    /// goes through the wire format). Local-primary reads stay exact.
    pub fetch_wire: Vec<bool>,
    /// Contiguous staging for batched reads (fetch-order, `dim` per row).
    pub fetch_buf: Vec<f32>,
    /// Clocks observed by the batched read, fetch-order.
    pub fetch_clocks: Vec<u64>,
    /// One-row scratch for pending-gradient flushes.
    pub row_buf: Vec<f32>,
    /// One-row scratch for local mirror deltas.
    pub delta_buf: Vec<f32>,
    /// Local-reduction index: unique id → offset into `reduce_buf`.
    pub reduce_slots: HashMap<u32, usize>,
    /// Reduced (summed) gradients, one `dim` slice per unique id.
    pub reduce_buf: Vec<f32>,
    /// Unique ids of the batch, sorted for deterministic application.
    pub reduce_ids: Vec<u32>,
    /// Rows routed to the single batched `apply_grads` call.
    pub apply_ids: Vec<u32>,
    /// Gradients aligned with `apply_ids`.
    pub apply_buf: Vec<f32>,
    /// Clocks returned by the batched apply.
    pub apply_clocks: Vec<u64>,
}

/// The staleness bound `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalenessBound {
    /// Tolerate clock gaps up to `s` updates; `Bounded(0)` degenerates to
    /// fully-synchronous reads (always re-fetch secondaries).
    Bounded(u64),
    /// Never synchronise secondaries on read (ASP, the `s = ∞` column of
    /// Table 2) — replicas drift until explicitly re-synced.
    Infinite,
}

impl StalenessBound {
    fn tolerates(&self, gap: u64) -> bool {
        match *self {
            StalenessBound::Bounded(s) => gap <= s,
            StalenessBound::Infinite => true,
        }
    }

    fn tolerates_f(&self, gap: f64) -> bool {
        match *self {
            StalenessBound::Bounded(s) => gap <= s as f64,
            StalenessBound::Infinite => true,
        }
    }
}

/// One worker's embedding-table interface.
///
/// Owns the worker's [`SecondaryCache`]; shares the global
/// [`ShardedTable`] (primaries) with all other workers. Every operation
/// reports the bytes/messages that would have crossed the interconnect so
/// the trainer can charge simulated time and reproduce the paper's traffic
/// breakdowns.
pub struct WorkerEmbedding<'a> {
    worker: u32,
    table: &'a ShardedTable,
    part: &'a Partition,
    /// Per-embedding access frequency `p_i` (bigraph degree) for clock
    /// normalisation; zero frequencies are treated as one.
    freq: &'a [u64],
    bound: StalenessBound,
    cache: SecondaryCache,
    /// The optimizer last used by `apply_gradients`; read-path flushes of
    /// deferred gradients apply the same rule.
    flush_opt: SparseOpt,
    /// Scratch: unique-id → slot in `scratch_rows`.
    scratch_ids: HashMap<u32, usize>,
    scratch_rows: Vec<f32>,
    /// Batched-path scratch (shard grouping, fetch staging, reduction).
    scratch: HotScratch,
    /// Rows currently holding a deferred (pending) gradient.
    pending_rows: usize,
    /// Wire format for inter-worker embedding payloads ([`SyncFormat::F32`]
    /// reproduces the uncompressed protocol bit-for-bit).
    format: SyncFormat,
    /// Whether lossy gradient pushes carry error feedback.
    feedback_on: bool,
    /// Per-row quantization residuals (push direction only).
    feedback: ErrorFeedback,
    /// Cached `format.row_wire_bytes(dim)`.
    row_bytes: u64,
    recorder: Option<Arc<dyn Recorder>>,
    auditor: Option<Arc<ProtocolAuditor>>,
    tracer: Option<Arc<TraceCollector>>,
}

impl<'a> WorkerEmbedding<'a> {
    /// Creates the worker view and warm-loads its secondary replicas from
    /// the primaries (initial placement traffic is not charged, matching the
    /// paper's measurement of steady-state iterations).
    pub fn new(
        worker: u32,
        table: &'a ShardedTable,
        part: &'a Partition,
        freq: &'a [u64],
        bound: StalenessBound,
    ) -> Self {
        assert_eq!(
            freq.len(),
            table.num_rows(),
            "frequency table length mismatch"
        );
        assert_eq!(
            part.num_embeddings(),
            table.num_rows(),
            "partition/table mismatch"
        );
        let secondaries: Vec<u32> = (0..table.num_rows() as u32)
            .filter(|&e| part.is_secondary(e, worker))
            .collect();
        let mut cache = SecondaryCache::new(table.dim(), &secondaries);
        let mut buf = vec![0.0f32; table.dim()];
        for &e in &secondaries {
            let clock = table.read_row(e, &mut buf);
            cache.install(e, &buf, clock);
        }
        Self {
            worker,
            table,
            part,
            freq,
            bound,
            cache,
            flush_opt: SparseOpt::sgd(0.01),
            scratch_ids: HashMap::new(),
            scratch_rows: Vec::new(),
            scratch: HotScratch {
                row_buf: vec![0.0f32; table.dim()],
                ..HotScratch::default()
            },
            pending_rows: 0,
            format: SyncFormat::F32,
            feedback_on: true,
            feedback: ErrorFeedback::new(),
            row_bytes: SyncFormat::F32.row_wire_bytes(table.dim()),
            recorder: None,
            auditor: None,
            tracer: None,
        }
    }

    /// Selects the wire format for inter-worker embedding payloads, and
    /// whether per-row error feedback compensates lossy quantization on the
    /// gradient-push direction. Re-primes every secondary replica through
    /// the new format so cached state matches what a fresh fetch delivers.
    /// Call before training; checkpoint-resumed runs reconstruct the same
    /// state because residuals are cleared at every full sync.
    pub fn set_sync_format(&mut self, format: SyncFormat, error_feedback: bool) {
        self.format = format;
        self.feedback_on = error_feedback;
        self.feedback.clear();
        self.row_bytes = format.row_wire_bytes(self.table.dim());
        if !format.is_lossless() {
            self.sync_all();
        }
    }

    /// Counts `rows` quantized payload rows into the `comms.quant.*`
    /// metrics (no-op for lossless formats).
    fn note_quant(&self, rows: u64) {
        if rows == 0 || self.format.is_lossless() {
            return;
        }
        if let Some(r) = &self.recorder {
            let raw = (self.table.dim() * 4) as u64;
            r.counter_add(names::COMMS_QUANT_ROWS, rows);
            r.counter_add(
                names::COMMS_QUANT_BYTES_SAVED,
                rows * raw.saturating_sub(self.row_bytes),
            );
        }
    }

    /// Attaches a telemetry recorder; reads, syncs, deferrals and flushes
    /// are counted into the `embedding.*` metrics from then on.
    pub fn attach_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Attaches a protocol auditor; every intra/inter staleness decision is
    /// reported to it (`protocol.gap.*` histograms, violation counting).
    pub fn attach_auditor(&mut self, auditor: Arc<ProtocolAuditor>) {
        self.auditor = Some(auditor);
    }

    /// Attaches a trace collector; per-batch read/sync/deferral decision
    /// instants are emitted on this worker's track at the `sync` level.
    pub fn attach_tracer(&mut self, tracer: Arc<TraceCollector>) {
        self.tracer = Some(tracer);
    }

    /// This worker's id.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Number of secondary replicas held.
    pub fn num_secondaries(&self) -> usize {
        self.cache.len()
    }

    #[inline]
    fn freq_of(&self, e: u32) -> u64 {
        self.freq[e as usize].max(1)
    }

    /// Pre-sizes every read/apply scratch buffer for batches of up to
    /// `batch × fields` lookups, so no steady-state batch — including ones
    /// prefetched off-thread by the pipelined trainer — grows a buffer.
    pub fn reserve_batch(&mut self, batch: usize, fields: usize) {
        let rows = batch.saturating_mul(fields);
        let dim = self.table.dim();
        self.scratch_ids.reserve(rows);
        self.scratch_rows.reserve(rows * dim);
        let s = &mut self.scratch;
        s.fetch_ids.reserve(rows);
        s.fetch_slots.reserve(rows);
        s.fetch_install.reserve(rows);
        s.fetch_wire.reserve(rows);
        s.fetch_buf.reserve(rows * dim);
        s.fetch_clocks.reserve(rows);
        s.reduce_slots.reserve(rows);
        s.reduce_buf.reserve(rows * dim);
        s.reduce_ids.reserve(rows);
        s.apply_ids.reserve(rows);
        s.apply_buf.reserve(rows * dim);
        s.apply_clocks.reserve(rows);
    }

    /// Reads the embeddings for a batch of samples under the bounded-
    /// asynchrony protocol. `samples` gives each sample's embedding ids;
    /// `out` receives the rows concatenated in sample-major order
    /// (`Σ len(sample) × dim` floats).
    pub fn read_batch(&mut self, samples: &[&[u32]], out: &mut [f32]) -> ReadReport {
        let dim = self.table.dim();
        let total: usize = samples.iter().map(|s| s.len()).sum();
        assert_eq!(out.len(), total * dim, "output buffer size mismatch");

        let mut report = ReadReport::default();
        self.scratch_ids.clear();
        self.scratch_rows.clear();

        // Pass 1 — resolve each unique id once: local primary, cached
        // secondary (with intra-embedding staleness check), or remote fetch.
        // Rows that need the primary table are *collected* during
        // classification and fetched afterwards in one shard-grouped
        // `read_rows` call, so a batch pays one lock per shard touched
        // instead of one per row. Pending flushes still happen at decision
        // time (before the fetch), so a synced row's fetched value includes
        // this worker's own deferred updates — same order as the per-row
        // path.
        self.scratch.fetch_ids.clear();
        self.scratch.fetch_slots.clear();
        self.scratch.fetch_install.clear();
        self.scratch.fetch_wire.clear();
        for sample in samples {
            for &e in *sample {
                if self.scratch_ids.contains_key(&e) {
                    continue;
                }
                let slot = self.scratch_rows.len();
                self.scratch_rows.resize(slot + dim, 0.0);
                if self.part.primary_of(e) == self.worker {
                    self.scratch.fetch_ids.push(e);
                    self.scratch.fetch_slots.push(slot);
                    self.scratch.fetch_install.push(false);
                    self.scratch.fetch_wire.push(false);
                    report.local_primary += 1;
                } else if self.cache.contains(e) {
                    match self.bound {
                        StalenessBound::Infinite => {
                            // ASP: never check, never sync.
                            if let Some(a) = &self.auditor {
                                // Audit-only clock peek: ASP serves the
                                // replica as-is, so raw and served gaps
                                // coincide — this is the drift ASP permits.
                                let local_clock =
                                    self.cache.effective_clock(e).expect("cached row");
                                let gap =
                                    self.table.clock(e).saturating_sub(local_clock) as f64;
                                a.observe_intra(self.recorder.as_deref(), gap, gap);
                            }
                            self.cache
                                .read(e, &mut self.scratch_rows[slot..slot + dim]);
                            report.local_fresh += 1;
                        }
                        StalenessBound::Bounded(_) => {
                            // Clock exchange (paper: "send sparse indexes and
                            // clocks ... small compared with the embedding").
                            report.meta_bytes += META_ENTRY_BYTES;
                            let primary_clock = self.table.clock(e);
                            let local_clock =
                                self.cache.effective_clock(e).expect("cached row");
                            let gap = primary_clock.saturating_sub(local_clock);
                            if let Some(a) = &self.auditor {
                                // A tolerated read is served at the raw gap;
                                // an intra sync re-fetches, serving gap 0.
                                let served =
                                    if self.bound.tolerates(gap) { gap as f64 } else { 0.0 };
                                a.observe_intra(self.recorder.as_deref(), gap as f64, served);
                            }
                            if self.bound.tolerates(gap) {
                                self.cache
                                    .read(e, &mut self.scratch_rows[slot..slot + dim]);
                                report.local_fresh += 1;
                            } else {
                                // Push any deferred gradients first so the
                                // fetched value includes our own updates.
                                self.flush_pending_into_read(e, &mut report);
                                self.scratch.fetch_ids.push(e);
                                self.scratch.fetch_slots.push(slot);
                                self.scratch.fetch_install.push(true);
                                self.scratch.fetch_wire.push(true);
                                report.intra_syncs += 1;
                                report.data_bytes += self.row_bytes;
                                report.add_src_bytes(
                                    self.part.primary_of(e),
                                    self.row_bytes,
                                    self.part.num_partitions(),
                                );
                                report.messages += 1;
                            }
                        }
                    }
                } else {
                    // No local replica: model-parallel remote read.
                    self.scratch.fetch_ids.push(e);
                    self.scratch.fetch_slots.push(slot);
                    self.scratch.fetch_install.push(false);
                    self.scratch.fetch_wire.push(true);
                    report.remote_fetches += 1;
                    report.data_bytes += self.row_bytes;
                    report.add_src_bytes(
                        self.part.primary_of(e),
                        self.row_bytes,
                        self.part.num_partitions(),
                    );
                    report.meta_bytes += META_ENTRY_BYTES;
                    report.messages += 1;
                }
                self.scratch_ids.insert(e, slot);
            }
        }

        // One shard-grouped fetch for everything that needs the primary
        // table, scattered into the resolved-row scratch; synced secondaries
        // are re-installed at their observed clocks. Bit-identical to the
        // old per-row reads: each fetched row is written only by its own
        // flush above, which precedes the read in both orders.
        let nfetch = self.scratch.fetch_ids.len();
        if nfetch > 0 {
            let table = self.table;
            let format = self.format;
            let HotScratch {
                batch,
                fetch_ids,
                fetch_slots,
                fetch_install,
                fetch_wire,
                fetch_buf,
                fetch_clocks,
                ..
            } = &mut self.scratch;
            fetch_buf.clear();
            fetch_buf.resize(nfetch * dim, 0.0);
            fetch_clocks.clear();
            fetch_clocks.resize(nfetch, 0);
            table.read_rows(fetch_ids, fetch_buf, fetch_clocks, batch);
            for k in 0..nfetch {
                let slot = fetch_slots[k];
                let row = &mut fetch_buf[k * dim..(k + 1) * dim];
                if fetch_wire[k] {
                    format.transport(row);
                }
                self.scratch_rows[slot..slot + dim].copy_from_slice(row);
                if fetch_install[k] {
                    self.cache.install(fetch_ids[k], row, fetch_clocks[k]);
                }
            }
        }
        if let Some(r) = &self.recorder {
            r.counter_add(names::HOTPATH_BATCH_READ_ROWS, nfetch as u64);
        }

        // Pass 2 — inter-embedding synchronisation: within each sample, all
        // pairs of *secondary* replicas must be mutually fresh under the
        // normalised clock (primaries and just-fetched rows are fresh by
        // construction).
        if !matches!(self.bound, StalenessBound::Infinite) {
            for sample in samples {
                for (ai, &a) in sample.iter().enumerate() {
                    for &b in &sample[ai + 1..] {
                        if a == b {
                            continue;
                        }
                        let (Some(ca), Some(cb)) = (
                            self.cache.effective_clock(a),
                            self.cache.effective_clock(b),
                        ) else {
                            continue; // at least one side is not a secondary
                        };
                        // Orient so p_hot ≥ p_cold (paper: assume p_i ≥ p_j).
                        let (hot, cold, c_hot, c_cold) = if self.freq_of(a) >= self.freq_of(b)
                        {
                            (a, b, ca, cb)
                        } else {
                            (b, a, cb, ca)
                        };
                        let p_hot = self.freq_of(hot) as f64;
                        let p_cold = self.freq_of(cold) as f64;
                        let gap = (c_hot as f64 * (p_cold / p_hot) - c_cold as f64).abs();
                        let tolerated = self.bound.tolerates_f(gap);
                        if let Some(a) = &self.auditor {
                            // A tolerated pair is served at the raw gap; a
                            // pair that triggers (or needs no) sync is
                            // content-fresh afterwards, so its served gap
                            // is 0.
                            let served = if tolerated { gap } else { 0.0 };
                            a.observe_inter(self.recorder.as_deref(), gap, served);
                        }
                        if !tolerated {
                            // Sync whichever replica lags its own primary
                            // more. If neither lags, the normalised gap is a
                            // property of the *global* update counts (the
                            // primaries themselves differ in progress) — no
                            // replica sync can shrink it, so fetching would
                            // be a pure no-op cost.
                            let lag_hot = self.table.clock(hot).saturating_sub(c_hot);
                            let lag_cold = self.table.clock(cold).saturating_sub(c_cold);
                            if lag_hot == 0 && lag_cold == 0 {
                                continue;
                            }
                            let victim = if lag_hot >= lag_cold { hot } else { cold };
                            self.flush_pending_into_read(victim, &mut report);
                            let slot = self.scratch_ids[&victim];
                            let buf = &mut self.scratch_rows[slot..slot + dim];
                            let clock = self.table.read_row(victim, buf);
                            self.format.transport(buf);
                            self.cache.install(victim, buf, clock);
                            report.inter_syncs += 1;
                            report.data_bytes += self.row_bytes;
                            report.add_src_bytes(
                                self.part.primary_of(victim),
                                self.row_bytes,
                                self.part.num_partitions(),
                            );
                            report.meta_bytes += META_ENTRY_BYTES;
                            report.messages += 1;
                        }
                    }
                }
            }
        }

        // Pass 3 — scatter resolved rows into the caller's buffer.
        let mut cursor = 0usize;
        for sample in samples {
            for &e in *sample {
                let slot = self.scratch_ids[&e];
                out[cursor..cursor + dim]
                    .copy_from_slice(&self.scratch_rows[slot..slot + dim]);
                cursor += dim;
            }
        }
        self.note_quant(report.intra_syncs + report.inter_syncs + report.remote_fetches);
        if let Some(r) = &self.recorder {
            r.counter_add(names::EMBED_READ_LOCAL_PRIMARY, report.local_primary);
            r.counter_add(names::EMBED_READ_LOCAL_FRESH, report.local_fresh);
            r.counter_add(names::EMBED_READ_REMOTE, report.remote_fetches);
            r.counter_add(names::EMBED_SYNC_INTRA, report.intra_syncs);
            r.counter_add(names::EMBED_SYNC_INTER, report.inter_syncs);
            r.gauge_set(names::EMBED_PENDING_ROWS, self.pending_rows as f64);
        }
        if let Some(t) = &self.tracer {
            let w = self.worker as usize;
            t.worker_instant(
                w,
                names::TRACE_READ,
                &[
                    ("local_primary", Json::U64(report.local_primary)),
                    ("local_fresh", Json::U64(report.local_fresh)),
                    ("remote", Json::U64(report.remote_fetches)),
                ],
            );
            if report.intra_syncs > 0 {
                t.worker_instant(
                    w,
                    names::TRACE_SYNC,
                    &[("kind", Json::from("intra")), ("count", Json::U64(report.intra_syncs))],
                );
            }
            if report.inter_syncs > 0 {
                t.worker_instant(
                    w,
                    names::TRACE_SYNC,
                    &[("kind", Json::from("inter")), ("count", Json::U64(report.inter_syncs))],
                );
            }
        }
        report
    }

    /// Applies per-lookup gradients for a batch. `samples` and `grads` are
    /// aligned with the corresponding [`WorkerEmbedding::read_batch`] call
    /// (`grads` is sample-major, `Σ len(sample) × dim` floats).
    ///
    /// Performs the paper's local reduction first (summing duplicate rows in
    /// the batch), then writes every reduced gradient to the row's primary;
    /// local secondary mirrors receive the same SGD-style delta and count a
    /// local update (their "stale gradient" copy).
    pub fn apply_gradients(
        &mut self,
        samples: &[&[u32]],
        grads: &[f32],
        opt: &SparseOpt,
    ) -> UpdateReport {
        let dim = self.table.dim();
        let total: usize = samples.iter().map(|s| s.len()).sum();
        assert_eq!(grads.len(), total * dim, "gradient buffer size mismatch");

        // Local reduction: sum gradients per unique row, into a flat
        // reusable buffer (one `dim` slice per unique id — no per-row Vec
        // allocations on the hot path).
        {
            let HotScratch {
                reduce_slots,
                reduce_buf,
                ..
            } = &mut self.scratch;
            reduce_slots.clear();
            reduce_buf.clear();
            let mut cursor = 0usize;
            for sample in samples {
                for &e in *sample {
                    let g = &grads[cursor..cursor + dim];
                    match reduce_slots.get(&e) {
                        Some(&slot) => {
                            for (a, &x) in reduce_buf[slot..slot + dim].iter_mut().zip(g) {
                                *a += x;
                            }
                        }
                        None => {
                            reduce_slots.insert(e, reduce_buf.len());
                            reduce_buf.extend_from_slice(g);
                        }
                    }
                    cursor += dim;
                }
            }
        }

        let mut report = UpdateReport::default();
        self.flush_opt = *opt;
        // Deterministic application order.
        let mut ids = std::mem::take(&mut self.scratch.reduce_ids);
        ids.clear();
        ids.extend(self.scratch.reduce_slots.keys().copied());
        ids.sort_unstable();
        let lr = opt.learning_rate();
        let mut delta = std::mem::take(&mut self.scratch.delta_buf);
        delta.clear();
        delta.resize(dim, 0.0);
        let reduce_slots = std::mem::take(&mut self.scratch.reduce_slots);
        let reduce_buf = std::mem::take(&mut self.scratch.reduce_buf);
        let mut apply_ids = std::mem::take(&mut self.scratch.apply_ids);
        let mut apply_buf = std::mem::take(&mut self.scratch.apply_buf);
        apply_ids.clear();
        apply_buf.clear();
        // Deferral budget: with a positive staleness bound, gradients for
        // locally-replicated rows are *accumulated* in the secondary's
        // stale-gradient buffer (paper §6) and flushed as one merged
        // write-back — this is what shrinks write traffic as `s` grows
        // (Figure 8's 2-D columns). The budget honours the bound: a worker
        // deferring `k` updates makes every *other* replica miss up to `k`
        // updates, and with `N−1` peers deferring symmetrically a replica
        // can miss `(N−1)·k`; keeping that within `s` gives
        // `k ≤ max(1, s/N)`.
        let n = self.part.num_partitions() as u64;
        let defer_threshold: Option<u64> = match self.bound {
            StalenessBound::Bounded(s) if s > 0 => Some((s / n).max(1)),
            StalenessBound::Infinite => Some(u64::MAX),
            _ => None,
        };
        // Route every reduced gradient. Direct applies (local primaries and
        // immediate write-backs) are *collected* and applied in one
        // shard-grouped `apply_grads` call below; deferred rows still flush
        // inline when they hit their budget. Rows are distinct after
        // reduction, so collecting commutes with the old per-row interleave
        // bit-for-bit.
        let mut wire_rows = 0u64;
        for &e in &ids {
            let slot = reduce_slots[&e];
            let g = &reduce_buf[slot..slot + dim];
            let primary_local = self.part.primary_of(e) == self.worker;
            if primary_local {
                apply_ids.push(e);
                apply_buf.extend_from_slice(g);
                report.local_updates += 1;
                continue;
            }
            if let (Some(threshold), true) = (defer_threshold, self.cache.contains(e)) {
                // Mirror locally (uncounted — the clock advances at flush),
                // defer the primary write-back.
                for (d, &x) in delta.iter_mut().zip(g) {
                    *d = -lr * x;
                }
                self.cache.apply_local_delta_uncounted(e, &delta);
                let pending = self.cache.accumulate_pending(e, g) as u64;
                report.deferred += 1;
                if pending == 1 {
                    self.pending_rows += 1;
                }
                if pending >= threshold {
                    self.flush_row(e, opt, &mut report);
                }
                continue;
            }
            // Immediate write-back (no replica, or s = 0). The gradient is
            // transported through the wire format (with error feedback when
            // enabled) *before* it reaches the primary; the local mirror
            // applies the transported value so it tracks what the primary
            // actually received.
            apply_ids.push(e);
            let start = apply_buf.len();
            apply_buf.extend_from_slice(g);
            if !self.format.is_lossless() {
                let wire = &mut apply_buf[start..];
                if self.feedback_on {
                    self.feedback.compensate_and_transport(self.format, e, wire);
                } else {
                    self.format.transport(wire);
                }
                wire_rows += 1;
            }
            report.remote_writebacks += 1;
            report.data_bytes += self.row_bytes;
            report.add_dst_bytes(
                self.part.primary_of(e),
                self.row_bytes,
                self.part.num_partitions(),
            );
            report.meta_bytes += META_ENTRY_BYTES;
            report.messages += 1;
            if self.cache.contains(e) {
                for (d, &x) in delta.iter_mut().zip(&apply_buf[start..]) {
                    *d = -lr * x;
                }
                self.cache.apply_local_delta(e, &delta);
            }
        }
        self.note_quant(wire_rows);
        if !apply_ids.is_empty() {
            let HotScratch {
                batch, apply_clocks, ..
            } = &mut self.scratch;
            apply_clocks.clear();
            apply_clocks.resize(apply_ids.len(), 0);
            self.table
                .apply_grads(&apply_ids, &apply_buf, opt, apply_clocks, batch);
        }
        if let Some(r) = &self.recorder {
            r.counter_add(names::HOTPATH_BATCH_APPLY_ROWS, apply_ids.len() as u64);
        }
        self.scratch.delta_buf = delta;
        self.scratch.reduce_slots = reduce_slots;
        self.scratch.reduce_buf = reduce_buf;
        self.scratch.apply_ids = apply_ids;
        self.scratch.apply_buf = apply_buf;
        self.scratch.reduce_ids = ids;
        if let Some(r) = &self.recorder {
            r.counter_add(names::EMBED_UPDATE_DEFERRED, report.deferred);
            r.counter_add(
                names::EMBED_UPDATE_DIRECT,
                report.local_updates + report.remote_writebacks,
            );
            r.gauge_set(names::EMBED_PENDING_ROWS, self.pending_rows as f64);
        }
        if let Some(t) = &self.tracer {
            if report.deferred > 0 {
                t.worker_instant(
                    self.worker as usize,
                    names::TRACE_DEFER,
                    &[
                        ("deferred", Json::U64(report.deferred)),
                        ("pending_rows", Json::U64(self.pending_rows as u64)),
                    ],
                );
            }
        }
        report
    }

    /// Flushes one row's pending gradient to its primary; accounts the
    /// write-back into `report`.
    fn flush_row(&mut self, e: u32, opt: &SparseOpt, report: &mut UpdateReport) {
        let buf = &mut self.scratch.row_buf;
        if self.cache.take_pending(e, buf) {
            if !self.format.is_lossless() {
                if self.feedback_on {
                    self.feedback.compensate_and_transport(self.format, e, buf);
                } else {
                    self.format.transport(buf);
                }
            }
            self.table.apply_grad(e, buf, opt);
            self.cache.note_flush(e);
            self.pending_rows = self.pending_rows.saturating_sub(1);
            if let Some(r) = &self.recorder {
                r.counter_add(names::EMBED_FLUSH_ROWS, 1);
            }
            self.note_quant(1);
            report.remote_writebacks += 1;
            report.data_bytes += self.row_bytes;
            report.add_dst_bytes(
                self.part.primary_of(e),
                self.row_bytes,
                self.part.num_partitions(),
            );
            report.meta_bytes += META_ENTRY_BYTES;
            report.messages += 1;
        }
    }

    /// Flushes a row's pending gradient during a read-path sync; bytes are
    /// accounted into the read report. Returns true if anything was flushed.
    fn flush_pending_into_read(&mut self, e: u32, report: &mut ReadReport) -> bool {
        let buf = &mut self.scratch.row_buf;
        if self.cache.take_pending(e, buf) {
            if !self.format.is_lossless() {
                if self.feedback_on {
                    self.feedback.compensate_and_transport(self.format, e, buf);
                } else {
                    self.format.transport(buf);
                }
            }
            let opt = self.flush_opt;
            self.table.apply_grad(e, buf, &opt);
            self.cache.note_flush(e);
            self.pending_rows = self.pending_rows.saturating_sub(1);
            if let Some(r) = &self.recorder {
                r.counter_add(names::EMBED_FLUSH_ROWS, 1);
            }
            self.note_quant(1);
            report.data_bytes += self.row_bytes;
            report.add_src_bytes(
                self.part.primary_of(e),
                self.row_bytes,
                self.part.num_partitions(),
            );
            report.meta_bytes += META_ENTRY_BYTES;
            report.messages += 1;
            true
        } else {
            false
        }
    }

    /// Flushes every pending deferred gradient (epoch boundaries,
    /// evaluation barriers). Returns the accounting for the write-backs.
    pub fn flush_all(&mut self, opt: &SparseOpt) -> UpdateReport {
        let mut report = UpdateReport::default();
        for e in self.cache.rows_with_pending() {
            self.flush_row(e, opt, &mut report);
        }
        if let Some(r) = &self.recorder {
            r.gauge_set(names::EMBED_PENDING_ROWS, self.pending_rows as f64);
        }
        report
    }

    /// Forces a full refresh of every secondary replica (used at evaluation
    /// barriers). Returns the number of rows synced.
    pub fn sync_all(&mut self) -> usize {
        let dim = self.table.dim();
        let table = self.table;
        let format = self.format;
        let HotScratch {
            batch,
            fetch_ids,
            fetch_buf,
            fetch_clocks,
            ..
        } = &mut self.scratch;
        fetch_ids.clear();
        fetch_ids.extend((0..table.num_rows() as u32).filter(|&e| self.cache.contains(e)));
        let n = fetch_ids.len();
        fetch_buf.clear();
        fetch_buf.resize(n * dim, 0.0);
        fetch_clocks.clear();
        fetch_clocks.resize(n, 0);
        table.read_rows(fetch_ids, fetch_buf, fetch_clocks, batch);
        for k in 0..n {
            let row = &mut fetch_buf[k * dim..(k + 1) * dim];
            format.transport(row);
            self.cache.install(fetch_ids[k], row, fetch_clocks[k]);
        }
        // A full refresh is a sync point: error-feedback residuals are
        // superseded by the re-prime, and clearing them here makes a
        // checkpoint-resumed run (fresh residuals) bit-match an
        // uninterrupted one.
        self.feedback.clear();
        self.note_quant(n as u64);
        n
    }

    /// Crash recovery: pending deferred gradients lived in (simulated)
    /// device memory and die with the worker — they are *discarded*, not
    /// flushed — then every secondary replica is re-primed from the
    /// authoritative table (which the trainer has already rolled back to
    /// the checkpoint). Returns the number of rows re-fetched.
    pub fn recover_from_crash(&mut self) -> u64 {
        let dim = self.table.dim();
        let mut discard = vec![0.0f32; dim];
        for e in self.cache.rows_with_pending() {
            self.cache.take_pending(e, &mut discard);
            self.cache.note_flush(e);
        }
        self.pending_rows = 0;
        if let Some(r) = &self.recorder {
            r.gauge_set(names::EMBED_PENDING_ROWS, 0.0);
        }
        self.sync_all() as u64
    }

    /// Which telemetry hooks are attached: `(recorder, auditor, tracer)`.
    pub fn hooks_attached(&self) -> (bool, bool, bool) {
        (
            self.recorder.is_some(),
            self.auditor.is_some(),
            self.tracer.is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 workers, 4 embeddings (dim 2). Primaries: 0,1 on worker 0; 2,3 on
    /// worker 1. Worker 0 holds a secondary of 2; worker 1 a secondary of 0.
    fn setup(_table: &ShardedTable) -> Partition {
        let mut p = Partition::new(2, vec![0, 1], vec![0, 0, 1, 1]);
        p.add_replica(2, 0);
        p.add_replica(0, 1);
        p
    }

    fn freq4() -> Vec<u64> {
        vec![10, 5, 10, 5]
    }

    #[test]
    fn local_primary_reads_free() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(10));
        let samples: Vec<&[u32]> = vec![&[0, 1]];
        let mut out = vec![0.0; 4];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.local_primary, 2);
        assert_eq!(r.remote_total(), 0);
        assert_eq!(r.data_bytes, 0);
    }

    #[test]
    fn secondary_fresh_within_bound() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(5));
        assert_eq!(w0.num_secondaries(), 1);
        // Another worker updates embedding 2 three times (gap 3 ≤ 5).
        for _ in 0..3 {
            table.apply_grad(2, &[1.0, 0.0], &SparseOpt::sgd(0.1));
        }
        let samples: Vec<&[u32]> = vec![&[2]];
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.local_fresh, 1);
        assert_eq!(r.intra_syncs, 0);
        assert!(r.meta_bytes > 0); // clock check still exchanged metadata
        // Cache value is the stale (pre-update) one: 0.0.
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn intra_sync_fires_beyond_bound() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(2));
        for _ in 0..3 {
            table.apply_grad(2, &[1.0, 0.0], &SparseOpt::sgd(0.1));
        }
        let samples: Vec<&[u32]> = vec![&[2]];
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.intra_syncs, 1);
        assert!(r.data_bytes > 0);
        assert!((out[0] + 0.3).abs() < 1e-6); // fresh value −3·0.1
        // Second read is fresh again.
        let r2 = w0.read_batch(&samples, &mut out);
        assert_eq!(r2.local_fresh, 1);
        assert_eq!(r2.intra_syncs, 0);
    }

    #[test]
    fn s_zero_always_syncs() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(0));
        table.apply_grad(2, &[1.0, 0.0], &SparseOpt::sgd(0.1));
        let samples: Vec<&[u32]> = vec![&[2]];
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.intra_syncs, 1);
    }

    #[test]
    fn infinite_never_syncs() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Infinite);
        for _ in 0..1000 {
            table.apply_grad(2, &[1.0, 0.0], &SparseOpt::sgd(0.1));
        }
        let samples: Vec<&[u32]> = vec![&[2]];
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.local_fresh, 1);
        assert_eq!(r.remote_total(), 0);
        assert_eq!(r.meta_bytes, 0);
        assert_eq!(out, vec![0.0, 0.0]); // arbitrarily stale
    }

    #[test]
    fn remote_fetch_when_no_replica() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        // Worker 0 has no replica of embedding 3.
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(10));
        let samples: Vec<&[u32]> = vec![&[3]];
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.remote_fetches, 1);
        assert_eq!(r.data_bytes, 8);
    }

    #[test]
    fn duplicate_ids_resolved_once() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(10));
        let samples: Vec<&[u32]> = vec![&[3, 3], &[3]];
        let mut out = vec![0.0; 6];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.remote_fetches, 1, "batch dedup failed");
        assert_eq!(r.lookups(), 1);
    }

    #[test]
    fn inter_sync_on_divergent_replicas() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let mut part = Partition::new(2, vec![0, 1], vec![1, 1, 1, 1]);
        part.add_replica(0, 0);
        part.add_replica(2, 0);
        // freq: emb0 hot (100), emb2 cold (1).
        let freq = vec![100, 1, 1, 1];
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(3));
        // Other worker updates emb0 120 times; worker 0's secondary of 0 has
        // effective clock 0 → intra gap 120 (would sync via intra anyway);
        // to isolate the inter check, first sync emb0, then update emb2 a
        // few times beyond its normalised allowance.
        for _ in 0..120 {
            table.apply_grad(0, &[0.1, 0.0], &SparseOpt::sgd(0.1));
        }
        w0.sync_all(); // emb0 clock 120, emb2 clock 0
        // Now: c_hot(emb0)=120, p_hot=100; c_cold(emb2)=0, p_cold=1.
        // Normalised gap = |120·(1/100) − 0| = 1.2 ≤ 3 → fresh.
        let samples: Vec<&[u32]> = vec![&[0, 2]];
        let mut out = vec![0.0; 4];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.inter_syncs, 0, "{r:?}");
        // Update emb0 another 400 times and emb2 twice (within its intra
        // bound): the normalised pair gap is 5.2 > 3 → the inter check
        // fires, and emb2 (the replica that actually lags its primary) is
        // the sync victim.
        for _ in 0..400 {
            table.apply_grad(0, &[0.1, 0.0], &SparseOpt::sgd(0.1));
        }
        for _ in 0..2 {
            table.apply_grad(2, &[0.1, 0.0], &SparseOpt::sgd(0.1));
        }
        // emb0's intra gap is 400 > 3 so it syncs intra first; emb2's gap of
        // 2 passes intra; the pair check compares 520/100 ≈ 5.2 vs emb2's 0
        // → inter sync of emb2.
        let r2 = w0.read_batch(&samples, &mut out);
        assert_eq!(r2.intra_syncs, 1);
        assert_eq!(r2.inter_syncs, 1, "{r2:?}");
        // A pair that is inconsistent only in *global* progress (both
        // replicas fresh) must NOT trigger wasted syncs.
        let r3 = w0.read_batch(&samples, &mut out);
        assert_eq!(r3.inter_syncs, 0, "{r3:?}");
    }

    #[test]
    fn apply_gradients_reduces_and_routes() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(10));
        // Sample 0 uses emb 0 twice and emb 3 once.
        let samples: Vec<&[u32]> = vec![&[0, 0, 3]];
        let grads = vec![1.0, 0.0, 1.0, 0.0, 2.0, 2.0];
        let r = w0.apply_gradients(&samples, &grads, &SparseOpt::sgd(0.1));
        assert_eq!(r.local_updates, 1); // emb 0 (primary on worker 0)
        assert_eq!(r.remote_writebacks, 1); // emb 3 (primary on worker 1)
        // emb0 received the *reduced* gradient (1+1, 0+0) in one update.
        assert_eq!(table.clock(0), 1);
        let mut row = vec![0.0; 2];
        table.read_row(0, &mut row);
        assert!((row[0] + 0.2).abs() < 1e-6);
    }

    #[test]
    fn own_updates_do_not_count_as_staleness() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(0));
        // Worker 0 updates its own secondary (emb 2) repeatedly; with s = 0,
        // reads must still be local because the replica mirrors its own
        // write-backs (gap counts only *missed* updates).
        let samples: Vec<&[u32]> = vec![&[2]];
        let grads = vec![1.0, 1.0];
        for _ in 0..5 {
            w0.apply_gradients(&samples, &grads, &SparseOpt::sgd(0.1));
        }
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.intra_syncs, 0, "{r:?}");
        assert_eq!(r.local_fresh, 1);
        // And the mirrored value matches the primary exactly (SGD mirror).
        let mut primary = vec![0.0; 2];
        table.read_row(2, &mut primary);
        assert_eq!(out, primary);
    }

    #[test]
    fn deferred_writeback_batches_updates() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        // s = 6 over 2 partitions: deferral budget = s/N = 3 batches, then
        // the pending gradients flush as ONE merged primary update.
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(6));
        let samples: Vec<&[u32]> = vec![&[2]];
        let grads = vec![1.0, 0.0];
        let opt = SparseOpt::sgd(0.1);
        let r1 = w0.apply_gradients(&samples, &grads, &opt);
        assert_eq!(r1.deferred, 1);
        assert_eq!(r1.remote_writebacks, 0);
        assert_eq!(r1.data_bytes, 0);
        assert_eq!(table.clock(2), 0, "primary must not see deferred updates yet");
        let r2 = w0.apply_gradients(&samples, &grads, &opt);
        assert_eq!(r2.remote_writebacks, 0);
        let r3 = w0.apply_gradients(&samples, &grads, &opt);
        assert_eq!(r3.remote_writebacks, 1, "third update hits the flush threshold");
        assert!(r3.data_bytes > 0);
        assert_eq!(table.clock(2), 1, "flush is one merged update");
        let mut row = vec![0.0; 2];
        table.read_row(2, &mut row);
        assert!((row[0] + 0.3).abs() < 1e-6, "merged gradient 3·1.0·lr");
        // Local mirror matches the primary exactly (SGD).
        let mut out = vec![0.0; 2];
        w0.read_batch(&samples, &mut out);
        assert_eq!(out, row);
    }

    #[test]
    fn flush_all_drains_pending() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 =
            WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(100));
        let samples: Vec<&[u32]> = vec![&[2]];
        let grads = vec![2.0, 0.0];
        let opt = SparseOpt::sgd(0.1);
        w0.apply_gradients(&samples, &grads, &opt);
        w0.apply_gradients(&samples, &grads, &opt);
        let rep = w0.flush_all(&opt);
        assert_eq!(rep.remote_writebacks, 1);
        assert_eq!(table.clock(2), 1);
        let mut row = vec![0.0; 2];
        table.read_row(2, &mut row);
        assert!((row[0] + 0.4).abs() < 1e-6);
        // Nothing left to flush.
        assert_eq!(w0.flush_all(&opt).remote_writebacks, 0);
    }

    #[test]
    fn intra_sync_flushes_pending_first() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(2));
        let samples: Vec<&[u32]> = vec![&[2]];
        let grads = vec![1.0, 0.0];
        let opt = SparseOpt::sgd(0.1);
        // One deferred local update, then three updates by another worker →
        // intra gap exceeds 2 → sync; the sync must flush our pending grad
        // so the re-fetched value includes it.
        w0.apply_gradients(&samples, &grads, &opt);
        for _ in 0..3 {
            table.apply_grad(2, &[1.0, 0.0], &opt);
        }
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.intra_syncs, 1);
        // Value includes all four updates: −0.4.
        assert!((out[0] + 0.4).abs() < 1e-6, "got {}", out[0]);
    }

    #[test]
    fn recover_from_crash_discards_pending_and_refreshes() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 =
            WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(100));
        let samples: Vec<&[u32]> = vec![&[2]];
        let grads = vec![1.0, 0.0];
        let opt = SparseOpt::sgd(0.1);
        // Two deferred updates die with the "device"; a peer's update lands
        // at the primary.
        w0.apply_gradients(&samples, &grads, &opt);
        w0.apply_gradients(&samples, &grads, &opt);
        table.apply_grad(2, &[1.0, 0.0], &opt);
        let refreshed = w0.recover_from_crash();
        assert_eq!(refreshed, 1); // one secondary replica re-primed
        // The discarded gradients never reach the primary...
        assert_eq!(table.clock(2), 1);
        // ...and the local replica now mirrors the primary exactly.
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.local_fresh, 1);
        let mut primary = vec![0.0; 2];
        table.read_row(2, &mut primary);
        assert_eq!(out, primary);
        // Nothing pending remains.
        assert_eq!(w0.flush_all(&opt).remote_writebacks, 0);
    }

    #[test]
    fn hooks_attached_reports_truthfully() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(1));
        assert_eq!(w0.hooks_attached(), (false, false, false));
        w0.attach_auditor(Arc::new(ProtocolAuditor::new(
            f64::INFINITY,
            hetgmp_telemetry::AuditMode::Count,
        )));
        assert_eq!(w0.hooks_attached(), (false, true, false));
    }

    #[test]
    fn sync_format_changes_wire_accounting() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(10));
        w0.set_sync_format(SyncFormat::Int8, true);
        let samples: Vec<&[u32]> = vec![&[3]];
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.remote_fetches, 1);
        assert_eq!(r.data_bytes, 2 + 4, "dim int8 payload + one f32 scale");
    }

    #[test]
    fn lossy_mirror_tracks_transported_writeback() {
        // s = 0 → immediate write-backs; the mirror applies the
        // *transported* gradient, so it matches the primary bit-for-bit
        // even under int8 with error feedback.
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Bounded(0));
        w0.set_sync_format(SyncFormat::Int8, true);
        let samples: Vec<&[u32]> = vec![&[2]];
        let grads = vec![0.37, -1.21];
        for _ in 0..5 {
            w0.apply_gradients(&samples, &grads, &SparseOpt::sgd(0.1));
        }
        let mut out = vec![0.0; 2];
        let r = w0.read_batch(&samples, &mut out);
        assert_eq!(r.intra_syncs, 0, "{r:?}");
        let mut primary = vec![0.0; 2];
        table.read_row(2, &mut primary);
        assert_eq!(out, primary);
    }

    #[test]
    fn error_feedback_preserves_tiny_gradients() {
        // A gradient far below one int8 step still lands eventually when
        // feedback accumulates residuals; without feedback every push
        // quantizes to zero... unless the row's own max sets the scale.
        // Use a row whose second component pins the scale.
        use hetgmp_comms::ErrorFeedback;
        let mut fb = ErrorFeedback::new();
        let mut acc = 0.0f64;
        for _ in 0..200 {
            let mut g = vec![0.001f32, 1.0];
            fb.compensate_and_transport(SyncFormat::Int8, 7, &mut g);
            acc += g[0] as f64;
        }
        assert!((acc - 0.2).abs() < 0.01, "accumulated {acc}");
    }

    #[test]
    fn sync_all_refreshes() {
        let table = ShardedTable::new(4, 2, 0.0, 1);
        let part = setup(&table);
        let freq = freq4();
        let mut w0 = WorkerEmbedding::new(0, &table, &part, &freq, StalenessBound::Infinite);
        table.apply_grad(2, &[1.0, 0.0], &SparseOpt::sgd(0.5));
        assert_eq!(w0.sync_all(), 1);
        let samples: Vec<&[u32]> = vec![&[2]];
        let mut out = vec![0.0; 2];
        w0.read_batch(&samples, &mut out);
        assert!((out[0] + 0.5).abs() < 1e-6);
    }
}
