//! Differential proptests: the batched table API must be *bit-identical* to
//! a loop over the per-row API — shard data, Adagrad accumulators, and
//! clocks. This is the contract that lets the hot path batch aggressively
//! without breaking PR 3's determinism guarantees (resumed run == uninterrupted
//! run relies on every update being a reproducible FP operation sequence).

use hetgmp_embedding::{BatchScratch, ShardedTable, SparseOpt};
use proptest::prelude::*;

/// A randomly-generated batched workload: table shape, optimizer, and a
/// sequence of batches (each a list of row ids with duplicates allowed).
#[derive(Debug, Clone)]
struct Workload {
    num_rows: usize,
    dim: usize,
    seed: u64,
    opt: SparseOpt,
    batches: Vec<Vec<u32>>,
}

fn opt_strategy() -> impl Strategy<Value = SparseOpt> {
    prop_oneof![
        (0.001f32..1.0).prop_map(|lr| SparseOpt::Sgd { lr }),
        (0.001f32..1.0).prop_map(|lr| SparseOpt::Adagrad { lr, eps: 1e-8 }),
    ]
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (2usize..600, 1usize..24, 0u64..u64::MAX, opt_strategy()).prop_flat_map(
        |(num_rows, dim, seed, opt)| {
            let batches = prop::collection::vec(
                prop::collection::vec(0..num_rows as u32, 1..64),
                1..6,
            );
            batches.prop_map(move |batches| Workload {
                num_rows,
                dim,
                seed,
                opt,
                batches,
            })
        },
    )
}

/// Deterministic pseudo-gradient for (batch, position, coordinate): the two
/// tables must see the same inputs without sharing buffers.
fn grad_at(batch: usize, pos: usize, coord: usize) -> f32 {
    let x = (batch * 7919 + pos * 104729 + coord * 31) as u32;
    // Map to a modest range with both signs; exact values are irrelevant,
    // identical values on both paths are everything.
    (x.wrapping_mul(2654435761) >> 16) as f32 / 65536.0 - 0.5
}

fn assert_tables_bit_identical(a: &ShardedTable, b: &ShardedTable, num_rows: usize, dim: usize) {
    let mut ra = vec![0.0f32; dim];
    let mut rb = vec![0.0f32; dim];
    for row in 0..num_rows as u32 {
        let ca = a.read_row(row, &mut ra);
        let cb = b.read_row(row, &mut rb);
        assert_eq!(ca, cb, "row {row} clock");
        assert_eq!(
            ra.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            rb.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "row {row} data"
        );
        let ha = a.read_accum(row, &mut ra);
        let hb = b.read_accum(row, &mut rb);
        assert_eq!(ha, hb, "row {row} accumulator presence");
        assert_eq!(
            ra.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            rb.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "row {row} accumulator"
        );
    }
    assert_eq!(a.total_updates(), b.total_updates());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// apply_grads == loop over apply_grad, bit for bit, including
    /// duplicate rows, for both optimizers.
    #[test]
    fn apply_grads_matches_per_row(w in workload_strategy()) {
        let batched = ShardedTable::new(w.num_rows, w.dim, 0.08, w.seed);
        let serial = ShardedTable::new(w.num_rows, w.dim, 0.08, w.seed);
        let mut scratch = BatchScratch::default();
        for (bi, batch) in w.batches.iter().enumerate() {
            let mut grads = vec![0.0f32; batch.len() * w.dim];
            for (pos, g) in grads.chunks_mut(w.dim).enumerate() {
                for (coord, v) in g.iter_mut().enumerate() {
                    *v = grad_at(bi, pos, coord);
                }
            }
            let mut clocks = vec![0u64; batch.len()];
            batched.apply_grads(batch, &grads, &w.opt, &mut clocks, &mut scratch);
            let mut serial_clocks = vec![0u64; batch.len()];
            for (k, &row) in batch.iter().enumerate() {
                serial_clocks[k] =
                    serial.apply_grad(row, &grads[k * w.dim..(k + 1) * w.dim], &w.opt);
            }
            prop_assert_eq!(&clocks, &serial_clocks, "per-op clocks, batch {}", bi);
        }
        assert_tables_bit_identical(&batched, &serial, w.num_rows, w.dim);
    }

    /// read_rows == loop over read_row: same data bits, same observed
    /// clocks, against a table with real update history.
    #[test]
    fn read_rows_matches_per_row(w in workload_strategy()) {
        let table = ShardedTable::new(w.num_rows, w.dim, 0.08, w.seed);
        let mut scratch = BatchScratch::default();
        for (bi, batch) in w.batches.iter().enumerate() {
            // Build history so clocks and (for Adagrad) accumulators are
            // non-trivial before each read.
            let mut grads = vec![0.0f32; batch.len() * w.dim];
            for (pos, g) in grads.chunks_mut(w.dim).enumerate() {
                for (coord, v) in g.iter_mut().enumerate() {
                    *v = grad_at(bi, pos, coord);
                }
            }
            let mut clocks = vec![0u64; batch.len()];
            table.apply_grads(batch, &grads, &w.opt, &mut clocks, &mut scratch);

            let mut out = vec![0.0f32; batch.len() * w.dim];
            let mut read_clocks = vec![0u64; batch.len()];
            table.read_rows(batch, &mut out, &mut read_clocks, &mut scratch);
            let mut expect = vec![0.0f32; w.dim];
            for (k, &row) in batch.iter().enumerate() {
                let c = table.read_row(row, &mut expect);
                prop_assert_eq!(read_clocks[k], c, "row {} clock", row);
                prop_assert_eq!(
                    out[k * w.dim..(k + 1) * w.dim]
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "row {} data", row
                );
            }
        }
    }

    /// write_rows == loop over write_row (duplicates: last write wins) and
    /// clocks never move.
    #[test]
    fn write_rows_matches_per_row(w in workload_strategy()) {
        let batched = ShardedTable::new(w.num_rows, w.dim, 0.08, w.seed);
        let serial = ShardedTable::new(w.num_rows, w.dim, 0.08, w.seed);
        let mut scratch = BatchScratch::default();
        for (bi, batch) in w.batches.iter().enumerate() {
            let mut values = vec![0.0f32; batch.len() * w.dim];
            for (pos, v) in values.chunks_mut(w.dim).enumerate() {
                for (coord, x) in v.iter_mut().enumerate() {
                    *x = grad_at(bi, pos, coord);
                }
            }
            batched.write_rows(batch, &values, &mut scratch);
            for (k, &row) in batch.iter().enumerate() {
                serial.write_row(row, &values[k * w.dim..(k + 1) * w.dim]);
            }
        }
        assert_tables_bit_identical(&batched, &serial, w.num_rows, w.dim);
        prop_assert_eq!(batched.total_updates(), 0);
    }

    /// Interleaved mixed workload — applies, writes, and reads in one
    /// sequence — stays bit-identical end to end.
    #[test]
    fn mixed_ops_match_per_row(w in workload_strategy()) {
        let batched = ShardedTable::new(w.num_rows, w.dim, 0.08, w.seed);
        let serial = ShardedTable::new(w.num_rows, w.dim, 0.08, w.seed);
        let mut scratch = BatchScratch::default();
        for (bi, batch) in w.batches.iter().enumerate() {
            let mut grads = vec![0.0f32; batch.len() * w.dim];
            for (pos, g) in grads.chunks_mut(w.dim).enumerate() {
                for (coord, v) in g.iter_mut().enumerate() {
                    *v = grad_at(bi, pos, coord);
                }
            }
            match bi % 3 {
                0 | 2 => {
                    let mut clocks = vec![0u64; batch.len()];
                    batched.apply_grads(batch, &grads, &w.opt, &mut clocks, &mut scratch);
                    for (k, &row) in batch.iter().enumerate() {
                        serial.apply_grad(row, &grads[k * w.dim..(k + 1) * w.dim], &w.opt);
                    }
                }
                _ => {
                    batched.write_rows(batch, &grads, &mut scratch);
                    for (k, &row) in batch.iter().enumerate() {
                        serial.write_row(row, &grads[k * w.dim..(k + 1) * w.dim]);
                    }
                }
            }
        }
        assert_tables_bit_identical(&batched, &serial, w.num_rows, w.dim);
    }
}
