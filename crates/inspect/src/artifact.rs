//! Loading and classifying run artifacts.
//!
//! Artifacts come in two shapes: line-oriented telemetry logs (one JSON
//! record per line, written by `--telemetry`) and single-document JSON
//! files (Chrome traces from `--trace`, `BENCH_*.json` from the benches).
//! The loader detects the shape from the content, not the file name, and
//! extracts the [`RunManifest`] from wherever that shape stamps it:
//! a `{"event":"manifest"}` first record, `otherData.manifest`, or a
//! top-level `manifest` member.

use hetgmp_telemetry::{HetGmpError, Json, RunManifest};
use std::path::Path;

/// One loaded artifact, classified by shape.
#[derive(Debug)]
pub enum Artifact {
    /// A telemetry JSONL log: every non-empty line parsed as one record.
    Telemetry {
        /// The manifest record, when the log carries one.
        manifest: Option<RunManifest>,
        /// Every record, in file order (including the manifest record).
        records: Vec<Json>,
    },
    /// A single JSON document: a bench result or a Chrome trace.
    Document {
        /// `manifest` / `otherData.manifest` member, when present.
        manifest: Option<RunManifest>,
        /// The whole document.
        doc: Json,
    },
}

impl Artifact {
    /// Loads and classifies the artifact at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, HetGmpError> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| HetGmpError::io(path, e))?;
        Self::parse(&text).map_err(|(line, reason)| HetGmpError::data(path, line, reason))
    }

    /// Parses artifact text; errors carry a 1-based line number (0 when the
    /// failure is not line-oriented).
    pub fn parse(text: &str) -> Result<Self, (usize, String)> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        if lines.is_empty() {
            return Err((0, "empty artifact".to_string()));
        }
        // A telemetry log has *every* non-empty line parseable on its own
        // and tags each record with `event`; single-document files (compact
        // bench results, pretty-printed Chrome traces) do not.
        if lines.len() > 1 {
            let line_wise: Result<Vec<Json>, ()> = lines
                .iter()
                .map(|(_, l)| Json::parse(l).map_err(|_| ()))
                .collect();
            if let Ok(records) = line_wise {
                let manifest = records.iter().find_map(|r| {
                    (r.get("event").and_then(Json::as_str) == Some("manifest"))
                        .then(|| r.get("manifest").and_then(RunManifest::from_json))
                        .flatten()
                });
                return Ok(Artifact::Telemetry { manifest, records });
            }
        }
        let doc = Json::parse(text)
            .map_err(|e| (0, format!("neither a JSONL log nor a JSON document: {e}")))?;
        if lines.len() == 1 && doc.get("event").is_some() {
            let manifest = (doc.get("event").and_then(Json::as_str) == Some("manifest"))
                .then(|| doc.get("manifest").and_then(RunManifest::from_json))
                .flatten();
            return Ok(Artifact::Telemetry { manifest, records: vec![doc] });
        }
        let manifest = doc
            .get("manifest")
            .or_else(|| doc.get("otherData").and_then(|o| o.get("manifest")))
            .and_then(RunManifest::from_json);
        Ok(Artifact::Document { manifest, doc })
    }

    /// The run manifest, regardless of shape.
    pub fn manifest(&self) -> Option<&RunManifest> {
        match self {
            Artifact::Telemetry { manifest, .. } | Artifact::Document { manifest, .. } => {
                manifest.as_ref()
            }
        }
    }

    /// The last `{"event":"final"}` record of a telemetry log (the merged
    /// end-of-run snapshot), if this is one.
    pub fn final_record(&self) -> Option<&Json> {
        match self {
            Artifact::Telemetry { records, .. } => records
                .iter()
                .rev()
                .find(|r| r.get("event").and_then(Json::as_str) == Some("final")),
            Artifact::Document { .. } => None,
        }
    }
}

/// Flattens every numeric leaf of `value` into `out` under dotted paths
/// (array elements indexed numerically); booleans and strings are skipped.
pub fn flatten_numeric(value: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Json::U64(v) => out.push((prefix.to_string(), *v as f64)),
        Json::F64(v) => {
            if v.is_finite() {
                out.push((prefix.to_string(), *v));
            }
        }
        Json::Obj(members) => {
            for (k, v) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_numeric(v, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_numeric(v, &format!("{prefix}.{i}"), out);
            }
        }
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_jsonl_and_extracts_manifest() {
        let m = RunManifest::new(9, RunManifest::digest_of("x"), 2, 2, 1);
        let log = format!(
            "{}\n{}\n{}\n",
            m.to_record().render(),
            r#"{"event":"epoch","epoch":1,"sim_time_secs":1.5}"#,
            r#"{"event":"final","counters":{"traffic.bytes.embed_data":10}}"#,
        );
        let a = Artifact::parse(&log).unwrap();
        assert_eq!(a.manifest(), Some(&m));
        let fin = a.final_record().expect("final record");
        assert_eq!(
            fin.get("counters").unwrap().get("traffic.bytes.embed_data").unwrap().as_u64(),
            Some(10)
        );
    }

    #[test]
    fn classifies_documents_via_either_manifest_home() {
        let m = RunManifest::new(9, RunManifest::digest_of("x"), 2, 2, 1);
        let bench = format!(
            "{{\n  \"samples_per_sec\": 1000.5,\n  \"manifest\": {}\n}}",
            m.to_json().render()
        );
        let a = Artifact::parse(&bench).unwrap();
        assert_eq!(a.manifest(), Some(&m));
        assert!(a.final_record().is_none());

        let trace = format!(
            "{{\n  \"traceEvents\": [],\n  \"otherData\": {{\"manifest\": {}}}\n}}",
            m.to_json().render()
        );
        let a = Artifact::parse(&trace).unwrap();
        assert_eq!(a.manifest(), Some(&m));

        assert!(Artifact::parse("").is_err());
        assert!(Artifact::parse("not json\n").is_err());
    }

    #[test]
    fn flatten_walks_nested_objects_and_arrays() {
        let doc = Json::parse(
            r#"{"a":{"b":1,"c":2.5},"arr":[3,{"d":4}],"s":"skip","n":null,"t":true}"#,
        )
        .unwrap();
        let mut out = Vec::new();
        flatten_numeric(&doc, "", &mut out);
        assert_eq!(
            out,
            vec![
                ("a.b".to_string(), 1.0),
                ("a.c".to_string(), 2.5),
                ("arr.0".to_string(), 3.0),
                ("arr.1.d".to_string(), 4.0),
            ]
        );
    }
}
