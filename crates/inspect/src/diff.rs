//! Cross-run regression diffs over pairs of run artifacts.
//!
//! Both artifacts are reduced to flat `metric -> value` maps (the final
//! snapshot's counters/gauges for telemetry logs, every numeric leaf for
//! bench documents), compared per metric, and classified: a metric whose
//! name says "higher is better" (throughput, AUC, overlap) regresses when
//! it drops by more than the threshold; one whose name says "lower is
//! better" (stalls, overhead, log loss) regresses when it grows. Metrics
//! with no known direction are reported but never fail the diff. When both
//! artifacts carry manifests that disagree on anything except the git
//! revision, the outcome carries a loud warning — the numbers being
//! compared did not come from the same configuration.

use crate::artifact::{flatten_numeric, Artifact};
use hetgmp_telemetry::HetGmpError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Name suffixes where a *drop* beyond the threshold is a regression.
const HIGHER_BETTER: [&str; 9] = [
    "samples_per_sec",
    "samples_per_cpu_sec",
    "rows_per_sec",
    "gflops",
    "speedup",
    "overlap_ratio",
    "auc",
    "final_auc",
    "occupancy",
];

/// Name suffixes where a *rise* beyond the threshold is a regression.
const LOWER_BETTER: [&str; 6] = [
    "stall_pct",
    "stall_secs",
    "overhead_secs",
    "log_loss",
    "logloss",
    "loss",
];

/// Knobs for [`diff_artifacts`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative change (percent) beyond which a directional metric counts
    /// as a regression.
    pub threshold_pct: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { threshold_pct: 5.0 }
    }
}

/// The result of a diff: the rendered table plus machine-checkable verdicts.
#[derive(Debug)]
pub struct DiffOutcome {
    /// The human-readable per-metric table and summary.
    pub report: String,
    /// One line per regressed metric; empty means the diff passed.
    pub regressions: Vec<String>,
    /// Set when the two runs' manifests disagree (ignoring git revision)
    /// or only one side has a manifest.
    pub manifest_warning: Option<String>,
}

/// Diffs artifact `b` (candidate) against `a` (baseline).
pub fn diff_artifacts(
    a: &Artifact,
    b: &Artifact,
    opts: &DiffOptions,
) -> Result<DiffOutcome, HetGmpError> {
    let metrics_a = metric_map(a)?;
    let metrics_b = metric_map(b)?;

    let manifest_warning = match (a.manifest(), b.manifest()) {
        (Some(ma), Some(mb)) => {
            let diffs = ma.mismatches(mb);
            (!diffs.is_empty()).then(|| {
                format!(
                    "WARNING: comparing runs with different configurations — {}",
                    diffs.join(", ")
                )
            })
        }
        (None, None) => None,
        (Some(_), None) => Some("WARNING: candidate artifact has no run manifest".to_string()),
        (None, Some(_)) => Some("WARNING: baseline artifact has no run manifest".to_string()),
    };

    let mut out = String::new();
    let mut regressions = Vec::new();
    let _ = writeln!(
        out,
        "{:<44} {:>14} {:>14} {:>9}",
        "metric", "baseline", "candidate", "delta"
    );
    let mut only_a = 0usize;
    let only_b = metrics_b.keys().filter(|k| !metrics_a.contains_key(*k)).count();
    for (name, &va) in &metrics_a {
        let Some(&vb) = metrics_b.get(name) else {
            only_a += 1;
            continue;
        };
        let rel = if va != 0.0 {
            Some(100.0 * (vb - va) / va.abs())
        } else if vb == 0.0 {
            Some(0.0)
        } else {
            None
        };
        let delta = match rel {
            Some(r) => format!("{r:>+8.2}%"),
            None => format!("{:>9}", "new!=0"),
        };
        let verdict = classify(name, va, vb, rel, opts.threshold_pct);
        let marker = match verdict {
            Verdict::Regression => " REGRESSION",
            Verdict::Improvement => " improved",
            Verdict::Neutral => "",
        };
        let _ = writeln!(out, "{name:<44} {va:>14.4} {vb:>14.4} {delta}{marker}");
        if verdict == Verdict::Regression {
            regressions.push(format!("{name}: {va:.4} -> {vb:.4} ({delta})"));
        }
    }
    if only_a > 0 || only_b > 0 {
        let _ = writeln!(
            out,
            "({only_a} metric(s) only in baseline, {only_b} only in candidate)"
        );
    }
    let _ = match &regressions[..] {
        [] => writeln!(out, "\nresult: OK (threshold {:.1}%)", opts.threshold_pct),
        rs => writeln!(
            out,
            "\nresult: {} regression(s) beyond {:.1}%:\n  {}",
            rs.len(),
            opts.threshold_pct,
            rs.join("\n  ")
        ),
    };

    Ok(DiffOutcome { report: out, regressions, manifest_warning })
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum Verdict {
    Regression,
    Improvement,
    Neutral,
}

/// Classifies one metric's change. `rel` is the relative change in percent
/// (None when the baseline is zero and the candidate is not — treated as a
/// regression for lower-better metrics, since something that was absent
/// now costs time).
fn classify(name: &str, _va: f64, vb: f64, rel: Option<f64>, threshold_pct: f64) -> Verdict {
    let leaf = name.rsplit('.').next().unwrap_or(name);
    let higher = HIGHER_BETTER.contains(&leaf);
    let lower = !higher && LOWER_BETTER.contains(&leaf);
    match rel {
        Some(r) => {
            if (higher && r < -threshold_pct) || (lower && r > threshold_pct) {
                Verdict::Regression
            } else if (higher && r > threshold_pct) || (lower && r < -threshold_pct) {
                Verdict::Improvement
            } else {
                Verdict::Neutral
            }
        }
        None if lower && vb > 0.0 => Verdict::Regression,
        None => Verdict::Neutral,
    }
}

/// Reduces an artifact to a flat metric map. Telemetry logs contribute the
/// final snapshot's counters and gauges (histograms are distributions, not
/// single comparable numbers); documents contribute every numeric leaf
/// outside the manifest stamp.
fn metric_map(artifact: &Artifact) -> Result<BTreeMap<String, f64>, HetGmpError> {
    let mut flat = Vec::new();
    match artifact {
        Artifact::Telemetry { .. } => {
            let fin = artifact.final_record().ok_or_else(|| {
                HetGmpError::data_unattributed(
                    0,
                    "telemetry log has no {\"event\":\"final\"} snapshot to diff",
                )
            })?;
            for section in ["counters", "gauges"] {
                if let Some(v) = fin.get(section) {
                    flatten_numeric(v, section, &mut flat);
                }
            }
            if let Some(auc) = fin.get("auc") {
                flatten_numeric(auc, "auc", &mut flat);
            }
        }
        Artifact::Document { doc, .. } => {
            if let Some(members) = doc.as_obj() {
                for (k, v) in members {
                    if k == "manifest" || k == "otherData" {
                        continue;
                    }
                    flatten_numeric(v, k, &mut flat);
                }
            } else {
                flatten_numeric(doc, "", &mut flat);
            }
        }
    }
    Ok(flat.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_telemetry::RunManifest;

    fn bench(samples_per_sec: f64, stall_pct: f64, seed: u64) -> Artifact {
        let m = RunManifest::new(seed, RunManifest::digest_of("cfg"), 2, 2, 1);
        Artifact::parse(&format!(
            r#"{{"samples_per_sec": {samples_per_sec}, "stall_pct": {stall_pct}, "final_auc": 0.75, "manifest": {}}}"#,
            m.to_json().render()
        ))
        .unwrap()
    }

    #[test]
    fn flags_throughput_drop_beyond_threshold() {
        let a = bench(100000.0, 1.0, 42);
        let b = bench(94000.0, 1.0, 42);
        let out = diff_artifacts(&a, &b, &DiffOptions::default()).unwrap();
        assert_eq!(out.regressions.len(), 1, "{}", out.report);
        assert!(out.regressions[0].contains("samples_per_sec"), "{}", out.report);
        assert!(out.manifest_warning.is_none(), "{:?}", out.manifest_warning);
        assert!(out.report.contains("REGRESSION"), "{}", out.report);
    }

    #[test]
    fn tolerates_noise_and_rewards_improvement() {
        let a = bench(100000.0, 2.0, 42);
        // -3% throughput is within the 5% default; stall halved is an improvement.
        let b = bench(97000.0, 1.0, 42);
        let out = diff_artifacts(&a, &b, &DiffOptions::default()).unwrap();
        assert!(out.regressions.is_empty(), "{}", out.report);
        assert!(out.report.contains("improved"), "{}", out.report);
        assert!(out.report.contains("result: OK"), "{}", out.report);
    }

    #[test]
    fn stall_growth_regresses_and_threshold_is_configurable() {
        let a = bench(100000.0, 1.0, 42);
        let b = bench(100000.0, 1.2, 42);
        let out = diff_artifacts(&a, &b, &DiffOptions::default()).unwrap();
        assert_eq!(out.regressions.len(), 1, "{}", out.report);
        assert!(out.regressions[0].contains("stall_pct"), "{}", out.report);
        // With a 25% threshold the same 20% rise passes.
        let out = diff_artifacts(&a, &b, &DiffOptions { threshold_pct: 25.0 }).unwrap();
        assert!(out.regressions.is_empty(), "{}", out.report);
    }

    #[test]
    fn warns_on_manifest_mismatch_between_runs() {
        let a = bench(100000.0, 1.0, 42);
        let b = bench(100500.0, 1.0, 43);
        let out = diff_artifacts(&a, &b, &DiffOptions::default()).unwrap();
        let warning = out.manifest_warning.expect("seed mismatch should warn");
        assert!(warning.contains("seed"), "{warning}");
        assert!(out.regressions.is_empty(), "{}", out.report);
    }

    #[test]
    fn diffs_telemetry_final_snapshots() {
        let log = |embed: u64, auc: f64| {
            Artifact::parse(&format!(
                concat!(
                    r#"{{"event":"epoch","epoch":1}}"#,
                    "\n",
                    r#"{{"event":"final","auc":{auc},"counters":{{"traffic.bytes.embed_data":{embed}}},"gauges":{{"time.compute_secs":1.5}}}}"#,
                    "\n",
                ),
                auc = auc,
                embed = embed,
            ))
            .unwrap()
        };
        let out =
            diff_artifacts(&log(1000, 0.75), &log(1200, 0.70), &DiffOptions::default()).unwrap();
        // auc dropped 6.7% -> regression; traffic has no direction -> reported only.
        assert_eq!(out.regressions.len(), 1, "{}", out.report);
        assert!(out.regressions[0].contains("auc"), "{}", out.report);
        assert!(out.report.contains("traffic.bytes.embed_data"), "{}", out.report);
        // Neither side has a manifest: nothing to warn about.
        assert!(out.manifest_warning.is_none());
    }
}
