//! ASCII pipeline occupancy timelines rendered from a Chrome trace file.
//!
//! Each `(pid, tid)` pair in the trace is one track (a worker, a link, or
//! the driver — labelled from the `process_name`/`thread_name` metadata
//! events). `ph:"X"` complete events are projected onto a fixed-width
//! character grid: `#` where the track is busy for more than half the
//! column's time slice, `.` where it is busy at all, space where idle.
//! A per-stage summary totals the `trace.stage.*` spans so the occupancy
//! split (fetch / compute / write_back / sync) is readable without a
//! trace viewer.

use crate::artifact::Artifact;
use hetgmp_telemetry::{names, HetGmpError, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Width of the timeline grid, in characters.
const GRID_COLS: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Span {
    ts_us: f64,
    dur_us: f64,
}

/// Renders the per-track occupancy gantt for a loaded Chrome trace.
pub fn render_gantt(artifact: &Artifact) -> Result<String, HetGmpError> {
    let Artifact::Document { doc, manifest } = artifact else {
        return Err(HetGmpError::data_unattributed(
            0,
            "`inspect pipeline` reads a Chrome trace file (write one with --trace); \
             got a telemetry JSONL log — use `inspect report` for those",
        ));
    };
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return Err(HetGmpError::data_unattributed(
            0,
            "document has no traceEvents array — not a Chrome trace",
        ));
    };

    // First pass: track labels from metadata events, spans from "X" events.
    let mut process_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut thread_names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut tracks: BTreeMap<(u64, u64), Vec<Span>> = BTreeMap::new();
    let mut stages: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        let pid = e.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let name = e.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "M" => {
                if let Some(label) = e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                {
                    match name {
                        "process_name" => {
                            process_names.insert(pid, label.to_string());
                        }
                        "thread_name" => {
                            thread_names.insert((pid, tid), label.to_string());
                        }
                        _ => {}
                    }
                }
            }
            "X" => {
                let ts_us = e.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                let dur_us = e.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
                tracks.entry((pid, tid)).or_default().push(Span { ts_us, dur_us });
                if let Some(stage) = name.strip_prefix(names::TRACE_STAGE_PREFIX) {
                    let entry = stages.entry(stage.to_string()).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += dur_us;
                }
            }
            _ => {}
        }
    }

    let mut out = String::new();
    if let Some(m) = manifest {
        let _ = writeln!(
            out,
            "manifest: seed={} digest={} workers={} depth={} gemm_threads={}",
            m.seed, m.config_digest, m.workers, m.pipeline_depth, m.gemm_threads,
        );
    }
    if tracks.is_empty() {
        let _ = writeln!(out, "trace contains no spans (metadata-only trace)");
        return Ok(out);
    }

    let t0 = tracks
        .values()
        .flatten()
        .map(|s| s.ts_us)
        .fold(f64::INFINITY, f64::min);
    let t1 = tracks
        .values()
        .flatten()
        .map(|s| s.ts_us + s.dur_us)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (t1 - t0).max(1e-9);
    let col_us = range / GRID_COLS as f64;
    let _ = writeln!(
        out,
        "timeline: {:.3} ms simulated, {GRID_COLS} columns of {:.1} us \
         ('#' >50% busy, '.' busy, ' ' idle)",
        range / 1000.0,
        col_us
    );

    let label_width = tracks
        .keys()
        .map(|key| track_label(key, &process_names, &thread_names).len())
        .max()
        .unwrap_or(0);
    for (key, spans) in &tracks {
        // Per-column busy time, clipping each span to the columns it covers.
        let mut busy = [0.0f64; GRID_COLS];
        let mut total_busy = 0.0;
        for s in spans {
            total_busy += s.dur_us;
            let lo = (s.ts_us - t0) / col_us;
            let hi = (s.ts_us + s.dur_us - t0) / col_us;
            let first = (lo.floor() as usize).min(GRID_COLS - 1);
            let last = (hi.ceil() as usize).min(GRID_COLS);
            for (c, slot) in busy.iter_mut().enumerate().take(last).skip(first) {
                let c_lo = c as f64;
                let c_hi = c_lo + 1.0;
                *slot += (hi.min(c_hi) - lo.max(c_lo)).max(0.0);
            }
        }
        let grid: String = busy
            .iter()
            .map(|&b| if b > 0.5 { '#' } else if b > 0.0 { '.' } else { ' ' })
            .collect();
        let util = 100.0 * total_busy / range;
        let label = track_label(key, &process_names, &thread_names);
        let _ = writeln!(out, "  {label:<label_width$} |{grid}| {util:>5.1}%");
    }

    if !stages.is_empty() {
        let stage_total: f64 = stages.values().map(|(_, d)| d).sum();
        let _ = writeln!(out, "\nstage occupancy (share of attributed span time)");
        let _ = writeln!(out, "  {:<12} {:>8} {:>12} {:>8}", "stage", "spans", "total_ms", "share");
        // Canonical stage order first, then anything unexpected.
        for stage in names::PIPELINE_STAGES {
            if let Some((count, dur)) = stages.get(stage) {
                let share = if stage_total > 0.0 { 100.0 * dur / stage_total } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {stage:<12} {count:>8} {:>12.3} {share:>7.1}%",
                    dur / 1000.0
                );
            }
        }
        for (stage, (count, dur)) in &stages {
            if !names::PIPELINE_STAGES.contains(&stage.as_str()) {
                let share = if stage_total > 0.0 { 100.0 * dur / stage_total } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {stage:<12} {count:>8} {:>12.3} {share:>7.1}%",
                    dur / 1000.0
                );
            }
        }
    }

    Ok(out)
}

fn track_label(
    key: &(u64, u64),
    process_names: &BTreeMap<u64, String>,
    thread_names: &BTreeMap<(u64, u64), String>,
) -> String {
    let process = process_names
        .get(&key.0)
        .cloned()
        .unwrap_or_else(|| format!("pid {}", key.0));
    let thread = thread_names
        .get(key)
        .cloned()
        .unwrap_or_else(|| format!("tid {}", key.1));
    format!("{process}/{thread}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(events: &str) -> Artifact {
        Artifact::parse(&format!("{{\"traceEvents\": [{events}], \"displayTimeUnit\": \"ms\"}}"))
            .unwrap()
    }

    #[test]
    fn gantt_renders_tracks_and_stage_summary() {
        let a = trace(concat!(
            r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"workers"}},"#,
            r#"{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker 0"}},"#,
            r#"{"name":"trace.stage.fetch","ph":"X","pid":1,"tid":0,"ts":0.0,"dur":500.0,"args":{}},"#,
            r#"{"name":"trace.stage.compute","ph":"X","pid":1,"tid":0,"ts":500.0,"dur":1500.0,"args":{}},"#,
            r#"{"name":"trace.stage.sync","ph":"X","pid":1,"tid":0,"ts":2000.0,"dur":0.0,"args":{}}"#,
        ));
        let g = render_gantt(&a).unwrap();
        assert!(g.contains("workers/worker 0"), "{g}");
        assert!(g.contains('#'), "busy columns: {g}");
        assert!(g.contains("stage occupancy"), "{g}");
        assert!(g.contains("fetch"), "{g}");
        assert!(g.contains("25.0%"), "fetch share of 2000us attributed: {g}");
        // Track is busy the whole range: utilization 100%.
        assert!(g.contains("100.0%"), "{g}");
    }

    #[test]
    fn gantt_handles_empty_trace_and_rejects_logs() {
        let a = trace(
            r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"workers"}}"#,
        );
        let g = render_gantt(&a).unwrap();
        assert!(g.contains("metadata-only"), "{g}");

        let log =
            Artifact::parse("{\"event\":\"epoch\",\"epoch\":1}\n{\"event\":\"final\"}\n").unwrap();
        assert!(render_gantt(&log).is_err());
        let not_trace = Artifact::parse("{\"samples_per_sec\": 5}").unwrap();
        assert!(render_gantt(&not_trace).is_err());
    }
}
