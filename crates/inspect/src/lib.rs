//! Post-hoc analysis of HET-GMP run artifacts.
//!
//! Every run of the trainer, the experiment harness, and the benches leaves
//! artifacts behind — telemetry JSONL logs, Chrome trace-event timelines,
//! `BENCH_*.json` result files — each stamped with a [`RunManifest`]
//! identifying the configuration that produced it. This crate turns those
//! artifacts back into answers, powering the `het-gmp inspect` subcommand:
//!
//! * [`report`] — a Figure 8-style breakdown of one telemetry log: traffic
//!   volume by class (embed data / keys+clocks / AllReduce), simulated time
//!   by category, the per-epoch pipeline occupancy/stall timeline, and
//!   (on request) the wall-clock per-stage histograms.
//! * [`gantt`] — an ASCII per-track occupancy timeline rendered from a
//!   Chrome trace file: which worker/link was busy when, and how occupied
//!   each pipeline stage kept its timeline.
//! * [`diff`] — a cross-run comparison of two telemetry logs or two bench
//!   files: per-metric deltas, configurable regression thresholds on the
//!   throughput/quality metrics, and a loud warning when the two runs'
//!   manifests show they were not measuring the same configuration.
//!
//! Everything here is read-only over the `Json` value model from
//! `hetgmp-telemetry` — no new dependencies, no serde.

pub mod artifact;
pub mod diff;
pub mod gantt;
pub mod report;

pub use artifact::Artifact;
pub use diff::{diff_artifacts, DiffOptions, DiffOutcome};
pub use gantt::render_gantt;
pub use report::render_report;
