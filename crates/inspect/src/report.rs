//! The Figure 8-style run report: traffic and time breakdowns plus the
//! pipeline timeline, rendered from one telemetry JSONL log.
//!
//! The default report prints only *deterministic* quantities — simulated
//! seconds, exact traffic bytes, per-epoch occupancy — so the same seed and
//! configuration reproduce the same report byte-for-byte (the
//! `inspect-smoke` golden comparison relies on this). Wall-clock sections
//! (per-stage wall histograms, stall seconds, profiler overhead) are added
//! only when `wall` is requested.

use crate::artifact::Artifact;
use hetgmp_telemetry::{names, HetGmpError, Json};
use std::fmt::Write as _;

/// The traffic classes of the paper's Figure 8, in display order.
const TRAFFIC_CLASSES: [&str; 3] = ["embed_data", "keys_clocks", "allreduce"];

/// The simulated-time categories, in display order.
const TIME_CATEGORIES: [&str; 6] = [
    "compute_secs",
    "embed_comm_secs",
    "meta_comm_secs",
    "allreduce_comm_secs",
    "host_io_secs",
    "fault_secs",
];

/// Renders the report for a loaded telemetry artifact. `wall` adds the
/// nondeterministic wall-clock sections.
pub fn render_report(artifact: &Artifact, wall: bool) -> Result<String, HetGmpError> {
    let Artifact::Telemetry { records, manifest } = artifact else {
        return Err(HetGmpError::data_unattributed(
            0,
            "`inspect report` reads a telemetry JSONL log (write one with --telemetry); \
             got a single JSON document — use `inspect pipeline` for traces or \
             `inspect diff` for bench files",
        ));
    };
    let Some(fin) = artifact.final_record() else {
        return Err(HetGmpError::data_unattributed(
            0,
            "telemetry log has no {\"event\":\"final\"} snapshot record",
        ));
    };
    let mut out = String::new();

    if let Some(m) = manifest {
        let _ = writeln!(
            out,
            "manifest: seed={} digest={} workers={} depth={} gemm_threads={} \
             git={} profile={}",
            m.seed, m.config_digest, m.workers, m.pipeline_depth, m.gemm_threads, m.git_rev,
            m.build_profile,
        );
    } else {
        let _ = writeln!(out, "manifest: (none recorded)");
    }
    if let Some(system) = fin.get("system").and_then(Json::as_str) {
        let _ = writeln!(out, "system: {system}");
    }
    if let Some(auc) = fin.get("auc").and_then(Json::as_f64) {
        let _ = writeln!(out, "final auc: {auc:.4}");
    }

    let counter = |name: &str| -> f64 {
        fin.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let gauge = |name: &str| -> Option<f64> {
        fin.get("gauges").and_then(|g| g.get(name)).and_then(Json::as_f64)
    };

    // ---- Figure 8: traffic by class -------------------------------------
    let bytes: Vec<f64> = TRAFFIC_CLASSES
        .iter()
        .map(|c| counter(&format!("{}{c}", names::TRAFFIC_BYTES_PREFIX)))
        .collect();
    let total_bytes: f64 = bytes.iter().sum();
    let _ = writeln!(out, "\ntraffic breakdown (Fig. 8)");
    let _ = writeln!(out, "  {:<12} {:>14} {:>8} {:>10}", "class", "bytes", "share", "messages");
    for (class, b) in TRAFFIC_CLASSES.iter().zip(&bytes) {
        let msgs = counter(&format!("{}{class}", names::TRAFFIC_MESSAGES_PREFIX));
        let share = if total_bytes > 0.0 { 100.0 * b / total_bytes } else { 0.0 };
        let _ = writeln!(out, "  {class:<12} {b:>14.0} {share:>7.1}% {msgs:>10.0}");
    }

    // ---- Simulated time by category -------------------------------------
    // The time.* charges are recorded as histograms (per-epoch samples);
    // their sums are the totals. Gauges/counters are accepted as fallbacks
    // so hand-rolled logs still report.
    let hist_sum = |name: &str| -> Option<f64> {
        fin.get("histograms")?.get(name)?.get("sum").and_then(Json::as_f64)
    };
    let secs: Vec<f64> = TIME_CATEGORIES
        .iter()
        .map(|c| {
            let name = format!("{}{c}", names::TIME_PREFIX);
            hist_sum(&name)
                .or_else(|| gauge(&name))
                .unwrap_or_else(|| counter(&name))
        })
        .collect();
    let total_secs: f64 = secs.iter().sum();
    let _ = writeln!(out, "\nsimulated time breakdown");
    let _ = writeln!(out, "  {:<20} {:>12} {:>8}", "category", "sim_secs", "share");
    for (cat, s) in TIME_CATEGORIES.iter().zip(&secs) {
        if *s == 0.0 {
            continue;
        }
        let share = if total_secs > 0.0 { 100.0 * s / total_secs } else { 0.0 };
        let _ = writeln!(out, "  {cat:<20} {s:>12.4} {share:>7.1}%");
    }

    // ---- Per-stage simulated attribution ---------------------------------
    let stage_hist = |stage: &str, kind: &str| -> Option<(f64, f64, f64)> {
        let h = fin
            .get("histograms")?
            .get(&format!("{}{stage}.{kind}_secs", names::PIPELINE_STAGE_PREFIX))?;
        Some((
            h.get("count")?.as_f64()?,
            h.get("sum")?.as_f64()?,
            h.get("p95").and_then(Json::as_f64).unwrap_or(0.0),
        ))
    };
    if names::PIPELINE_STAGES.iter().any(|s| stage_hist(s, "sim").is_some()) {
        let _ = writeln!(out, "\npipeline stages (simulated, per batch)");
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>12} {:>12}",
            "stage", "batches", "total_secs", "p95_secs"
        );
        for stage in names::PIPELINE_STAGES {
            if let Some((count, sum, p95)) = stage_hist(stage, "sim") {
                let _ = writeln!(
                    out,
                    "  {stage:<12} {count:>10.0} {sum:>12.4} {p95:>12.6}"
                );
            }
        }
    }

    // ---- Pipeline shape and epoch timeline -------------------------------
    if let (Some(depth), Some(threads)) =
        (gauge(names::PIPELINE_DEPTH), gauge(names::PIPELINE_GEMM_THREADS))
    {
        let _ = writeln!(
            out,
            "\npipeline: depth={depth:.0} gemm_threads={threads:.0} overlap_ratio={:.3} \
             occupancy={:.3}",
            gauge(names::PIPELINE_OVERLAP_RATIO).unwrap_or(0.0),
            gauge(names::PIPELINE_STAGE_OCCUPANCY).unwrap_or(0.0),
        );
    }
    let epochs: Vec<&Json> = records
        .iter()
        .filter(|r| r.get("event").and_then(Json::as_str) == Some("epoch"))
        .collect();
    if !epochs.is_empty() {
        let _ = writeln!(out, "\nepoch timeline");
        let _ = writeln!(
            out,
            "  {:<6} {:>12} {:>8} {:>10}",
            "epoch", "sim_secs", "auc", "occupancy"
        );
        for e in &epochs {
            let _ = writeln!(
                out,
                "  {:<6} {:>12.4} {:>8.4} {:>10.3}",
                e.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                e.get("sim_time_secs").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("auc").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("stage_occupancy").and_then(Json::as_f64).unwrap_or(0.0),
            );
        }
    }

    // ---- Wall-clock sections (nondeterministic; opt-in) ------------------
    if wall {
        let _ = writeln!(out, "\nwall-clock (nondeterministic)");
        if let Some(v) = gauge(names::HOTPATH_SAMPLES_PER_SEC) {
            let _ = writeln!(out, "  hotpath.samples_per_sec    {v:.0}");
        }
        if let Some(v) = gauge(names::TELEMETRY_OVERHEAD_SECS) {
            let _ = writeln!(out, "  telemetry.overhead_secs    {v:.6}");
        }
        if let Some(v) = gauge(names::PIPELINE_STALL_SECS) {
            let _ = writeln!(out, "  pipeline.stall_secs        {v:.6}");
        }
        let any_wall = names::PIPELINE_STAGES.iter().any(|s| stage_hist(s, "wall").is_some());
        if any_wall {
            let _ = writeln!(out, "  per-stage wall histograms (per batch):");
            for stage in names::PIPELINE_STAGES {
                if let Some((count, sum, p95)) = stage_hist(stage, "wall") {
                    let _ = writeln!(
                        out,
                        "    {stage:<12} batches={count:<8.0} total={sum:<10.4}s p95={p95:.6}s"
                    );
                }
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_telemetry::RunManifest;

    fn sample_log() -> String {
        let m = RunManifest::new(7, RunManifest::digest_of("cfg"), 4, 2, 1);
        format!(
            "{}\n{}\n{}\n",
            m.to_record().render(),
            r#"{"event":"epoch","epoch":1,"sim_time_secs":2.5,"auc":0.71,"stage_occupancy":0.96,"stall_secs":0.001}"#,
            concat!(
                r#"{"event":"final","system":"HET-GMP(s=100)","auc":0.72,"#,
                r#""counters":{"traffic.bytes.embed_data":600,"traffic.bytes.keys_clocks":100,"#,
                r#""traffic.bytes.allreduce":300,"traffic.messages.embed_data":6},"#,
                r#""gauges":{"time.compute_secs":1.0,"time.embed_comm_secs":0.5,"#,
                r#""pipeline.depth":2.0,"pipeline.gemm_threads":1.0,"#,
                r#""pipeline.overlap_ratio":0.9,"pipeline.stage.occupancy":0.96,"#,
                r#""telemetry.overhead_secs":0.002},"#,
                r#""histograms":{"pipeline.stage.fetch.sim_secs":"#,
                r#"{"count":10,"sum":0.5,"min":0.04,"max":0.06,"mean":0.05,"#,
                r#""p50":0.05,"p95":0.06,"p99":0.06}}}"#,
            ),
        )
    }

    #[test]
    fn report_contains_fig8_and_timeline_sections() {
        let a = Artifact::parse(&sample_log()).unwrap();
        let r = render_report(&a, false).unwrap();
        assert!(r.contains("traffic breakdown (Fig. 8)"), "{r}");
        assert!(r.contains("embed_data"), "{r}");
        assert!(r.contains("60.0%"), "embed_data share: {r}");
        assert!(r.contains("simulated time breakdown"), "{r}");
        assert!(r.contains("epoch timeline"), "{r}");
        assert!(r.contains("manifest: seed=7"), "{r}");
        // Deterministic by default: no wall-clock section.
        assert!(!r.contains("wall-clock"), "{r}");

        let with_wall = render_report(&a, true).unwrap();
        assert!(with_wall.contains("telemetry.overhead_secs"), "{with_wall}");
    }

    #[test]
    fn report_rejects_documents_and_finalless_logs() {
        let doc = Artifact::parse("{\"samples_per_sec\": 10}").unwrap();
        assert!(render_report(&doc, false).is_err());
        let log = Artifact::parse("{\"event\":\"epoch\",\"epoch\":1}\n{\"event\":\"epoch\",\"epoch\":2}\n")
            .unwrap();
        assert!(render_report(&log, false).is_err());
    }
}
