//! BiCut — bipartite-oriented partitioning baseline (Chen, Shi, Chen & Zang,
//! *Bipartite-Oriented Distributed Graph Partitioning for Big Learning*,
//! JCST 2015), the strongest external comparator in the paper's Table 3.
//!
//! BiCut exploits the bipartite structure by distinguishing the two vertex
//! subsets: the *favourite* subset (here: samples, the computation-heavy
//! side) is split evenly in one pass, and each vertex of the other subset
//! (embeddings) is then assigned to the partition where it has the most
//! edges, cutting only the residual edges. This leverages the skewed degree
//! distribution but — unlike HET-GMP's Algorithm 1 — is one-pass, balance-
//! oblivious on the embedding side, and heterogeneity-unaware, which is
//! exactly the gap Table 3 measures.

use hetgmp_bigraph::Bigraph;

use crate::types::Partition;

/// Runs BiCut: round-robin samples, greedy max-edge embeddings.
pub fn bicut_partition(g: &Bigraph, num_partitions: usize) -> Partition {
    let n = num_partitions;
    // Favourite-subset split: contiguous chunks keep generator locality less
    // than hashing would, matching BiCut's arbitrary even split; round-robin
    // is the standard choice.
    let sample_owner: Vec<u32> = (0..g.num_samples()).map(|s| (s % n) as u32).collect();

    // Each embedding goes where most of its accesses live.
    let mut emb_primary = vec![0u32; g.num_embeddings()];
    let mut counts = vec![0u32; n];
    let mut rr = 0u32; // round-robin fallback for never-accessed embeddings
    for x in 0..g.num_embeddings() as u32 {
        counts.iter_mut().for_each(|c| *c = 0);
        for &s in g.samples_of(x) {
            counts[sample_owner[s as usize] as usize] += 1;
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
            .expect("at least one partition");
        if counts[best as usize] == 0 {
            emb_primary[x as usize] = rr % n as u32;
            rr += 1;
        } else {
            emb_primary[x as usize] = best;
        }
    }
    Partition::new(n, sample_owner, emb_primary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use crate::random::random_partition;

    fn graph() -> Bigraph {
        let rows: Vec<Vec<u32>> = (0..200)
            .map(|i| vec![(i % 40) as u32, (40 + (i * 3) % 40) as u32])
            .collect();
        Bigraph::from_samples(80, &rows)
    }

    #[test]
    fn samples_perfectly_balanced() {
        let g = graph();
        let p = bicut_partition(&g, 4);
        assert_eq!(p.samples_per_partition(), vec![50; 4]);
    }

    #[test]
    fn beats_random() {
        let g = graph();
        let bicut = PartitionMetrics::compute(&g, &bicut_partition(&g, 4), None);
        let random = PartitionMetrics::compute(&g, &random_partition(&g, 4, 1), None);
        assert!(
            bicut.remote_fetches < random.remote_fetches,
            "bicut {} vs random {}",
            bicut.remote_fetches,
            random.remote_fetches
        );
    }

    #[test]
    fn embeddings_follow_majority() {
        // Embedding 0 used only by samples on partition 1 (ids 1, 5, 9 with
        // round robin over 4).
        let g = Bigraph::from_samples(
            4,
            &[vec![1], vec![0], vec![1], vec![0]],
        );
        let p = bicut_partition(&g, 2);
        // Samples 0,2 → partition 0; samples 1,3 → partition 1.
        assert_eq!(p.primary_of(1), 0); // used by samples 0 and 2
        assert_eq!(p.primary_of(0), 1); // used by samples 1 and 3
    }

    #[test]
    fn unaccessed_embeddings_spread() {
        let g = Bigraph::from_samples(8, &[vec![0], vec![0]]);
        let p = bicut_partition(&g, 4);
        // 7 unaccessed embeddings spread round-robin, not all on worker 0.
        let counts = p.primaries_per_partition();
        assert!(counts.iter().all(|&c| c >= 1), "{counts:?}");
    }

    #[test]
    fn validates() {
        let g = graph();
        let p = bicut_partition(&g, 3);
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.replication_factor(), 1.0);
    }
}
