//! Balanced clustering of the embedding co-occurrence graph.
//!
//! The paper's Figure 3 clusters the co-occurrence graph with METIS and
//! shows the weight concentrating into dense diagonal blocks. METIS is not
//! available here; this module implements a **size-constrained weighted
//! label-propagation** clusterer that serves the same illustrative purpose:
//! seed `k` balanced clusters, then iteratively move each node to the
//! cluster holding the most co-occurrence weight with it, subject to a
//! capacity cap. On locality-structured data this recovers the planted
//! blocks; the experiment then reports the cluster weight matrix whose
//! diagonal density is what Figure 3 visualises.

use hetgmp_bigraph::CooccurrenceGraph;

/// Clusters the co-occurrence graph into `k` balanced clusters.
///
/// Returns one cluster id per node. Deterministic. `rounds` label-propagation
/// sweeps are performed (3–5 suffice in practice).
///
/// # Panics
/// Panics if `k == 0`.
pub fn cluster_cooccurrence(graph: &CooccurrenceGraph, k: usize, rounds: usize) -> Vec<u32> {
    assert!(k > 0, "k must be positive");
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    // Capacity cap: 25% slack over perfect balance.
    let cap = ((n as f64 / k as f64) * 1.25).ceil() as usize;

    // Seeding: process nodes hubs-first and attach each to the cluster its
    // already-assigned neighbours concentrate in (greedy agglomeration); a
    // node with no assigned neighbours seeds the currently-smallest cluster.
    // This avoids the symmetric local optima a strided seed gets stuck in.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(graph.weighted_degree(u)));
    let unassigned = u32::MAX;
    let mut assignment: Vec<u32> = vec![unassigned; n];
    let mut sizes = vec![0usize; k];
    {
        let mut weight_to = vec![0u64; k];
        for &u in &order {
            weight_to.iter_mut().for_each(|w| *w = 0);
            let (nbrs, ws) = graph.neighbors(u);
            for (&v, &w) in nbrs.iter().zip(ws) {
                let a = assignment[v as usize];
                if a != unassigned {
                    weight_to[a as usize] += w as u64;
                }
            }
            let mut best = usize::MAX;
            let mut best_w = 0u64;
            for (c, &w) in weight_to.iter().enumerate() {
                if w > best_w && sizes[c] < cap {
                    best = c;
                    best_w = w;
                }
            }
            if best == usize::MAX {
                // No assigned neighbours (or all full): seed smallest cluster.
                best = sizes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .map(|(c, _)| c)
                    .expect("k > 0");
            }
            assignment[u as usize] = best as u32;
            sizes[best] += 1;
        }
    }

    let mut weight_to = vec![0u64; k];
    for _ in 0..rounds {
        let mut moved = 0usize;
        for u in 0..n as u32 {
            let (nbrs, ws) = graph.neighbors(u);
            if nbrs.is_empty() {
                continue;
            }
            weight_to.iter_mut().for_each(|w| *w = 0);
            for (&v, &w) in nbrs.iter().zip(ws) {
                weight_to[assignment[v as usize] as usize] += w as u64;
            }
            let current = assignment[u as usize] as usize;
            let mut best = current;
            let mut best_w = weight_to[current];
            for (c, &w) in weight_to.iter().enumerate() {
                if c != current && w > best_w && sizes[c] < cap {
                    best = c;
                    best_w = w;
                }
            }
            if best != current {
                sizes[current] -= 1;
                sizes[best] += 1;
                assignment[u as usize] = best as u32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgmp_bigraph::{Bigraph, CooccurrenceConfig};

    /// Builds a co-occurrence graph with `k` planted communities.
    fn planted(k: usize, per_block: usize) -> CooccurrenceGraph {
        let mut rows = Vec::new();
        for block in 0..k {
            let base = (block * per_block) as u32;
            for i in 0..60 {
                rows.push(vec![
                    base + (i % per_block) as u32,
                    base + ((i * 3 + 1) % per_block) as u32,
                    base + ((i * 7 + 2) % per_block) as u32,
                ]);
            }
        }
        let g = Bigraph::from_samples(k * per_block, &rows);
        CooccurrenceGraph::build(&g, &CooccurrenceConfig::default())
    }

    #[test]
    fn recovers_planted_blocks() {
        let co = planted(4, 10);
        let assignment = cluster_cooccurrence(&co, 4, 5);
        let density = co.diagonal_density(&assignment, 4);
        assert!(density > 0.8, "diagonal density {density}");
    }

    #[test]
    fn beats_strided_baseline() {
        let co = planted(3, 12);
        let clustered = cluster_cooccurrence(&co, 3, 5);
        let strided: Vec<u32> = (0..co.num_nodes()).map(|i| (i % 3) as u32).collect();
        assert!(
            co.diagonal_density(&clustered, 3) > co.diagonal_density(&strided, 3) + 0.3
        );
    }

    #[test]
    fn respects_capacity() {
        let co = planted(2, 16);
        let assignment = cluster_cooccurrence(&co, 2, 5);
        let mut sizes = [0usize; 2];
        for &a in &assignment {
            sizes[a as usize] += 1;
        }
        let cap = ((32.0f64 / 2.0) * 1.25).ceil() as usize;
        assert!(sizes.iter().all(|&s| s <= cap), "{sizes:?}");
    }

    #[test]
    fn empty_graph() {
        let g = Bigraph::from_samples(0, &[]);
        let co = CooccurrenceGraph::build(&g, &CooccurrenceConfig::default());
        assert!(cluster_cooccurrence(&co, 4, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let co = planted(2, 4);
        cluster_cooccurrence(&co, 0, 3);
    }

    #[test]
    fn deterministic() {
        let co = planted(3, 8);
        assert_eq!(
            cluster_cooccurrence(&co, 3, 4),
            cluster_cooccurrence(&co, 3, 4)
        );
    }
}
