//! The full hybrid iterative partitioner — Algorithm 1 of the paper.
//!
//! `random init → T × (1D edge-cut sweep) → 2D vertex-cut replication`,
//! recording per-round statistics so the Table 3 rows ("Ours, 1/3/5
//! rounds") fall straight out.

use std::sync::Arc;
use std::time::Instant;

use hetgmp_bigraph::Bigraph;
use hetgmp_telemetry::{names, Json, Recorder, TraceCollector};

use crate::metrics::PartitionMetrics;
use crate::onedee::{OneDeeConfig, OneDeeState};
use crate::random::random_partition;
use crate::types::Partition;
use crate::vertexcut::{replicate_hot_embeddings_threaded, ReplicationBudget};

/// Configuration of Algorithm 1.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Number of 1D sweeps (`T` in Algorithm 1). The paper evaluates 1/3/5.
    pub rounds: usize,
    /// 1D score hyper-parameters and weight matrix.
    pub onedee: OneDeeConfig,
    /// 2D replication budget; `None` disables vertex-cut (pure 1D — used for
    /// the Figure 9 comparison, which replicates nothing).
    pub replication: Option<ReplicationBudget>,
    /// Seed for the random initial partition.
    pub seed: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            rounds: 3,
            onedee: OneDeeConfig::default(),
            // Paper §7: "we select top 1% embeddings as secondaries".
            replication: Some(ReplicationBudget::FractionOfEmbeddings(0.01)),
            seed: 0x9E7,
        }
    }
}

/// Statistics captured after each 1D round.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// Round index (1-based).
    pub round: usize,
    /// Vertices moved in this sweep.
    pub moved: usize,
    /// Remote fetches per epoch after this round (no replication yet).
    pub remote_fetches: u64,
    /// Cumulative partitioning time (seconds) up to the end of this round —
    /// Table 3's "Time (s)" column.
    pub elapsed_secs: f64,
}

/// Driver object for Algorithm 1.
pub struct HybridPartitioner {
    config: HybridConfig,
    recorder: Option<Arc<dyn Recorder>>,
    tracer: Option<Arc<TraceCollector>>,
}

impl HybridPartitioner {
    /// Creates a partitioner with the given config.
    pub fn new(config: HybridConfig) -> Self {
        Self {
            config,
            recorder: None,
            tracer: None,
        }
    }

    /// The configuration this partitioner runs with.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// The same partitioner — attached recorder and tracer included — with
    /// a different configuration. Used when the topology supplies the
    /// weight matrix at partition time.
    pub fn reconfigured(&self, config: HybridConfig) -> Self {
        let next = Self {
            config,
            recorder: self.recorder.clone(),
            tracer: self.tracer.clone(),
        };
        // Telemetry hooks must survive reconfiguration: a previous rewrite
        // rebuilt the partitioner here and silently dropped them.
        debug_assert_eq!(
            (next.has_recorder(), next.has_tracer()),
            (self.has_recorder(), self.has_tracer()),
            "reconfigured() dropped telemetry hooks"
        );
        next
    }

    /// Whether a telemetry recorder is attached (hook-survival assertions).
    pub fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Whether a trace collector is attached (hook-survival assertions).
    pub fn has_tracer(&self) -> bool {
        self.tracer.is_some()
    }

    /// Attaches a telemetry recorder: every run then emits `partition.*`
    /// metrics (per-round score/improvement, moves, replication budget and
    /// replicas created, wall time).
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a trace collector: every 1D round becomes a
    /// `trace.partition.round` span on the driver track (partitioning runs
    /// before simulated time starts, so spans use wall-clock durations).
    pub fn with_tracer(mut self, tracer: Arc<TraceCollector>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Runs Algorithm 1 on `g` with `num_partitions` workers.
    /// Returns the final partition and the per-round statistics.
    pub fn partition_rounds(
        &self,
        g: &Bigraph,
        num_partitions: usize,
    ) -> (Partition, Vec<RoundStats>) {
        let initial = random_partition(g, num_partitions, self.config.seed);
        self.partition_from(g, initial)
    }

    /// Runs Algorithm 1 warm-started from an existing assignment — the
    /// *re-partitioning* path: as the access pattern drifts (new data, new
    /// hot items), refine the old placement instead of recomputing from
    /// scratch, so only genuinely-misplaced vertices migrate. (Dynamic
    /// parameter re-allocation is the related-work line the paper contrasts
    /// with in §3; warm-started Algorithm 1 is its natural analogue here.)
    ///
    /// Secondaries in `initial` are discarded (replication is re-planned for
    /// the new access pattern).
    pub fn partition_from(
        &self,
        g: &Bigraph,
        initial: Partition,
    ) -> (Partition, Vec<RoundStats>) {
        let start = Instant::now();
        let mut part = Partition::new(
            initial.num_partitions(),
            (0..g.num_samples() as u32)
                .map(|s| initial.sample_owner(s))
                .collect(),
            (0..g.num_embeddings() as u32)
                .map(|e| initial.primary_of(e))
                .collect(),
        );
        let mut state = OneDeeState::new(g, &part, self.config.onedee.clone());
        let mut rounds = Vec::with_capacity(self.config.rounds);
        // Pre-sweep baseline so round 1's improvement is meaningful; only
        // computed when someone is listening.
        let mut prev_fetches = self
            .recorder
            .as_ref()
            .map(|_| PartitionMetrics::compute(g, &part, None).remote_fetches);
        let mut round_start_secs = start.elapsed().as_secs_f64();
        for round in 1..=self.config.rounds {
            let moved = state.sweep(g, &mut part);
            let metrics = PartitionMetrics::compute(g, &part, None);
            if let Some(t) = &self.tracer {
                let end_secs = start.elapsed().as_secs_f64();
                t.driver_span(
                    names::TRACE_PARTITION_ROUND,
                    round_start_secs,
                    end_secs - round_start_secs,
                    &[
                        ("round", Json::U64(round as u64)),
                        ("moved", Json::U64(moved as u64)),
                        ("remote_fetches", Json::U64(metrics.remote_fetches)),
                    ],
                );
                round_start_secs = end_secs;
            }
            if let Some(r) = &self.recorder {
                r.counter_add(names::PARTITION_ROUNDS, 1);
                r.counter_add(names::PARTITION_MOVES, moved as u64);
                r.histogram_observe(names::PARTITION_ROUND_SCORE, metrics.remote_fetches as f64);
                let improvement =
                    prev_fetches.unwrap_or(metrics.remote_fetches) as f64 - metrics.remote_fetches as f64;
                r.histogram_observe(names::PARTITION_ROUND_IMPROVEMENT, improvement);
                prev_fetches = Some(metrics.remote_fetches);
            }
            rounds.push(RoundStats {
                round,
                moved,
                remote_fetches: metrics.remote_fetches,
                elapsed_secs: start.elapsed().as_secs_f64(),
            });
        }
        if let Some(budget) = self.config.replication {
            let created = replicate_hot_embeddings_threaded(
                g,
                &mut part,
                budget,
                self.config.onedee.score_threads,
            );
            if let Some(r) = &self.recorder {
                r.gauge_set(
                    names::PARTITION_REPLICATION_BUDGET,
                    budget.slots(g.num_embeddings()) as f64,
                );
                r.counter_add(names::PARTITION_REPLICAS_CREATED, created as u64);
            }
        }
        if let Some(r) = &self.recorder {
            r.gauge_set(names::PARTITION_WALL_SECS, start.elapsed().as_secs_f64());
        }
        (part, rounds)
    }
}

/// Migration cost between two placements: how many embedding primaries
/// moved (each move ships one row + optimizer state over the interconnect).
pub fn migration_cost(before: &Partition, after: &Partition) -> usize {
    assert_eq!(
        before.num_embeddings(),
        after.num_embeddings(),
        "placements cover different tables"
    );
    (0..before.num_embeddings() as u32)
        .filter(|&e| before.primary_of(e) != after.primary_of(e))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Bigraph {
        // Locality-structured: 4 blocks of samples each reusing a block of
        // embeddings, plus one global hot embedding (id 0).
        let mut rows = Vec::new();
        for block in 0..4u32 {
            for i in 0..30u32 {
                let base = 1 + block * 12;
                rows.push(vec![0, base + i % 12, base + (i * 5) % 12]);
            }
        }
        Bigraph::from_samples(49, &rows)
    }

    #[test]
    fn improves_monotonically_across_reported_rounds() {
        let g = graph();
        let cfg = HybridConfig {
            rounds: 5,
            replication: None,
            ..Default::default()
        };
        let (_, rounds) = HybridPartitioner::new(cfg).partition_rounds(&g, 4);
        assert_eq!(rounds.len(), 5);
        // Round stats are non-increasing in remote fetches (greedy sweeps
        // only accept improving moves in aggregate; allow tiny tolerance).
        assert!(
            rounds.last().unwrap().remote_fetches <= rounds[0].remote_fetches,
            "{:?}",
            rounds
        );
        // Elapsed times increase.
        for w in rounds.windows(2) {
            assert!(w[1].elapsed_secs >= w[0].elapsed_secs);
        }
    }

    #[test]
    fn replication_reduces_further() {
        let g = graph();
        let no_rep = HybridPartitioner::new(HybridConfig {
            rounds: 3,
            replication: None,
            ..Default::default()
        });
        let with_rep = HybridPartitioner::new(HybridConfig {
            rounds: 3,
            replication: Some(ReplicationBudget::PerPartitionSlots(2)),
            ..Default::default()
        });
        let (p0, _) = no_rep.partition_rounds(&g, 4);
        let (p1, _) = with_rep.partition_rounds(&g, 4);
        let m0 = PartitionMetrics::compute(&g, &p0, None);
        let m1 = PartitionMetrics::compute(&g, &p1, None);
        assert!(m1.remote_fetches <= m0.remote_fetches);
        assert!(m1.replication_factor > 1.0);
        // The hot embedding 0 (every sample reads it) must be replicated
        // widely.
        assert!(p1.replica_count(0) >= 3, "hot emb replicas: {}", p1.replica_count(0));
    }

    #[test]
    fn beats_random_substantially() {
        let g = graph();
        let (p, _) = HybridPartitioner::new(HybridConfig::default()).partition_rounds(&g, 4);
        let ours = PartitionMetrics::compute(&g, &p, None);
        let rand = PartitionMetrics::compute(&g, &random_partition(&g, 4, 1), None);
        assert!(
            (ours.remote_fetches as f64) < 0.6 * rand.remote_fetches as f64,
            "ours {} vs random {}",
            ours.remote_fetches,
            rand.remote_fetches
        );
    }

    #[test]
    fn deterministic() {
        let g = graph();
        let cfg = HybridConfig::default();
        let (p1, _) = HybridPartitioner::new(cfg.clone()).partition_rounds(&g, 4);
        let (p2, _) = HybridPartitioner::new(cfg).partition_rounds(&g, 4);
        for s in 0..g.num_samples() as u32 {
            assert_eq!(p1.sample_owner(s), p2.sample_owner(s));
        }
        for e in 0..g.num_embeddings() as u32 {
            assert_eq!(p1.primary_of(e), p2.primary_of(e));
            assert_eq!(p1.replica_count(e), p2.replica_count(e));
        }
    }

    /// Parallel δg scoring and the parallel replication scan must be
    /// invisible: 1, 2, and 4 score threads produce the same assignment,
    /// the same primaries, and the same replica sets as each other (and as
    /// the auto default). Decisions stay sequential; only the frozen cost
    /// tables are filled concurrently.
    #[test]
    fn score_threads_do_not_change_the_partition() {
        let g = graph();
        let run = |threads: usize| {
            let cfg = HybridConfig {
                rounds: 4,
                replication: Some(ReplicationBudget::PerPartitionSlots(3)),
                onedee: crate::onedee::OneDeeConfig {
                    score_threads: threads,
                    ..Default::default()
                },
                ..Default::default()
            };
            HybridPartitioner::new(cfg).partition_rounds(&g, 4)
        };
        let (base, base_rounds) = run(1);
        for threads in [0, 2, 4] {
            let (p, rounds) = run(threads);
            for (a, b) in base_rounds.iter().zip(&rounds) {
                assert_eq!(a.moved, b.moved, "{threads} threads, round {}", a.round);
                assert_eq!(
                    a.remote_fetches, b.remote_fetches,
                    "{threads} threads, round {}",
                    a.round
                );
            }
            for s in 0..g.num_samples() as u32 {
                assert_eq!(base.sample_owner(s), p.sample_owner(s), "{threads} threads, sample {s}");
            }
            for e in 0..g.num_embeddings() as u32 {
                assert_eq!(base.primary_of(e), p.primary_of(e), "{threads} threads, emb {e}");
                for i in 0..4u32 {
                    assert_eq!(
                        base.is_secondary(e, i),
                        p.is_secondary(e, i),
                        "{threads} threads, emb {e} on partition {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_reduces_migration() {
        let g = graph();
        let partitioner = HybridPartitioner::new(HybridConfig {
            replication: None,
            ..Default::default()
        });
        let (first, _) = partitioner.partition_rounds(&g, 4);
        // Refining from the converged placement barely moves anything…
        let (refined, rounds) = partitioner.partition_from(&g, first.clone());
        let warm_migration = migration_cost(&first, &refined);
        // …whereas a fresh run from a different random seed lands on a
        // placement far from the old one.
        let cold = HybridPartitioner::new(HybridConfig {
            replication: None,
            seed: 12345,
            ..Default::default()
        });
        let (fresh, _) = cold.partition_rounds(&g, 4);
        let cold_migration = migration_cost(&first, &fresh);
        assert!(
            warm_migration < cold_migration,
            "warm {warm_migration} !< cold {cold_migration}"
        );
        // Quality does not regress.
        let before = PartitionMetrics::compute(&g, &first, None).remote_fetches;
        let after = rounds.last().unwrap().remote_fetches;
        assert!(after <= before);
    }

    #[test]
    fn migration_cost_counts_moved_primaries() {
        let g = graph();
        let a = random_partition(&g, 4, 1);
        let mut b = a.clone();
        assert_eq!(migration_cost(&a, &b), 0);
        b.move_primary(0, (a.primary_of(0) + 1) % 4);
        b.move_primary(5, (a.primary_of(5) + 1) % 4);
        assert_eq!(migration_cost(&a, &b), 2);
    }

    #[test]
    fn traced_rounds_land_on_the_driver_track() {
        use hetgmp_telemetry::{TraceLevel, TraceTrack};
        let g = graph();
        let tracer = Arc::new(TraceCollector::new(0, TraceLevel::Batch));
        let partitioner =
            HybridPartitioner::new(HybridConfig::default()).with_tracer(Arc::clone(&tracer));
        let (_, rounds) = partitioner.partition_rounds(&g, 4);
        let events = tracer.events();
        let round_spans: Vec<_> = events
            .iter()
            .filter(|e| e.name == names::TRACE_PARTITION_ROUND)
            .collect();
        assert_eq!(round_spans.len(), rounds.len());
        for (i, span) in round_spans.iter().enumerate() {
            assert_eq!(span.track, TraceTrack::Driver);
            assert!(span.dur_us >= 0.0);
            if i > 0 {
                assert!(span.ts_us >= round_spans[i - 1].ts_us);
            }
        }
    }

    #[test]
    fn validates_output() {
        let g = graph();
        let (p, _) = HybridPartitioner::new(HybridConfig::default()).partition_rounds(&g, 8);
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn reconfigured_keeps_telemetry_hooks() {
        use hetgmp_telemetry::{MemoryRecorder, TraceLevel};
        let recorder: Arc<dyn Recorder> = Arc::new(MemoryRecorder::new());
        let tracer = Arc::new(TraceCollector::new(0, TraceLevel::Batch));
        let p = HybridPartitioner::new(HybridConfig::default())
            .with_recorder(recorder)
            .with_tracer(tracer);
        assert!(p.has_recorder() && p.has_tracer());
        let q = p.reconfigured(HybridConfig { rounds: 1, ..HybridConfig::default() });
        assert!(q.has_recorder() && q.has_tracer());
        let bare = HybridPartitioner::new(HybridConfig::default());
        let r = bare.reconfigured(HybridConfig::default());
        assert!(!r.has_recorder() && !r.has_tracer());
    }
}
