#![warn(missing_docs)]

//! # hetgmp-partition
//!
//! HET-GMP's hybrid graph partitioning (paper §5.2, Algorithm 1) plus the
//! baselines it is evaluated against (Table 3).
//!
//! Partitioning decides, for every sample vertex and every embedding vertex
//! of the bigraph, which worker owns it — and which hot embeddings get
//! *replicated* (vertex-cut) on additional workers. The goal is the paper's:
//! minimise remote embedding fetches per epoch while keeping samples,
//! embeddings and communication balanced across workers.
//!
//! Algorithms:
//! * [`random`] — uniform random assignment (the paper's `Random` baseline
//!   and the initialiser of Algorithm 1);
//! * [`onedee`] — **1D edge-cut**: iterative greedy sweeps assigning each
//!   vertex to the partition minimising the score
//!   `δg = δc − δb` (Eq. 2–5), with bandwidth-weighted edge-cuts for
//!   heterogeneous interconnects;
//! * [`vertexcut`] — **2D vertex-cut**: greedy replication of hot embeddings
//!   by the priority `δp(x, G_i) = count(x,i) / Σ_v count(v,i)` (Eq. 6)
//!   under a per-worker memory budget;
//! * [`hybrid`] — Algorithm 1: random init → `T` 1D rounds → 2D replication;
//! * [`bicut`] — the BiCut bipartite partitioner (Chen et al. 2015), the
//!   strongest external baseline in Table 3;
//! * [`cooccurrence`] — balanced clustering of the embedding co-occurrence
//!   graph (stand-in for METIS in the Figure 3 reproduction);
//! * [`metrics`] — remote-fetch counts, pairwise traffic matrices, balance
//!   and replication statistics used by Tables 3 and Figures 8–9.

pub mod bicut;
pub mod cooccurrence;
pub mod hybrid;
pub mod metrics;
pub mod multilevel;
pub mod onedee;
pub mod partitioner;
pub mod random;
pub mod types;
pub mod vertexcut;

pub use bicut::bicut_partition;
pub use cooccurrence::cluster_cooccurrence;
pub use hybrid::{migration_cost, HybridConfig, HybridPartitioner, RoundStats};
pub use metrics::PartitionMetrics;
pub use multilevel::{multilevel_partition, MultilevelConfig};
pub use onedee::OneDeeConfig;
pub use partitioner::{
    BiCutPartitioner, MultilevelPartitioner, Partitioner, RandomPartitioner,
};
pub use random::random_partition;
pub use types::Partition;
pub use vertexcut::{replicate_hot_embeddings, ReplicationBudget};
