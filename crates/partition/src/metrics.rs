//! Partition quality metrics — the quantities Tables 3 and Figures 8/9
//! report.

use hetgmp_bigraph::Bigraph;

use crate::types::Partition;

/// Quality metrics of a partition relative to a bigraph.
#[derive(Debug, Clone)]
pub struct PartitionMetrics {
    /// Remote embedding fetches per epoch: for each sample on worker `k`,
    /// each accessed embedding with **no replica on `k`** counts one fetch.
    /// This is Table 3's "Communication" column.
    pub remote_fetches: u64,
    /// Total embedding accesses per epoch (`|E|`).
    pub total_accesses: u64,
    /// Bandwidth-weighted remote cost (uses the supplied weight matrix, or
    /// counts when none is given).
    pub weighted_cost: f64,
    /// `fetch_matrix[k][p]` = embeddings fetched by worker `k` from worker
    /// `p` per epoch (Figure 9(b)'s heatmap).
    pub fetch_matrix: Vec<Vec<u64>>,
    /// Samples per partition.
    pub samples_per_partition: Vec<usize>,
    /// Primary embeddings per partition.
    pub primaries_per_partition: Vec<usize>,
    /// Replica slots (primary + secondary) per partition.
    pub replicas_per_partition: Vec<usize>,
    /// Mean replicas per embedding.
    pub replication_factor: f64,
}

impl PartitionMetrics {
    /// Computes all metrics in one pass over the edges.
    pub fn compute(g: &Bigraph, part: &Partition, weights: Option<&[Vec<f64>]>) -> Self {
        let n = part.num_partitions();
        let mut remote = 0u64;
        let mut weighted = 0.0f64;
        let mut fetch_matrix = vec![vec![0u64; n]; n];
        for s in 0..g.num_samples() as u32 {
            let k = part.sample_owner(s);
            for &x in g.embeddings_of(s) {
                if !part.is_local(x, k) {
                    remote += 1;
                    let p = part.primary_of(x);
                    fetch_matrix[k as usize][p as usize] += 1;
                    weighted += match weights {
                        Some(w) => w[k as usize][p as usize],
                        None => 1.0,
                    };
                }
            }
        }
        Self {
            remote_fetches: remote,
            total_accesses: g.num_edges() as u64,
            weighted_cost: weighted,
            fetch_matrix,
            samples_per_partition: part.samples_per_partition(),
            primaries_per_partition: part.primaries_per_partition(),
            replicas_per_partition: part.replicas_per_partition(),
            replication_factor: part.replication_factor(),
        }
    }

    /// Fraction of accesses that are remote.
    pub fn remote_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        self.remote_fetches as f64 / self.total_accesses as f64
    }

    /// Communication reduction relative to a baseline metric (Table 3's
    /// "Reduction" column): `1 − self/baseline`.
    pub fn reduction_vs(&self, baseline: &PartitionMetrics) -> f64 {
        if baseline.remote_fetches == 0 {
            return 0.0;
        }
        1.0 - self.remote_fetches as f64 / baseline.remote_fetches as f64
    }

    /// Load-imbalance ratio of samples: `max/mean` (1.0 = perfect).
    pub fn sample_imbalance(&self) -> f64 {
        imbalance(&self.samples_per_partition)
    }

    /// Load-imbalance ratio of replica slots.
    pub fn memory_imbalance(&self) -> f64 {
        imbalance(&self.replicas_per_partition)
    }

    /// Cross-machine fetch count given each worker's machine index
    /// (hierarchical-partitioning analysis of Figure 9).
    pub fn cross_machine_fetches(&self, machine_of: &[usize]) -> u64 {
        let n = self.fetch_matrix.len();
        assert_eq!(machine_of.len(), n, "machine map length mismatch");
        let mut total = 0u64;
        for k in 0..n {
            for p in 0..n {
                if machine_of[k] != machine_of[p] {
                    total += self.fetch_matrix[k][p];
                }
            }
        }
        total
    }
}

fn imbalance(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let max = *counts.iter().max().expect("non-empty") as f64;
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Bigraph {
        // 4 samples, 4 embeddings; samples 0,1 use embs {0,1}; 2,3 use {2,3}.
        Bigraph::from_samples(4, &[vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]])
    }

    #[test]
    fn perfect_partition_no_remote() {
        let g = graph();
        let p = Partition::new(2, vec![0, 0, 1, 1], vec![0, 0, 1, 1]);
        let m = PartitionMetrics::compute(&g, &p, None);
        assert_eq!(m.remote_fetches, 0);
        assert_eq!(m.remote_fraction(), 0.0);
        assert_eq!(m.total_accesses, 8);
    }

    #[test]
    fn crossed_partition_all_remote() {
        let g = graph();
        let p = Partition::new(2, vec![0, 0, 1, 1], vec![1, 1, 0, 0]);
        let m = PartitionMetrics::compute(&g, &p, None);
        assert_eq!(m.remote_fetches, 8);
        assert_eq!(m.remote_fraction(), 1.0);
        assert_eq!(m.fetch_matrix[0][1], 4);
        assert_eq!(m.fetch_matrix[1][0], 4);
    }

    #[test]
    fn replicas_make_accesses_local() {
        let g = graph();
        let mut p = Partition::new(2, vec![0, 0, 1, 1], vec![1, 1, 0, 0]);
        p.add_replica(0, 0);
        p.add_replica(1, 0);
        let m = PartitionMetrics::compute(&g, &p, None);
        assert_eq!(m.remote_fetches, 4); // partition 1's fetches remain
        assert!((m.replication_factor - 1.5).abs() < 1e-12);
        assert_eq!(m.replicas_per_partition, vec![4, 2]);
    }

    #[test]
    fn weighted_cost_uses_matrix() {
        let g = graph();
        let p = Partition::new(2, vec![0, 0, 1, 1], vec![1, 1, 0, 0]);
        let w = vec![vec![0.0, 3.0], vec![5.0, 0.0]];
        let m = PartitionMetrics::compute(&g, &p, Some(&w));
        assert_eq!(m.weighted_cost, 4.0 * 3.0 + 4.0 * 5.0);
    }

    #[test]
    fn reduction_vs_baseline() {
        let g = graph();
        let bad = PartitionMetrics::compute(
            &g,
            &Partition::new(2, vec![0, 0, 1, 1], vec![1, 1, 0, 0]),
            None,
        );
        let good = PartitionMetrics::compute(
            &g,
            &Partition::new(2, vec![0, 0, 1, 1], vec![0, 0, 1, 1]),
            None,
        );
        assert!((good.reduction_vs(&bad) - 1.0).abs() < 1e-12);
        assert_eq!(bad.reduction_vs(&bad), 0.0);
    }

    #[test]
    fn imbalance_ratio() {
        let g = graph();
        let p = Partition::new(2, vec![0, 0, 0, 1], vec![0, 1, 0, 1]);
        let m = PartitionMetrics::compute(&g, &p, None);
        assert!((m.sample_imbalance() - 1.5).abs() < 1e-12); // 3 vs mean 2
    }

    #[test]
    fn cross_machine_counting() {
        let g = graph();
        let p = Partition::new(2, vec![0, 0, 1, 1], vec![1, 1, 0, 0]);
        let m = PartitionMetrics::compute(&g, &p, None);
        assert_eq!(m.cross_machine_fetches(&[0, 0]), 0);
        assert_eq!(m.cross_machine_fetches(&[0, 1]), 8);
    }
}
