//! Multilevel partitioning — a METIS-style extension of Algorithm 1.
//!
//! The paper's 1D sweep is a flat greedy refinement: from a random start it
//! converges to a local optimum where single-vertex moves cannot unmix
//! interleaved communities (the classic weakness METIS's
//! coarsen-partition-refine pipeline addresses, and exactly the kind of
//! "more pre-processing capability" the paper's §3 argues embedding
//! training can afford). This module adds that pipeline on the bigraph:
//!
//! 1. **Coarsen** — group samples that share their *rarest* feature (a
//!    sample's lowest-frequency embedding is its strongest locality
//!    signal; samples sharing one almost certainly belong together), merging
//!    each group into one super-sample whose edge list is the union of its
//!    members';
//! 2. **Partition** — run Algorithm 1's sweeps on the much smaller coarse
//!    bigraph, where one move relocates a whole cohesive group;
//! 3. **Uncoarsen + refine** — project the coarse assignment onto the
//!    original samples and run fine-grained sweeps to polish boundaries and
//!    restore exact balance.

use hetgmp_bigraph::Bigraph;

use crate::onedee::{OneDeeConfig, OneDeeState};
use crate::types::Partition;
use crate::vertexcut::{replicate_hot_embeddings, ReplicationBudget};

/// Multilevel configuration.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Maximum samples merged into one super-sample.
    pub max_group: usize,
    /// Sweep rounds on the coarse graph.
    pub coarse_rounds: usize,
    /// Refinement sweep rounds on the fine graph.
    pub refine_rounds: usize,
    /// 1D score parameters (shared by both levels).
    pub onedee: OneDeeConfig,
    /// Optional 2D replication after refinement.
    pub replication: Option<ReplicationBudget>,
    /// Random-init seed for the coarse partition.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            max_group: 8,
            coarse_rounds: 5,
            refine_rounds: 3,
            onedee: OneDeeConfig::default(),
            replication: Some(ReplicationBudget::FractionOfEmbeddings(0.01)),
            seed: 0x51E7,
        }
    }
}

/// Runs multilevel partitioning of `g` into `num_partitions`.
pub fn multilevel_partition(
    g: &Bigraph,
    num_partitions: usize,
    cfg: &MultilevelConfig,
) -> Partition {
    assert!(cfg.max_group >= 1);
    // ---- 1. Coarsen: group samples by their rarest feature. ----------------
    let num_samples = g.num_samples();
    let mut group_of = vec![u32::MAX; num_samples];
    let mut groups: Vec<Vec<u32>> = Vec::new();
    {
        // For each sample find its minimum-frequency embedding.
        use std::collections::HashMap;
        let mut by_anchor: HashMap<u32, Vec<u32>> = HashMap::new();
        for s in 0..num_samples as u32 {
            let anchor = g
                .embeddings_of(s)
                .iter()
                .copied()
                .min_by_key(|&e| g.emb_frequency(e))
                .unwrap_or(u32::MAX);
            by_anchor.entry(anchor).or_default().push(s);
        }
        let mut anchors: Vec<u32> = by_anchor.keys().copied().collect();
        anchors.sort_unstable(); // determinism
        for a in anchors {
            let members = &by_anchor[&a];
            for chunk in members.chunks(cfg.max_group) {
                let gid = groups.len() as u32;
                for &s in chunk {
                    group_of[s as usize] = gid;
                }
                groups.push(chunk.to_vec());
            }
        }
    }

    // Coarse bigraph: one super-sample per group, union of member edges.
    let coarse_rows: Vec<Vec<u32>> = groups
        .iter()
        .map(|members| {
            let mut edges: Vec<u32> = members
                .iter()
                .flat_map(|&s| g.embeddings_of(s).iter().copied())
                .collect();
            edges.sort_unstable();
            edges.dedup();
            edges
        })
        .collect();
    let coarse = Bigraph::from_samples(g.num_embeddings(), &coarse_rows);

    // ---- 2. Partition the coarse graph. ------------------------------------
    let mut coarse_part =
        crate::random::random_partition(&coarse, num_partitions, cfg.seed);
    {
        let mut state = OneDeeState::new(&coarse, &coarse_part, cfg.onedee.clone());
        for _ in 0..cfg.coarse_rounds {
            if state.sweep(&coarse, &mut coarse_part) == 0 {
                break;
            }
        }
    }

    // ---- 3. Project and refine on the fine graph. ---------------------------
    let sample_owner: Vec<u32> = (0..num_samples as u32)
        .map(|s| coarse_part.sample_owner(group_of[s as usize]))
        .collect();
    let emb_primary: Vec<u32> = (0..g.num_embeddings() as u32)
        .map(|e| coarse_part.primary_of(e))
        .collect();
    let mut part = Partition::new(num_partitions, sample_owner, emb_primary);
    {
        let mut state = OneDeeState::new(g, &part, cfg.onedee.clone());
        for _ in 0..cfg.refine_rounds {
            if state.sweep(g, &mut part) == 0 {
                break;
            }
        }
    }
    if let Some(budget) = cfg.replication {
        replicate_hot_embeddings(g, &mut part, budget);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use crate::random::random_partition;
    use crate::hybrid::{HybridConfig, HybridPartitioner};

    /// Interleaved communities that flat greedy struggles to unmix: each
    /// community's samples share a *rare* anchor feature plus some popular
    /// shared features.
    fn interleaved() -> Bigraph {
        let mut rows = Vec::new();
        let communities = 8;
        let per = 40;
        for c in 0..communities {
            for i in 0..per {
                // Community-local features: ids [c*16, c*16+16).
                let base = (c * 16) as u32;
                rows.push(vec![
                    base + (i % 16) as u32,
                    base + ((i * 3 + 1) % 16) as u32,
                    base + ((i * 7 + 2) % 16) as u32,
                    // Globally shared hot feature.
                    (communities * 16) as u32,
                ]);
            }
        }
        Bigraph::from_samples(communities * 16 + 1, &rows)
    }

    #[test]
    fn beats_flat_greedy_on_interleaved_communities() {
        let g = interleaved();
        let flat = {
            let (p, _) = HybridPartitioner::new(HybridConfig {
                rounds: 5,
                replication: None,
                ..Default::default()
            })
            .partition_rounds(&g, 8);
            PartitionMetrics::compute(&g, &p, None)
        };
        let cfg = MultilevelConfig {
            replication: None,
            ..Default::default()
        };
        let ml = PartitionMetrics::compute(&g, &multilevel_partition(&g, 8, &cfg), None);
        assert!(
            ml.remote_fetches <= flat.remote_fetches,
            "multilevel {} !<= flat {}",
            ml.remote_fetches,
            flat.remote_fetches
        );
        // And both are far better than random.
        let rand = PartitionMetrics::compute(&g, &random_partition(&g, 8, 1), None);
        assert!(ml.remote_fetches < rand.remote_fetches / 2);
    }

    #[test]
    fn output_is_valid_and_balanced() {
        let g = interleaved();
        let part = multilevel_partition(&g, 4, &MultilevelConfig::default());
        assert!(part.validate(&g).is_ok());
        let m = PartitionMetrics::compute(&g, &part, None);
        // Refinement pushes toward the 1.05 cap; projection overflow can
        // leave a small residue (vertices only leave an over-full partition
        // when a move also improves their score).
        assert!(m.sample_imbalance() <= 1.12, "imbalance {}", m.sample_imbalance());
        assert!(m.replication_factor > 1.0); // default budget applied
    }

    #[test]
    fn deterministic() {
        let g = interleaved();
        let cfg = MultilevelConfig::default();
        let a = multilevel_partition(&g, 4, &cfg);
        let b = multilevel_partition(&g, 4, &cfg);
        for s in 0..g.num_samples() as u32 {
            assert_eq!(a.sample_owner(s), b.sample_owner(s));
        }
    }

    #[test]
    fn handles_edgeless_samples() {
        let g = Bigraph::from_samples(4, &[vec![], vec![0], vec![1], vec![]]);
        let part = multilevel_partition(&g, 2, &MultilevelConfig::default());
        assert!(part.validate(&g).is_ok());
    }

    #[test]
    fn group_size_one_reduces_to_flat() {
        let g = interleaved();
        let cfg = MultilevelConfig {
            max_group: 1,
            replication: None,
            ..Default::default()
        };
        let part = multilevel_partition(&g, 4, &cfg);
        assert!(part.validate(&g).is_ok());
    }
}
