//! 1D edge-cut partitioning — Step 1 of Algorithm 1 (paper §5.2, Eq. 2–5).
//!
//! Each sweep visits every vertex (samples, then embedding primaries) and
//! re-assigns it to the partition minimising
//!
//! ```text
//! δg(G_i) = δc(G_i) − δb(G_i)
//! δb(G_i) = α·δξ(G_i) + β·δx(G_i) + γ·δd(G_i)
//! ```
//!
//! where `δc` is the (bandwidth-weighted) count of cross-partition accesses
//! (Eq. 3), `δξ`/`δx` are the sample/embedding balance gaps (Eq. 4) and `δd`
//! the communication balance gap (Eq. 5).
//!
//! **Sign convention.** Written literally, subtracting a positive
//! above-average gap would *attract* vertices to overloaded partitions; the
//! paper's stated intent is the opposite ("to balance workloads among
//! different partitions"), so the gap terms here enter as penalties:
//! `score(v→i) = δc(v→i) + w̄·(α·gap_ξ(i) + β·gap_x(i) + γ·gap_d(i))`,
//! with gaps normalised by their averages (dimensionless) and scaled by the
//! mean off-diagonal link weight `w̄`, a *constant*, so balance exerts a
//! gentle, non-oscillating pressure that cannot swamp the communication
//! term for high-degree vertices. A vertex only moves when the best
//! alternative is strictly better than staying (hysteresis), which makes
//! repeated sweeps settle.
//!
//! **Heterogeneity.** `δc` multiplies each cross-partition access by a weight
//! from the profiled GPU-GPU weight matrix (`Topology::weight_matrix`), so
//! cut edges migrate away from slow links first — the paper's "hierarchical"
//! partitioning of Figure 9.
//!
//! The sweep maintains `count(x, i)` (accesses of embedding `x` by samples
//! in partition `i`) and the per-partition weighted communication totals
//! *exactly and incrementally*, so `T` rounds cost `O(T·(|E| + |V|·N²))`.

use hetgmp_bigraph::Bigraph;

use crate::types::Partition;

/// Hyper-parameters of the 1D sweep.
#[derive(Debug, Clone)]
pub struct OneDeeConfig {
    /// Sample-count balance weight (`α` in Eq. 4).
    pub alpha: f64,
    /// Embedding-count balance weight (`β`).
    pub beta: f64,
    /// Communication balance weight (`γ`, Eq. 5).
    pub gamma: f64,
    /// `N×N` communication weight matrix; `None` = homogeneous (all ones off
    /// the diagonal). Use `Topology::weight_matrix()` for hierarchy-aware
    /// partitioning.
    pub weights: Option<Vec<Vec<f64>>>,
    /// Hard balance slack: no partition may hold more than
    /// `slack × (count / N)` samples (or embedding primaries). The soft
    /// α/β/γ terms steer placement *within* this feasible region; the cap is
    /// what guarantees the "balanced" in balanced partitioning.
    pub slack: f64,
    /// Worker threads for the δg edge-cut scoring (`0` = one per available
    /// core). The δc term of every candidate is a pure function of state
    /// that is *frozen* for the duration of a sweep (sample scores read only
    /// primaries, which sample moves never touch; embedding scores read only
    /// the access-count rows, which embedding moves never touch), so the
    /// scoring fans out across threads while the move decisions stay
    /// sequential — the result is identical for every thread count.
    pub score_threads: usize,
}

impl Default for OneDeeConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            weights: None,
            slack: 1.05,
            score_threads: 0,
        }
    }
}

/// Resolves a `score_threads` config value: `0` = available parallelism.
pub(crate) fn resolve_threads(cfg: usize) -> usize {
    if cfg > 0 {
        cfg
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Fills `out[v * n + j]` for `v` in `0..num_vertices` by calling
/// `score(v, &mut out[v*n..(v+1)*n])`, fanned out over `threads` workers on
/// contiguous vertex ranges. Each entry is written by exactly one thread and
/// computed by the same FP sequence as a serial loop, so the fill is
/// deterministic for every thread count.
pub(crate) fn parallel_fill<F>(out: &mut [f64], n: usize, num_vertices: usize, threads: usize, score: F)
where
    F: Fn(u32, &mut [f64]) + Sync,
{
    debug_assert_eq!(out.len(), num_vertices * n);
    let threads = threads.min(num_vertices.max(1));
    if threads <= 1 || num_vertices == 0 {
        for (v, row) in out.chunks_mut(n).enumerate() {
            score(v as u32, row);
        }
        return;
    }
    let per = num_vertices.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, chunk) in out.chunks_mut(per * n).enumerate() {
            let score = &score;
            scope.spawn(move || {
                let base = t * per;
                for (i, row) in chunk.chunks_mut(n).enumerate() {
                    score((base + i) as u32, row);
                }
            });
        }
    });
}

/// Incremental sweep state; create once, call [`OneDeeState::sweep`] per
/// round. All vertex moves must go through `sweep` so the cached statistics
/// stay exact.
pub struct OneDeeState {
    n: usize,
    /// Flattened `count(x, i)`: `counts[x * n + i]`.
    counts: Vec<u32>,
    /// Per-partition weighted communication `δc(G_i)`.
    comm: Vec<f64>,
    /// Per-partition sample counts.
    sample_cnt: Vec<usize>,
    /// Per-partition embedding-primary counts.
    emb_cnt: Vec<usize>,
    /// Off-diagonal weight matrix `w[i][j]` = cost of partition `i` reading
    /// from partition `j`.
    w: Vec<Vec<f64>>,
    /// Mean off-diagonal weight — the constant scale of the balance terms.
    w_mean: f64,
    /// Reusable `|V| × N` candidate-score table for the parallel δc fill.
    cost: Vec<f64>,
    cfg: OneDeeConfig,
}

impl OneDeeState {
    /// Builds sweep state for `g` under the current `part` assignment.
    ///
    /// # Panics
    /// Panics if a provided weight matrix does not match the partition count.
    pub fn new(g: &Bigraph, part: &Partition, cfg: OneDeeConfig) -> Self {
        let n = part.num_partitions();
        let w = match &cfg.weights {
            Some(m) => {
                assert_eq!(m.len(), n, "weight matrix rows != partitions");
                assert!(m.iter().all(|r| r.len() == n), "weight matrix not square");
                m.clone()
            }
            None => {
                let mut m = vec![vec![1.0; n]; n];
                for (i, row) in m.iter_mut().enumerate() {
                    row[i] = 0.0;
                }
                m
            }
        };
        let w_mean = if n > 1 {
            let total: f64 = w.iter().flatten().sum();
            total / (n * (n - 1)) as f64
        } else {
            1.0
        };
        let mut state = Self {
            n,
            counts: vec![0u32; g.num_embeddings() * n],
            comm: vec![0.0; n],
            sample_cnt: vec![0; n],
            emb_cnt: vec![0; n],
            w,
            w_mean,
            cost: Vec::new(),
            cfg,
        };
        state.rebuild(g, part);
        state
    }

    /// Recomputes all cached statistics from scratch.
    fn rebuild(&mut self, g: &Bigraph, part: &Partition) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.comm.iter_mut().for_each(|c| *c = 0.0);
        self.sample_cnt.iter_mut().for_each(|c| *c = 0);
        self.emb_cnt.iter_mut().for_each(|c| *c = 0);
        for s in 0..g.num_samples() as u32 {
            let i = part.sample_owner(s) as usize;
            self.sample_cnt[i] += 1;
            for &x in g.embeddings_of(s) {
                self.counts[x as usize * self.n + i] += 1;
                let p = part.primary_of(x) as usize;
                if p != i {
                    self.comm[i] += self.w[i][p];
                }
            }
        }
        for x in 0..g.num_embeddings() as u32 {
            self.emb_cnt[part.primary_of(x) as usize] += 1;
        }
    }

    /// Current per-partition weighted communication totals.
    pub fn comm_totals(&self) -> &[f64] {
        &self.comm
    }

    /// `count(x, i)` — accesses of embedding `x` from partition `i`.
    #[inline]
    pub fn count(&self, x: u32, i: usize) -> u32 {
        self.counts[x as usize * self.n + i]
    }

    #[inline]
    fn gap(value: f64, avg: f64) -> f64 {
        (value - avg) / avg.max(1.0)
    }

    /// One full sweep over samples then embedding primaries. Returns the
    /// number of vertices that moved.
    pub fn sweep(&mut self, g: &Bigraph, part: &mut Partition) -> usize {
        let mut moved = 0usize;
        moved += self.sweep_samples(g, part);
        moved += self.sweep_embeddings(g, part);
        moved
    }

    fn sweep_samples(&mut self, g: &Bigraph, part: &mut Partition) -> usize {
        let n = self.n;
        let avg_samples = g.num_samples() as f64 / n as f64;
        let cap = (avg_samples * self.cfg.slack).ceil() as usize;

        // Parallel δc scoring: a sample's communication cost toward each
        // candidate partition depends only on its embeddings' primaries,
        // and the sample sweep never moves a primary — so the whole table
        // is valid for the entire sweep and fans out across threads while
        // the move decisions below stay strictly sequential.
        let mut cost = std::mem::take(&mut self.cost);
        cost.clear();
        cost.resize(g.num_samples() * n, 0.0);
        {
            let w = &self.w;
            parallel_fill(
                &mut cost,
                n,
                g.num_samples(),
                resolve_threads(self.cfg.score_threads),
                |s, out| {
                    for j in 0..n {
                        let mut c = 0.0;
                        for &x in g.embeddings_of(s) {
                            let p = part.primary_of(x) as usize;
                            if p != j {
                                c += w[j][p];
                            }
                        }
                        out[j] = c;
                    }
                },
            );
        }

        let mut moved = 0usize;
        for s in 0..g.num_samples() as u32 {
            let embs = g.embeddings_of(s);
            let old = part.sample_owner(s) as usize;

            // Detach s from its partition so the candidate scores are
            // marginal costs of (re-)adding it.
            self.sample_cnt[old] -= 1;
            for &x in embs {
                self.counts[x as usize * n + old] -= 1;
                let p = part.primary_of(x) as usize;
                if p != old {
                    self.comm[old] -= self.w[old][p];
                }
            }

            let avg_comm = self.comm.iter().sum::<f64>() / n as f64;
            let mut best = old;
            let mut stay_score = f64::INFINITY;
            let mut best_score = f64::INFINITY;
            for j in 0..n {
                if j != old && self.sample_cnt[j] + 1 > cap {
                    continue; // hard balance cap (staying is always allowed)
                }
                let comm_cost = cost[s as usize * n + j];
                let balance = self.cfg.alpha * Self::gap(self.sample_cnt[j] as f64, avg_samples)
                    + self.cfg.gamma * Self::gap(self.comm[j], avg_comm);
                let score = comm_cost + embs.len() as f64 * self.w_mean * balance;
                if j == old {
                    stay_score = score;
                }
                if score < best_score {
                    best_score = score;
                    best = j;
                }
            }
            // Hysteresis: only leave `old` for a strictly better partition.
            if best != old && best_score >= stay_score - 1e-9 {
                best = old;
            }

            // Attach to the winner.
            self.sample_cnt[best] += 1;
            for &x in embs {
                self.counts[x as usize * n + best] += 1;
                let p = part.primary_of(x) as usize;
                if p != best {
                    self.comm[best] += self.w[best][p];
                }
            }
            if best != old {
                part.move_sample(s, best as u32);
                moved += 1;
            }
        }
        self.cost = cost;
        moved
    }

    fn sweep_embeddings(&mut self, g: &Bigraph, part: &mut Partition) -> usize {
        let n = self.n;
        let avg_embs = g.num_embeddings() as f64 / n as f64;
        let cap = (avg_embs * self.cfg.slack).ceil() as usize;

        // Parallel δc scoring: an embedding's candidate cost reads only its
        // own access-count row (and the weight matrix), and the embedding
        // sweep never changes a count — the table stays valid for the whole
        // sweep no matter which primaries move.
        let mut cost = std::mem::take(&mut self.cost);
        cost.clear();
        cost.resize(g.num_embeddings() * n, 0.0);
        {
            let w = &self.w;
            let counts = &self.counts;
            parallel_fill(
                &mut cost,
                n,
                g.num_embeddings(),
                resolve_threads(self.cfg.score_threads),
                |x, out| {
                    let row = &counts[x as usize * n..(x as usize + 1) * n];
                    for j in 0..n {
                        // Cost of placing the primary on j: every access
                        // from k ≠ j becomes a remote fetch over link (k, j).
                        let mut c = 0.0;
                        for (k, &cnt) in row.iter().enumerate() {
                            if k != j && cnt > 0 {
                                c += cnt as f64 * w[k][j];
                            }
                        }
                        out[j] = c;
                    }
                },
            );
        }

        let mut moved = 0usize;
        for x in 0..g.num_embeddings() as u32 {
            let old = part.primary_of(x) as usize;
            let row = &self.counts[x as usize * n..(x as usize + 1) * n];

            // Detach: remove x's contribution to every partition's comm.
            self.emb_cnt[old] -= 1;
            for (k, &cnt) in row.iter().enumerate() {
                if k != old && cnt > 0 {
                    self.comm[k] -= cnt as f64 * self.w[k][old];
                }
            }

            let avg_comm = self.comm.iter().sum::<f64>() / n as f64;
            let mut best = old;
            let mut stay_score = f64::INFINITY;
            let mut best_score = f64::INFINITY;
            for j in 0..n {
                if j != old && self.emb_cnt[j] + 1 > cap {
                    continue; // hard balance cap
                }
                let comm_cost = cost[x as usize * n + j];
                let balance = self.cfg.beta * Self::gap(self.emb_cnt[j] as f64, avg_embs)
                    + self.cfg.gamma * Self::gap(self.comm[j], avg_comm);
                // Scale by sqrt(freq): hot embeddings answer mostly to the
                // communication term, cold ones to balance.
                let freq: u32 = row.iter().sum();
                let score = comm_cost + (freq as f64).max(1.0).sqrt() * self.w_mean * balance;
                if j == old {
                    stay_score = score;
                }
                if score < best_score {
                    best_score = score;
                    best = j;
                }
            }
            if best != old && best_score >= stay_score - 1e-9 {
                best = old;
            }

            self.emb_cnt[best] += 1;
            for (k, &cnt) in row.iter().enumerate() {
                if k != best && cnt > 0 {
                    self.comm[k] += cnt as f64 * self.w[k][best];
                }
            }
            if best != old {
                part.move_primary(x, best as u32);
                moved += 1;
            }
        }
        self.cost = cost;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionMetrics;
    use crate::random::random_partition;

    /// Two planted communities of samples/embeddings plus a couple of
    /// bridging samples.
    fn communities() -> Bigraph {
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push(vec![(i % 10) as u32, ((i + 1) % 10) as u32, ((i + 3) % 10) as u32]);
        }
        for i in 0..40 {
            rows.push(vec![
                10 + (i % 10) as u32,
                10 + ((i + 2) % 10) as u32,
                10 + ((i + 5) % 10) as u32,
            ]);
        }
        rows.push(vec![0, 10]);
        rows.push(vec![5, 15]);
        Bigraph::from_samples(20, &rows)
    }

    #[test]
    fn sweep_reduces_remote_accesses() {
        let g = communities();
        let mut part = random_partition(&g, 2, 3);
        let before = PartitionMetrics::compute(&g, &part, None).remote_fetches;
        let mut state = OneDeeState::new(&g, &part, OneDeeConfig::default());
        for _ in 0..3 {
            state.sweep(&g, &mut part);
        }
        let after = PartitionMetrics::compute(&g, &part, None).remote_fetches;
        assert!(after < before, "remote accesses {before} -> {after}");
        assert!(part.validate(&g).is_ok());
    }

    #[test]
    fn finds_planted_communities() {
        let g = communities();
        let mut part = random_partition(&g, 2, 11);
        let baseline = PartitionMetrics::compute(&g, &part, None).remote_fetches;
        let mut state = OneDeeState::new(&g, &part, OneDeeConfig::default());
        for _ in 0..5 {
            state.sweep(&g, &mut part);
        }
        let m = PartitionMetrics::compute(&g, &part, None);
        // The paper's own Table 3 reports 63-68% reduction after 5 rounds;
        // hold this implementation to at least 55% on planted communities.
        let reduction = 1.0 - m.remote_fetches as f64 / baseline as f64;
        assert!(
            reduction > 0.55,
            "reduction {reduction:.2} ({} -> {})",
            baseline,
            m.remote_fetches
        );
    }

    #[test]
    fn balance_maintained() {
        let g = communities();
        let mut part = random_partition(&g, 2, 5);
        let mut state = OneDeeState::new(&g, &part, OneDeeConfig::default());
        for _ in 0..4 {
            state.sweep(&g, &mut part);
        }
        // The hard cap guarantees no partition exceeds slack x average.
        let samples = part.samples_per_partition();
        let cap = (g.num_samples() as f64 / 2.0 * 1.15).ceil() as usize;
        assert!(
            samples.iter().all(|&s| s <= cap),
            "cap {cap} violated: {samples:?}"
        );
    }

    #[test]
    fn converges_to_stability() {
        let g = communities();
        let mut part = random_partition(&g, 2, 9);
        let mut state = OneDeeState::new(&g, &part, OneDeeConfig::default());
        let mut last_moves = usize::MAX;
        for _ in 0..8 {
            last_moves = state.sweep(&g, &mut part);
        }
        // Should settle (or nearly so) after several rounds.
        assert!(last_moves < 10, "still moving {last_moves} vertices");
    }

    #[test]
    fn incremental_stats_match_rebuild() {
        let g = communities();
        let mut part = random_partition(&g, 3, 4);
        let mut state = OneDeeState::new(&g, &part, OneDeeConfig::default());
        state.sweep(&g, &mut part);
        // Rebuild from scratch and compare comm totals.
        let fresh = OneDeeState::new(&g, &part, OneDeeConfig::default());
        for (a, b) in state.comm.iter().zip(&fresh.comm) {
            assert!((a - b).abs() < 1e-6, "drift: {a} vs {b}");
        }
        assert_eq!(state.counts, fresh.counts);
        assert_eq!(state.sample_cnt, fresh.sample_cnt);
        assert_eq!(state.emb_cnt, fresh.emb_cnt);
    }

    #[test]
    fn weighted_sweep_respects_hierarchy() {
        // 4 partitions in 2 "machines": cross-machine weight 10×. The sweep
        // should prefer cuts inside machines.
        let g = communities();
        let w = vec![
            vec![0.0, 1.0, 10.0, 10.0],
            vec![1.0, 0.0, 10.0, 10.0],
            vec![10.0, 10.0, 0.0, 1.0],
            vec![10.0, 10.0, 1.0, 0.0],
        ];
        // A little extra slack: the communities graph is tiny (82 samples
        // over 4 partitions), so the default 1.05 cap quantises harshly.
        let cfg = OneDeeConfig {
            weights: Some(w.clone()),
            slack: 1.2,
            ..Default::default()
        };
        let mut part = random_partition(&g, 4, 6);
        let mut state = OneDeeState::new(&g, &part, cfg);
        for _ in 0..5 {
            state.sweep(&g, &mut part);
        }
        let m = PartitionMetrics::compute(&g, &part, Some(&w));
        let unweighted = {
            let mut part2 = random_partition(&g, 4, 6);
            let cfg2 = OneDeeConfig {
                slack: 1.2,
                ..Default::default()
            };
            let mut s2 = OneDeeState::new(&g, &part2, cfg2);
            for _ in 0..5 {
                s2.sweep(&g, &mut part2);
            }
            PartitionMetrics::compute(&g, &part2, Some(&w))
        };
        assert!(
            m.weighted_cost <= unweighted.weighted_cost,
            "hierarchy-aware {} should beat oblivious {}",
            m.weighted_cost,
            unweighted.weighted_cost
        );
    }

    #[test]
    #[should_panic(expected = "weight matrix")]
    fn bad_weight_matrix_rejected() {
        let g = communities();
        let part = random_partition(&g, 2, 0);
        let cfg = OneDeeConfig {
            weights: Some(vec![vec![0.0; 3]; 3]),
            ..Default::default()
        };
        let _ = OneDeeState::new(&g, &part, cfg);
    }
}
