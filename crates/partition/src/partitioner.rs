//! The unified partitioner interface.
//!
//! Every partitioning algorithm in this crate — the paper's Algorithm 1 and
//! the Table 3 baselines — is invocable through one trait:
//! `partition(graph, topology) → Partition`. Callers (the Table 3 runner,
//! the trainer's strategy layer, the CLI) dispatch through `&dyn
//! Partitioner` and never need algorithm-specific plumbing; the topology
//! argument lets hierarchy-aware algorithms derive their communication
//! weight matrix ([`Topology::weight_matrix`]) instead of requiring the
//! caller to thread it into a config.
//!
//! ```
//! use hetgmp_bigraph::Bigraph;
//! use hetgmp_cluster::Topology;
//! use hetgmp_partition::{HybridPartitioner, HybridConfig, Partitioner, RandomPartitioner};
//!
//! let g = Bigraph::from_samples(4, &[vec![0, 1], vec![2, 3]]);
//! let topo = Topology::nvlink_island(2);
//! let algos: Vec<Box<dyn Partitioner>> = vec![
//!     Box::new(RandomPartitioner::default()),
//!     Box::new(HybridPartitioner::new(HybridConfig::default())),
//! ];
//! for algo in &algos {
//!     let part = algo.partition(&g, &topo);
//!     assert_eq!(part.num_partitions(), topo.num_workers());
//! }
//! ```

use hetgmp_bigraph::Bigraph;
use hetgmp_cluster::Topology;

use crate::bicut::bicut_partition;
use crate::hybrid::HybridPartitioner;
use crate::multilevel::{multilevel_partition, MultilevelConfig};
use crate::random::random_partition;
use crate::types::Partition;

/// A bigraph partitioning algorithm.
///
/// Implementations must return a partition over exactly
/// `topo.num_workers()` parts covering every vertex of `g`.
pub trait Partitioner {
    /// Human-readable algorithm name (Table 3 row label).
    fn name(&self) -> &str;

    /// Partitions `g` across the workers of `topo`.
    fn partition(&self, g: &Bigraph, topo: &Topology) -> Partition;
}

/// The paper's `Random` baseline: uniform assignment of samples and
/// embeddings.
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    /// Assignment seed.
    pub seed: u64,
}

impl Default for RandomPartitioner {
    fn default() -> Self {
        Self { seed: 0x9E7 }
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &str {
        "random"
    }

    fn partition(&self, g: &Bigraph, topo: &Topology) -> Partition {
        random_partition(g, topo.num_workers(), self.seed)
    }
}

/// The BiCut bipartite-graph baseline (Chen et al. 2015), Table 3's
/// strongest external competitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct BiCutPartitioner;

impl Partitioner for BiCutPartitioner {
    fn name(&self) -> &str {
        "bicut"
    }

    fn partition(&self, g: &Bigraph, topo: &Topology) -> Partition {
        bicut_partition(g, topo.num_workers())
    }
}

impl Partitioner for HybridPartitioner {
    fn name(&self) -> &str {
        "hybrid (Algorithm 1)"
    }

    /// Runs Algorithm 1 with the topology's profiled weight matrix when the
    /// config does not pin one explicitly.
    fn partition(&self, g: &Bigraph, topo: &Topology) -> Partition {
        if self.config().onedee.weights.is_none() {
            let mut cfg = self.config().clone();
            cfg.onedee.weights = Some(topo.weight_matrix());
            // `reconfigured`, not `new`: an attached recorder/tracer must
            // survive the weight-matrix injection.
            self.reconfigured(cfg)
                .partition_rounds(g, topo.num_workers())
                .0
        } else {
            self.partition_rounds(g, topo.num_workers()).0
        }
    }
}

/// The coarsen–partition–refine variant (METIS-style multilevel scheme).
#[derive(Debug, Clone, Default)]
pub struct MultilevelPartitioner {
    /// Multilevel scheme configuration.
    pub config: MultilevelConfig,
}

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> &str {
        "multilevel"
    }

    fn partition(&self, g: &Bigraph, topo: &Topology) -> Partition {
        if self.config.onedee.weights.is_none() {
            let mut cfg = self.config.clone();
            cfg.onedee.weights = Some(topo.weight_matrix());
            multilevel_partition(g, topo.num_workers(), &cfg)
        } else {
            multilevel_partition(g, topo.num_workers(), &self.config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridConfig;

    fn graph() -> Bigraph {
        let rows: Vec<Vec<u32>> = (0..40)
            .map(|i| vec![(i % 7) as u32, 7 + (i % 5) as u32])
            .collect();
        Bigraph::from_samples(12, &rows)
    }

    #[test]
    fn all_algorithms_dispatch_through_the_trait() {
        let g = graph();
        let topo = Topology::nvlink_island(4);
        let algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(RandomPartitioner::default()),
            Box::new(BiCutPartitioner),
            Box::new(HybridPartitioner::new(HybridConfig::default())),
            Box::new(MultilevelPartitioner::default()),
        ];
        for algo in &algos {
            let part = algo.partition(&g, &topo);
            assert_eq!(part.num_partitions(), 4, "{}", algo.name());
            assert!(part.validate(&g).is_ok(), "{}", algo.name());
        }
    }

    #[test]
    fn trait_hybrid_matches_inherent_with_weights() {
        let g = graph();
        let topo = Topology::nvlink_island(4);
        // Pin the weight matrix so both paths run identical configs.
        let mut cfg = HybridConfig::default();
        cfg.onedee.weights = Some(topo.weight_matrix());
        let p = HybridPartitioner::new(cfg.clone());
        let via_trait = Partitioner::partition(&p, &g, &topo);
        let (direct, _) = p.partition_rounds(&g, 4);
        for e in 0..g.num_embeddings() as u32 {
            assert_eq!(via_trait.primary_of(e), direct.primary_of(e));
        }
    }

    #[test]
    fn names_are_distinct() {
        let algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(RandomPartitioner::default()),
            Box::new(BiCutPartitioner),
            Box::new(HybridPartitioner::new(HybridConfig::default())),
            Box::new(MultilevelPartitioner::default()),
        ];
        let mut names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
