//! Uniform random partitioning — the paper's `Random` baseline (Table 3) and
//! the initialiser of Algorithm 1. This is also exactly what the HET-MP /
//! HugeCTR-style model-parallel baselines do: hash-distribute the embedding
//! table with no locality awareness.

use hetgmp_bigraph::Bigraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::Partition;

/// Assigns samples and embedding primaries uniformly at random (seeded).
pub fn random_partition(g: &Bigraph, num_partitions: usize, seed: u64) -> Partition {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample_owner = (0..g.num_samples())
        .map(|_| rng.gen_range(0..num_partitions as u32))
        .collect();
    let emb_primary = (0..g.num_embeddings())
        .map(|_| rng.gen_range(0..num_partitions as u32))
        .collect();
    Partition::new(num_partitions, sample_owner, emb_primary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Bigraph {
        let rows: Vec<Vec<u32>> = (0..1000).map(|i| vec![i % 50, (i * 7) % 50]).collect();
        Bigraph::from_samples(50, &rows)
    }

    #[test]
    fn deterministic_in_seed() {
        let g = graph();
        let a = random_partition(&g, 4, 1);
        let b = random_partition(&g, 4, 1);
        for s in 0..g.num_samples() as u32 {
            assert_eq!(a.sample_owner(s), b.sample_owner(s));
        }
        let c = random_partition(&g, 4, 2);
        let same = (0..g.num_samples() as u32).all(|s| a.sample_owner(s) == c.sample_owner(s));
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn roughly_balanced() {
        let g = graph();
        let p = random_partition(&g, 4, 7);
        let counts = p.samples_per_partition();
        for &c in &counts {
            assert!(c > 150 && c < 350, "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn no_secondaries() {
        let g = graph();
        let p = random_partition(&g, 8, 3);
        assert_eq!(p.replication_factor(), 1.0);
        assert!(p.validate(&g).is_ok());
    }
}
